/**
 * @file
 * LNS tests: the destroy/repair loop must be monotone (never return
 * a schedule worse than the starting incumbent) and always feasible,
 * across many random instances; the bounded B&B polish must be able
 * to pull a deliberately bad incumbent to the known optimum; and the
 * solver-level --lns path must keep exact results exact.
 */

#include <gtest/gtest.h>

#include <string>

#include "cp/list_scheduler.hh"
#include "cp/lns.hh"
#include "cp/model.hh"
#include "cp/solver.hh"
#include "support/random.hh"

namespace hilp {
namespace cp {
namespace {

/** A contended multi-mode instance (same shape as the solver tests). */
Model
contendedModel(int tasks, uint64_t seed)
{
    Model m;
    m.addResource(4.0, "power");
    int g0 = m.addGroup("G0");
    int g1 = m.addGroup("G1");
    Rng rng(seed);
    for (int i = 0; i < tasks; ++i) {
        Task t;
        t.name = "t" + std::to_string(i);
        t.modes.push_back({kNoGroup,
                           static_cast<Time>(rng.uniformInt(3, 6)),
                           {1.0}});
        t.modes.push_back({rng.chance(0.5) ? g0 : g1,
                           static_cast<Time>(rng.uniformInt(1, 3)),
                           {2.0}});
        m.addTask(t);
        if (i > 0 && rng.chance(0.4))
            m.addPrecedence(static_cast<int>(rng.uniformInt(0, i - 1)),
                            i);
    }
    m.setHorizon(200);
    return m;
}

/**
 * The monotonicity differential: whatever the destroy operators and
 * the polish do, the returned schedule is feasible and no worse than
 * the incumbent that seeded the pass.
 */
class LnsMonotone : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(LnsMonotone, NeverWorseThanTheIncumbent)
{
    Model m = contendedModel(10, GetParam() * 131 + 5);
    ListResult greedy = bestGreedy(m, 4, 1);
    ASSERT_TRUE(greedy.feasible);

    LnsOptions options;
    options.iterations = 64;
    options.maxSeconds = 5.0;
    options.seed = GetParam();
    options.polishNodes = 500;
    LnsResult improved = lnsImprove(m, greedy.schedule, options);

    EXPECT_LE(improved.makespan, greedy.makespan);
    EXPECT_EQ(improved.makespan, improved.schedule.makespan(m));
    EXPECT_TRUE(checkSchedule(m, improved.schedule).empty());
    EXPECT_LE(improved.improvements, improved.iterations);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LnsMonotone,
                         ::testing::Range<uint64_t>(1, 21));

TEST(Lns, PolishPullsABadIncumbentToTheOptimum)
{
    // Two tasks, each CPU (5) or a shared device (2); the optimum
    // serializes both on the device for makespan 4. Seed LNS with
    // the worst reasonable incumbent: both tasks on the CPU path,
    // strictly sequential.
    Model m;
    int g = m.addGroup("G");
    for (int i = 0; i < 2; ++i) {
        Task t;
        t.modes.push_back({kNoGroup, 5, {}});
        t.modes.push_back({g, 2, {}});
        m.addTask(t);
    }
    m.setHorizon(20);

    ScheduleVec bad;
    bad.tasks = {{0, 0}, {0, 5}};
    ASSERT_TRUE(checkSchedule(m, bad).empty());
    ASSERT_EQ(bad.makespan(m), 10);

    LnsOptions options;
    options.iterations = 32;
    options.maxSeconds = 5.0;
    options.polishNodes = 2000;
    LnsResult improved = lnsImprove(m, bad, options);
    EXPECT_EQ(improved.makespan, 4);
    EXPECT_TRUE(checkSchedule(m, improved.schedule).empty());
}

TEST(Lns, GapStopSkipsTheWholePass)
{
    Model m = contendedModel(8, 42);
    ListResult greedy = bestGreedy(m, 4, 1);
    ASSERT_TRUE(greedy.feasible);

    // The incumbent already *is* the claimed lower bound: nothing to
    // improve, so the pass returns before any destroy/repair work.
    LnsOptions options;
    options.iterations = 64;
    options.lowerBound = greedy.makespan;
    options.targetGap = 0.0;
    LnsResult improved = lnsImprove(m, greedy.schedule, options);
    EXPECT_EQ(improved.makespan, greedy.makespan);
    EXPECT_EQ(improved.iterations, 0);
    EXPECT_EQ(improved.polishes, 0);
}

TEST(Lns, SolverLevelLnsKeepsExactResultsExact)
{
    Model m = contendedModel(9, 77);
    SolverOptions plain;
    plain.targetGap = 0.0;
    plain.maxSeconds = 20.0;
    SolverOptions with_lns = plain;
    with_lns.lns = true;
    with_lns.lnsIterations = 32;

    Result a = Solver(plain).solve(m);
    Result b = Solver(with_lns).solve(m);
    ASSERT_EQ(a.status, SolveStatus::Optimal);
    EXPECT_EQ(b.status, SolveStatus::Optimal);
    EXPECT_EQ(b.makespan, a.makespan);
    EXPECT_TRUE(checkSchedule(m, b.schedule).empty());
}

TEST(Lns, SolverReportsLnsTelemetry)
{
    // A tight budget keeps the incumbent above the target gap, so
    // the solver routes through the LNS pass and must report it.
    Model m = contendedModel(12, 4242);
    SolverOptions options;
    options.targetGap = 0.0;
    options.maxSeconds = 2.0;
    options.maxNodes = 2000;
    options.lns = true;
    options.lnsIterations = 16;
    Result r = Solver(options).solve(m);
    ASSERT_TRUE(r.hasSchedule());
    EXPECT_GT(r.stats.lnsIterationsRun, 0);
    EXPECT_TRUE(checkSchedule(m, r.schedule).empty());
}

TEST(LnsTrajectory, DigestIsDeterministicForIdenticalOptions)
{
    Model m = contendedModel(10, 9);
    ListResult greedy = bestGreedy(m, 4, 1);
    ASSERT_TRUE(greedy.feasible);

    LnsOptions options;
    options.iterations = 32;
    options.maxSeconds = 5.0;
    options.seed = 7;
    LnsResult a = lnsImprove(m, greedy.schedule, options);
    LnsResult b = lnsImprove(m, greedy.schedule, options);
    ASSERT_GT(a.iterations, 0);
    EXPECT_NE(a.trajectoryDigest, 0u);
    EXPECT_EQ(a.trajectoryDigest, b.trajectoryDigest);

    // A different seed explores a different destroy sequence.
    options.seed = 8;
    LnsResult c = lnsImprove(m, greedy.schedule, options);
    EXPECT_NE(c.trajectoryDigest, a.trajectoryDigest);
}

TEST(LnsTrajectory, SeedSaltGivesTheRetryAFreshTrajectory)
{
    // The fault-isolation retry bug: a retried evaluation used to
    // replay the exact destroy sequence that just failed. With the
    // retry salting SolverOptions::seedSalt, the second attempt must
    // walk a different trajectory - while a zero salt stays
    // bit-identical with history.
    Model m = contendedModel(12, 4242);
    SolverOptions options;
    options.targetGap = 0.0;
    options.maxSeconds = 2.0;
    options.maxNodes = 2000;
    options.lns = true;
    options.lnsIterations = 32;

    Result first = Solver(options).solve(m);
    Result replay = Solver(options).solve(m);
    ASSERT_GT(first.stats.lnsIterationsRun, 0);
    ASSERT_NE(first.stats.lnsTrajectoryDigest, 0u);
    EXPECT_EQ(replay.stats.lnsTrajectoryDigest,
              first.stats.lnsTrajectoryDigest);
    EXPECT_EQ(replay.makespan, first.makespan);

    SolverOptions retry = options;
    retry.seedSalt = 0x9e3779b97f4a7c15ull; // Attempt-index salt.
    Result salted = Solver(retry).solve(m);
    EXPECT_NE(salted.stats.lnsTrajectoryDigest,
              first.stats.lnsTrajectoryDigest);
    ASSERT_TRUE(salted.hasSchedule());
    EXPECT_TRUE(checkSchedule(m, salted.schedule).empty());
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
