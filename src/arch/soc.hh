/**
 * @file
 * The SoC architecture template of Figure 4: a configurable number
 * of CPU cores, an optional GPU with a configurable number of SMs,
 * and a set of DSAs with configurable processing-element counts,
 * all behind shared memory with a bandwidth limit and a chip-wide
 * power budget.
 */

#ifndef HILP_ARCH_SOC_HH
#define HILP_ARCH_SOC_HH

#include <string>
#include <vector>

namespace hilp {
namespace arch {

/** Die-area model constants (Section IV, 7 nm estimates). */
inline constexpr double kCpuCoreAreaMm2 = 16.6; //!< EPYC 7763 per core.
inline constexpr double kGpuSmAreaMm2 = 6.5;    //!< GA100 per SM.

/**
 * One DSA instance: a processing-element count and the workload
 * target it accelerates. The target is an opaque identifier that the
 * workload layer resolves to a benchmark's compute phase; the paper
 * gives each accelerated application its own DSA.
 *
 * DSA semantics (reverse-engineered from the paper's published area
 * figures, see DESIGN.md): one PE has the area and power of one GPU
 * SM but delivers the performance of `dsaAdvantage` SMs. At the
 * default 4x advantage a DSA therefore matches an equally-performing
 * GPU at a quarter of the power and area, exactly as Section IV
 * describes, and the labelled areas of Figure 7's headline SoCs are
 * reproduced to the decimal.
 */
struct DsaSpec
{
    int pes = 1;     //!< Processing elements (the DSA's "SM count").
    int target = -1; //!< Workload-defined identifier of the
                     //!< accelerated compute phase family.
};

/**
 * A point in the SoC design space.
 */
struct SocConfig
{
    int cpuCores = 1;          //!< Number of CPU cores (>= 1).
    int gpuSms = 0;            //!< GPU SM count; 0 means no GPU.
    std::vector<DsaSpec> dsas; //!< The DSAs, one per accelerated app.
    /**
     * DSA efficiency advantage over the GPU: DSAs deliver GPU
     * performance at 1/advantage of the power and area (4x default
     * per Section IV).
     */
    double dsaAdvantage = 4.0;

    /** Total die area under the Section IV area model. */
    double areaMm2() const;

    /**
     * The paper's configuration label (c_i, g_j, d_k^l), e.g.
     * "(c4,g16,d2^16)". The PE superscript is that of the first DSA
     * (the paper always gives all DSAs the same PE count) and 0 when
     * there are no DSAs.
     */
    std::string name() const;

    /** True when the config is structurally sane. */
    bool valid() const;
};

/**
 * Shared-memory parameters: HBM3 with 800 GB/s at 7 pJ/bit unless
 * the experiment overrides them (Section IV).
 */
struct MemorySpec
{
    double bandwidthGBs = 800.0; //!< Peak bandwidth b_max.
    double pjPerBit = 7.0;       //!< Access energy.

    /**
     * Memory power per GB/s of sustained traffic:
     * pJ/bit * 8e9 bit/GB = 0.056 W per GB/s at 7 pJ/bit.
     */
    double
    wattsPerGBs() const
    {
        return pjPerBit * 1e-12 * 8e9;
    }
};

/**
 * A cache-level bandwidth limit (the Section VII memory-hierarchy
 * extension). Traffic at the level is modeled as the phase's DRAM
 * traffic scaled by an amplification factor (hits that never reach
 * DRAM still consume cache bandwidth).
 */
struct CacheLevel
{
    std::string name = "LLC";
    double bandwidthGBs = 0.0;        //!< Level bandwidth limit.
    double trafficAmplification = 3.0; //!< Level traffic / DRAM traffic.
};

/**
 * Chip-level constraints applied to every schedule: the power budget
 * p_max and the memory subsystem (whose bandwidth is b_max).
 */
struct Constraints
{
    double powerBudgetW = 600.0; //!< p_max (600 W default, Section IV).
    MemorySpec memory;           //!< b_max and access energy.
    /**
     * Optional cache-level bandwidth limits (Section VII). Empty by
     * default: the paper's core model stops at DRAM bandwidth.
     */
    std::vector<CacheLevel> cacheLevels;
};

} // namespace arch
} // namespace hilp

#endif // HILP_ARCH_SOC_HH
