#include "json.hh"

#include <cmath>

#include "logging.hh"
#include "str.hh"

namespace hilp {

Json::Json() = default;

Json
Json::null()
{
    return Json();
}

Json
Json::boolean(bool value)
{
    Json json;
    json.kind_ = Kind::Bool;
    json.bool_ = value;
    return json;
}

Json
Json::number(double value)
{
    Json json;
    json.kind_ = Kind::Number;
    json.number_ = value;
    return json;
}

Json
Json::number(int64_t value)
{
    Json json;
    json.kind_ = Kind::Integer;
    json.integer_ = value;
    return json;
}

Json
Json::string(std::string value)
{
    Json json;
    json.kind_ = Kind::String;
    json.string_ = std::move(value);
    return json;
}

Json
Json::object()
{
    Json json;
    json.kind_ = Kind::Object;
    return json;
}

Json
Json::array()
{
    Json json;
    json.kind_ = Kind::Array;
    return json;
}

Json &
Json::set(const std::string &key, Json value)
{
    hilp_assert(kind_ == Kind::Object);
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::append(Json value)
{
    hilp_assert(kind_ == Kind::Array);
    elements_.push_back(std::move(value));
    return *this;
}

size_t
Json::size() const
{
    if (kind_ == Kind::Object)
        return members_.size();
    if (kind_ == Kind::Array)
        return elements_.size();
    return 0;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += format("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

namespace {

/** Render a double as JSON (no NaN/Inf in JSON: emit null). */
std::string
numberText(double value)
{
    if (!std::isfinite(value))
        return "null";
    std::string text = format("%.17g", value);
    return text;
}

} // anonymous namespace

void
Json::write(std::string &out, int indent, int depth) const
{
    auto newline = [&](int level) {
        if (indent < 0)
            return;
        out += "\n";
        out += std::string(static_cast<size_t>(indent) *
                           static_cast<size_t>(level), ' ');
    };

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        out += numberText(number_);
        break;
      case Kind::Integer:
        out += std::to_string(integer_);
        break;
      case Kind::String:
        out += "\"" + jsonEscape(string_) + "\"";
        break;
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += "{";
        for (size_t i = 0; i < members_.size(); ++i) {
            if (i > 0)
                out += ",";
            newline(depth + 1);
            out += "\"" + jsonEscape(members_[i].first) + "\":";
            if (indent >= 0)
                out += " ";
            members_[i].second.write(out, indent, depth + 1);
        }
        newline(depth);
        out += "}";
        break;
      }
      case Kind::Array: {
        if (elements_.empty()) {
            out += "[]";
            break;
        }
        out += "[";
        for (size_t i = 0; i < elements_.size(); ++i) {
            if (i > 0)
                out += ",";
            newline(depth + 1);
            elements_[i].write(out, indent, depth + 1);
        }
        newline(depth);
        out += "]";
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    return out;
}

} // namespace hilp
