#include "logging.hh"

#include <atomic>
#include <cstdarg>

namespace hilp {

namespace {

std::atomic<LogLevel> globalLogLevel{LogLevel::Inform};

} // anonymous namespace

LogLevel
logLevel()
{
    return globalLogLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLogLevel.store(level, std::memory_order_relaxed);
}

namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return std::string(fmt);
    std::string buf(static_cast<size_t>(len) + 1, '\0');
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    buf.resize(static_cast<size_t>(len));
    return buf;
}

void
emit(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
    std::fflush(stderr);
}

void
assertFail(const char *cond, const char *file, int line)
{
    emit("panic: ", std::string("assertion '") + cond + "' failed at " +
         file + ":" + std::to_string(line));
    std::abort();
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    detail::emit("info: ", detail::vformat(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    detail::emit("warn: ", detail::vformat(fmt, ap));
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    detail::emit("debug: ", detail::vformat(fmt, ap));
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit("fatal: ", detail::vformat(fmt, ap));
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit("panic: ", detail::vformat(fmt, ap));
    va_end(ap);
    std::abort();
}

} // namespace hilp
