/**
 * @file
 * A minimal JSON writer.
 *
 * HILP's results (schedules, DSE sweeps) feed external plotting and
 * analysis pipelines; this writer produces standards-compliant JSON
 * without pulling in a dependency. Writing only - HILP's input
 * formats are CSV (workload/io.hh) and code-level builders.
 */

#ifndef HILP_SUPPORT_JSON_HH
#define HILP_SUPPORT_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hilp {

/**
 * A JSON value under construction. Build with the static factories
 * and the object()/array() helpers, then render with dump().
 */
class Json
{
  public:
    /** Construct null. */
    Json();

    static Json null();
    static Json boolean(bool value);
    static Json number(double value);
    static Json number(int64_t value);
    static Json string(std::string value);
    static Json object();
    static Json array();

    /** True when this value is an object / array respectively. */
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /**
     * Set a key on an object (panics on non-objects). Returns *this
     * for chaining.
     */
    Json &set(const std::string &key, Json value);

    /** Append to an array (panics on non-arrays). */
    Json &append(Json value);

    /** Number of members/elements (0 for scalars). */
    size_t size() const;

    /**
     * Render as JSON text. indent < 0 renders compactly; indent >= 0
     * pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

  private:
    enum class Kind { Null, Bool, Number, Integer, String, Object,
                      Array };

    void write(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    int64_t integer_ = 0;
    std::string string_;
    std::vector<std::pair<std::string, Json>> members_;
    std::vector<Json> elements_;
};

/** Escape a string for inclusion in JSON text (without quotes). */
std::string jsonEscape(const std::string &text);

} // namespace hilp

#endif // HILP_SUPPORT_JSON_HH
