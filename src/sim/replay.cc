#include "replay.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {
namespace sim {

namespace {

constexpr double kEps = 1e-7;

/** Flat phase identifier. */
struct PhaseRef
{
    int app = -1;
    int phase = -1;
};

/** The envelope sweep shared by both simulator modes. */
void
measureEnvelope(const Schedule &schedule, SimResult &result)
{
    struct Event
    {
        double time;
        int delta; // +1 start, -1 end
        const ScheduledPhase *phase;
    };
    std::vector<Event> events;
    for (const ScheduledPhase &phase : schedule.phases) {
        if (phase.durationS <= 0.0)
            continue;
        events.push_back({phase.startS, +1, &phase});
        events.push_back({phase.startS + phase.durationS, -1,
                          &phase});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.delta < b.delta; // release before acquire
              });
    double power = 0.0;
    double bw = 0.0;
    double cores = 0.0;
    // Process events in batches of (numerically) equal instants,
    // releases first, and sample the envelope only after the whole
    // batch: back-to-back phases may differ by one ulp when start
    // and end were computed by different float expressions.
    size_t i = 0;
    while (i < events.size()) {
        double t0 = events[i].time;
        size_t j = i;
        while (j < events.size() && events[j].time <= t0 + kEps)
            ++j;
        for (int pass = 0; pass < 2; ++pass) {
            int want = pass == 0 ? -1 : +1;
            for (size_t k = i; k < j; ++k) {
                if (events[k].delta != want)
                    continue;
                double sign = events[k].delta;
                power += sign * events[k].phase->powerW;
                bw += sign * events[k].phase->bwGBs;
                cores += sign * events[k].phase->cpuCores;
            }
        }
        result.peakPowerW = std::max(result.peakPowerW, power);
        result.peakBwGBs = std::max(result.peakBwGBs, bw);
        result.peakCpuCores = std::max(result.peakCpuCores, cores);
        i = j;
    }
}

} // anonymous namespace

SimResult
replaySchedule(const ProblemSpec &spec, const Schedule &schedule)
{
    SimResult result;
    result.schedule = schedule;

    auto fail = [&](std::string why) {
        result.violation = std::move(why);
        return result;
    };

    // Index placements by (app, phase); each must appear once.
    std::vector<std::vector<const ScheduledPhase *>> placed(
        spec.apps.size());
    for (size_t a = 0; a < spec.apps.size(); ++a)
        placed[a].assign(spec.apps[a].phases.size(), nullptr);
    for (const ScheduledPhase &phase : schedule.phases) {
        if (phase.app < 0 ||
            phase.app >= static_cast<int>(spec.apps.size()))
            return fail(format("phase '%s' references unknown app",
                               phase.name.c_str()));
        const AppSpec &app = spec.apps[phase.app];
        if (phase.phase < 0 ||
            phase.phase >= static_cast<int>(app.phases.size()))
            return fail(format("phase '%s' references unknown phase "
                               "index", phase.name.c_str()));
        if (placed[phase.app][phase.phase])
            return fail(format("phase '%s' placed twice",
                               phase.name.c_str()));
        const PhaseSpec &spec_phase = app.phases[phase.phase];
        if (phase.option < 0 ||
            phase.option >=
                static_cast<int>(spec_phase.options.size()))
            return fail(format("phase '%s' uses unknown option",
                               phase.name.c_str()));
        const UnitOption &option = spec_phase.options[phase.option];
        if (std::fabs(option.timeS - phase.durationS) >
            kEps + 1e-6 * option.timeS + phase.durationS * 0.0) {
            // Durations may be rounded up by discretization but
            // never shortened.
            if (phase.durationS < option.timeS - kEps)
                return fail(format("phase '%s' runs shorter than its "
                                   "option allows",
                                   phase.name.c_str()));
        }
        if (phase.startS < -kEps)
            return fail(format("phase '%s' starts before time 0",
                               phase.name.c_str()));
        placed[phase.app][phase.phase] = &phase;
    }
    for (size_t a = 0; a < spec.apps.size(); ++a)
        for (size_t p = 0; p < spec.apps[a].phases.size(); ++p)
            if (!placed[a][p])
                return fail(format("phase %s is missing",
                                   spec.apps[a].phases[p].name
                                       .c_str()));

    // Dependencies and lags.
    for (size_t a = 0; a < spec.apps.size(); ++a) {
        const AppSpec &app = spec.apps[a];
        for (auto [from, to] : app.effectiveDeps()) {
            double from_end =
                placed[a][from]->startS + placed[a][from]->durationS;
            if (placed[a][to]->startS < from_end - kEps)
                return fail(format("dependency %s -> %s violated",
                                   app.phases[from].name.c_str(),
                                   app.phases[to].name.c_str()));
        }
        for (const StartLag &lag : app.effectiveStartLags()) {
            if (placed[a][lag.to]->startS <
                placed[a][lag.from]->startS + lag.lagS - kEps)
                return fail(format("start lag %s -> %s violated",
                                   app.phases[lag.from].name.c_str(),
                                   app.phases[lag.to].name.c_str()));
        }
    }

    // Device exclusivity.
    std::vector<std::vector<const ScheduledPhase *>> by_device(
        spec.deviceNames.size());
    for (const ScheduledPhase &phase : schedule.phases) {
        if (phase.device == kCpuPool)
            continue;
        if (phase.device < 0 ||
            phase.device >= static_cast<int>(by_device.size()))
            return fail(format("phase '%s' on unknown device",
                               phase.name.c_str()));
        by_device[phase.device].push_back(&phase);
    }
    for (auto &device_phases : by_device) {
        std::sort(device_phases.begin(), device_phases.end(),
                  [](const ScheduledPhase *x, const ScheduledPhase *y) {
                      return x->startS < y->startS;
                  });
        for (size_t i = 1; i < device_phases.size(); ++i) {
            double prev_end = device_phases[i - 1]->startS +
                              device_phases[i - 1]->durationS;
            if (device_phases[i]->startS < prev_end - kEps)
                return fail(format("device overlap: '%s' and '%s'",
                                   device_phases[i - 1]->name.c_str(),
                                   device_phases[i]->name.c_str()));
        }
    }

    // Resource envelopes.
    measureEnvelope(schedule, result);
    if (result.peakPowerW > spec.powerBudgetW + kEps)
        return fail(format("power envelope %.3f exceeds budget %.3f",
                           result.peakPowerW, spec.powerBudgetW));
    if (result.peakBwGBs > spec.bandwidthGBs + kEps)
        return fail(format("bandwidth envelope %.3f exceeds %.3f",
                           result.peakBwGBs, spec.bandwidthGBs));
    if (result.peakCpuCores > spec.cpuCores + kEps)
        return fail(format("CPU-core envelope %.2f exceeds %.2f",
                           result.peakCpuCores, spec.cpuCores));

    result.ok = true;
    result.makespanS = schedule.makespanS();
    return result;
}

const char *
toString(DispatchOrder order)
{
    switch (order) {
      case DispatchOrder::Fifo:
        return "fifo";
      case DispatchOrder::LongestFirst:
        return "longest-first";
      case DispatchOrder::ShortestFirst:
        return "shortest-first";
    }
    return "unknown";
}

SimResult
runOnlineScheduler(const ProblemSpec &spec,
                   const OnlineOptions &options)
{
    SimResult result;
    std::string issue = spec.validate();
    if (!issue.empty()) {
        result.violation = issue;
        return result;
    }

    const double inf = std::numeric_limits<double>::infinity();

    // Flatten phases and build per-app dependency bookkeeping.
    struct PhaseState
    {
        PhaseRef ref;
        int remainingDeps = 0;
        bool started = false;
        bool finished = false;
        int remainingLagPreds = 0; //!< Lag predecessors not started.
        double lagReadyS = 0.0; //!< Earliest start from lags (grows
                                //!< as lag predecessors start).
        double bestTimeS =
            std::numeric_limits<double>::infinity();
    };
    std::vector<PhaseState> states;
    std::vector<std::vector<int>> index_of(spec.apps.size());
    for (size_t a = 0; a < spec.apps.size(); ++a) {
        index_of[a].resize(spec.apps[a].phases.size());
        for (size_t p = 0; p < spec.apps[a].phases.size(); ++p) {
            PhaseState state;
            state.ref = {static_cast<int>(a), static_cast<int>(p)};
            for (const UnitOption &option :
                 spec.apps[a].phases[p].options)
                state.bestTimeS =
                    std::min(state.bestTimeS, option.timeS);
            index_of[a][p] = static_cast<int>(states.size());
            states.push_back(state);
        }
    }
    for (size_t a = 0; a < spec.apps.size(); ++a) {
        for (auto [from, to] : spec.apps[a].effectiveDeps()) {
            (void)from;
            ++states[index_of[a][to]].remainingDeps;
        }
        for (const StartLag &lag : spec.apps[a].effectiveStartLags())
            ++states[index_of[a][lag.to]].remainingLagPreds;
    }

    // Runtime state.
    std::vector<double> device_free(spec.deviceNames.size(), 0.0);
    double power_used = 0.0;
    double bw_used = 0.0;
    double cores_used = 0.0;
    double now = 0.0;
    int finished = 0;

    struct Running
    {
        int state;
        int option;
        double endS;
    };
    std::vector<Running> running;

    result.schedule.stepS = 0.0;
    result.schedule.deviceNames = spec.deviceNames;
    result.schedule.cpuCores = spec.cpuCores;

    auto ready_order = [&](int lhs, int rhs) {
        const PhaseState &ls = states[lhs];
        const PhaseState &rs = states[rhs];
        switch (options.order) {
          case DispatchOrder::LongestFirst:
            if (ls.bestTimeS != rs.bestTimeS)
                return ls.bestTimeS > rs.bestTimeS;
            break;
          case DispatchOrder::ShortestFirst:
            if (ls.bestTimeS != rs.bestTimeS)
                return ls.bestTimeS < rs.bestTimeS;
            break;
          case DispatchOrder::Fifo:
            break;
        }
        return lhs < rhs;
    };

    const int total = static_cast<int>(states.size());
    while (finished < total) {
        // Collect dispatchable phases.
        std::vector<int> ready;
        for (int s = 0; s < total; ++s) {
            const PhaseState &state = states[s];
            if (!state.started && state.remainingDeps == 0 &&
                state.remainingLagPreds == 0 &&
                state.lagReadyS <= now + kEps)
                ready.push_back(s);
        }
        std::sort(ready.begin(), ready.end(), ready_order);

        bool placed_any = false;
        for (int s : ready) {
            PhaseState &state = states[s];
            const PhaseSpec &phase =
                spec.apps[state.ref.app].phases[state.ref.phase];
            // Find the best admissible option right now.
            int best = -1;
            for (size_t o = 0; o < phase.options.size(); ++o) {
                const UnitOption &option = phase.options[o];
                if (option.device != kCpuPool &&
                    device_free[option.device] > now + kEps)
                    continue;
                if (power_used + option.powerW >
                        spec.powerBudgetW + kEps ||
                    bw_used + option.bwGBs >
                        spec.bandwidthGBs + kEps ||
                    cores_used + option.cpuCores >
                        spec.cpuCores + kEps)
                    continue;
                if (best < 0) {
                    best = static_cast<int>(o);
                    continue;
                }
                const UnitOption &incumbent = phase.options[best];
                bool better;
                if (options.greedyFastest) {
                    better = option.timeS < incumbent.timeS;
                } else {
                    // Prefer accelerators, then speed: model naive
                    // software that always offloads when it can.
                    bool inc_cpu = incumbent.device == kCpuPool;
                    bool opt_cpu = option.device == kCpuPool;
                    if (inc_cpu != opt_cpu)
                        better = inc_cpu;
                    else
                        better = option.timeS < incumbent.timeS;
                }
                if (better)
                    best = static_cast<int>(o);
            }
            if (best < 0)
                continue;
            const UnitOption &option = phase.options[best];
            // Dispatch.
            state.started = true;
            if (option.device != kCpuPool)
                device_free[option.device] = now + option.timeS;
            power_used += option.powerW;
            bw_used += option.bwGBs;
            cores_used += option.cpuCores;
            running.push_back({s, best, now + option.timeS});

            ScheduledPhase record;
            record.app = state.ref.app;
            record.phase = state.ref.phase;
            record.name = phase.name;
            record.option = best;
            record.unitLabel = option.label;
            record.device = option.device;
            record.startS = now;
            record.durationS = option.timeS;
            record.powerW = option.powerW;
            record.bwGBs = option.bwGBs;
            record.cpuCores = option.cpuCores;
            result.schedule.phases.push_back(std::move(record));

            // Starting releases lag successors.
            const AppSpec &app = spec.apps[state.ref.app];
            for (const StartLag &lag : app.effectiveStartLags()) {
                if (lag.from != state.ref.phase)
                    continue;
                PhaseState &successor =
                    states[index_of[state.ref.app][lag.to]];
                --successor.remainingLagPreds;
                successor.lagReadyS =
                    std::max(successor.lagReadyS, now + lag.lagS);
            }
            placed_any = true;
        }
        if (placed_any)
            continue; // Try to fill remaining capacity at `now`.

        // Advance time to the next event: a completion or a lag
        // release of an otherwise-ready phase.
        double next = inf;
        for (const Running &run : running)
            if (!states[run.state].finished)
                next = std::min(next, run.endS);
        for (int s = 0; s < total; ++s) {
            const PhaseState &state = states[s];
            if (!state.started && state.remainingDeps == 0 &&
                state.remainingLagPreds == 0 &&
                state.lagReadyS > now)
                next = std::min(next, state.lagReadyS);
        }
        if (next == inf) {
            result.violation =
                "online scheduler stalled (no dispatchable phase)";
            return result;
        }
        now = next;
        // Retire completions at `now`.
        for (Running &run : running) {
            PhaseState &state = states[run.state];
            if (state.finished || run.endS > now + kEps)
                continue;
            state.finished = true;
            ++finished;
            const UnitOption &option =
                spec.apps[state.ref.app]
                    .phases[state.ref.phase].options[run.option];
            power_used -= option.powerW;
            bw_used -= option.bwGBs;
            cores_used -= option.cpuCores;
            const AppSpec &app = spec.apps[state.ref.app];
            for (auto [from, to] : app.effectiveDeps())
                if (from == state.ref.phase)
                    --states[index_of[state.ref.app][to]]
                         .remainingDeps;
        }
    }

    measureEnvelope(result.schedule, result);
    result.ok = true;
    result.makespanS = result.schedule.makespanS();
    return result;
}

} // namespace sim
} // namespace hilp
