/** @file Unit tests for the timetable (occupancy profile). */

#include <gtest/gtest.h>

#include "cp/model.hh"
#include "cp/timetable.hh"

namespace hilp {
namespace cp {
namespace {

/** Model with one 2.0-capacity resource and two groups. */
Model
baseModel()
{
    Model m;
    m.addResource(2.0, "power");
    m.addGroup("GPU");
    m.addGroup("DSA");
    m.setHorizon(10);
    return m;
}

TEST(Timetable, EmptyTableFitsEverything)
{
    Model m = baseModel();
    Timetable table(m);
    Mode mode{0, 4, {2.0}};
    EXPECT_TRUE(table.fits(mode, 0));
    EXPECT_EQ(table.earliestStart(mode, 0), 0);
}

TEST(Timetable, HorizonLimitsPlacement)
{
    Model m = baseModel();
    Timetable table(m);
    Mode mode{0, 4, {1.0}};
    EXPECT_TRUE(table.fits(mode, 6));
    EXPECT_FALSE(table.fits(mode, 7)); // would end at 11 > 10.
    EXPECT_EQ(table.earliestStart(mode, 7), -1);
}

TEST(Timetable, GroupConflictPushesStart)
{
    Model m = baseModel();
    Timetable table(m);
    Mode first{0, 4, {0.0}};
    table.place(first, 2); // GPU busy [2, 6).
    Mode second{0, 3, {0.0}};
    EXPECT_EQ(table.earliestStart(second, 0), 6);
    // A different group is unaffected.
    Mode other{1, 3, {0.0}};
    EXPECT_EQ(table.earliestStart(other, 0), 0);
}

TEST(Timetable, ResourceConflictPushesStart)
{
    Model m = baseModel();
    Timetable table(m);
    Mode first{0, 4, {1.5}};
    table.place(first, 0); // power 1.5 over [0, 4).
    Mode second{1, 2, {1.0}}; // different group, needs 1.0.
    EXPECT_EQ(table.earliestStart(second, 0), 4);
    Mode light{1, 2, {0.5}}; // fits alongside.
    EXPECT_EQ(table.earliestStart(light, 0), 0);
}

TEST(Timetable, GapBetweenPlacementsIsFound)
{
    Model m = baseModel();
    Timetable table(m);
    Mode a{0, 2, {0.0}};
    table.place(a, 0); // GPU [0, 2)
    Mode b{0, 3, {0.0}};
    table.place(b, 5); // GPU [5, 8)
    Mode probe{0, 3, {0.0}};
    EXPECT_EQ(table.earliestStart(probe, 0), 2); // fits in [2, 5).
    Mode too_long{0, 4, {0.0}};
    EXPECT_EQ(table.earliestStart(too_long, 0), -1); // 8 + 4 > 10.
}

TEST(Timetable, PlaceRemoveRoundTrips)
{
    Model m = baseModel();
    Timetable table(m);
    Mode mode{0, 4, {1.2}};
    table.place(mode, 3);
    EXPECT_TRUE(table.groupBusy(0, 3));
    // Usage is stored in scaled integer units; conversion is exact
    // to within one unit (~1e-9).
    EXPECT_NEAR(table.usage(0, 4), 1.2, 1e-8);
    table.remove(mode, 3);
    EXPECT_FALSE(table.groupBusy(0, 3));
    // Integer round trip: removal restores exactly zero.
    EXPECT_EQ(table.usageUnits(0, 4), 0);
    EXPECT_DOUBLE_EQ(table.usage(0, 4), 0.0);
    // The table is empty again: everything fits at 0.
    EXPECT_EQ(table.earliestStart(mode, 0), 0);
}

TEST(Timetable, StackedUsageAccumulates)
{
    Model m = baseModel();
    Timetable table(m);
    Mode a{0, 5, {0.8}};
    Mode b{1, 5, {0.8}};
    table.place(a, 0);
    table.place(b, 0);
    EXPECT_NEAR(table.usage(0, 2), 1.6, 1e-8);
    Mode probe{kNoGroup, 1, {0.5}};
    EXPECT_EQ(table.earliestStart(probe, 0), 5); // 1.6 + 0.5 > 2.0.
}

TEST(Timetable, ZeroDurationAlwaysFits)
{
    Model m = baseModel();
    Timetable table(m);
    Mode blocker{0, 10, {2.0}};
    table.place(blocker, 0);
    Mode zero{0, 0, {2.0}};
    EXPECT_EQ(table.earliestStart(zero, 3), 3);
    EXPECT_TRUE(table.fits(zero, 10));
}

TEST(Timetable, NoGroupModeIgnoresGroups)
{
    Model m = baseModel();
    Timetable table(m);
    Mode gpu_block{0, 10, {0.0}};
    table.place(gpu_block, 0);
    Mode cpuish{kNoGroup, 4, {1.0}};
    EXPECT_EQ(table.earliestStart(cpuish, 0), 0);
}

TEST(Timetable, EstIsRespected)
{
    Model m = baseModel();
    Timetable table(m);
    Mode mode{0, 2, {0.0}};
    EXPECT_EQ(table.earliestStart(mode, 5), 5);
}

TEST(Timetable, CapacityBoundaryIsInclusive)
{
    Model m = baseModel();
    Timetable table(m);
    Mode exact{kNoGroup, 3, {2.0}}; // exactly the capacity.
    EXPECT_TRUE(table.fits(exact, 0));
    table.place(exact, 0);
    Mode epsilon{kNoGroup, 1, {0.001}};
    EXPECT_EQ(table.earliestStart(epsilon, 0), 3);
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
