#include "daemon.hh"

#include <sys/socket.h>

#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "dse/checkpoint.hh"
#include "protocol.hh"
#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {
namespace service {

namespace {

/**
 * Serialized line writer shared by a request's streaming callbacks:
 * sweep workers complete points concurrently, and each record must
 * land as one whole line. A failed write (peer hung up mid-stream)
 * latches: the sweep keeps running - its results still warm the
 * service caches - but no further writes are attempted.
 */
class LineWriter
{
  public:
    explicit LineWriter(net::LineChannel &channel)
        : channel_(channel) {}

    bool
    write(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (failed_)
            return false;
        if (!channel_.writeLine(line)) {
            failed_ = true;
            return false;
        }
        return true;
    }

    bool failed() const { return failed_; }

  private:
    net::LineChannel &channel_;
    std::mutex mutex_;
    bool failed_ = false;
};

} // anonymous namespace

bool
Daemon::serveConnection(net::Socket socket)
{
    net::LineChannel channel(std::move(socket));
    std::string line;
    while (channel.readLine(&line)) {
        if (line.empty())
            continue;

        protocol::Request request;
        std::string error;
        if (!protocol::parseRequest(line, &request, &error)) {
            channel.writeLine(protocol::encodeDone(false, error));
            continue; // Malformed input; the connection stays usable.
        }

        if (stop_.load() && request.op != protocol::Op::Stats) {
            channel.writeLine(protocol::encodeDone(
                false, "daemon is shutting down"));
            continue;
        }

        switch (request.op) {
          case protocol::Op::Stats:
            channel.writeLine(
                protocol::encodeStats(service_.statsJson()));
            channel.writeLine(protocol::encodeDone(true, ""));
            continue;
          case protocol::Op::Shutdown:
            inform("hilpd: shutdown requested");
            stop();
            channel.writeLine(protocol::encodeDone(true, ""));
            return true;
          case protocol::Op::Eval:
          case protocol::Op::Sweep:
            break;
        }

        std::vector<arch::SocConfig> configs;
        if (!protocol::resolveConfigs(request, &configs, &error)) {
            channel.writeLine(protocol::encodeDone(false, error));
            continue;
        }

        // The actual evaluation runs on the service's executor crew
        // behind admission control; this handler thread only streams
        // results and waits. A rejected request costs the client one
        // round trip and an explanation, never an unbounded queue.
        LineWriter writer(channel);
        SweepRequest sweep;
        sweep.configs = std::move(configs);
        sweep.workload =
            workload::makeWorkload(request.variant, request.copies);
        sweep.constraints = request.constraints;
        sweep.kind = request.kind;
        sweep.options = request.options;
        dse::ModelKind kind = request.kind;
        std::atomic<size_t> streamed{0};
        sweep.onPoint = [&](const dse::DsePoint &point,
                            const Schedule *schedule) {
            Json record = dse::pointRecordJson(
                dse::checkpointKey(point.fingerprint,
                                   point.config.name(), kind),
                kind, point, schedule);
            record.set("type", Json::string("point"));
            writer.write(record.dump());
            streamed.fetch_add(1, std::memory_order_relaxed);
        };

        std::promise<void> finished;
        std::future<void> done = finished.get_future();
        std::string failure;
        Admission admission = service_.submit(
            [&] {
                // The promise must be fulfilled on every path or the
                // handler thread below waits forever.
                try {
                    service_.sweep(sweep);
                } catch (const std::exception &e) {
                    failure = format("sweep failed: %s", e.what());
                } catch (...) {
                    failure = "sweep failed: unknown exception";
                }
                finished.set_value();
            },
            request.priority);
        if (!admission.accepted) {
            channel.writeLine(protocol::encodeDone(
                false, format("rejected: %s",
                              admission.reason.c_str())));
            continue;
        }
        done.wait();
        bool ok = failure.empty() && !writer.failed();
        channel.writeLine(protocol::encodeDone(
            ok,
            !failure.empty()
                ? failure
                : (writer.failed() ? "client write failed" : ""),
            streamed.load()));
    }
    return false;
}

void
Daemon::run(net::Listener &listener)
{
    listenerFd_.store(listener.fd());
    std::vector<std::thread> handlers;
    while (!stop_.load()) {
        net::Socket connection = listener.accept();
        if (!connection.valid()) {
            if (stop_.load())
                break;
            continue; // Transient accept failure (e.g. EINTR).
        }
        handlers.emplace_back(
            [this, socket = std::move(connection)]() mutable {
                serveConnection(std::move(socket));
            });
    }
    listenerFd_.store(-1);
    listener.close();
    for (std::thread &handler : handlers)
        handler.join();
}

void
Daemon::stop()
{
    stop_.store(true);
    int fd = listenerFd_.load();
    if (fd >= 0) {
        // Unblock the accept loop. shutdown() (not close) so the fd
        // stays valid for the Listener's own close/unlink.
        ::shutdown(fd, SHUT_RDWR);
    }
}

} // namespace service
} // namespace hilp
