#include "eval_service.hh"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>
#include <utility>

#include "baselines/gables.hh"
#include "baselines/multiamdahl.hh"
#include "dse/checkpoint.hh"
#include "support/hash.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/str.hh"
#include "support/thread_pool.hh"
#include "support/trace.hh"
#include "support/version.hh"

namespace hilp {
namespace service {

using dse::DseOptions;
using dse::DsePoint;
using dse::ModelKind;
using dse::classifyAccelMix;

namespace {

/**
 * The service-layer hooks threaded through the shared sweep core.
 * The batch path (dse::exploreSpace / dse::evaluatePoint) passes the
 * empty context and behaves exactly as it always has; EvalService
 * routes the same core through its shared memo (salted by the
 * request's engine digest) and warm-start store, and streams each
 * completed point to the request's sink.
 */
struct SweepContext
{
    /** Shared memo overriding DseOptions::memo / the per-sweep one. */
    SolveMemo *memo = nullptr;
    /** Key-space segmentation for the shared memo. */
    uint64_t memoSalt = 0;
    /** Warm-start schedule store (nullable). */
    ScheduleStore *store = nullptr;
    /** Per-completed-point stream sink (nullable). */
    const std::function<void(const DsePoint &,
                             const Schedule *)> *onPoint = nullptr;
    /**
     * Owning request's trace context (0 = batch mode). Sweep worker
     * threads re-establish it so their spans carry the request id.
     */
    uint64_t traceId = 0;
};

/**
 * Sweep-wide record of completed (area, makespan) points with an
 * atomic best-makespan fast path. A config whose certified makespan
 * lower bound is beaten by an already-completed point of no more
 * area can never reach the Pareto front, so its solve may stop
 * refining early (the result keeps its certified gap either way).
 */
class SweepBound
{
  public:
    void
    add(double area_mm2, double makespan_s)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            points_.emplace_back(area_mm2, makespan_s);
        }
        // Atomic running minimum of all completed makespans.
        double best = bestMakespanS_.load();
        while (makespan_s < best &&
               !bestMakespanS_.compare_exchange_weak(best, makespan_s))
            ;
    }

    /**
     * True when a completed point with area <= area_mm2 finishes
     * strictly sooner than this config could ever prove (its
     * certified lower bound).
     */
    bool
    dominates(double area_mm2, double lower_bound_s) const
    {
        // Fast reject without the lock: nothing anywhere in the
        // sweep beats this bound yet.
        if (bestMakespanS_.load() >= lower_bound_s)
            return false;
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[area, makespan] : points_)
            if (area <= area_mm2 && makespan < lower_bound_s)
                return true;
        return false;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<std::pair<double, double>> points_;
    std::atomic<double> bestMakespanS_{
        std::numeric_limits<double>::infinity()};
};

void
fillSolverTelemetry(DsePoint &point, const EvalResult &result)
{
    point.status = result.status;
    point.gap = result.gap;
    point.nodes = result.totalNodes;
    point.backtracks = result.totalBacktracks;
    point.solves = result.solves;
    point.solveSeconds = result.totalSeconds;
    point.cacheHit = result.cacheHit;
    point.warmStarted = result.warmStarted;
    point.pruned = result.prunedEarly;
    point.degraded = result.degraded;
    point.propagators = result.propagators;
}

/**
 * The evaluatePoint worker body. `reuse` (nullable) threads the
 * sweep's cross-config context into the HILP engine; on success
 * `schedule_out` (nullable) receives the solved schedule so chains
 * can warm-start their next configuration. A non-null store supplies
 * a warm-start hint when the chain has none (keyed by the lowered
 * instance's fingerprint) and retains each solved schedule for
 * future requests.
 */
DsePoint
evaluatePointBody(const arch::SocConfig &config,
                  const workload::Workload &workload,
                  const arch::Constraints &constraints, ModelKind kind,
                  const DseOptions &options, const EvalReuse *reuse,
                  Schedule *schedule_out, ScheduleStore *store)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = config.areaMm2();
    point.mix = classifyAccelMix(config);

    ProblemSpec spec =
        buildProblem(workload, config, constraints, options.build);
    point.fingerprint = spec.fingerprint();

    // A point a previous (interrupted) run already completed is
    // served from the checkpoint: the certified result comes back,
    // and a HILP record's persisted schedule stays available via
    // lookupSchedule for the sweep's warm-start chains.
    if (options.checkpoint &&
        options.checkpoint->lookup(
            dse::checkpointKey(point.fingerprint, config.name(), kind),
            &point)) {
        point.config = config;
        point.areaMm2 = config.areaMm2();
        point.mix = classifyAccelMix(config);
        return point;
    }

    // After the checkpoint shortcut: the injected fault stands in
    // for a crash inside the evaluation, which a resumed point never
    // reaches.
    if (options.injectFault)
        options.injectFault(config);

    std::string invalid = spec.validate();
    if (!invalid.empty()) {
        // Unschedulable under these budgets; keep the reason so the
        // report can tell this apart from a solver failure.
        point.note = invalid;
        return point;
    }

    double reference = workload::sequentialCpuTimeS(workload);

    switch (kind) {
      case ModelKind::MultiAmdahl: {
        baselines::MaResult ma = baselines::evaluateMultiAmdahl(spec);
        if (!ma.ok) {
            point.note = "MultiAmdahl found no feasible sequential "
                         "placement";
            return point;
        }
        point.ok = true;
        point.makespanS = ma.makespanS;
        point.averageWlp = ma.averageWlp();
        point.gap = 0.0;
        point.status = cp::SolveStatus::Optimal;
        break;
      }
      case ModelKind::Hilp: {
        EvalResult result;
        if (reuse || store) {
            EvalReuse local = reuse ? *reuse : EvalReuse();
            Schedule stored;
            if (store && !local.hint &&
                store->lookup(spec.fingerprint(), &stored))
                local.hint = &stored;
            result = evaluate(spec, options.engine, local);
        } else {
            result = evaluate(spec, options.engine);
        }
        fillSolverTelemetry(point, result);
        if (!result.ok) {
            point.note = format("solver gave up: %s",
                                cp::toString(result.status));
            return point;
        }
        point.ok = true;
        point.makespanS = result.makespanS;
        point.averageWlp = result.averageWlp;
        if (store && !result.schedule.phases.empty())
            store->insert(spec.fingerprint(), result.schedule);
        if (schedule_out)
            *schedule_out = std::move(result.schedule);
        break;
      }
      case ModelKind::Gables: {
        EvalResult result =
            baselines::evaluateGables(spec, options.engine);
        fillSolverTelemetry(point, result);
        if (!result.ok) {
            point.note = format("solver gave up: %s",
                                cp::toString(result.status));
            return point;
        }
        point.ok = true;
        point.makespanS = result.makespanS;
        point.averageWlp = result.averageWlp;
        break;
      }
    }
    if (point.makespanS > 0.0)
        point.speedup = reference / point.makespanS;
    return point;
}

/**
 * Tracing/metrics wrapper around evaluatePointBody: one span per
 * design point so a sweep's trace shows the per-point timeline on
 * each worker thread, plus sweep-progress counters.
 */
DsePoint
evaluatePointImpl(const arch::SocConfig &config,
                  const workload::Workload &workload,
                  const arch::Constraints &constraints, ModelKind kind,
                  const DseOptions &options, const EvalReuse *reuse,
                  Schedule *schedule_out, ScheduleStore *store)
{
    trace::Span span("dse.point");
    if (trace::enabled())
        span.arg(trace::Arg::strArg("config", config.name()));
    DsePoint point = evaluatePointBody(config, workload, constraints,
                                       kind, options, reuse,
                                       schedule_out, store);
    span.arg(trace::Arg::intArg("ok", point.ok ? 1 : 0));
    span.arg(trace::Arg::intArg("cache_hit", point.cacheHit ? 1 : 0));
    span.arg(trace::Arg::intArg("degraded", point.degraded ? 1 : 0));
    span.arg(trace::Arg::intArg("resumed", point.resumed ? 1 : 0));
    metrics::counter("dse.points").add(1);
    if (point.ok)
        metrics::counter("dse.points.ok").add(1);
    if (point.degraded)
        metrics::counter("dse.points.degraded").add(1);
    if (point.resumed)
        metrics::counter("dse.points.resumed").add(1);
    return point;
}

/**
 * Fault-isolating wrapper around evaluatePointImpl for sweep
 * workers. A throwing evaluation no longer costs the sweep: the
 * point is retried once with a quarter of the node budget (the
 * common transient failures - allocation pressure, budget-dependent
 * pathologies - often clear under a smaller footprint), and a second
 * failure is recorded as an errored point carrying the exception
 * text while every other point proceeds. DseOptions::failFast
 * restores the historical rethrow.
 */
DsePoint
evaluateGuarded(const arch::SocConfig &config,
                const workload::Workload &workload,
                const arch::Constraints &constraints, ModelKind kind,
                const DseOptions &options, const EvalReuse *reuse,
                Schedule *schedule_out, ScheduleStore *store)
{
    if (options.failFast)
        return evaluatePointImpl(config, workload, constraints, kind,
                                 options, reuse, schedule_out, store);

    std::string error;
    try {
        return evaluatePointImpl(config, workload, constraints, kind,
                                 options, reuse, schedule_out, store);
    } catch (const std::exception &e) {
        error = e.what();
    } catch (...) {
        error = "unknown exception";
    }

    warn("dse: point %s threw (%s); retrying with a reduced node "
         "budget", config.name().c_str(), error.c_str());
    DseOptions retry = options;
    retry.engine.solver.maxNodes = std::max<int64_t>(
        1000, options.engine.solver.maxNodes / 4);
    // Salt the heuristic seed with the attempt index: an unsalted
    // retry replays the exact greedy/LNS destroy trajectory that
    // preceded the failure (the engine adds the per-instance
    // fingerprint on top; see SolverOptions::seedSalt).
    {
        Hasher salt;
        salt.u64(options.engine.solver.seedSalt);
        salt.u64(1); // Attempt index of the retry.
        retry.engine.solver.seedSalt = salt.digest();
    }
    try {
        return evaluatePointImpl(config, workload, constraints, kind,
                                 retry, reuse, schedule_out, store);
    } catch (const std::exception &e) {
        error = e.what();
    } catch (...) {
        error = "unknown exception";
    }

    warn("dse: point %s failed twice (%s); recording it as errored "
         "and continuing the sweep", config.name().c_str(),
         error.c_str());
    DsePoint failed;
    failed.config = config;
    failed.areaMm2 = config.areaMm2();
    failed.mix = classifyAccelMix(config);
    failed.errored = true;
    failed.note = format("exception: %s", error.c_str());
    metrics::counter("dse.points").add(1);
    metrics::counter("dse.points.errored").add(1);
    return failed;
}

/**
 * Rate-limited progress reporting for a sweep. Workers call tick()
 * once per completed design point; roughly every total/6 completions
 * (and at most once per kMinIntervalS seconds, since cache-hit bursts
 * can finish hundreds of points at once) one inform() line reports
 * done/total, elapsed time, a simple linear ETA, and the cache-hit
 * rate. The ETA rates on points that cost real solver work: cache
 * hits and checkpoint-resumed points complete in microseconds, so
 * averaging them in (the old formula) made the ETA collapse toward
 * zero right after a resumed burst even though every remaining point
 * is a cold solve. Sweeps below kMinPoints stay silent - they finish
 * before a heartbeat would help - and
 * setLogLevel(Warn)/HILP_LOG_LEVEL=warn silences the heartbeat like
 * any other status output.
 */
class Heartbeat
{
  public:
    explicit Heartbeat(size_t total)
        : total_(total),
          stride_(std::max<size_t>(1, total / 6)),
          start_(std::chrono::steady_clock::now())
    {}

    void
    tick(bool free_of_charge)
    {
        if (free_of_charge)
            freebies_.fetch_add(1, std::memory_order_relaxed);
        size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
        // The final point is the caller's summary to report.
        if (total_ < kMinPoints || done >= total_ ||
            done % stride_ != 0)
            return;
        double elapsed = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_).count();
        double last = lastReportS_.load(std::memory_order_relaxed);
        if (elapsed - last < kMinIntervalS ||
            !lastReportS_.compare_exchange_strong(last, elapsed))
            return; // Too soon, or another worker just reported.
        size_t freebies = freebies_.load(std::memory_order_relaxed);
        size_t cold = done > freebies ? done - freebies : 0;
        // Per-point rate over cold completions only; when everything
        // so far was free there is no cost signal yet, so fall back
        // to the naive all-points average rather than claim zero.
        double eta = cold > 0
            ? elapsed / static_cast<double>(cold) *
                  static_cast<double>(total_ - done)
            : elapsed / static_cast<double>(done) *
                  static_cast<double>(total_ - done);
        double free_rate = 100.0 * static_cast<double>(freebies) /
                           static_cast<double>(done);
        inform("dse: %zu/%zu points | %.1fs elapsed, ~%.1fs left | "
               "%.0f%% cached/resumed",
               done, total_, elapsed, eta, free_rate);
    }

  private:
    static constexpr size_t kMinPoints = 24;
    static constexpr double kMinIntervalS = 1.0;

    const size_t total_;
    const size_t stride_;
    const std::chrono::steady_clock::time_point start_;
    std::atomic<size_t> done_{0};
    //! Points that cost no solver work: cache hits + resumed.
    std::atomic<size_t> freebies_{0};
    std::atomic<double> lastReportS_{0.0};
};

// Similarity chains moved to dse::similarityChains (explore.cc): the
// distributed-sweep coordinator shards work by the same neighborhoods
// the in-process sweep warm-starts along.

/**
 * The shared sweep core behind dse::exploreSpace (empty context) and
 * EvalService::sweep (service context). See exploreSpace for the
 * exploration semantics; the context only redirects *where* reuse
 * state lives and streams completions, never what is computed.
 */
std::vector<DsePoint>
runSweep(const std::vector<arch::SocConfig> &configs,
         const workload::Workload &workload,
         const arch::Constraints &constraints, ModelKind kind,
         const DseOptions &options, const SweepContext &ctx)
{
    std::vector<DsePoint> points(configs.size());
    // The sweep pool shares the process-wide thread budget with the
    // solver's parallel search: an outer worker holds a CPU slot
    // only while evaluating a point, so inner solves that ask the
    // budget for helpers (SolverOptions::threads == 0) pick up
    // exactly the slots the sweep is not using.
    ThreadPool pool(options.threads, &ThreadBudget::global());
    Heartbeat heartbeat(configs.size());

    // Common completion path for both sweep modes: persist the point
    // to the checkpoint (skipping points that came FROM it, and
    // errored points, which deserve a fresh attempt on resume),
    // stream it to the context's sink, and advance the progress
    // heartbeat. HILP chain workers pass the solved schedule so the
    // record can rehydrate warm starts after a resume; everyone else
    // passes null.
    auto finishPoint = [&](size_t i, const Schedule *schedule) {
        const DsePoint &point = points[i];
        if (options.checkpoint && !point.resumed && !point.errored)
            options.checkpoint->record(
                dse::checkpointKey(point.fingerprint,
                                   configs[i].name(), kind),
                kind, point, schedule);
        if (ctx.onPoint)
            (*ctx.onPoint)(point, schedule);
        heartbeat.tick(point.cacheHit || point.resumed);
    };

    // Cold-start path: every point is independent. MA is analytic
    // and Gables rewrites the spec internally, so the cross-config
    // reuse layer applies to HILP sweeps only.
    if (!options.reuse || kind != ModelKind::Hilp) {
        pool.parallelFor(configs.size(), [&](size_t i) {
            trace::ContextScope requestScope(ctx.traceId);
            points[i] = evaluateGuarded(configs[i], workload,
                                        constraints, kind, options,
                                        nullptr, nullptr, ctx.store);
            points[i].traceId = ctx.traceId;
            finishPoint(i, nullptr);
        });
        return points;
    }

    SolveMemo local_memo(options.engine.memoMaxBytes);
    SolveMemo *memo = ctx.memo      ? ctx.memo
                      : options.memo ? options.memo
                                     : &local_memo;
    SweepBound bound;
    auto chains = dse::similarityChains(configs);

    // Chains are independent; within a chain each config warm-starts
    // from its predecessor's schedule and every completed point
    // tightens the shared dominance bound.
    pool.parallelFor(chains.size(), [&](size_t c) {
        trace::ContextScope requestScope(ctx.traceId);
        Schedule hint;
        bool have_hint = false;
        for (size_t idx : chains[c]) {
            double area = configs[idx].areaMm2();
            EvalReuse reuse;
            reuse.memo = memo;
            reuse.memoSalt = ctx.memoSalt;
            reuse.hint = have_hint ? &hint : nullptr;
            reuse.dominated = [&bound, area](double lower_bound_s) {
                return bound.dominates(area, lower_bound_s);
            };
            Schedule schedule;
            points[idx] = evaluateGuarded(configs[idx], workload,
                                          constraints, kind, options,
                                          &reuse, &schedule,
                                          ctx.store);
            points[idx].traceId = ctx.traceId;
            finishPoint(idx,
                        points[idx].ok && !points[idx].resumed &&
                                !schedule.phases.empty()
                            ? &schedule
                            : nullptr);
            if (points[idx].ok) {
                bound.add(area, points[idx].makespanS);
                if (!points[idx].resumed) {
                    hint = std::move(schedule);
                    have_hint = true;
                } else if (options.checkpoint &&
                           options.checkpoint->lookupSchedule(
                               dse::checkpointKey(
                                   points[idx].fingerprint,
                                   configs[idx].name(), kind),
                               &hint)) {
                    // A resumed point whose record carried its
                    // schedule still seeds the chain: the rehydrated
                    // schedule warm-starts the next configuration as
                    // if this run had solved the point itself.
                    have_hint = true;
                    metrics::counter("dse.chain.rehydrated").add(1);
                }
            }
        }
    });
    return points;
}

} // anonymous namespace

// --- ScheduleStore ----------------------------------------------------

ScheduleStore::ScheduleStore(size_t max_bytes) : maxBytes_(max_bytes) {}

size_t
ScheduleStore::scheduleFootprintBytes(const Schedule &schedule)
{
    // Per-entry bookkeeping: the hash-map node, the LRU list node,
    // and the Entry struct around the schedule.
    size_t bytes = sizeof(Schedule) + 96;
    bytes += schedule.phases.capacity() * sizeof(ScheduledPhase);
    for (const ScheduledPhase &phase : schedule.phases) {
        bytes += phase.name.capacity();
        bytes += phase.unitLabel.capacity();
    }
    bytes += schedule.deviceNames.capacity() * sizeof(std::string);
    for (const std::string &name : schedule.deviceNames)
        bytes += name.capacity();
    return bytes;
}

bool
ScheduleStore::lookup(uint64_t fingerprint, Schedule *out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(fingerprint);
    if (it == entries_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    *out = it->second.schedule;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ScheduleStore::insert(uint64_t fingerprint, const Schedule &schedule)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(fingerprint);
    if (it == entries_.end()) {
        lru_.push_front(fingerprint);
        Entry entry;
        entry.schedule = schedule;
        entry.bytes = scheduleFootprintBytes(schedule);
        entry.lruIt = lru_.begin();
        bytes_ += entry.bytes;
        entries_.emplace(fingerprint, std::move(entry));
    } else {
        bytes_ -= it->second.bytes;
        it->second.schedule = schedule;
        it->second.bytes = scheduleFootprintBytes(schedule);
        bytes_ += it->second.bytes;
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    }
    evictToCapLocked();
    metrics::gauge("hilp.store.bytes")
        .set(static_cast<double>(bytes_));
}

void
ScheduleStore::evictToCapLocked()
{
    if (maxBytes_ == 0)
        return;
    while (bytes_ > maxBytes_ && !lru_.empty()) {
        uint64_t victim = lru_.back();
        lru_.pop_back();
        auto it = entries_.find(victim);
        bytes_ -= it->second.bytes;
        entries_.erase(it);
        ++evictions_;
        metrics::counter("hilp.store.evictions").add(1);
    }
}

size_t
ScheduleStore::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

size_t
ScheduleStore::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

int64_t
ScheduleStore::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

// --- EvalService ------------------------------------------------------

EvalService::EvalService(const ServiceOptions &options)
    : options_(options),
      started_(std::chrono::steady_clock::now()),
      memo_(options.memoMaxBytes),
      store_(options.storeMaxBytes)
{
    int executors = std::max(1, options_.executors);
    executors_.reserve(executors);
    for (int i = 0; i < executors; ++i)
        executors_.emplace_back([this] { executorLoop(); });
}

EvalService::~EvalService()
{
    shutdown();
}

std::vector<DsePoint>
EvalService::sweep(const SweepRequest &request)
{
    SweepContext ctx;
    ctx.memo = &memo_;
    ctx.memoSalt = engineOptionsDigest(request.options.engine);
    ctx.store = &store_;
    ctx.traceId = request.traceId;
    if (request.onPoint)
        ctx.onPoint = &request.onPoint;
    return runSweep(request.configs, request.workload,
                    request.constraints, request.kind, request.options,
                    ctx);
}

DsePoint
EvalService::eval(const arch::SocConfig &config,
                  const workload::Workload &workload,
                  const arch::Constraints &constraints, ModelKind kind,
                  const DseOptions &options)
{
    EvalReuse reuse;
    reuse.memo = &memo_;
    reuse.memoSalt = engineOptionsDigest(options.engine);
    return evaluateGuarded(config, workload, constraints, kind,
                           options, &reuse, nullptr, &store_);
}

Admission
EvalService::submit(std::function<void()> job, int priority)
{
    Admission admission;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_) {
            admission.reason = "service is shutting down";
            rejected_.fetch_add(1, std::memory_order_relaxed);
            return admission;
        }
        if (queue_.size() >= options_.maxQueueDepth) {
            admission.reason =
                format("queue full: %zu jobs queued (limit %zu)",
                       queue_.size(), options_.maxQueueDepth);
            rejected_.fetch_add(1, std::memory_order_relaxed);
            return admission;
        }
        Job entry;
        entry.priority = priority;
        entry.seq = nextSeq_++;
        entry.enqueued = std::chrono::steady_clock::now();
        entry.fn = std::move(job);
        admission.accepted = true;
        admission.jobId = entry.seq;
        queue_.push(std::move(entry));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        metrics::gauge("hilpd.queue.depth")
            .set(static_cast<double>(queue_.size()));
    }
    workAvailable_.notify_one();
    return admission;
}

void
EvalService::executorLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (shutdown_)
                    return;
                continue;
            }
            // priority_queue::top is const to protect the heap
            // order; moving the job out right before pop never
            // reorders anything, so the cast is safe here.
            job = std::move(const_cast<Job &>(queue_.top()));
            queue_.pop();
            ++running_;
            metrics::gauge("hilpd.queue.depth")
                .set(static_cast<double>(queue_.size()));
        }
        metrics::histogram("hilpd.queue.wait_us")
            .record(std::chrono::duration_cast<
                        std::chrono::microseconds>(
                        std::chrono::steady_clock::now() -
                        job.enqueued)
                        .count());
        try {
            job.fn();
        } catch (const std::exception &e) {
            warn("service: job %llu threw: %s",
                 static_cast<unsigned long long>(job.seq), e.what());
        } catch (...) {
            warn("service: job %llu threw an unknown exception",
                 static_cast<unsigned long long>(job.seq));
        }
        completed_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            if (queue_.empty() && running_ == 0)
                idle_.notify_all();
        }
    }
}

void
EvalService::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] {
        return queue_.empty() && running_ == 0;
    });
}

void
EvalService::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_) {
            // Already shut down (or shutting down elsewhere); the
            // join below must only happen once.
            return;
        }
        shutdown_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &executor : executors_)
        executor.join();
    executors_.clear();
}

size_t
EvalService::pendingJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size() + running_;
}

namespace {

Json
cacheStatsJson(size_t bytes, size_t max_bytes, size_t entries,
               int64_t evictions, int64_t hits, int64_t misses)
{
    Json stats = Json::object();
    stats.set("bytes", Json::number(static_cast<int64_t>(bytes)));
    stats.set("max_bytes",
              Json::number(static_cast<int64_t>(max_bytes)));
    stats.set("entries", Json::number(static_cast<int64_t>(entries)));
    stats.set("evictions", Json::number(evictions));
    stats.set("hits", Json::number(hits));
    stats.set("misses", Json::number(misses));
    int64_t total = hits + misses;
    stats.set("hit_rate",
              Json::number(total > 0
                               ? static_cast<double>(hits) /
                                     static_cast<double>(total)
                               : 0.0));
    return stats;
}

} // anonymous namespace

Json
EvalService::statsJson() const
{
    Json stats = Json::object();
    stats.set("version", versionJson());
    stats.set("uptime_s",
              Json::number(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - started_)
                               .count()));
    stats.set("memo",
              cacheStatsJson(memo_.bytes(), memo_.maxBytes(),
                             memo_.entries(), memo_.evictions(),
                             memo_.hits(), memo_.misses()));
    stats.set("schedule_store",
              cacheStatsJson(store_.bytes(), options_.storeMaxBytes,
                             store_.entries(), store_.evictions(),
                             store_.hits(), store_.misses()));
    Json queue = Json::object();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue.set("depth",
                  Json::number(static_cast<int64_t>(queue_.size())));
        queue.set("running",
                  Json::number(static_cast<int64_t>(running_)));
    }
    queue.set("max_depth",
              Json::number(
                  static_cast<int64_t>(options_.maxQueueDepth)));
    queue.set("accepted", Json::number(accepted_.load()));
    queue.set("rejected", Json::number(rejected_.load()));
    queue.set("completed", Json::number(completed_.load()));
    stats.set("queue", queue);

    // Latency percentiles for every registered histogram (the
    // request breakdowns hilpd.request.* plus solver-side timings):
    // what an operator without a scraper sees via the stats op.
    Json latency = Json::object();
    for (const auto &[name, snap] : metrics::snapshotAll().histograms) {
        if (snap.count == 0)
            continue;
        Json entry = Json::object();
        entry.set("count", Json::number(snap.count));
        entry.set("mean", Json::number(snap.mean()));
        entry.set("p50", Json::number(snap.quantile(0.50)));
        entry.set("p95", Json::number(snap.quantile(0.95)));
        entry.set("p99", Json::number(snap.quantile(0.99)));
        entry.set("max", Json::number(snap.max));
        latency.set(name, std::move(entry));
    }
    stats.set("latency", std::move(latency));
    stats.set("flight_recorder", recorder_.statsJson());

    // Solver-arena footprint published by the last search (see
    // hilp.arena.* in src/cp/search.cc): heap held by the arenas,
    // peak live scratch, and cumulative rewinds.
    Json arena = Json::object();
    arena.set("bytes", Json::number(
        metrics::gauge("hilp.arena.bytes").value()));
    arena.set("highwater", Json::number(
        metrics::gauge("hilp.arena.highwater").value()));
    arena.set("rewinds", Json::number(
        metrics::counter("hilp.arena.rewinds").value()));
    stats.set("arena", std::move(arena));

    Json budget = Json::object();
    budget.set("total_slots",
               Json::number(static_cast<int64_t>(
                   ThreadBudget::global().total())));
    budget.set("available_slots",
               Json::number(static_cast<int64_t>(
                   ThreadBudget::global().available())));
    stats.set("thread_budget", budget);
    return stats;
}

Json
EvalService::healthJson() const
{
    Json health = Json::object();
    health.set("ok", Json::boolean(true));
    health.set("version", versionJson());
    health.set("uptime_s",
               Json::number(std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started_)
                                .count()));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        health.set("queue_depth",
                   Json::number(static_cast<int64_t>(queue_.size())));
        health.set("running",
                   Json::number(static_cast<int64_t>(running_)));
    }
    health.set("memo_bytes",
               Json::number(static_cast<int64_t>(memo_.bytes())));
    health.set("store_bytes",
               Json::number(static_cast<int64_t>(store_.bytes())));
    return health;
}

} // namespace service

// --- Batch-mode entry points ------------------------------------------
//
// The historical dse:: API is now a thin client of the shared sweep
// core above: an empty service context reproduces the per-sweep
// private memo and cold warm-start behavior bit for bit.

namespace dse {

DsePoint
evaluatePoint(const arch::SocConfig &config,
              const workload::Workload &workload,
              const arch::Constraints &constraints, ModelKind kind,
              const DseOptions &options)
{
    return service::evaluatePointImpl(config, workload, constraints,
                                      kind, options, nullptr, nullptr,
                                      nullptr);
}

std::vector<DsePoint>
exploreSpace(const std::vector<arch::SocConfig> &configs,
             const workload::Workload &workload,
             const arch::Constraints &constraints, ModelKind kind,
             const DseOptions &options)
{
    return service::runSweep(configs, workload, constraints, kind,
                             options, service::SweepContext());
}

} // namespace dse
} // namespace hilp
