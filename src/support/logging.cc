#include "logging.hh"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstring>

namespace hilp {

namespace {

/**
 * The HILP_LOG_LEVEL environment variable sets the starting
 * verbosity (setLogLevel still overrides it at runtime). A value
 * that does not parse is reported on stderr exactly once - fprintf
 * directly, since the logging globals are still being initialized.
 */
LogLevel
initialLogLevel()
{
    const char *env = std::getenv("HILP_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Inform;
    LogLevel level = LogLevel::Inform;
    if (!parseLogLevel(env, &level)) {
        std::fprintf(stderr,
                     "warn: unrecognized HILP_LOG_LEVEL '%s' "
                     "(expected silent/warn/inform/debug or 0-3)\n",
                     env);
        return LogLevel::Inform;
    }
    return level;
}

std::atomic<LogLevel> globalLogLevel{initialLogLevel()};

} // anonymous namespace

LogLevel
logLevel()
{
    return globalLogLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLogLevel.store(level, std::memory_order_relaxed);
}

bool
parseLogLevel(const char *text, LogLevel *out)
{
    if (!text)
        return false;
    std::string lowered;
    for (const char *p = text; *p; ++p)
        lowered += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p)));
    if (lowered == "silent" || lowered == "0")
        *out = LogLevel::Silent;
    else if (lowered == "warn" || lowered == "1")
        *out = LogLevel::Warn;
    else if (lowered == "inform" || lowered == "info" ||
             lowered == "2")
        *out = LogLevel::Inform;
    else if (lowered == "debug" || lowered == "3")
        *out = LogLevel::Debug;
    else
        return false;
    return true;
}

namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return std::string(fmt);
    std::string buf(static_cast<size_t>(len) + 1, '\0');
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    buf.resize(static_cast<size_t>(len));
    return buf;
}

void
emit(const char *prefix, const std::string &msg)
{
    // One fwrite of the fully assembled line: concurrent sweep
    // workers may log at once, and POSIX only guarantees stdio calls
    // are atomic individually, so assembling prefix + message +
    // newline first keeps fragments from interleaving on stderr.
    std::string line;
    line.reserve(std::strlen(prefix) + msg.size() + 1);
    line += prefix;
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

void
assertFail(const char *cond, const char *file, int line)
{
    emit("panic: ", std::string("assertion '") + cond + "' failed at " +
         file + ":" + std::to_string(line));
    std::abort();
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    detail::emit("info: ", detail::vformat(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    detail::emit("warn: ", detail::vformat(fmt, ap));
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    detail::emit("debug: ", detail::vformat(fmt, ap));
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit("fatal: ", detail::vformat(fmt, ap));
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit("panic: ", detail::vformat(fmt, ap));
    va_end(ap);
    std::abort();
}

} // namespace hilp
