/** @file Unit tests for the Chrome trace-event tracer. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/trace.hh"

namespace hilp {
namespace {

/** Enable tracing for one test, restoring the prior state after. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled_ = trace::enabled();
        trace::clearAll();
        trace::setEnabled(true);
    }

    void
    TearDown() override
    {
        trace::setEnabled(wasEnabled_);
        trace::clearAll();
    }

    /** Non-metadata events of the current buffers, in export order. */
    static std::vector<Json>
    realEvents()
    {
        Json exported = trace::toJson();
        const Json *events = exported.find("traceEvents");
        std::vector<Json> out;
        if (!events)
            return out;
        for (size_t i = 0; i < events->size(); ++i) {
            const Json &event = events->at(i);
            const Json *phase = event.find("ph");
            if (phase && phase->stringValue() != "M")
                out.push_back(event);
        }
        return out;
    }

  private:
    bool wasEnabled_ = false;
};

TEST_F(TraceTest, DisabledRecordsNothing)
{
    trace::setEnabled(false);
    {
        TRACE_SPAN("should.not.appear");
        TRACE_INSTANT("nor.this");
    }
    EXPECT_TRUE(realEvents().empty());
}

TEST_F(TraceTest, SpansNestAndBalance)
{
    {
        trace::Span outer("outer");
        {
            trace::Span inner("inner");
            trace::instant("tick");
        }
    }
    std::vector<Json> events = realEvents();
    ASSERT_EQ(events.size(), 5u);
    auto nameOf = [](const Json &event) {
        return event.find("name")->stringValue();
    };
    auto phaseOf = [](const Json &event) {
        return event.find("ph")->stringValue();
    };
    EXPECT_EQ(nameOf(events[0]), "outer");
    EXPECT_EQ(phaseOf(events[0]), "B");
    EXPECT_EQ(nameOf(events[1]), "inner");
    EXPECT_EQ(phaseOf(events[1]), "B");
    EXPECT_EQ(nameOf(events[2]), "tick");
    EXPECT_EQ(phaseOf(events[2]), "i");
    EXPECT_EQ(nameOf(events[3]), "inner");
    EXPECT_EQ(phaseOf(events[3]), "E");
    EXPECT_EQ(nameOf(events[4]), "outer");
    EXPECT_EQ(phaseOf(events[4]), "E");
}

TEST_F(TraceTest, ExportParsesAndRoundTripsFields)
{
    {
        trace::Span span("work",
                         trace::Arg::intArg("items", 3),
                         trace::Arg::numArg("ratio", 0.5));
        span.arg(trace::Arg::strArg("outcome", "done"));
    }
    std::string text = trace::toJson().dump(2);

    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::parse(text, &parsed, &error)) << error;
    const Json *events = parsed.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool found_begin = false;
    bool found_end = false;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json &event = events->at(i);
        if (event.find("ph")->stringValue() == "M")
            continue;
        // Every real event round-trips pid/tid/ts as integers.
        ASSERT_NE(event.find("pid"), nullptr);
        ASSERT_NE(event.find("tid"), nullptr);
        ASSERT_NE(event.find("ts"), nullptr);
        EXPECT_TRUE(event.find("pid")->isNumber());
        EXPECT_TRUE(event.find("tid")->isNumber());
        EXPECT_TRUE(event.find("ts")->isNumber());
        EXPECT_GE(event.find("ts")->intValue(), 0);
        if (event.find("name")->stringValue() != "work")
            continue;
        if (event.find("ph")->stringValue() == "B") {
            found_begin = true;
            const Json *args = event.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->find("items")->intValue(), 3);
            EXPECT_DOUBLE_EQ(args->find("ratio")->numberValue(), 0.5);
        } else if (event.find("ph")->stringValue() == "E") {
            found_end = true;
            const Json *args = event.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->find("outcome")->stringValue(), "done");
        }
    }
    EXPECT_TRUE(found_begin);
    EXPECT_TRUE(found_end);
}

TEST_F(TraceTest, OpenSpansGetSynthesizedEndsInExport)
{
    trace::Span still_open("open.work");
    Json exported = trace::toJson();
    EXPECT_EQ(trace::validateChromeTrace(exported), "");
}

TEST_F(TraceTest, ValidatorAcceptsExportedTraces)
{
    {
        TRACE_SPAN("a");
        TRACE_SPAN("b");
        TRACE_INSTANT("mark");
    }
    EXPECT_EQ(trace::validateChromeTrace(trace::toJson()), "");
}

TEST_F(TraceTest, ValidatorRejectsStructuralProblems)
{
    // Not an object with traceEvents.
    EXPECT_NE(trace::validateChromeTrace(Json::array()), "");
    Json no_events = Json::object();
    EXPECT_NE(trace::validateChromeTrace(no_events), "");

    auto event = [](const char *name, const char *phase, int64_t ts) {
        Json out = Json::object();
        out.set("name", Json::string(name));
        out.set("ph", Json::string(phase));
        out.set("pid", Json::number(static_cast<int64_t>(1)));
        out.set("tid", Json::number(static_cast<int64_t>(1)));
        out.set("ts", Json::number(ts));
        return out;
    };
    auto traceOf = [](std::vector<Json> events) {
        Json array = Json::array();
        for (Json &e : events)
            array.append(std::move(e));
        Json out = Json::object();
        out.set("traceEvents", std::move(array));
        return out;
    };

    // Unbalanced: a begin without an end.
    EXPECT_NE(trace::validateChromeTrace(
        traceOf({event("a", "B", 0)})), "");
    // Improper nesting: E name does not match the open B.
    EXPECT_NE(trace::validateChromeTrace(
        traceOf({event("a", "B", 0), event("b", "E", 1)})), "");
    // Non-monotonic timestamps on one thread.
    EXPECT_NE(trace::validateChromeTrace(
        traceOf({event("a", "B", 5), event("a", "E", 2)})), "");
    // The same events in a valid arrangement pass.
    EXPECT_EQ(trace::validateChromeTrace(
        traceOf({event("a", "B", 0), event("a", "E", 5)})), "");
}

TEST_F(TraceTest, ClearAllDiscardsEvents)
{
    TRACE_INSTANT("to.be.dropped");
    trace::clearAll();
    EXPECT_TRUE(realEvents().empty());
    EXPECT_EQ(trace::droppedEvents(), 0);
}

TEST_F(TraceTest, NewTraceIdsAreUniqueAndNonZero)
{
    uint64_t a = trace::newTraceId();
    uint64_t b = trace::newTraceId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

TEST_F(TraceTest, ContextScopeStampsEventsAndRestores)
{
    EXPECT_EQ(trace::currentContext(), 0u);
    uint64_t id = trace::newTraceId();
    {
        trace::ContextScope scope(id);
        EXPECT_EQ(trace::currentContext(), id);
        TRACE_SPAN("ctx.work");
    }
    EXPECT_EQ(trace::currentContext(), 0u);
    TRACE_INSTANT("ctx.outside");

    bool tagged_seen = false;
    bool outside_seen = false;
    for (const Json &event : realEvents()) {
        const std::string &name = event.find("name")->stringValue();
        const Json *args = event.find("args");
        if (name == "ctx.work") {
            tagged_seen = true;
            ASSERT_NE(args, nullptr);
            const Json *trace_id = args->find("trace_id");
            ASSERT_NE(trace_id, nullptr);
            EXPECT_EQ(static_cast<uint64_t>(trace_id->intValue()),
                      id);
        } else if (name == "ctx.outside") {
            outside_seen = true;
            // No context: no trace_id arg.
            EXPECT_TRUE(!args || !args->find("trace_id"));
        }
    }
    EXPECT_TRUE(tagged_seen);
    EXPECT_TRUE(outside_seen);
}

TEST_F(TraceTest, ZeroContextScopeIsANoop)
{
    uint64_t id = trace::newTraceId();
    trace::ContextScope outer(id);
    {
        // A zero id must not clobber the enclosing context (this is
        // what lets helpers take "0 = keep current" ids).
        trace::ContextScope inner(0);
        EXPECT_EQ(trace::currentContext(), id);
    }
    EXPECT_EQ(trace::currentContext(), id);
}

TEST_F(TraceTest, ContextScopesNestAndRestoreInOrder)
{
    uint64_t first = trace::newTraceId();
    uint64_t second = trace::newTraceId();
    trace::ContextScope a(first);
    {
        trace::ContextScope b(second);
        EXPECT_EQ(trace::currentContext(), second);
    }
    EXPECT_EQ(trace::currentContext(), first);
}

TEST_F(TraceTest, ToJsonForContextFiltersAndValidates)
{
    uint64_t mine = trace::newTraceId();
    uint64_t other = trace::newTraceId();
    {
        trace::ContextScope scope(other);
        trace::Span span("other.request");
    }
    {
        trace::ContextScope scope(mine);
        trace::Span span("my.request");
        trace::instant("my.tick");
    }
    Json exported = trace::toJsonForContext(mine);
    EXPECT_EQ(trace::validateChromeTrace(exported), "");
    const Json *events = exported.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool mine_seen = false;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json &event = events->at(i);
        if (event.find("ph")->stringValue() == "M")
            continue;
        const std::string &name = event.find("name")->stringValue();
        EXPECT_NE(name, "other.request");
        if (name == "my.request")
            mine_seen = true;
    }
    EXPECT_TRUE(mine_seen);
}

TEST_F(TraceTest, RingBufferKeepsNewestEventsAndStaysValid)
{
    bool was_ring = trace::ringBuffered();
    trace::setRingBuffered(true);
    // Overflow the fixed-size per-thread buffer: the ring must
    // overwrite the oldest events, count the displacement, and still
    // export a validator-clean trace (no orphaned B/E pairs).
    constexpr int kEvents = (1 << 16) + 512;
    for (int i = 0; i < kEvents; ++i) {
        trace::Span span("ring.work");
    }
    EXPECT_GT(trace::droppedEvents(), 0);
    Json exported = trace::toJson();
    EXPECT_EQ(trace::validateChromeTrace(exported), "");
    const Json *events = exported.find("traceEvents");
    ASSERT_NE(events, nullptr);
    // The ring retained up to one buffer's worth of the newest.
    EXPECT_GT(events->size(), 0u);
    trace::setRingBuffered(was_ring);
}

TEST_F(TraceTest, AppendModeStillDropsAtCapacity)
{
    bool was_ring = trace::ringBuffered();
    trace::setRingBuffered(false);
    constexpr int kEvents = (1 << 16) + 512;
    for (int i = 0; i < kEvents; ++i)
        trace::instant("flood");
    EXPECT_GT(trace::droppedEvents(), 0);
    EXPECT_EQ(trace::validateChromeTrace(trace::toJson()), "");
    trace::setRingBuffered(was_ring);
}

TEST(TraceTaggedPathTest, InsertsTagBeforeExtension)
{
    EXPECT_EQ(trace::taggedPath("out/trace.json", "7"),
              "out/trace.7.json");
    EXPECT_EQ(trace::taggedPath("trace.json", "1234"),
              "trace.1234.json");
}

TEST(TraceTaggedPathTest, AppendsTagWithoutExtension)
{
    EXPECT_EQ(trace::taggedPath("out/trace", "7"), "out/trace.7");
    // A dot in a directory name is not an extension.
    EXPECT_EQ(trace::taggedPath("out.d/trace", "7"), "out.d/trace.7");
}

} // anonymous namespace
} // namespace hilp
