#include "table.hh"

#include <algorithm>
#include <cstdio>

#include "logging.hh"
#include "str.hh"

namespace hilp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)),
      aligns_(headers_.size(), Align::Right)
{
    hilp_assert(!headers_.empty());
}

void
Table::setAlign(size_t col, Align align)
{
    hilp_assert(col < aligns_.size());
    aligns_[col] = align;
}

void
Table::addRow(std::vector<std::string> cells)
{
    hilp_assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::toAscii() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                line += "  ";
            size_t pad = widths[c] - row[c].size();
            if (aligns_[c] == Align::Right)
                line += std::string(pad, ' ') + row[c];
            else
                line += row[c] + std::string(pad, ' ');
        }
        // Trim right-hand padding for left-aligned final columns.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = render_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c > 0 ? 2 : 0);
    out += std::string(total, '-') + "\n";
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

std::string
Table::toCsv() const
{
    auto escape = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string quoted = "\"";
        for (char c : s) {
            if (c == '"')
                quoted += "\"\"";
            else
                quoted += c;
        }
        quoted += "\"";
        return quoted;
    };
    std::vector<std::string> cells;
    std::string out;
    for (size_t c = 0; c < headers_.size(); ++c)
        out += (c ? "," : "") + escape(headers_[c]);
    out += "\n";
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            out += (c ? "," : "") + escape(row[c]);
        out += "\n";
    }
    return out;
}

void
Table::print() const
{
    std::fputs(toAscii().c_str(), stdout);
    std::fflush(stdout);
}

RowBuilder &
RowBuilder::cell(const std::string &s)
{
    cells_.push_back(s);
    return *this;
}

RowBuilder &
RowBuilder::cell(int64_t v)
{
    cells_.push_back(std::to_string(v));
    return *this;
}

RowBuilder &
RowBuilder::cell(double v, int decimals)
{
    cells_.push_back(fmtDouble(v, decimals));
    return *this;
}

} // namespace hilp
