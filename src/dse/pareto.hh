/**
 * @file
 * Pareto-front extraction and the accelerator-mix classification of
 * Figure 7.
 */

#ifndef HILP_DSE_PARETO_HH
#define HILP_DSE_PARETO_HH

#include <cstddef>
#include <vector>

#include "arch/soc.hh"

namespace hilp {
namespace dse {

/**
 * Indices of the Pareto-optimal points when minimizing cost and
 * maximizing value: a point is dominated when another point has
 * cost <= and value >=, with at least one strict. Returned indices
 * are sorted by ascending cost. A costlier point only joins the
 * front when it improves the best value so far by more than
 * min_relative_gain (use a small epsilon to suppress float-noise
 * ties between equivalent configurations).
 */
std::vector<size_t> paretoFront(const std::vector<double> &cost,
                                const std::vector<double> &value,
                                double min_relative_gain = 0.0);

/** Figure 7's color classes at the 75% accelerator-area rule. */
enum class AccelMix {
    None,         //!< No accelerator area at all.
    GpuDominated, //!< GPU holds > 75% of accelerator area (green).
    DsaDominated, //!< DSAs hold > 75% of accelerator area (blue).
    Mixed,        //!< Neither exceeds 75% (grey).
};

/** Human-readable mix name. */
const char *toString(AccelMix mix);

/** Classify an SoC's accelerator mix. */
AccelMix classifyAccelMix(const arch::SocConfig &config);

} // namespace dse
} // namespace hilp

#endif // HILP_DSE_PARETO_HH
