#include "expo.hh"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "metrics.hh"
#include "str.hh"
#include "version.hh"

namespace hilp {
namespace expo {

namespace {

bool
nameStartChar(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == ':';
}

bool
nameChar(char c)
{
    return nameStartChar(c) ||
        std::isdigit(static_cast<unsigned char>(c));
}

bool
labelNameStartChar(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
labelNameChar(char c)
{
    return labelNameStartChar(c) ||
        std::isdigit(static_cast<unsigned char>(c));
}

/** Upper bound of log-scale bucket b, rendered for an le label. */
std::string
bucketBound(int b)
{
    if (b <= 0)
        return "0";
    if (b >= 64)
        return format("%llu", ~0ULL);
    return format("%llu", (1ULL << b) - 1);
}

void
appendQuantile(std::string &out, const std::string &name,
               const char *q, double value)
{
    out += format("%s_quantile{q=\"%s\"} %.17g\n", name.c_str(), q,
                  value);
}

} // anonymous namespace

std::string
promSanitizeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name)
        out += nameChar(c) ? c : '_';
    if (out.empty() || !nameStartChar(out[0]))
        out.insert(out.begin(), '_');
    return out;
}

std::string
promEscapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
prometheusText()
{
    metrics::RegistrySnapshot all = metrics::snapshotAll();
    std::string out;

    out += "# TYPE hilp_build_info gauge\n";
    out += format("hilp_build_info{version=\"%s\",build_type=\"%s\"}"
                  " 1\n",
                  promEscapeLabel(buildGitDescribe()).c_str(),
                  promEscapeLabel(buildType()).c_str());

    for (const auto &[name, value] : all.counters) {
        std::string prom = promSanitizeName(name) + "_total";
        out += format("# TYPE %s counter\n", prom.c_str());
        out += format("%s %lld\n", prom.c_str(),
                      static_cast<long long>(value));
    }

    for (const auto &[name, value] : all.gauges) {
        std::string prom = promSanitizeName(name);
        out += format("# TYPE %s gauge\n", prom.c_str());
        out += format("%s %.17g\n", prom.c_str(), value);
    }

    for (const auto &[name, snap] : all.histograms) {
        std::string prom = promSanitizeName(name);
        out += format("# TYPE %s histogram\n", prom.c_str());
        int64_t cumulative = 0;
        for (int b = 0; b < metrics::kHistogramBuckets; ++b) {
            if (snap.buckets[b] == 0)
                continue; // Cumulative count is unchanged: elide.
            cumulative += snap.buckets[b];
            out += format("%s_bucket{le=\"%s\"} %lld\n",
                          prom.c_str(), bucketBound(b).c_str(),
                          static_cast<long long>(cumulative));
        }
        out += format("%s_bucket{le=\"+Inf\"} %lld\n", prom.c_str(),
                      static_cast<long long>(snap.count));
        out += format("%s_sum %lld\n", prom.c_str(),
                      static_cast<long long>(snap.sum));
        out += format("%s_count %lld\n", prom.c_str(),
                      static_cast<long long>(snap.count));
        out += format("# TYPE %s_quantile gauge\n", prom.c_str());
        appendQuantile(out, prom, "0.5", snap.quantile(0.50));
        appendQuantile(out, prom, "0.95", snap.quantile(0.95));
        appendQuantile(out, prom, "0.99", snap.quantile(0.99));
    }
    return out;
}

namespace {

/** Validate one `{label="value",...}` block; cursor is past '{'. */
std::string
validateLabels(const std::string &line, size_t &i, size_t lineNo)
{
    for (;;) {
        if (i >= line.size())
            return format("line %zu: unterminated label set",
                          lineNo);
        if (line[i] == '}') {
            ++i;
            return "";
        }
        size_t nameStart = i;
        if (!labelNameStartChar(line[i]))
            return format("line %zu: bad label name start '%c'",
                          lineNo, line[i]);
        while (i < line.size() && labelNameChar(line[i]))
            ++i;
        if (i == nameStart || i >= line.size() || line[i] != '=')
            return format("line %zu: label missing '='", lineNo);
        ++i;
        if (i >= line.size() || line[i] != '"')
            return format("line %zu: label value not quoted",
                          lineNo);
        ++i;
        while (i < line.size() && line[i] != '"') {
            if (line[i] == '\\') {
                if (i + 1 >= line.size() ||
                    (line[i + 1] != '\\' && line[i + 1] != '"' &&
                     line[i + 1] != 'n'))
                    return format("line %zu: bad escape in label "
                                  "value",
                                  lineNo);
                ++i;
            } else if (line[i] == '\n') {
                return format("line %zu: raw newline in label value",
                              lineNo);
            }
            ++i;
        }
        if (i >= line.size())
            return format("line %zu: unterminated label value",
                          lineNo);
        ++i; // Closing quote.
        if (i < line.size() && line[i] == ',')
            ++i;
        else if (i >= line.size() || line[i] != '}')
            return format("line %zu: expected ',' or '}' after "
                          "label",
                          lineNo);
    }
}

} // anonymous namespace

std::string
validateExposition(const std::string &text)
{
    size_t pos = 0;
    size_t lineNo = 0;
    bool sawSample = false;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            return format("line %zu: document does not end in a "
                          "newline",
                          lineNo + 1);
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineNo;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Only HELP/TYPE have structure; other comments pass.
            if (line.rfind("# TYPE ", 0) == 0) {
                size_t i = 7;
                size_t nameStart = i;
                while (i < line.size() && nameChar(line[i]))
                    ++i;
                if (i == nameStart || i >= line.size() ||
                    line[i] != ' ')
                    return format("line %zu: malformed TYPE comment",
                                  lineNo);
                std::string kind = line.substr(i + 1);
                if (kind != "counter" && kind != "gauge" &&
                    kind != "histogram" && kind != "summary" &&
                    kind != "untyped")
                    return format("line %zu: unknown metric type "
                                  "'%s'",
                                  lineNo, kind.c_str());
            }
            continue;
        }
        size_t i = 0;
        if (!nameStartChar(line[i]))
            return format("line %zu: bad metric name start '%c'",
                          lineNo, line[i]);
        while (i < line.size() && nameChar(line[i]))
            ++i;
        if (i < line.size() && line[i] == '{') {
            ++i;
            std::string err = validateLabels(line, i, lineNo);
            if (!err.empty())
                return err;
        }
        if (i >= line.size() || line[i] != ' ')
            return format("line %zu: expected ' ' before value",
                          lineNo);
        ++i;
        std::string rest = line.substr(i);
        size_t space = rest.find(' ');
        std::string valueText =
            space == std::string::npos ? rest : rest.substr(0, space);
        if (valueText.empty())
            return format("line %zu: missing sample value", lineNo);
        if (valueText != "+Inf" && valueText != "-Inf" &&
            valueText != "NaN") {
            const char *begin = valueText.c_str();
            char *end = nullptr;
            std::strtod(begin, &end);
            if (end != begin + valueText.size())
                return format("line %zu: unparseable value '%s'",
                              lineNo, valueText.c_str());
        }
        if (space != std::string::npos) {
            // Optional timestamp: must be an integer.
            std::string tsText = rest.substr(space + 1);
            const char *begin = tsText.c_str();
            char *end = nullptr;
            std::strtoll(begin, &end, 10);
            if (tsText.empty() || end != begin + tsText.size())
                return format("line %zu: unparseable timestamp '%s'",
                              lineNo, tsText.c_str());
        }
        sawSample = true;
    }
    if (!sawSample)
        return "document contains no samples";
    return "";
}

} // namespace expo
} // namespace hilp
