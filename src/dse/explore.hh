/**
 * @file
 * The design-space explorer: evaluate a workload on every SoC in a
 * configuration list under MA, HILP, or Gables semantics, in
 * parallel, and report speedup/area/WLP per design point (the data
 * behind Figures 7 and 8).
 */

#ifndef HILP_DSE_EXPLORE_HH
#define HILP_DSE_EXPLORE_HH

#include <vector>

#include "arch/soc.hh"
#include "hilp/builder.hh"
#include "hilp/engine.hh"
#include "pareto.hh"
#include "workload/workload.hh"

namespace hilp {
namespace dse {

/** Which performance model evaluates the design points. */
enum class ModelKind { MultiAmdahl, Hilp, Gables };

/** Human-readable model name. */
const char *toString(ModelKind kind);

/** One evaluated design point. */
struct DsePoint
{
    arch::SocConfig config;
    double areaMm2 = 0.0;
    bool ok = false;        //!< The workload could be scheduled.
    double makespanS = 0.0;
    double speedup = 0.0;   //!< Vs. 1-CPU fully sequential execution.
    double gap = 0.0;       //!< Optimality gap (0 for MA).
    double averageWlp = 0.0;
    AccelMix mix = AccelMix::None;
};

/** Exploration configuration. */
struct DseOptions
{
    EngineOptions engine = EngineOptions::explorationMode();
    BuildOptions build;
    /** Worker threads; 0 = hardware concurrency. */
    int threads = 0;
};

/**
 * Evaluate the workload on every configuration under the given
 * model. Points are returned in configuration order; unschedulable
 * configurations come back with ok == false.
 */
std::vector<DsePoint> exploreSpace(
    const std::vector<arch::SocConfig> &configs,
    const workload::Workload &workload,
    const arch::Constraints &constraints, ModelKind kind,
    const DseOptions &options);

/** Evaluate one configuration (the exploreSpace worker body). */
DsePoint evaluatePoint(const arch::SocConfig &config,
                       const workload::Workload &workload,
                       const arch::Constraints &constraints,
                       ModelKind kind, const DseOptions &options);

} // namespace dse
} // namespace hilp

#endif // HILP_DSE_EXPLORE_HH
