/**
 * @file
 * Profile: interval-based resource/group occupancy, the compact
 * replacement for the dense step-indexed Timetable.
 *
 * A Profile stores, per cumulative resource, a piecewise-constant
 * usage function as a sorted vector of breakpoints (time, level), and
 * per disjunctive group a sorted vector of disjoint busy intervals.
 * Memory is O(placed intervals) instead of O(resources x horizon),
 * and the earliest-feasible-start query jumps over entire busy
 * intervals/segments instead of advancing one step past each
 * conflicting step.
 *
 * Resource levels are held in scaled integer units (see toUnits),
 * so place()/remove() round-trips are *exact*: no floating-point
 * drift can accumulate across the millions of place/remove cycles a
 * branch-and-bound search performs. The same units are used by the
 * dense Timetable, which survives as the brute-force reference
 * implementation for differential tests.
 */

#ifndef HILP_CP_PROFILE_HH
#define HILP_CP_PROFILE_HH

#include <cstdint>
#include <vector>

#include "model.hh"

namespace hilp {
namespace cp {

/** Resource amounts in scaled integer units (exact arithmetic). */
using Units = int64_t;

/** Scale factor: one unit is 2^-30 of a resource unit (~9.3e-10). */
inline constexpr int64_t kUnitScale = int64_t{1} << 30;

/**
 * Capacity comparison slack, in units (~7.5e-9 resource units).
 * Mirrors the floating-point epsilon the dense timetable historically
 * used (1e-9) while absorbing the half-unit rounding each toUnits()
 * conversion can contribute.
 */
inline constexpr Units kCapacitySlack = 8;

/** Convert a resource amount to scaled integer units. */
Units toUnits(double value);

/** Convert scaled integer units back to a resource amount. */
double fromUnits(Units units);

/**
 * Interval-based occupancy of the model's resources and groups.
 * Drop-in contract-compatible with the dense Timetable.
 */
class Profile
{
  public:
    /** Build an empty profile for the model's resources/groups. */
    explicit Profile(const Model &model);

    /**
     * Earliest start >= est at which the given mode fits: the whole
     * window [start, start + duration) must leave the mode's group
     * idle and keep all resource profiles within capacity. Returns
     * -1 when no feasible start exists before the horizon.
     */
    Time earliestStart(const Mode &mode, Time est) const;

    /** True when the mode can be placed with its window at start. */
    bool fits(const Mode &mode, Time start) const;

    /** Commit a mode over [start, start + duration). */
    void place(const Mode &mode, Time start);

    /** Exactly undo a previous place() with the same arguments. */
    void remove(const Mode &mode, Time start);

    /** Resource usage of resource r at time step. */
    double usage(int r, Time step) const;

    /** Exact resource usage of resource r at step, in units. */
    Units usageUnits(int r, Time step) const;

    /** True when group g is busy at time step. */
    bool groupBusy(int g, Time step) const;

    /** The model's horizon. */
    Time horizon() const { return horizon_; }

    /** Breakpoints currently stored for resource r (diagnostics). */
    size_t breakpoints(int r) const { return resources_[r].size(); }

    /** Busy intervals currently stored for group g (diagnostics). */
    size_t intervals(int g) const { return groups_[g].size(); }

  private:
    /**
     * One piece of a piecewise-constant usage function: `level`
     * holds from `start` until the next segment's start (or the
     * horizon for the last segment). Invariants: segments are sorted,
     * the first always starts at 0, and adjacent segments have
     * different levels (canonical form), so an exact place/remove
     * round-trip restores the identical representation.
     */
    struct Segment
    {
        Time start;
        Units level;
    };

    /** A busy interval [start, end) of a disjunctive group. */
    struct Interval
    {
        Time start;
        Time end;
    };

    /** Index of the segment of resource r containing step. */
    size_t segmentAt(int r, Time step) const;

    /** Add delta to resource r over [start, end), keeping canon. */
    void addUsage(int r, Time start, Time end, Units delta);

    /**
     * First candidate start after a group conflict in [start, end):
     * the end of the first busy interval of g intersecting the
     * window, or -1 when the window leaves the group idle.
     */
    Time groupBlock(int g, Time start, Time end) const;

    /**
     * First candidate start after a capacity conflict of resource r
     * in [start, end) given `need` extra units: the end of the first
     * over-committed segment, or -1 when the window has room.
     */
    Time resourceBlock(int r, Units need, Time start, Time end) const;

    const Model &model_;
    Time horizon_;
    /** resources_[r]: canonical sorted segments covering [0, horizon). */
    std::vector<std::vector<Segment>> resources_;
    /** groups_[g]: sorted, disjoint busy intervals. */
    std::vector<std::vector<Interval>> groups_;
    /** Per-resource capacity in units. */
    std::vector<Units> capUnits_;
    /** Scratch: per-resource usage in units for the current mode. */
    mutable std::vector<Units> unitsScratch_;
};

} // namespace cp
} // namespace hilp

#endif // HILP_CP_PROFILE_HH
