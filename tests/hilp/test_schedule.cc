/** @file Unit tests for the schedule type and the WLP metric. */

#include <gtest/gtest.h>

#include "hilp/problem.hh"
#include "hilp/schedule.hh"

namespace hilp {
namespace {

ScheduledPhase
phaseAt(double start, double duration, int device = kCpuPool,
        double power = 1.0)
{
    ScheduledPhase p;
    p.name = "p";
    p.unitLabel = device == kCpuPool ? "CPU" : "DEV";
    p.device = device;
    p.startS = start;
    p.durationS = duration;
    p.startStep = static_cast<cp::Time>(start);
    p.durationSteps = static_cast<cp::Time>(duration);
    p.powerW = power;
    p.bwGBs = 2.0;
    return p;
}

TEST(Schedule, MakespanOfEmptyIsZero)
{
    Schedule s;
    EXPECT_DOUBLE_EQ(s.makespanS(), 0.0);
    EXPECT_DOUBLE_EQ(s.averageWlp(), 0.0);
    EXPECT_EQ(s.peakWlp(), 0);
}

TEST(Schedule, MakespanIsLastCompletion)
{
    Schedule s;
    s.phases = {phaseAt(0, 3), phaseAt(1, 5), phaseAt(2, 1)};
    EXPECT_DOUBLE_EQ(s.makespanS(), 6.0);
}

TEST(Schedule, WlpOfSequentialScheduleIsOne)
{
    Schedule s;
    s.phases = {phaseAt(0, 2), phaseAt(2, 3), phaseAt(5, 1)};
    EXPECT_DOUBLE_EQ(s.averageWlp(), 1.0);
    EXPECT_EQ(s.peakWlp(), 1);
}

TEST(Schedule, WlpCountsConcurrentPhases)
{
    // Two fully-overlapping phases: WLP 2 everywhere.
    Schedule s;
    s.phases = {phaseAt(0, 4), phaseAt(0, 4)};
    EXPECT_DOUBLE_EQ(s.averageWlp(), 2.0);
    EXPECT_EQ(s.peakWlp(), 2);
}

TEST(Schedule, WlpSkipsIdleGaps)
{
    // Busy [0,2) and [10,12): the idle middle must not dilute WLP.
    Schedule s;
    s.phases = {phaseAt(0, 2), phaseAt(10, 2)};
    EXPECT_DOUBLE_EQ(s.averageWlp(), 1.0);
}

TEST(Schedule, WlpMatchesPaperExample)
{
    // The Figure 2 HILP schedule: phases m0[0,1) m1[1,6) n0[1,2)
    // n1[2,5) n2[5,6) m2[6,7): average WLP 12/7 = 1.714.
    Schedule s;
    s.phases = {phaseAt(0, 1), phaseAt(1, 5), phaseAt(1, 1),
                phaseAt(2, 3), phaseAt(5, 1), phaseAt(6, 1)};
    EXPECT_NEAR(s.averageWlp(), 12.0 / 7.0, 1e-12);
    EXPECT_EQ(s.peakWlp(), 2);
}

TEST(Schedule, GablesExampleWlp)
{
    // The Figure 2 Gables packing: WLP (3+3+3+2+1)/5 = 2.4.
    Schedule s;
    s.phases = {phaseAt(0, 1), phaseAt(1, 1), phaseAt(2, 1),
                phaseAt(3, 1), phaseAt(0, 5), phaseAt(0, 3)};
    EXPECT_NEAR(s.averageWlp(), 2.4, 1e-12);
    EXPECT_EQ(s.peakWlp(), 3);
}

TEST(Schedule, ZeroDurationPhasesAreIgnoredByWlp)
{
    Schedule s;
    s.phases = {phaseAt(0, 4), phaseAt(1, 0)};
    EXPECT_DOUBLE_EQ(s.averageWlp(), 1.0);
}

TEST(Schedule, PowerTraceAccumulates)
{
    Schedule s;
    s.stepS = 1.0;
    s.phases = {phaseAt(0, 3, kCpuPool, 1.0),
                phaseAt(1, 3, 0, 3.0)};
    auto trace = s.powerTrace();
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_DOUBLE_EQ(trace[0], 1.0);
    EXPECT_DOUBLE_EQ(trace[1], 4.0);
    EXPECT_DOUBLE_EQ(trace[2], 4.0);
    EXPECT_DOUBLE_EQ(trace[3], 3.0);
}

TEST(Schedule, BwAndWlpTraces)
{
    Schedule s;
    s.stepS = 1.0;
    s.phases = {phaseAt(0, 2), phaseAt(0, 1)};
    auto bw = s.bwTrace();
    ASSERT_EQ(bw.size(), 2u);
    EXPECT_DOUBLE_EQ(bw[0], 4.0);
    EXPECT_DOUBLE_EQ(bw[1], 2.0);
    auto wlp = s.wlpTrace();
    EXPECT_EQ(wlp[0], 2);
    EXPECT_EQ(wlp[1], 1);
}

TEST(Schedule, GanttMentionsPhasesAndUnits)
{
    Schedule s;
    s.deviceNames = {"GPU"};
    s.phases = {phaseAt(0, 2), phaseAt(0, 3, 0)};
    s.phases[0].name = "alpha.setup";
    s.phases[1].name = "alpha.compute";
    std::string gantt = s.gantt();
    EXPECT_NE(gantt.find("alpha.setup"), std::string::npos);
    EXPECT_NE(gantt.find("alpha.compute"), std::string::npos);
    EXPECT_NE(gantt.find("GPU"), std::string::npos);
    EXPECT_NE(gantt.find("CPU#0"), std::string::npos);
}

TEST(Schedule, GanttOfEmptyScheduleIsSafe)
{
    Schedule s;
    EXPECT_EQ(s.gantt(), "(empty schedule)\n");
}

TEST(Schedule, CpuPhasesSpreadAcrossLanes)
{
    Schedule s;
    s.phases = {phaseAt(0, 4), phaseAt(0, 4), phaseAt(0, 4)};
    std::string gantt = s.gantt();
    EXPECT_NE(gantt.find("CPU#0"), std::string::npos);
    EXPECT_NE(gantt.find("CPU#1"), std::string::npos);
    EXPECT_NE(gantt.find("CPU#2"), std::string::npos);
}

TEST(Schedule, DescribeListsPhasesInStartOrder)
{
    Schedule s;
    s.phases = {phaseAt(5, 1), phaseAt(0, 1)};
    s.phases[0].name = "later";
    s.phases[1].name = "earlier";
    std::string text = s.describe();
    EXPECT_LT(text.find("earlier"), text.find("later"));
}

} // anonymous namespace
} // namespace hilp
