/**
 * @file
 * Timetable: the dense step-indexed resource/group occupancy profile.
 *
 * The timetable records, per time step, how much of each cumulative
 * resource is committed and which disjunctive groups are busy. It
 * supports exact add/remove (for chronological backtracking) and the
 * earliest-feasible-start query that drives schedule generation.
 *
 * The production schedulers (list scheduler, branch-and-bound) now
 * run on the interval-based Profile (profile.hh), which implements
 * the same contract in O(placed intervals) memory with busy-interval
 * jumping. The dense timetable survives as the obviously-correct
 * reference implementation: differential tests drive both through
 * random operation sequences and require exact agreement. Resource
 * amounts are held in the same scaled integer units as the Profile
 * (see profile.hh), so place/remove round-trips are exact here too.
 */

#ifndef HILP_CP_TIMETABLE_HH
#define HILP_CP_TIMETABLE_HH

#include <vector>

#include "model.hh"
#include "profile.hh"

namespace hilp {
namespace cp {

/**
 * Per-time-step occupancy of the model's resources and groups.
 */
class Timetable
{
  public:
    /** Build an empty timetable sized to the model's horizon. */
    explicit Timetable(const Model &model);

    /**
     * Earliest start >= est at which the given mode fits: the whole
     * window [start, start + duration) must leave the mode's group
     * idle and keep all resource profiles within capacity. Returns
     * -1 when no feasible start exists before the horizon.
     */
    Time earliestStart(const Mode &mode, Time est) const;

    /** True when the mode can be placed with its window at start. */
    bool fits(const Mode &mode, Time start) const;

    /** Commit a mode over [start, start + duration). */
    void place(const Mode &mode, Time start);

    /** Exactly undo a previous place() with the same arguments. */
    void remove(const Mode &mode, Time start);

    /** Resource usage of resource r at time step. */
    double usage(int r, Time step) const
    { return fromUnits(usage_[r][step]); }

    /** Exact resource usage of resource r at step, in units. */
    Units usageUnits(int r, Time step) const
    { return usage_[r][step]; }

    /** True when group g is busy at time step. */
    bool groupBusy(int g, Time step) const { return busy_[g][step] != 0; }

    /** The model's horizon. */
    Time horizon() const { return horizon_; }

  private:
    /**
     * First conflicting step in [start, start + duration), or -1 when
     * the window is conflict-free.
     */
    Time firstConflict(const Mode &mode, Time start) const;

    const Model &model_;
    Time horizon_;
    /** usage_[resource][step], in scaled integer units. */
    std::vector<std::vector<Units>> usage_;
    /** busy_[group][step], 0 or 1 */
    std::vector<std::vector<uint8_t>> busy_;
    /** Per-resource capacity in units. */
    std::vector<Units> capUnits_;
};

} // namespace cp
} // namespace hilp

#endif // HILP_CP_TIMETABLE_HH
