/**
 * @file
 * The rich schedule type HILP hands back to users: per-phase
 * placements in both step and second units, the WLP metric of
 * Section II, per-step power/bandwidth traces (Figure 3b), and an
 * ASCII Gantt rendering (Figures 2, 3, and 10).
 */

#ifndef HILP_HILP_SCHEDULE_HH
#define HILP_HILP_SCHEDULE_HH

#include <string>
#include <vector>

#include "cp/model.hh"

namespace hilp {

/** The placement of one application phase. */
struct ScheduledPhase
{
    int app = -1;          //!< Application index in the spec.
    int phase = -1;        //!< Phase index within the application.
    std::string name;      //!< Phase name, e.g. "HS.compute".
    int option = -1;       //!< Chosen UnitOption index.
    std::string unitLabel; //!< E.g. "GPU@765".
    int device = -1;       //!< Device id, or kCpuPool.

    cp::Time startStep = 0;    //!< Start, in time steps.
    cp::Time durationSteps = 0; //!< Duration, in time steps.
    double startS = 0.0;       //!< Start, seconds.
    double durationS = 0.0;    //!< Duration, seconds.

    double powerW = 0.0;   //!< Power drawn while active.
    double bwGBs = 0.0;    //!< Bandwidth consumed while active.
    double cpuCores = 0.0; //!< CPU cores occupied while active.
};

/**
 * A complete workload schedule. Schedules produced by the solver
 * carry a positive step size and meaningful step fields; analytic
 * schedules (the MultiAmdahl baseline) are continuous-time and set
 * stepS to 0 - the seconds fields are always valid.
 */
struct Schedule
{
    double stepS = 0.0;         //!< Step size; 0 = continuous.
    std::vector<ScheduledPhase> phases;
    /** Disjunctive device names (for Gantt rows), by device id. */
    std::vector<std::string> deviceNames;
    /** CPU-pool capacity (u_max); 0 when unknown. */
    double cpuCores = 0.0;

    /** Completion time of the last phase, seconds. */
    double makespanS() const;

    /**
     * Average Workload-Level Parallelism (Section II): the mean
     * number of concurrently active phases over the time in which at
     * least one phase is active. Computed as total busy phase-time
     * divided by the measure of the union of activity intervals,
     * which equals the paper's per-time-step average for discrete
     * schedules.
     */
    double averageWlp() const;

    /** Peak number of concurrently active phases. */
    int peakWlp() const;

    /**
     * Per-step total power (W); requires a discrete schedule. One
     * entry per step from 0 to the makespan.
     */
    std::vector<double> powerTrace() const;

    /** Per-step total bandwidth (GB/s); requires a discrete schedule. */
    std::vector<double> bwTrace() const;

    /** Per-step active-phase counts; requires a discrete schedule. */
    std::vector<int> wlpTrace() const;

    /**
     * ASCII Gantt chart: one row per execution unit (CPU lanes,
     * devices), phases labelled by letter with a legend underneath.
     */
    std::string gantt(int width = 72) const;

    /** One line per phase: name, unit, [start, end). */
    std::string describe() const;

    /** Busy time and utilization of one execution unit. */
    struct Utilization
    {
        std::string unit;   //!< Device name or "CPU pool".
        double busyS = 0.0; //!< Total busy time (core-seconds for
                            //!< the CPU pool).
        double share = 0.0; //!< Busy time / makespan (CPU pool:
                            //!< core-seconds / (cores * makespan)).
    };

    /**
     * Per-unit utilization over the makespan: one row per device
     * plus one for the CPU pool. The paper's Section VI insight
     * ("the primary function of DSAs is to offload the GPU") is
     * quantified from exactly this data.
     */
    std::vector<Utilization> utilization() const;
};

} // namespace hilp

#endif // HILP_HILP_SCHEDULE_HH
