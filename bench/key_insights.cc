/**
 * @file
 * The paper's five Key Insights (Section VI), verified
 * programmatically rather than by eyeballing scatter plots. Each
 * check evaluates the specific SoCs that witness the insight and
 * prints the measured evidence.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hh"
#include "dse/report.hh"
#include "hilp/builder.hh"
#include "support/str.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

dse::DsePoint
evalHilp(const arch::SocConfig &soc, const workload::Workload &wl,
         const arch::Constraints &constraints, double budget = 2.0)
{
    dse::DseOptions options = bench::explorationOptions(budget);
    options.engine.escalations = 1;
    return dse::evaluatePoint(soc, wl, constraints,
                              dse::ModelKind::Hilp, options);
}

arch::SocConfig
mixedSoc(int cpus, int sms, int dsas, int pes, double advantage = 4.0)
{
    arch::SocConfig soc;
    soc.cpuCores = cpus;
    soc.gpuSms = sms;
    soc.dsaAdvantage = advantage;
    auto priority = workload::dsaPriorityOrder();
    for (int d = 0; d < dsas; ++d)
        soc.dsas.push_back({pes, priority[d]});
    return soc;
}

void
verdict(const char *insight, bool holds, const std::string &evidence)
{
    std::printf("%-11s %s\n            %s\n\n",
                insight, holds ? "REPRODUCED" : "NOT REPRODUCED",
                evidence.c_str());
}

void
emitInsights()
{
    bench::banner(
        "Key Insights 1-5 (Section VI), checked programmatically",
        "Each insight is verified on the witness SoCs the paper\n"
        "discusses, using the Default workload unless noted.");

    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::Constraints unconstrained;

    // Insight 1: simplistic WLP assumptions recommend different
    // (suboptimal) SoCs. Witness: MA cannot distinguish CPU counts,
    // while HILP can; Gables overestimates the mixed SoC.
    {
        dse::DseOptions ma_options = bench::explorationOptions(1.0);
        auto c1 = dse::evaluatePoint(mixedSoc(1, 64, 0, 0), wl,
                                     unconstrained,
                                     dse::ModelKind::MultiAmdahl,
                                     ma_options);
        auto c4 = dse::evaluatePoint(mixedSoc(4, 64, 0, 0), wl,
                                     unconstrained,
                                     dse::ModelKind::MultiAmdahl,
                                     ma_options);
        auto h1 = evalHilp(mixedSoc(1, 64, 0, 0), wl, unconstrained);
        auto h4 = evalHilp(mixedSoc(4, 64, 0, 0), wl, unconstrained);
        auto gables = dse::evaluatePoint(
            mixedSoc(4, 16, 2, 16), wl, unconstrained,
            dse::ModelKind::Gables, ma_options);
        auto hilp_mixed =
            evalHilp(mixedSoc(4, 16, 2, 16), wl, unconstrained);
        bool holds = std::abs(c1.speedup - c4.speedup) < 0.05 &&
                     h4.speedup > h1.speedup * 1.3 &&
                     gables.speedup > hilp_mixed.speedup * 1.3;
        verdict("Insight 1:", holds,
                format("MA blind to CPUs (%.1f vs %.1f); HILP sees "
                       "them (%.1f vs %.1f); Gables inflates the "
                       "mixed SoC (%.1f vs %.1f)",
                       c1.speedup, c4.speedup, h1.speedup, h4.speedup,
                       gables.speedup, hilp_mixed.speedup));
    }

    // Insight 2: heterogeneity is critical, but CPUs unlock it.
    // Witness: the paper's 2.7x jump from the best 1-CPU SoC to the
    // best 2-CPU SoC with accelerators.
    {
        auto one = evalHilp(mixedSoc(1, 4, 2, 16), wl, unconstrained);
        auto two = evalHilp(mixedSoc(2, 4, 2, 16), wl, unconstrained);
        bool holds = two.speedup > one.speedup * 1.2;
        verdict("Insight 2:", holds,
                format("adding a CPU core to a small accelerated SoC:"
                       " %.1f -> %.1f speedup", one.speedup,
                       two.speedup));
    }

    // Insight 3: only use DSAs for dominating phases; DSAs' job is
    // offloading the GPU. Witness: (c4,g16,d2^16) matches
    // (c4,g64,d0^0) at ~78% of the area, and its DSAs absorb most
    // accelerated compute time.
    {
        auto mixed = evalHilp(mixedSoc(4, 16, 2, 16), wl,
                              unconstrained);
        auto big_gpu = evalHilp(mixedSoc(4, 64, 0, 0), wl,
                                unconstrained);
        bool holds = mixed.speedup > big_gpu.speedup * 0.93 &&
                     mixed.areaMm2 < big_gpu.areaMm2;
        verdict("Insight 3:", holds,
                format("(c4,g16,d2^16) %.1f @ %.0f mm2 vs "
                       "(c4,g64,d0^0) %.1f @ %.0f mm2",
                       mixed.speedup, mixed.areaMm2, big_gpu.speedup,
                       big_gpu.areaMm2));
    }

    // Insight 4: mixed SoCs win even under severe power budgets.
    // Witness: at 20 W the best mixed SoC beats GPU-only and
    // DSA-only peers of similar area.
    {
        arch::Constraints tight;
        tight.powerBudgetW = 20.0;
        auto mixed = evalHilp(mixedSoc(2, 4, 2, 4), wl, tight, 4.0);
        auto gpu_only = evalHilp(mixedSoc(2, 12, 0, 0), wl, tight,
                                 4.0);
        bool holds = mixed.ok &&
                     (!gpu_only.ok ||
                      mixed.speedup >= gpu_only.speedup * 0.95);
        verdict("Insight 4:", holds,
                format("20 W: mixed (c2,g4,d2^4) %.1f vs GPU-only "
                       "(c2,g12,d0^0) %.1f at similar area",
                       mixed.speedup,
                       gpu_only.ok ? gpu_only.speedup : 0.0));
    }

    // Insight 5: workload coverage is king - raising the DSA
    // advantage shifts the whole curve up without changing its
    // shape. Witness: (c4,g16,d2^16) at 2x/4x/8x.
    {
        auto a2 = evalHilp(mixedSoc(4, 16, 2, 16, 2.0), wl,
                           unconstrained);
        auto a4 = evalHilp(mixedSoc(4, 16, 2, 16, 4.0), wl,
                           unconstrained);
        auto a8 = evalHilp(mixedSoc(4, 16, 2, 16, 8.0), wl,
                           unconstrained);
        bool holds = a4.speedup >= a2.speedup &&
                     a8.speedup > a4.speedup * 1.1;
        verdict("Insight 5:", holds,
                format("(c4,g16,d2^16) speedup at 2x/4x/8x advantage:"
                       " %.1f / %.1f / %.1f", a2.speedup, a4.speedup,
                       a8.speedup));
    }

    // The offload evidence behind Insight 3, quantified.
    bench::section("DSA offload analysis for (c4,g16,d2^16)");
    auto point = evalHilp(mixedSoc(4, 16, 2, 16), wl, unconstrained);
    ProblemSpec spec = buildProblem(wl, mixedSoc(4, 16, 2, 16),
                                    unconstrained);
    EngineOptions engine = EngineOptions::explorationMode();
    engine.solver.maxSeconds = 2.0;
    EvalResult result = evaluate(spec, engine);
    if (result.ok) {
        dse::OffloadAnalysis offload =
            dse::analyzeOffload(result.schedule);
        std::printf("GPU busy %.1f s, DSAs busy %.1f s, CPU compute "
                    "%.1f s\nDSAs absorb %.0f%% of accelerated "
                    "compute time\n", offload.gpuBusyS,
                    offload.dsaBusyS, offload.cpuComputeS,
                    offload.dsaShare * 100.0);
    }
    (void)point;
}

void
BM_InsightWitnessSolve(benchmark::State &state)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    for (auto _ : state) {
        auto point = evalHilp(mixedSoc(4, 16, 2, 16), wl,
                              arch::Constraints{}, 1.0);
        benchmark::DoNotOptimize(point.speedup);
    }
}
BENCHMARK(BM_InsightWitnessSolve)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitInsights();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
