/**
 * @file
 * Figure 5b: reproducing the memory wall. Speedup versus the memory
 * bandwidth budget (50-400 GB/s) for 4-CPU SoCs with 16/32/64-SM
 * GPUs on the Optimized workload. Expected shape (paper): every SoC
 * is bandwidth-bound at 50 GB/s; the 16-SM SoC is compute-bound from
 * ~100 GB/s, the 32-SM SoC from ~300 GB/s, and the 64-SM SoC is
 * still not fully compute-bound at 400 GB/s.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

void
emitFigure()
{
    bench::banner(
        "Figure 5b - reproducing the memory wall",
        "Optimized workload, 4 CPU cores, b_max swept 50-400 GB/s.\n"
        "Expected: 16-SM saturates by ~100 GB/s, 32-SM by ~300,\n"
        "64-SM keeps improving past 400.");

    auto wl = workload::makeWorkload(workload::Variant::Optimized);
    dse::DseOptions options = bench::explorationOptions(2.0);
    options.engine = bench::validationEngine(4.0);

    const std::vector<double> budgets = {50,  100, 150, 200,
                                         250, 300, 350, 400};
    const std::vector<int> gpus = {16, 32, 64};

    Table table({"b_max (GB/s)", "16-SM GPU", "32-SM GPU",
                 "64-SM GPU"});
    for (double bw : budgets) {
        RowBuilder row;
        row.cell(static_cast<int64_t>(bw));
        for (int sms : gpus) {
            arch::Constraints constraints;
            constraints.memory.bandwidthGBs = bw;
            arch::SocConfig soc;
            soc.cpuCores = 4;
            soc.gpuSms = sms;
            dse::DsePoint point = dse::evaluatePoint(
                soc, wl, constraints, dse::ModelKind::Hilp, options);
            row.cell(point.ok ? point.speedup : 0.0, 2);
        }
        table.addRow(row.take());
    }
    table.print();
}

void
BM_EvaluateBandwidthBoundPoint(benchmark::State &state)
{
    auto wl = workload::makeWorkload(workload::Variant::Optimized);
    arch::Constraints constraints;
    constraints.memory.bandwidthGBs = 100.0;
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 32;
    dse::DseOptions options = bench::explorationOptions(1.0);
    for (auto _ : state) {
        dse::DsePoint point = dse::evaluatePoint(
            soc, wl, constraints, dse::ModelKind::Hilp, options);
        benchmark::DoNotOptimize(point.speedup);
    }
}
BENCHMARK(BM_EvaluateBandwidthBoundPoint)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
