#include "model.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {
namespace cp {

int
Model::addResource(double capacity, std::string name)
{
    hilp_assert(capacity >= 0.0);
    caps_.push_back(capacity);
    resNames_.push_back(name.empty()
        ? format("res%zu", caps_.size() - 1) : std::move(name));
    return static_cast<int>(caps_.size()) - 1;
}

int
Model::addGroup(std::string name)
{
    groupNames_.push_back(name.empty()
        ? format("group%zu", groupNames_.size()) : std::move(name));
    return static_cast<int>(groupNames_.size()) - 1;
}

int
Model::addTask(Task task)
{
    Time minDur = -1;
    Time maxDur = -1;
    for (Mode &mode : task.modes) {
        mode.id = numModes_++;
        minDur = minDur < 0 ? mode.duration
                            : std::min(minDur, mode.duration);
        maxDur = std::max(maxDur, mode.duration);
    }
    minDur_.push_back(minDur);
    maxDur_.push_back(maxDur);
    tasks_.push_back(std::move(task));
    preds_.emplace_back();
    succs_.emplace_back();
    lagPreds_.emplace_back();
    lagSuccs_.emplace_back();
    return static_cast<int>(tasks_.size()) - 1;
}

void
Model::addPrecedence(int before, int after)
{
    hilp_assert(before >= 0 && before < numTasks());
    hilp_assert(after >= 0 && after < numTasks());
    hilp_assert(before != after);
    succs_[before].push_back(after);
    preds_[after].push_back(before);
}

void
Model::addStartLag(int before, int after, Time lag)
{
    hilp_assert(before >= 0 && before < numTasks());
    hilp_assert(after >= 0 && after < numTasks());
    hilp_assert(before != after);
    hilp_assert(lag >= 0);
    lagSuccs_[before].push_back({after, lag});
    lagPreds_[after].push_back({before, lag});
    ++numLagEdges_;
}

void
Model::setHorizon(Time horizon)
{
    hilp_assert(horizon > 0);
    horizon_ = horizon;
}

std::vector<int>
Model::topologicalOrder() const
{
    std::vector<int> indegree(numTasks(), 0);
    for (int t = 0; t < numTasks(); ++t) {
        for (int s : succs_[t])
            ++indegree[s];
        for (const LagEdge &edge : lagSuccs_[t])
            ++indegree[edge.other];
    }
    std::vector<int> order;
    order.reserve(numTasks());
    std::vector<int> frontier;
    for (int t = 0; t < numTasks(); ++t)
        if (indegree[t] == 0)
            frontier.push_back(t);
    while (!frontier.empty()) {
        int t = frontier.back();
        frontier.pop_back();
        order.push_back(t);
        for (int s : succs_[t])
            if (--indegree[s] == 0)
                frontier.push_back(s);
        for (const LagEdge &edge : lagSuccs_[t])
            if (--indegree[edge.other] == 0)
                frontier.push_back(edge.other);
    }
    if (static_cast<int>(order.size()) != numTasks())
        panic("topologicalOrder() called on a cyclic precedence graph");
    return order;
}

std::string
Model::validate() const
{
    if (horizon_ <= 0)
        return "horizon must be positive";
    for (int t = 0; t < numTasks(); ++t) {
        const Task &task = tasks_[t];
        if (task.modes.empty())
            return format("task %d (%s) has no modes", t,
                          task.name.c_str());
        for (size_t m = 0; m < task.modes.size(); ++m) {
            const Mode &mode = task.modes[m];
            if (mode.duration < 0)
                return format("task %d mode %zu has negative duration",
                              t, m);
            if (mode.group != kNoGroup &&
                (mode.group < 0 || mode.group >= numGroups())) {
                return format("task %d mode %zu references invalid "
                              "group %d", t, m, mode.group);
            }
            if (static_cast<int>(mode.usage.size()) != numResources())
                return format("task %d mode %zu has %zu usage entries "
                              "but the model has %d resources",
                              t, m, mode.usage.size(), numResources());
            for (double u : mode.usage)
                if (u < 0.0)
                    return format("task %d mode %zu has negative usage",
                                  t, m);
        }
    }
    // Cycle check via Kahn's algorithm over both edge kinds.
    std::vector<int> indegree(numTasks(), 0);
    for (int t = 0; t < numTasks(); ++t) {
        for (int s : succs_[t])
            ++indegree[s];
        for (const LagEdge &edge : lagSuccs_[t])
            ++indegree[edge.other];
    }
    std::vector<int> frontier;
    for (int t = 0; t < numTasks(); ++t)
        if (indegree[t] == 0)
            frontier.push_back(t);
    int visited = 0;
    while (!frontier.empty()) {
        int t = frontier.back();
        frontier.pop_back();
        ++visited;
        for (int s : succs_[t])
            if (--indegree[s] == 0)
                frontier.push_back(s);
        for (const LagEdge &edge : lagSuccs_[t])
            if (--indegree[edge.other] == 0)
                frontier.push_back(edge.other);
    }
    if (visited != numTasks())
        return "precedence graph has a cycle";
    return "";
}

Time
ScheduleVec::end(const Model &m, int t) const
{
    const Assignment &a = tasks[t];
    hilp_assert(a.scheduled());
    return a.start + m.task(t).modes[a.mode].duration;
}

Time
ScheduleVec::makespan(const Model &m) const
{
    Time best = 0;
    for (int t = 0; t < static_cast<int>(tasks.size()); ++t)
        if (tasks[t].scheduled())
            best = std::max(best, end(m, t));
    return best;
}

std::string
checkSchedule(const Model &model, const ScheduleVec &schedule)
{
    const double eps = 1e-6;
    if (static_cast<int>(schedule.tasks.size()) != model.numTasks())
        return "schedule size does not match the model";
    for (int t = 0; t < model.numTasks(); ++t) {
        const Assignment &a = schedule.tasks[t];
        if (!a.scheduled())
            return format("task %d is unscheduled", t);
        if (a.mode < 0 ||
            a.mode >= static_cast<int>(model.task(t).modes.size()))
            return format("task %d has invalid mode %d", t, a.mode);
        if (a.start < 0)
            return format("task %d starts before time 0", t);
        if (schedule.end(model, t) > model.horizon())
            return format("task %d ends after the horizon", t);
    }
    // Precedence.
    for (int t = 0; t < model.numTasks(); ++t)
        for (int s : model.successors(t))
            if (schedule.tasks[s].start < schedule.end(model, t))
                return format("precedence %d -> %d violated", t, s);
    // Start-to-start lags.
    for (int t = 0; t < model.numTasks(); ++t) {
        for (const Model::LagEdge &edge : model.lagSuccessors(t)) {
            if (schedule.tasks[edge.other].start <
                schedule.tasks[t].start + edge.lag) {
                return format("start lag %d -> %d (lag %d) violated",
                              t, edge.other, edge.lag);
            }
        }
    }
    // Disjunctive groups and cumulative resources, step by step.
    Time makespan = schedule.makespan(model);
    for (Time step = 0; step < makespan; ++step) {
        std::vector<int> group_busy(model.numGroups(), -1);
        std::vector<double> res_used(model.numResources(), 0.0);
        for (int t = 0; t < model.numTasks(); ++t) {
            const Assignment &a = schedule.tasks[t];
            const Mode &mode = model.task(t).modes[a.mode];
            if (step < a.start || step >= a.start + mode.duration)
                continue;
            if (mode.group != kNoGroup) {
                if (group_busy[mode.group] >= 0)
                    return format("tasks %d and %d overlap on group %s "
                                  "at step %d", group_busy[mode.group], t,
                                  model.groupName(mode.group).c_str(),
                                  step);
                group_busy[mode.group] = t;
            }
            for (int r = 0; r < model.numResources(); ++r)
                res_used[r] += mode.usage[r];
        }
        for (int r = 0; r < model.numResources(); ++r)
            if (res_used[r] > model.capacity(r) + eps)
                return format("resource %s over capacity at step %d "
                              "(%.3f > %.3f)",
                              model.resourceName(r).c_str(), step,
                              res_used[r], model.capacity(r));
    }
    return "";
}

std::string
describeModel(const Model &model)
{
    std::string out = format("model: %d tasks, %d resources, "
                             "%d groups, horizon %d\n",
                             model.numTasks(), model.numResources(),
                             model.numGroups(), model.horizon());
    for (int r = 0; r < model.numResources(); ++r)
        out += format("  resource %d (%s): capacity %.3f\n", r,
                      model.resourceName(r).c_str(),
                      model.capacity(r));
    for (int g = 0; g < model.numGroups(); ++g)
        out += format("  group %d: %s\n", g,
                      model.groupName(g).c_str());
    for (int t = 0; t < model.numTasks(); ++t) {
        const Task &task = model.task(t);
        out += format("  task %d (%s):\n", t, task.name.c_str());
        for (size_t m = 0; m < task.modes.size(); ++m) {
            const Mode &mode = task.modes[m];
            std::string usage;
            for (size_t r = 0; r < mode.usage.size(); ++r)
                usage += format("%s%.3f", r ? ", " : "",
                                mode.usage[r]);
            out += format("    mode %zu: dur %d, group %s, "
                          "usage [%s]\n", m, mode.duration,
                          mode.group == kNoGroup
                              ? "-"
                              : model.groupName(mode.group).c_str(),
                          usage.c_str());
        }
        for (int s : model.successors(t))
            out += format("    -> task %d\n", s);
        for (const Model::LagEdge &edge : model.lagSuccessors(t))
            out += format("    ~> task %d (start lag %d)\n",
                          edge.other, edge.lag);
    }
    return out;
}

} // namespace cp
} // namespace hilp
