/** @file Unit tests for the synthetic workload generator. */

#include <gtest/gtest.h>

#include "workload/synthetic.hh"

namespace hilp {
namespace workload {
namespace {

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticOptions options;
    options.seed = 7;
    Workload a = makeSyntheticWorkload(options);
    Workload b = makeSyntheticWorkload(options);
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (size_t i = 0; i < a.apps.size(); ++i) {
        ASSERT_EQ(a.apps[i].phases.size(), b.apps[i].phases.size());
        for (size_t p = 0; p < a.apps[i].phases.size(); ++p) {
            EXPECT_DOUBLE_EQ(a.apps[i].phases[p].cpuTime1,
                             b.apps[i].phases[p].cpuTime1);
        }
    }
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    SyntheticOptions a_options;
    a_options.seed = 1;
    SyntheticOptions b_options;
    b_options.seed = 2;
    Workload a = makeSyntheticWorkload(a_options);
    Workload b = makeSyntheticWorkload(b_options);
    EXPECT_NE(a.apps[0].phases[0].cpuTime1,
              b.apps[0].phases[0].cpuTime1);
}

TEST(Synthetic, StructureIsSetupComputesTeardown)
{
    SyntheticOptions options;
    options.numApps = 8;
    options.minComputePhases = 2;
    options.maxComputePhases = 3;
    Workload w = makeSyntheticWorkload(options);
    ASSERT_EQ(w.apps.size(), 8u);
    for (const Application &app : w.apps) {
        ASSERT_GE(app.phases.size(), 4u); // setup + 2 computes + td.
        ASSERT_LE(app.phases.size(), 5u);
        EXPECT_EQ(app.phases.front().kind, PhaseKind::Sequential);
        EXPECT_EQ(app.phases.back().kind, PhaseKind::Sequential);
        for (size_t p = 1; p + 1 < app.phases.size(); ++p)
            EXPECT_EQ(app.phases[p].kind, PhaseKind::Compute);
        EXPECT_TRUE(app.isChain());
    }
}

TEST(Synthetic, ValuesWithinConfiguredRanges)
{
    SyntheticOptions options;
    options.numApps = 20;
    options.seed = 3;
    Workload w = makeSyntheticWorkload(options);
    for (const Application &app : w.apps) {
        for (const PhaseProfile &phase : app.phases) {
            if (phase.kind == PhaseKind::Sequential) {
                EXPECT_GE(phase.cpuTime1, options.minSetupS);
                EXPECT_LE(phase.cpuTime1, options.maxSetupS);
            } else {
                EXPECT_GE(phase.cpuTime1, options.minComputeCpuS);
                EXPECT_LE(phase.cpuTime1, options.maxComputeCpuS);
                EXPECT_TRUE(phase.gpuCompatible);
                double speedup = phase.cpuTime1 / phase.gpuTime98;
                EXPECT_GE(speedup, options.minGpuSpeedup98 * 0.999);
                EXPECT_LE(speedup, options.maxGpuSpeedup98 * 1.001);
                EXPECT_GE(phase.gpuBwBase, options.minBw98);
                EXPECT_LE(phase.gpuBwBase, options.maxBw98);
                EXPECT_LE(phase.timeLaw.b, -0.5);
                EXPECT_GE(phase.timeLaw.b, -1.0);
            }
        }
    }
}

TEST(Synthetic, DsaTargetsAreUniquePerApp)
{
    SyntheticOptions options;
    options.numApps = 30;
    options.dsaTargetFraction = 1.0;
    Workload w = makeSyntheticWorkload(options);
    for (size_t a = 0; a < w.apps.size(); ++a) {
        bool found = false;
        for (const PhaseProfile &phase : w.apps[a].phases) {
            if (phase.dsaTarget >= 0) {
                EXPECT_EQ(phase.dsaTarget, static_cast<int>(a));
                found = true;
            }
        }
        EXPECT_TRUE(found);
    }
}

TEST(Synthetic, ZeroDsaFractionMeansNoTargets)
{
    SyntheticOptions options;
    options.dsaTargetFraction = 0.0;
    Workload w = makeSyntheticWorkload(options);
    for (const Application &app : w.apps)
        for (const PhaseProfile &phase : app.phases)
            EXPECT_EQ(phase.dsaTarget, -1);
}

} // anonymous namespace
} // namespace workload
} // namespace hilp
