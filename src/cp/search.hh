/**
 * @file
 * Depth-first branch-and-bound over serial-SGS decisions.
 *
 * Each node of the search extends a partial schedule by picking an
 * eligible task and one of its modes and placing it at the earliest
 * feasible start. For regular objectives like makespan this schedule
 * space contains an optimal schedule (the classic active-schedule
 * argument for serial schedule generation), so exhausting the tree
 * proves optimality. Pruning uses the incumbent upper bound against
 * per-node critical-path bounds.
 */

#ifndef HILP_CP_SEARCH_HH
#define HILP_CP_SEARCH_HH

#include <chrono>
#include <cstdint>
#include <vector>

#include "model.hh"
#include "propagate.hh"

namespace hilp {
namespace cp {

/** Resource limits and stopping conditions for the search. */
struct SearchLimits
{
    /** Maximum number of branch nodes explored. */
    int64_t maxNodes = 500000;
    /** Wall-clock budget in seconds. */
    double maxSeconds = 5.0;
    /**
     * Absolute monotonic cut-off for the search, on top of (and
     * independent of) maxSeconds. Unlike maxSeconds, which is
     * per-solve, the deadline is shared by every solve of one outer
     * evaluation (all resolution refinements and escalations), so a
     * single slow point cannot overrun its wall-clock budget by
     * re-solving. time_point::max() (the default) disables it.
     */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /**
     * Stop as soon as (UB - lowerBound) / UB <= targetGap. The
     * paper's near-optimality threshold is 0.1; use 0 to search for
     * a proven optimum.
     */
    double targetGap = 0.0;
    /**
     * Certified external lower bound on the optimum (from the bounds
     * engine); used for the targetGap stop and for pruning.
     */
    Time lowerBound = 0;
    /**
     * Plug the optional energetic-reasoning propagator into the
     * propagation engine (suffix-energy windows over earliest
     * starts). Off by default: it changes which nodes get pruned, so
     * it is opt-in per solve.
     */
    bool energeticReasoning = false;
    /**
     * Worker threads for the branch-and-bound tree walk. 1 (the
     * default) runs the serial searcher, bit-identical to the
     * historical behavior; larger values run the work-stealing
     * parallel search (see parallel_search.hh), which explores a
     * different node set but returns the same optimal makespans and
     * the same exhausted/foundSolution statuses.
     */
    int threads = 1;
    /**
     * Parallel determinism mode: partition the frontier statically,
     * keep per-worker incumbents, and merge deterministically, so a
     * run that finishes within its budgets is exactly reproducible
     * for a fixed thread count. Off (the default) shares the
     * incumbent opportunistically, which prunes harder but makes
     * node counts (never results) run-dependent.
     */
    bool deterministic = false;
    /**
     * Tree depth down to which the parallel search splits nodes into
     * stealable subproblems instead of recursing. 0 picks a default;
     * ignored by the serial path.
     */
    int splitDepth = 0;
    /**
     * No-good recording (see nogood.hh): cache proven makespan
     * bounds for visited placement sets and prune transpositions.
     * Preserves optimality and exhaustion statuses but changes node
     * counts, so it is opt-in. The opportunistic parallel search
     * shares one store across workers; the serial and deterministic
     * searches use private stores and stay exactly reproducible.
     */
    bool useNogoods = false;
    /** Entry budget for the no-good store (rounded up to 2^k). */
    size_t nogoodCapacity = 1 << 16;
    /**
     * Memory layout of the solver core. true (the default) uses the
     * packed SoA profile slab plus arena-backed per-node scratch;
     * false keeps the legacy AoS profile and per-depth preallocated
     * scratch frames. Both explore bit-identical search trees — the
     * flag exists so the solver_micro layout sweep can measure one
     * against the other.
     */
    bool packedLayout = true;
};

/** Outcome of the branch-and-bound search. */
struct SearchResult
{
    /** True when a complete schedule was found (or warm-started). */
    bool foundSolution = false;
    /**
     * True when the tree was exhausted: the incumbent is optimal, or
     * no solution exists within the horizon if none was found.
     */
    bool exhausted = false;
    ScheduleVec best;
    Time bestMakespan = 0;
    int64_t nodes = 0;
    int64_t backtracks = 0;
    int64_t solutions = 0;
    /** Worker threads that actually ran the search. */
    int threadsUsed = 1;
    /** Parallel search: successful steal operations. */
    int64_t steals = 0;
    /** Parallel search: subproblems published for stealing. */
    int64_t subproblems = 0;
    /** Nodes pruned by a recorded no-good (0 when disabled). */
    int64_t nogoodHits = 0;
    /** No-goods recorded into the store (0 when disabled). */
    int64_t nogoodsRecorded = 0;
    /**
     * Heap bytes the search scratch grew by *during* the tree walk
     * (arenas, profile slabs, preallocated frames). Near zero in
     * steady state: all scratch is committed up front or during the
     * first few nodes of warm-up.
     */
    int64_t scratchBytes = 0;
    /** Peak live bytes across the search's arenas (all workers). */
    int64_t arenaHighWater = 0;
    /** Arena rewinds performed (≈ node count on the packed layout). */
    int64_t arenaRewinds = 0;
    /**
     * Per-propagator telemetry, aggregated (by rule name) across
     * every worker's propagation engine.
     */
    std::vector<PropagatorStats> propagators;
};

/**
 * Run branch-and-bound on the model. When warm_start is non-null it
 * must be a feasible schedule; it seeds the incumbent so the search
 * only explores strictly better schedules.
 */
SearchResult branchAndBound(const Model &model,
                            const ScheduleVec *warm_start,
                            const SearchLimits &limits);

} // namespace cp
} // namespace hilp

#endif // HILP_CP_SEARCH_HH
