/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * HILP experiments must be exactly reproducible across runs and
 * platforms, so we use our own splitmix64/xoshiro256** implementation
 * instead of std::mt19937 (whose distributions are not guaranteed to
 * produce identical streams across standard library implementations).
 */

#ifndef HILP_SUPPORT_RANDOM_HH
#define HILP_SUPPORT_RANDOM_HH

#include <cstddef>
#include <cstdint>
#include <utility>

namespace hilp {

/**
 * A small, fast, deterministic PRNG (xoshiro256** seeded via
 * splitmix64). Suitable for workload synthesis and randomized search
 * heuristics; not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Uniform double in [lo, hi). */
    double uniformDouble(double lo, double hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /**
     * Gaussian sample via Box-Muller (mean mu, std-dev sigma);
     * deterministic for a given stream position.
     */
    double gaussian(double mu, double sigma);

    /** Shuffle a random-access container in place (Fisher-Yates). */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        if (c.empty())
            return;
        for (size_t i = c.size() - 1; i > 0; --i) {
            size_t j = static_cast<size_t>(
                uniformInt(0, static_cast<int64_t>(i)));
            using std::swap;
            swap(c[i], c[j]);
        }
    }

  private:
    uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace hilp

#endif // HILP_SUPPORT_RANDOM_HH
