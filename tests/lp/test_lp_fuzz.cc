/**
 * @file
 * Randomized LP tests: on generated instances with bounded feasible
 * regions, the solver's "optimal" answer must (i) satisfy every
 * constraint and (ii) be no worse than a batch of random feasible
 * points.
 */

#include <gtest/gtest.h>

#include <vector>

#include "lp/lp.hh"
#include "support/random.hh"

namespace hilp {
namespace lp {
namespace {

struct Instance
{
    Problem problem;
    std::vector<std::vector<double>> rows;
    std::vector<Relation> rels;
    std::vector<double> rhs;
    int n = 0;
};

/**
 * Generate a random LP with all variables in [0, 10] (so it is
 * always bounded) and a mix of <= / >= / = constraints engineered to
 * keep the origin-ish region feasible often enough to be useful.
 */
Instance
randomInstance(Rng &rng)
{
    Instance inst;
    inst.n = 2 + static_cast<int>(rng.uniformInt(0, 3));
    for (int j = 0; j < inst.n; ++j)
        inst.problem.addVariable(0.0, 10.0,
                                 rng.uniformDouble(-2.0, 2.0));
    int m = 1 + static_cast<int>(rng.uniformInt(0, 3));
    for (int i = 0; i < m; ++i) {
        std::vector<Term> terms;
        std::vector<double> row(inst.n, 0.0);
        for (int j = 0; j < inst.n; ++j) {
            if (!rng.chance(0.7))
                continue;
            double coeff = rng.uniformDouble(-1.5, 1.5);
            row[j] = coeff;
            terms.push_back({j, coeff});
        }
        if (terms.empty()) {
            row[0] = 1.0;
            terms.push_back({0, 1.0});
        }
        // Mostly <= with generous rhs; occasionally >= with small
        // rhs so phase 1 gets exercised without making everything
        // infeasible.
        Relation rel;
        double rhs;
        double dice = rng.uniformDouble();
        if (dice < 0.6) {
            rel = Relation::LessEqual;
            rhs = rng.uniformDouble(1.0, 20.0);
        } else if (dice < 0.9) {
            rel = Relation::GreaterEqual;
            rhs = rng.uniformDouble(-20.0, 2.0);
        } else {
            rel = Relation::LessEqual;
            rhs = rng.uniformDouble(-2.0, 2.0);
        }
        inst.problem.addConstraint(terms, rel, rhs);
        inst.rows.push_back(std::move(row));
        inst.rels.push_back(rel);
        inst.rhs.push_back(rhs);
    }
    return inst;
}

bool
feasible(const Instance &inst, const std::vector<double> &x,
         double eps = 1e-6)
{
    for (int j = 0; j < inst.n; ++j)
        if (x[j] < -eps || x[j] > 10.0 + eps)
            return false;
    for (size_t i = 0; i < inst.rows.size(); ++i) {
        double lhs = 0.0;
        for (int j = 0; j < inst.n; ++j)
            lhs += inst.rows[i][j] * x[j];
        switch (inst.rels[i]) {
          case Relation::LessEqual:
            if (lhs > inst.rhs[i] + eps)
                return false;
            break;
          case Relation::GreaterEqual:
            if (lhs < inst.rhs[i] - eps)
                return false;
            break;
          case Relation::Equal:
            if (std::abs(lhs - inst.rhs[i]) > eps)
                return false;
            break;
        }
    }
    return true;
}

double
objectiveOf(const Instance &inst, const std::vector<double> &x)
{
    double value = 0.0;
    for (int j = 0; j < inst.n; ++j)
        value += inst.problem.objective(j) * x[j];
    return value;
}

class LpFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(LpFuzz, OptimalPointIsFeasibleAndBeatsRandomPoints)
{
    Rng rng(GetParam() * 5557);
    Instance inst = randomInstance(rng);
    Solution sol = Solver().solve(inst.problem);
    // Bounded box: never unbounded.
    ASSERT_NE(sol.status, Status::Unbounded);
    if (sol.status != Status::Optimal) {
        // Claimed infeasible: no random point may be feasible.
        for (int trial = 0; trial < 2000; ++trial) {
            std::vector<double> x(inst.n);
            for (int j = 0; j < inst.n; ++j)
                x[j] = rng.uniformDouble(0.0, 10.0);
            EXPECT_FALSE(feasible(inst, x, -1e-6))
                << "solver said infeasible but a feasible point "
                   "exists";
        }
        return;
    }
    EXPECT_TRUE(feasible(inst, sol.x)) << "optimal point infeasible";
    EXPECT_NEAR(objectiveOf(inst, sol.x), sol.objective, 1e-6);
    // No sampled feasible point may beat the reported optimum.
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<double> x(inst.n);
        for (int j = 0; j < inst.n; ++j)
            x[j] = rng.uniformDouble(0.0, 10.0);
        if (!feasible(inst, x, -1e-9))
            continue;
        EXPECT_GE(objectiveOf(inst, x), sol.objective - 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpFuzz,
                         ::testing::Range<uint64_t>(1, 41));

} // anonymous namespace
} // namespace lp
} // namespace hilp
