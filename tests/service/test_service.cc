/**
 * @file
 * Unit tests for the EvalService core: job-queue admission control
 * and priority ordering, equivalence of the service eval/sweep paths
 * with the batch dse:: entry points, cross-request memo and
 * warm-start store behavior, and the statsJson observability shape.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <list>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "dse/explore.hh"
#include "service/eval_service.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace service {
namespace {

/**
 * Occupy every executor of the service so submitted jobs stay
 * queued until release() is called. Used to test admission control
 * deterministically.
 */
class ExecutorGate
{
  public:
    ExecutorGate(EvalService &service, int executors)
    {
        for (int i = 0; i < executors; ++i) {
            started_.emplace_back();
            auto &started = started_.back();
            Admission admission = service.submit([this, &started] {
                started.set_value();
                std::unique_lock<std::mutex> lock(mutex_);
                released_.wait(lock, [this] { return open_; });
            });
            EXPECT_TRUE(admission.accepted);
        }
        // Only return once every executor is actually blocked inside
        // a gate job, so later submissions cannot sneak into a free
        // executor.
        for (auto &started : started_)
            started.get_future().wait();
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            open_ = true;
        }
        released_.notify_all();
    }

  private:
    std::mutex mutex_;
    std::condition_variable released_;
    bool open_ = false;
    std::list<std::promise<void>> started_;
};

TEST(ServiceQueue, RunsJobsAndDrains)
{
    ServiceOptions options;
    options.executors = 2;
    EvalService service(options);

    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
        Admission admission = service.submit([&ran] { ++ran; });
        ASSERT_TRUE(admission.accepted) << admission.reason;
    }
    service.drain();
    EXPECT_EQ(ran.load(), 16);
    EXPECT_EQ(service.pendingJobs(), 0u);
}

TEST(ServiceQueue, HigherPriorityRunsFirstFifoTies)
{
    ServiceOptions options;
    options.executors = 1;
    EvalService service(options);
    ExecutorGate gate(service, 1);

    std::mutex order_mutex;
    std::vector<int> order;
    auto record = [&](int tag) {
        return [&, tag] {
            std::lock_guard<std::mutex> lock(order_mutex);
            order.push_back(tag);
        };
    };
    // Submission order: low(1), high(2), low(3), high(4).
    EXPECT_TRUE(service.submit(record(1), 0).accepted);
    EXPECT_TRUE(service.submit(record(2), 5).accepted);
    EXPECT_TRUE(service.submit(record(3), 0).accepted);
    EXPECT_TRUE(service.submit(record(4), 5).accepted);

    gate.release();
    service.drain();
    EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 3}));
}

TEST(ServiceQueue, QueueFullRejectsWithReason)
{
    ServiceOptions options;
    options.executors = 1;
    options.maxQueueDepth = 2;
    EvalService service(options);
    ExecutorGate gate(service, 1);

    EXPECT_TRUE(service.submit([] {}).accepted);
    EXPECT_TRUE(service.submit([] {}).accepted);
    Admission rejected = service.submit([] {});
    EXPECT_FALSE(rejected.accepted);
    EXPECT_NE(rejected.reason.find("queue full"), std::string::npos)
        << rejected.reason;

    gate.release();
    service.drain();
    // Capacity is available again after the drain.
    EXPECT_TRUE(service.submit([] {}).accepted);
    service.drain();
}

TEST(ServiceQueue, ShutdownRejectsNewJobs)
{
    EvalService service;
    service.shutdown();
    Admission admission = service.submit([] {
        FAIL() << "job ran after shutdown";
    });
    EXPECT_FALSE(admission.accepted);
    EXPECT_NE(admission.reason.find("shutting down"),
              std::string::npos);
    service.shutdown(); // Idempotent.
}

TEST(ServiceQueue, ThrowingJobDoesNotKillExecutor)
{
    ServiceOptions options;
    options.executors = 1;
    EvalService service(options);
    EXPECT_TRUE(service.submit(
        [] { throw std::runtime_error("boom"); }).accepted);
    std::atomic<bool> ran{false};
    EXPECT_TRUE(service.submit([&ran] { ran = true; }).accepted);
    service.drain();
    EXPECT_TRUE(ran.load());
}

// --- Evaluation behavior ----------------------------------------------

arch::SocConfig
smallSoc(int cpus, int sms)
{
    arch::SocConfig config;
    config.cpuCores = cpus;
    config.gpuSms = sms;
    return config;
}

dse::DseOptions
fastHilpOptions()
{
    dse::DseOptions options;
    options.engine.solver.maxSeconds = 2.0;
    options.threads = 2;
    return options;
}

TEST(ServiceEval, MatchesBatchEvaluatePoint)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto config = smallSoc(2, 16);
    dse::DseOptions options = fastHilpOptions();

    EvalService service;
    dse::DsePoint served = service.eval(
        config, wl, arch::Constraints{}, dse::ModelKind::Hilp,
        options);
    dse::DsePoint batch = dse::evaluatePoint(
        config, wl, arch::Constraints{}, dse::ModelKind::Hilp,
        options);
    ASSERT_TRUE(served.ok);
    ASSERT_TRUE(batch.ok);
    // The certified result is identical; only cache effort differs.
    EXPECT_DOUBLE_EQ(served.makespanS, batch.makespanS);
    EXPECT_DOUBLE_EQ(served.areaMm2, batch.areaMm2);
    EXPECT_EQ(served.mix, batch.mix);
}

TEST(ServiceEval, RepeatEvalHitsSharedMemo)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto config = smallSoc(2, 4);
    dse::DseOptions options = fastHilpOptions();

    EvalService service;
    dse::DsePoint first = service.eval(
        config, wl, arch::Constraints{}, dse::ModelKind::Hilp,
        options);
    ASSERT_TRUE(first.ok);
    EXPECT_FALSE(first.cacheHit);

    dse::DsePoint second = service.eval(
        config, wl, arch::Constraints{}, dse::ModelKind::Hilp,
        options);
    ASSERT_TRUE(second.ok);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_DOUBLE_EQ(second.makespanS, first.makespanS);
}

TEST(ServiceEval, DifferentEngineOptionsMissMemoButWarmStart)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto config = smallSoc(2, 4);
    dse::DseOptions options = fastHilpOptions();

    EvalService service;
    dse::DsePoint first = service.eval(
        config, wl, arch::Constraints{}, dse::ModelKind::Hilp,
        options);
    ASSERT_TRUE(first.ok);
    EXPECT_GT(service.scheduleStore().entries(), 0u);

    // A different solver budget digests differently: the memo key is
    // salted, so the cached result cannot be (unsoundly) returned.
    dse::DseOptions other = options;
    other.engine.solver.maxSeconds = 1.5;
    dse::DsePoint second = service.eval(
        config, wl, arch::Constraints{}, dse::ModelKind::Hilp, other);
    ASSERT_TRUE(second.ok);
    EXPECT_FALSE(second.cacheHit);
    // The warm-start store (keyed by fingerprint alone) seeds the
    // fresh solve instead.
    EXPECT_GT(service.scheduleStore().hits(), 0);
    EXPECT_TRUE(second.warmStarted);
}

TEST(ServiceSweep, MatchesExploreSpaceAndStreamsPoints)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    SweepRequest request;
    request.configs = {smallSoc(1, 4), smallSoc(2, 4),
                       smallSoc(4, 4)};
    request.workload = wl;
    request.kind = dse::ModelKind::MultiAmdahl;
    request.options.threads = 2;

    std::mutex streamed_mutex;
    std::vector<std::string> streamed;
    request.onPoint = [&](const dse::DsePoint &point,
                          const Schedule *) {
        std::lock_guard<std::mutex> lock(streamed_mutex);
        streamed.push_back(point.config.name());
    };

    EvalService service;
    auto points = service.sweep(request);
    ASSERT_EQ(points.size(), request.configs.size());
    EXPECT_EQ(streamed.size(), points.size());

    auto batch = dse::exploreSpace(request.configs, wl,
                                   arch::Constraints{},
                                   dse::ModelKind::MultiAmdahl,
                                   request.options);
    ASSERT_EQ(batch.size(), points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        EXPECT_DOUBLE_EQ(points[i].makespanS, batch[i].makespanS);
        EXPECT_DOUBLE_EQ(points[i].areaMm2, batch[i].areaMm2);
    }
}

TEST(ServiceStats, StatsJsonShape)
{
    ServiceOptions options;
    options.maxQueueDepth = 7;
    EvalService service(options);
    service.submit([] {});
    service.drain();

    Json stats = service.statsJson();
    ASSERT_NE(stats.find("version"), nullptr);
    ASSERT_NE(stats.find("uptime_s"), nullptr);
    for (const char *cache : {"memo", "schedule_store"}) {
        const Json *section = stats.find(cache);
        ASSERT_NE(section, nullptr) << cache;
        for (const char *key : {"bytes", "max_bytes", "entries",
                                "evictions", "hits", "misses",
                                "hit_rate"})
            EXPECT_NE(section->find(key), nullptr)
                << cache << "." << key;
    }
    const Json *queue = stats.find("queue");
    ASSERT_NE(queue, nullptr);
    EXPECT_EQ(queue->find("max_depth")->intValue(), 7);
    EXPECT_EQ(queue->find("accepted")->intValue(), 1);
    EXPECT_EQ(queue->find("completed")->intValue(), 1);
    EXPECT_EQ(queue->find("depth")->intValue(), 0);
    const Json *budget = stats.find("thread_budget");
    ASSERT_NE(budget, nullptr);
    EXPECT_GT(budget->find("total_slots")->intValue(), 0);
}

} // anonymous namespace
} // namespace service
} // namespace hilp
