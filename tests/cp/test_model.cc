/** @file Unit tests for the scheduling model and schedule checker. */

#include <gtest/gtest.h>

#include "cp/model.hh"

namespace hilp {
namespace cp {
namespace {

/** A small two-task, one-resource, one-group model. */
Model
smallModel()
{
    Model m;
    int power = m.addResource(5.0, "power");
    (void)power;
    int gpu = m.addGroup("GPU");
    Task a;
    a.name = "a";
    a.modes.push_back({kNoGroup, 2, {1.0}});
    a.modes.push_back({gpu, 1, {3.0}});
    m.addTask(a);
    Task b;
    b.name = "b";
    b.modes.push_back({gpu, 2, {3.0}});
    m.addTask(b);
    m.addPrecedence(0, 1);
    m.setHorizon(10);
    return m;
}

TEST(Model, AccessorsAndCounts)
{
    Model m = smallModel();
    EXPECT_EQ(m.numTasks(), 2);
    EXPECT_EQ(m.numResources(), 1);
    EXPECT_EQ(m.numGroups(), 1);
    EXPECT_EQ(m.horizon(), 10);
    EXPECT_DOUBLE_EQ(m.capacity(0), 5.0);
    EXPECT_EQ(m.resourceName(0), "power");
    EXPECT_EQ(m.groupName(0), "GPU");
    EXPECT_EQ(m.task(0).name, "a");
}

TEST(Model, MinMaxDuration)
{
    Model m = smallModel();
    EXPECT_EQ(m.minDuration(0), 1);
    EXPECT_EQ(m.maxDuration(0), 2);
    EXPECT_EQ(m.minDuration(1), 2);
}

TEST(Model, PredecessorsAndSuccessors)
{
    Model m = smallModel();
    ASSERT_EQ(m.successors(0).size(), 1u);
    EXPECT_EQ(m.successors(0)[0], 1);
    ASSERT_EQ(m.predecessors(1).size(), 1u);
    EXPECT_EQ(m.predecessors(1)[0], 0);
    EXPECT_TRUE(m.predecessors(0).empty());
}

TEST(Model, TopologicalOrderRespectsEdges)
{
    Model m;
    for (int i = 0; i < 4; ++i) {
        Task t;
        t.name = "t";
        t.modes.push_back({kNoGroup, 1, {}});
        m.addTask(t);
    }
    m.addPrecedence(2, 0);
    m.addPrecedence(0, 1);
    m.addPrecedence(2, 3);
    m.setHorizon(10);
    std::vector<int> order = m.topologicalOrder();
    ASSERT_EQ(order.size(), 4u);
    std::vector<int> position(4);
    for (int i = 0; i < 4; ++i)
        position[order[i]] = i;
    EXPECT_LT(position[2], position[0]);
    EXPECT_LT(position[0], position[1]);
    EXPECT_LT(position[2], position[3]);
}

TEST(Model, ValidateAcceptsGoodModel)
{
    EXPECT_EQ(smallModel().validate(), "");
}

TEST(Model, ValidateRejectsMissingHorizon)
{
    Model m;
    Task t;
    t.modes.push_back({kNoGroup, 1, {}});
    m.addTask(t);
    EXPECT_NE(m.validate(), "");
}

TEST(Model, ValidateRejectsTaskWithoutModes)
{
    Model m;
    m.addTask(Task{"empty", {}});
    m.setHorizon(5);
    EXPECT_NE(m.validate().find("no modes"), std::string::npos);
}

TEST(Model, ValidateRejectsBadGroupReference)
{
    Model m;
    Task t;
    t.modes.push_back({3, 1, {}});
    m.addTask(t);
    m.setHorizon(5);
    EXPECT_NE(m.validate().find("invalid"), std::string::npos);
}

TEST(Model, ValidateRejectsWrongUsageArity)
{
    Model m;
    m.addResource(1.0);
    Task t;
    t.modes.push_back({kNoGroup, 1, {}}); // should have 1 usage entry
    m.addTask(t);
    m.setHorizon(5);
    EXPECT_NE(m.validate().find("usage"), std::string::npos);
}

TEST(Model, ValidateRejectsNegativeUsage)
{
    Model m;
    m.addResource(1.0);
    Task t;
    t.modes.push_back({kNoGroup, 1, {-0.5}});
    m.addTask(t);
    m.setHorizon(5);
    EXPECT_NE(m.validate().find("negative usage"), std::string::npos);
}

TEST(Model, ValidateRejectsCycle)
{
    Model m;
    for (int i = 0; i < 2; ++i) {
        Task t;
        t.modes.push_back({kNoGroup, 1, {}});
        m.addTask(t);
    }
    m.addPrecedence(0, 1);
    m.addPrecedence(1, 0);
    m.setHorizon(5);
    EXPECT_NE(m.validate().find("cycle"), std::string::npos);
}

TEST(ScheduleVecTest, EndAndMakespan)
{
    Model m = smallModel();
    ScheduleVec s;
    s.tasks = {{0, 0}, {0, 3}}; // a: mode 0 (dur 2) at 0; b at 3.
    EXPECT_EQ(s.end(m, 0), 2);
    EXPECT_EQ(s.end(m, 1), 5);
    EXPECT_EQ(s.makespan(m), 5);
}

TEST(CheckSchedule, AcceptsFeasibleSchedule)
{
    Model m = smallModel();
    ScheduleVec s;
    s.tasks = {{0, 0}, {0, 2}};
    EXPECT_EQ(checkSchedule(m, s), "");
}

TEST(CheckSchedule, RejectsPrecedenceViolation)
{
    Model m = smallModel();
    ScheduleVec s;
    s.tasks = {{0, 0}, {0, 1}}; // b starts before a (dur 2) ends.
    EXPECT_NE(checkSchedule(m, s).find("precedence"),
              std::string::npos);
}

TEST(CheckSchedule, RejectsGroupOverlap)
{
    Model m;
    int gpu = m.addGroup("GPU");
    for (int i = 0; i < 2; ++i) {
        Task t;
        t.modes.push_back({gpu, 3, {}});
        m.addTask(t);
    }
    m.setHorizon(10);
    ScheduleVec s;
    s.tasks = {{0, 0}, {0, 2}}; // overlap on the GPU at step 2.
    EXPECT_NE(checkSchedule(m, s).find("overlap"), std::string::npos);
}

TEST(CheckSchedule, RejectsResourceOverflow)
{
    Model m;
    m.addResource(1.5, "power");
    for (int i = 0; i < 2; ++i) {
        Task t;
        t.modes.push_back({kNoGroup, 2, {1.0}});
        m.addTask(t);
    }
    m.setHorizon(10);
    ScheduleVec s;
    s.tasks = {{0, 0}, {0, 1}}; // 2.0 > 1.5 at step 1.
    EXPECT_NE(checkSchedule(m, s).find("capacity"), std::string::npos);
}

TEST(CheckSchedule, RejectsHorizonOverrun)
{
    Model m = smallModel();
    ScheduleVec s;
    s.tasks = {{0, 0}, {0, 9}}; // b (dur 2) ends at 11 > 10.
    EXPECT_NE(checkSchedule(m, s).find("horizon"), std::string::npos);
}

TEST(CheckSchedule, RejectsUnscheduledTask)
{
    Model m = smallModel();
    ScheduleVec s;
    s.tasks = {{0, 0}, {}};
    EXPECT_NE(checkSchedule(m, s).find("unscheduled"),
              std::string::npos);
}

TEST(CheckSchedule, RejectsSizeMismatch)
{
    Model m = smallModel();
    ScheduleVec s;
    s.tasks = {{0, 0}};
    EXPECT_NE(checkSchedule(m, s), "");
}

TEST(CheckSchedule, AllowsBackToBackOnSameGroup)
{
    Model m;
    int gpu = m.addGroup("GPU");
    for (int i = 0; i < 2; ++i) {
        Task t;
        t.modes.push_back({gpu, 3, {}});
        m.addTask(t);
    }
    m.setHorizon(10);
    ScheduleVec s;
    s.tasks = {{0, 0}, {0, 3}}; // touching intervals are legal.
    EXPECT_EQ(checkSchedule(m, s), "");
}

TEST(CheckSchedule, ZeroDurationNeverConflicts)
{
    Model m;
    int gpu = m.addGroup("GPU");
    Task a;
    a.modes.push_back({gpu, 0, {}});
    m.addTask(a);
    Task b;
    b.modes.push_back({gpu, 4, {}});
    m.addTask(b);
    m.setHorizon(10);
    ScheduleVec s;
    s.tasks = {{0, 2}, {0, 0}};
    EXPECT_EQ(checkSchedule(m, s), "");
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
