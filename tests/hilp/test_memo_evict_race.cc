/**
 * @file
 * Races concurrent SolveMemo traffic against byte-cap eviction. The
 * memo is the one shared mutable structure of the evaluation service
 * (hilpd keeps one alive across requests), so this test runs in the
 * TSan-covered concurrency binary: many threads insert and look up
 * overlapping keys against a cap small enough that eviction fires
 * constantly, and every hit must still return a self-consistent
 * result.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "hilp/engine.hh"

namespace hilp {
namespace {

/**
 * A result whose payload encodes its key, so a racing lookup can
 * check that whatever entry it got back is internally consistent
 * (no torn or cross-keyed reads).
 */
EvalResult
resultForKey(uint64_t key)
{
    EvalResult result;
    result.ok = true;
    result.makespanS = 1.0 + static_cast<double>(key);
    result.lowerBoundS = result.makespanS; // gap 0: never replaced
    result.gap = 0.0;
    return result;
}

TEST(SolveMemoEvictRace, ConcurrentTrafficUnderTinyCap)
{
    size_t one = SolveMemo::resultFootprintBytes(resultForKey(0));
    // Room for ~8 of 64 keys: every thread keeps evicting the others'
    // entries while they are being looked up.
    SolveMemo memo(8 * one);

    constexpr int kThreads = 8;
    constexpr int kKeys = 64;
    constexpr int kIterations = 400;
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIterations; ++i) {
                uint64_t key =
                    static_cast<uint64_t>((i * 7 + t * 13) % kKeys);
                EvalResult out;
                if (memo.lookup(key, &out)) {
                    // A hit must be the value inserted for this key,
                    // with the cache-hit bookkeeping applied.
                    EXPECT_DOUBLE_EQ(
                        out.makespanS,
                        1.0 + static_cast<double>(key));
                    EXPECT_TRUE(out.cacheHit);
                    EXPECT_EQ(out.solves, 0);
                    hits.fetch_add(1, std::memory_order_relaxed);
                } else {
                    // "Recompute" the evicted/missing entry.
                    memo.insert(key, resultForKey(key));
                    misses.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    // The cap held the whole time and eviction really fired: far more
    // keys passed through than fit. (Whether any racing lookup *hit*
    // is interleaving-dependent - under TSan eviction can win every
    // race - so hits are only consistency-checked above, and the
    // still-cached-entry hit is verified deterministically below.)
    EXPECT_LE(memo.bytes(), memo.maxBytes());
    EXPECT_LE(memo.entries(), 8u);
    EXPECT_GT(memo.evictions(), 0);
    EXPECT_GT(misses.load(), 0);
    EXPECT_EQ(hits.load() + misses.load(),
              static_cast<int64_t>(kThreads) * kIterations);

    // With the traffic stopped, a fresh insert must be servable.
    memo.insert(kKeys + 1, resultForKey(kKeys + 1));
    EvalResult out;
    ASSERT_TRUE(memo.lookup(kKeys + 1, &out));
    EXPECT_TRUE(out.cacheHit);
    EXPECT_DOUBLE_EQ(out.makespanS,
                     1.0 + static_cast<double>(kKeys + 1));
}

TEST(SolveMemoEvictRace, RacingSetMaxBytesStaysBounded)
{
    size_t one = SolveMemo::resultFootprintBytes(resultForKey(0));
    SolveMemo memo(16 * one);

    std::atomic<bool> stop{false};
    std::thread resizer([&] {
        // Flip between a tiny and a roomy cap while traffic runs.
        for (int i = 0; i < 200; ++i)
            memo.setMaxBytes(((i % 2) ? 2 : 16) * one);
        stop.store(true);
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&, t] {
            uint64_t key = static_cast<uint64_t>(t);
            while (!stop.load()) {
                memo.insert(key, resultForKey(key));
                EvalResult out;
                memo.lookup(key, &out);
                key = (key + 4) % 32;
            }
        });
    }
    resizer.join();
    for (std::thread &thread : writers)
        thread.join();

    EXPECT_LE(memo.bytes(), memo.maxBytes());
}

} // anonymous namespace
} // namespace hilp
