#include "problem.hh"

#include "support/hash.hh"
#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {

std::vector<std::pair<int, int>>
AppSpec::effectiveDeps() const
{
    if (independentPhases)
        return {};
    if (!deps.empty())
        return deps;
    std::vector<std::pair<int, int>> chain;
    for (int p = 0; p + 1 < static_cast<int>(phases.size()); ++p)
        chain.emplace_back(p, p + 1);
    return chain;
}

std::vector<StartLag>
AppSpec::effectiveStartLags() const
{
    if (independentPhases)
        return {};
    return startLags;
}

int
ProblemSpec::numPhases() const
{
    int count = 0;
    for (const AppSpec &app : apps)
        count += static_cast<int>(app.phases.size());
    return count;
}

std::string
ProblemSpec::validate() const
{
    if (cpuCores < 0.0)
        return "negative CPU core capacity";
    if (apps.empty())
        return "workload has no applications";
    for (const AppSpec &app : apps) {
        if (app.phases.empty())
            return format("application %s has no phases",
                          app.name.c_str());
        for (const PhaseSpec &phase : app.phases) {
            if (phase.options.empty())
                return format("phase %s has no unit options",
                              phase.name.c_str());
            bool any_usable = false;
            for (const UnitOption &option : phase.options) {
                if (option.timeS < 0.0)
                    return format("phase %s option %s has negative "
                                  "time", phase.name.c_str(),
                                  option.label.c_str());
                if (option.device != kCpuPool &&
                    (option.device < 0 ||
                     option.device >=
                         static_cast<int>(deviceNames.size()))) {
                    return format("phase %s option %s references "
                                  "unknown device %d",
                                  phase.name.c_str(),
                                  option.label.c_str(), option.device);
                }
                if (option.extraUsage.size() > extraResources.size())
                    return format("phase %s option %s has more extra-"
                                  "usage entries than extra resources",
                                  phase.name.c_str(),
                                  option.label.c_str());
                bool usable = option.powerW <= powerBudgetW &&
                              option.bwGBs <= bandwidthGBs &&
                              option.cpuCores <= cpuCores;
                for (size_t r = 0; r < option.extraUsage.size();
                     ++r) {
                    if (option.extraUsage[r] < 0.0)
                        return format("phase %s option %s has "
                                      "negative extra usage",
                                      phase.name.c_str(),
                                      option.label.c_str());
                    usable = usable && option.extraUsage[r] <=
                                           extraResources[r].capacity;
                }
                any_usable = any_usable || usable;
            }
            if (!any_usable)
                return format("phase %s has no option within the "
                              "power/bandwidth/core budgets",
                              phase.name.c_str());
        }
        for (auto [from, to] : app.deps) {
            int n = static_cast<int>(app.phases.size());
            if (from < 0 || from >= n || to < 0 || to >= n ||
                from == to) {
                return format("application %s has an invalid "
                              "dependency edge (%d, %d)",
                              app.name.c_str(), from, to);
            }
        }
        for (const StartLag &lag : app.startLags) {
            int n = static_cast<int>(app.phases.size());
            if (lag.from < 0 || lag.from >= n || lag.to < 0 ||
                lag.to >= n || lag.from == lag.to) {
                return format("application %s has an invalid start "
                              "lag (%d, %d)", app.name.c_str(),
                              lag.from, lag.to);
            }
            if (lag.lagS < 0.0)
                return format("application %s has a negative start "
                              "lag", app.name.c_str());
        }
    }
    return "";
}

uint64_t
ProblemSpec::fingerprint() const
{
    Hasher h;
    h.u64(apps.size());
    for (const AppSpec &app : apps) {
        h.str(app.name);
        h.u64(app.phases.size());
        for (const PhaseSpec &phase : app.phases) {
            h.str(phase.name);
            h.u64(phase.options.size());
            for (const UnitOption &option : phase.options) {
                h.str(option.label);
                h.i64(option.device);
                h.f64(option.timeS);
                h.f64(option.bwGBs);
                h.f64(option.powerW);
                h.f64(option.cpuCores);
                h.u64(option.extraUsage.size());
                for (double usage : option.extraUsage)
                    h.f64(usage);
            }
        }
        // Hash the *effective* structure so the implicit chain and
        // an equivalent explicit edge list fingerprint equally.
        auto deps = app.effectiveDeps();
        h.u64(deps.size());
        for (auto [from, to] : deps) {
            h.i64(from);
            h.i64(to);
        }
        auto lags = app.effectiveStartLags();
        h.u64(lags.size());
        for (const StartLag &lag : lags) {
            h.i64(lag.from);
            h.i64(lag.to);
            h.f64(lag.lagS);
        }
    }
    h.u64(deviceNames.size());
    for (const std::string &device : deviceNames)
        h.str(device);
    h.f64(cpuCores);
    h.f64(powerBudgetW);
    h.f64(bandwidthGBs);
    h.u64(extraResources.size());
    for (const ExtraResource &resource : extraResources) {
        h.str(resource.name);
        h.f64(resource.capacity);
    }
    return h.digest();
}

} // namespace hilp
