#include "arena.hh"

namespace hilp {
namespace support {

Arena::Arena(size_t initial_block_bytes)
    : nextBlockSize_(roundUp(
          initial_block_bytes < kGranule ? kGranule
                                         : initial_block_bytes))
{}

void
Arena::ensure(size_t bytes)
{
    // Advance through cached blocks first (they are empty past
    // cur_ after a rewind); only grow the chain when none fits.
    while (cur_ < blocks_.size() &&
           blocks_[cur_].used + bytes > blocks_[cur_].size) {
        ++cur_;
    }
    if (cur_ < blocks_.size())
        return;
    Block block;
    block.size = nextBlockSize_ < bytes ? roundUp(bytes)
                                        : nextBlockSize_;
    nextBlockSize_ = block.size * 2;
    block.data.reset(new char[block.size]);
    heapBytes_ += block.size;
    HILP_ARENA_POISON(block.data.get(), block.size);
    blocks_.push_back(std::move(block));
    cur_ = blocks_.size() - 1;
}

void
Arena::rewindBlocks(Checkpoint mark)
{
    // Blocks past the mark empty out entirely; the mark's own block
    // rolls back to the recorded offset. Everything released gets
    // re-poisoned so stale pointers fault under ASan.
    for (size_t b = mark.block + 1; b <= cur_; ++b) {
        Block &block = blocks_[b];
        inUse_ -= block.used;
        HILP_ARENA_POISON(block.data.get(), block.used);
        block.used = 0;
    }
    Block &block = blocks_[mark.block];
    hilp_assert(mark.used <= block.used);
    inUse_ -= block.used - mark.used;
    HILP_ARENA_POISON(block.data.get() + mark.used,
                      block.used - mark.used);
    block.used = mark.used;
    cur_ = mark.block;
}

void
Arena::reset()
{
    rewind(Checkpoint{});
}

} // namespace support
} // namespace hilp
