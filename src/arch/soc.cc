#include "soc.hh"

#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {
namespace arch {

double
SocConfig::areaMm2() const
{
    double area = cpuCores * kCpuCoreAreaMm2 + gpuSms * kGpuSmAreaMm2;
    for (const DsaSpec &dsa : dsas)
        area += dsa.pes * kGpuSmAreaMm2;
    return area;
}

std::string
SocConfig::name() const
{
    int pes = dsas.empty() ? 0 : dsas.front().pes;
    return format("(c%d,g%d,d%zu^%d)", cpuCores, gpuSms, dsas.size(),
                  pes);
}

bool
SocConfig::valid() const
{
    if (cpuCores < 1 || gpuSms < 0 || dsaAdvantage <= 0.0)
        return false;
    for (const DsaSpec &dsa : dsas)
        if (dsa.pes < 1)
            return false;
    return true;
}

} // namespace arch
} // namespace hilp
