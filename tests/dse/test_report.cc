/** @file Tests for DSE result export and the offload analysis. */

#include <gtest/gtest.h>

#include <limits>

#include "dse/report.hh"
#include "hilp/builder.hh"
#include "hilp/engine.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace dse {
namespace {

std::vector<DsePoint>
smallSweep()
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    std::vector<arch::SocConfig> configs;
    arch::SocConfig a;
    a.cpuCores = 1;
    configs.push_back(a);
    arch::SocConfig b;
    b.cpuCores = 2;
    b.gpuSms = 16;
    configs.push_back(b);
    DseOptions options;
    return exploreSpace(configs, wl, arch::Constraints{},
                        ModelKind::MultiAmdahl, options);
}

TEST(Report, CsvHasHeaderAndOneRowPerPoint)
{
    auto points = smallSweep();
    std::string csv = pointsToCsv(points);
    // Header + 2 rows + trailing newline split artifact.
    int lines = 0;
    for (char c : csv)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 3);
    EXPECT_NE(csv.find("config,cpus,gpu_sms"), std::string::npos);
    EXPECT_NE(csv.find("(c1,g0,d0^0)"), std::string::npos);
    EXPECT_NE(csv.find("(c2,g16,d0^0)"), std::string::npos);
}

TEST(Report, CsvCarriesSolverTelemetryAndNotes)
{
    DsePoint solved;
    solved.ok = true;
    solved.status = cp::SolveStatus::NearOptimal;
    solved.nodes = 1234;
    solved.backtracks = 56;
    solved.solves = 3;
    solved.solveSeconds = 0.25;
    solved.warmStarted = true;
    solved.propagators = {{"timetable", 40, 5, 0.01},
                          {"precedence", 30, 2, 0.02}};
    DsePoint failed;
    failed.note = "phase x, unschedulable\nunder budget";

    std::string csv = pointsToCsv({solved, failed});
    EXPECT_NE(csv.find("status,nodes,backtracks,solves,solve_s,"
                       "cache_hit,warm_start,pruned,degraded,errored,"
                       "resumed,propagations,prunings,prop_s,note"),
              std::string::npos);
    EXPECT_NE(csv.find("near-optimal,1234,56,3"), std::string::npos);
    // Propagator counters are aggregated per row: 70 invocations
    // and 7 prunings across both propagators.
    EXPECT_NE(csv.find(",70,7,"), std::string::npos);
    // Notes must not smuggle in field or record separators.
    EXPECT_NE(csv.find("phase x; unschedulable under budget"),
              std::string::npos);
}

TEST(Report, NonFiniteValuesExportAsEmptyCellsAndJsonNull)
{
    // An infeasible point can legitimately carry non-finite numbers
    // (gap is inf when no lower bound exists, WLP can be nan); the
    // exports must not leak "inf"/"nan" tokens into CSV or JSON.
    DsePoint infeasible;
    infeasible.note = "unschedulable under budget";
    infeasible.gap = std::numeric_limits<double>::infinity();
    infeasible.makespanS = std::numeric_limits<double>::quiet_NaN();
    infeasible.speedup = std::numeric_limits<double>::quiet_NaN();
    infeasible.averageWlp = -std::numeric_limits<double>::infinity();
    DsePoint healthy;
    healthy.ok = true;
    healthy.makespanS = 2.0;
    healthy.speedup = 4.0;
    healthy.gap = 0.05;

    std::string csv = pointsToCsv({infeasible, healthy});
    EXPECT_EQ(csv.find("inf"), std::string::npos);
    EXPECT_EQ(csv.find("nan"), std::string::npos);
    // The empty cells keep their separators: ok(0) followed by the
    // four blank makespan_s/speedup/avg_wlp/gap cells.
    EXPECT_NE(csv.find(",0,,,,,"), std::string::npos);
    EXPECT_NE(csv.find("0.050000"), std::string::npos);

    std::string text = pointsToJson({infeasible, healthy}).dump();
    EXPECT_EQ(text.find("inf"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_NE(text.find("\"gap\":null"), std::string::npos);

    // The dump must stay machine-readable: it round-trips through
    // the parser with the non-finite fields as nulls.
    Json parsed;
    ASSERT_TRUE(Json::parse(text, &parsed));
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_TRUE(parsed.at(0).find("gap")->isNull());
    EXPECT_TRUE(parsed.at(0).find("makespan_s")->isNull());
    EXPECT_TRUE(parsed.at(1).find("gap")->isNumber());
}

TEST(Report, SummaryCountsRobustnessOutcomes)
{
    DsePoint degraded;
    degraded.ok = true;
    degraded.degraded = true;
    DsePoint errored;
    errored.errored = true;
    errored.note = "exception: boom";
    DsePoint resumed;
    resumed.ok = true;
    resumed.resumed = true;

    SweepSummary summary =
        summarizeSweep({degraded, errored, resumed});
    EXPECT_EQ(summary.points, 3);
    EXPECT_EQ(summary.ok, 2);
    EXPECT_EQ(summary.degraded, 1);
    EXPECT_EQ(summary.errored, 1);
    EXPECT_EQ(summary.resumed, 1);
    // An errored point is a fault, not a spec verdict.
    EXPECT_EQ(summary.infeasible, 0);
    EXPECT_EQ(summary.noSolution, 0);

    std::string line = toString(summary);
    EXPECT_NE(line.find("1 degraded, 1 errored, 1 resumed"),
              std::string::npos);

    std::string json = toJson(summary).dump();
    EXPECT_NE(json.find("\"degraded\":1"), std::string::npos);
    EXPECT_NE(json.find("\"errored\":1"), std::string::npos);
    EXPECT_NE(json.find("\"resumed\":1"), std::string::npos);
}

TEST(Report, JsonCarriesSolverTelemetryAndNotes)
{
    DsePoint point;
    point.note = "solver gave up: no-solution";
    point.cacheHit = true;
    point.propagators = {{"disjunctive", 11, 3, 0.005}};
    std::string text = pointsToJson({point}).dump();
    EXPECT_NE(text.find("\"note\""), std::string::npos);
    EXPECT_NE(text.find("solver gave up"), std::string::npos);
    EXPECT_NE(text.find("\"cache_hit\""), std::string::npos);
    EXPECT_NE(text.find("\"nodes\""), std::string::npos);
    EXPECT_NE(text.find("\"propagators\""), std::string::npos);
    EXPECT_NE(text.find("\"disjunctive\""), std::string::npos);
    EXPECT_NE(text.find("\"invocations\""), std::string::npos);
}

TEST(Report, SweepSummaryTalliesTelemetry)
{
    DsePoint ok_point;
    ok_point.ok = true;
    ok_point.solves = 2;
    ok_point.nodes = 100;
    ok_point.backtracks = 10;
    ok_point.solveSeconds = 0.5;
    ok_point.warmStarted = true;
    ok_point.propagators = {{"timetable", 50, 8, 0.1}};
    DsePoint cached = ok_point;
    cached.cacheHit = true;
    cached.solves = 0;
    cached.nodes = 0;
    cached.backtracks = 0;
    cached.solveSeconds = 0.0;
    cached.warmStarted = false;
    cached.propagators.clear();
    DsePoint invalid; // Spec validation failure: zero solves.
    invalid.note = "no option within budget";
    DsePoint unsolved; // Solver ran and gave up.
    unsolved.solves = 1;
    unsolved.nodes = 7;
    unsolved.note = "solver gave up: no-solution";

    SweepSummary summary =
        summarizeSweep({ok_point, cached, invalid, unsolved});
    EXPECT_EQ(summary.points, 4);
    EXPECT_EQ(summary.ok, 2);
    EXPECT_EQ(summary.infeasible, 1);
    EXPECT_EQ(summary.noSolution, 1);
    EXPECT_EQ(summary.cacheHits, 1);
    EXPECT_EQ(summary.warmStarted, 1);
    EXPECT_EQ(summary.pruned, 0);
    EXPECT_EQ(summary.solves, 3);
    EXPECT_EQ(summary.nodes, 107);
    EXPECT_EQ(summary.backtracks, 10);
    EXPECT_NEAR(summary.solveSeconds, 0.5, 1e-12);
    ASSERT_EQ(summary.propagators.size(), 1u);
    EXPECT_EQ(summary.propagators[0].name, "timetable");
    EXPECT_EQ(summary.propagators[0].invocations, 50);
    EXPECT_EQ(summary.propagators[0].prunings, 8);

    std::string line = toString(summary);
    EXPECT_NE(line.find("4 points"), std::string::npos);
    EXPECT_NE(line.find("cache hits"), std::string::npos);
    EXPECT_NE(line.find("propagation: timetable 50/8"),
              std::string::npos);
}

TEST(Report, JsonHasOneEntryPerPoint)
{
    auto points = smallSweep();
    Json json = pointsToJson(points);
    EXPECT_TRUE(json.isArray());
    EXPECT_EQ(json.size(), points.size());
    std::string text = json.dump();
    EXPECT_NE(text.find("\"speedup\""), std::string::npos);
    EXPECT_NE(text.find("\"mix\""), std::string::npos);
}

TEST(Report, OffloadAnalysisOnMixedSoc)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto priority = workload::dsaPriorityOrder();
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 16;
    soc.dsas = {{16, priority[0]}, {16, priority[1]}};
    EngineOptions engine = EngineOptions::explorationMode();
    engine.solver.maxSeconds = 2.0;
    EvalResult result =
        evaluate(buildProblem(wl, soc, arch::Constraints{}), engine);
    ASSERT_TRUE(result.ok);
    OffloadAnalysis analysis = analyzeOffload(result.schedule);
    // The DSAs hold LUD and HS - the two longest kernels - so they
    // absorb a large share of the accelerated compute time.
    EXPECT_GT(analysis.dsaBusyS, 0.0);
    EXPECT_GT(analysis.gpuBusyS, 0.0);
    EXPECT_GT(analysis.dsaShare, 0.3);
    EXPECT_LT(analysis.dsaShare, 1.0);
}

TEST(Report, OffloadAnalysisOnGpuOnlySoc)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 64;
    EngineOptions engine = EngineOptions::explorationMode();
    engine.solver.maxSeconds = 2.0;
    EvalResult result =
        evaluate(buildProblem(wl, soc, arch::Constraints{}), engine);
    ASSERT_TRUE(result.ok);
    OffloadAnalysis analysis = analyzeOffload(result.schedule);
    EXPECT_DOUBLE_EQ(analysis.dsaBusyS, 0.0);
    EXPECT_DOUBLE_EQ(analysis.dsaShare, 0.0);
    EXPECT_GT(analysis.gpuBusyS, 0.0);
}

TEST(Report, EmptyScheduleAnalysisIsZero)
{
    Schedule schedule;
    OffloadAnalysis analysis = analyzeOffload(schedule);
    EXPECT_DOUBLE_EQ(analysis.gpuBusyS, 0.0);
    EXPECT_DOUBLE_EQ(analysis.dsaBusyS, 0.0);
    EXPECT_DOUBLE_EQ(analysis.dsaShare, 0.0);
}

} // anonymous namespace
} // namespace dse
} // namespace hilp
