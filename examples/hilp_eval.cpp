/**
 * @file
 * hilp_eval: a command-line front end for HILP.
 *
 * Evaluates a workload on an SoC and prints the near-optimal
 * schedule, its optimality bound, and the WLP metric - without
 * writing any C++. Workloads are the built-in Rodinia variants or a
 * CSV file in the workload/io.hh format; SoCs use the paper's
 * "(c4,g16,d2^16)" labels.
 *
 * Usage:
 *   hilp_eval [options]
 *     --workload rodinia|default|optimized|<file.csv>
 *     --soc "(c4,g16,d2^16)"      SoC configuration label
 *     --power <watts>             power budget (default 600)
 *     --bandwidth <GB/s>          memory bandwidth (default 800)
 *     --advantage <x>             DSA efficiency advantage (default 4)
 *     --mode validation|exploration  engine preset (default expl.)
 *     --budget <seconds>          solver budget per solve (default 2)
 *     --model hilp|ma|gables      performance model (default hilp)
 *     --gantt                     print the schedule Gantt chart
 *
 * Examples:
 *   hilp_eval --soc "(c4,g16,d2^16)" --workload default --gantt
 *   hilp_eval --soc "(c4,g64,d0^0)" --power 50 --mode validation
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/parse.hh"
#include "baselines/gables.hh"
#include "baselines/multiamdahl.hh"
#include "hilp/builder.hh"
#include "hilp/engine.hh"
#include "hilp/export.hh"
#include "support/logging.hh"
#include "support/str.hh"
#include "workload/io.hh"
#include "workload/rodinia.hh"

using namespace hilp;

namespace {

struct CliOptions
{
    std::string workload = "default";
    std::string soc = "(c4,g16,d2^16)";
    double powerW = 600.0;
    double bandwidthGBs = 800.0;
    double advantage = 4.0;
    std::string mode = "exploration";
    double budgetS = 2.0;
    std::string model = "hilp";
    bool gantt = false;
    bool json = false;
    int copies = 1;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s [--workload rodinia|default|optimized|file.csv]\n"
        "          [--soc \"(c4,g16,d2^16)\"] [--power W]\n"
        "          [--bandwidth GB/s] [--advantage x]\n"
        "          [--mode validation|exploration] [--budget s]\n"
        "          [--model hilp|ma|gables] [--gantt] [--json]\n"
        "          [--copies n]\n", argv0);
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload") {
            options.workload = value();
        } else if (arg == "--soc") {
            options.soc = value();
        } else if (arg == "--power") {
            options.powerW = std::atof(value().c_str());
        } else if (arg == "--bandwidth") {
            options.bandwidthGBs = std::atof(value().c_str());
        } else if (arg == "--advantage") {
            options.advantage = std::atof(value().c_str());
        } else if (arg == "--mode") {
            options.mode = value();
        } else if (arg == "--budget") {
            options.budgetS = std::atof(value().c_str());
        } else if (arg == "--model") {
            options.model = toLower(value());
        } else if (arg == "--gantt") {
            options.gantt = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg == "--copies") {
            options.copies = std::atoi(value().c_str());
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
        }
    }
    return options;
}

workload::Workload
loadWorkload(const std::string &spec, int copies)
{
    std::string lowered = toLower(spec);
    if (lowered == "rodinia")
        return workload::makeWorkload(workload::Variant::Rodinia,
                                      copies);
    if (lowered == "default")
        return workload::makeWorkload(workload::Variant::Default,
                                      copies);
    if (lowered == "optimized")
        return workload::makeWorkload(workload::Variant::Optimized,
                                      copies);
    std::ifstream file(spec);
    if (!file)
        fatal("cannot open workload file '%s'", spec.c_str());
    std::stringstream buffer;
    buffer << file.rdbuf();
    workload::ParseResult parsed =
        workload::workloadFromCsv(buffer.str(), spec);
    if (!parsed.ok)
        fatal("failed to parse '%s': %s", spec.c_str(),
              parsed.error.c_str());
    return parsed.workload;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliOptions cli = parseArgs(argc, argv);

    workload::Workload wl = loadWorkload(cli.workload, cli.copies);
    double reference = workload::sequentialCpuTimeS(wl);

    arch::SocParseResult soc = arch::parseSocName(
        cli.soc, workload::dsaPriorityOrder(), cli.advantage);
    if (!soc.ok)
        fatal("bad --soc '%s': %s", cli.soc.c_str(),
              soc.error.c_str());

    arch::Constraints constraints;
    constraints.powerBudgetW = cli.powerW;
    constraints.memory.bandwidthGBs = cli.bandwidthGBs;

    ProblemSpec spec = buildProblem(wl, soc.config, constraints);
    std::string issue = spec.validate();
    if (!issue.empty())
        fatal("workload is unschedulable on this SoC: %s",
              issue.c_str());

    std::printf("workload : %s (%d phases, sequential ref %.1f s)\n",
                wl.name.c_str(), spec.numPhases(), reference);
    std::printf("soc      : %s (area %.1f mm2)\n",
                soc.config.name().c_str(), soc.config.areaMm2());
    std::printf("budgets  : %.0f W, %.0f GB/s\n\n", cli.powerW,
                cli.bandwidthGBs);

    if (cli.model == "ma") {
        baselines::MaResult result =
            baselines::evaluateMultiAmdahl(spec);
        if (!result.ok)
            fatal("MultiAmdahl could not schedule the workload");
        std::printf("MultiAmdahl: %.1f s (speedup %.2f, WLP 1.0)\n",
                    result.makespanS, reference / result.makespanS);
        if (cli.gantt)
            std::printf("\n%s", result.schedule.gantt().c_str());
        return 0;
    }

    EngineOptions engine = cli.mode == "validation"
        ? EngineOptions::validationMode()
        : EngineOptions::explorationMode();
    engine.solver.maxSeconds = cli.budgetS;
    engine.escalations = 1;

    EvalResult result = cli.model == "gables"
        ? baselines::evaluateGables(spec, engine)
        : evaluate(spec, engine);
    if (!result.ok)
        fatal("no schedule found within the horizon");

    std::printf("%-8s : %.1f s (speedup %.2f)\n",
                cli.model == "gables" ? "Gables" : "HILP",
                result.makespanS, reference / result.makespanS);
    std::printf("bound    : %.1f s (gap %.1f%%, %s)\n",
                result.lowerBoundS, result.gap * 100.0,
                cp::toString(result.status));
    std::printf("avg WLP  : %.2f (peak %d)\n", result.averageWlp,
                result.schedule.peakWlp());
    std::printf("step     : %.3g s (%d refinements)\n", result.stepS,
                result.refinements);
    if (cli.gantt)
        std::printf("\n%s", result.schedule.gantt().c_str());
    if (cli.json)
        std::printf("\n%s\n",
                    evalResultToJson(result).dump(2).c_str());
    return 0;
}
