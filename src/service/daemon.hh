/**
 * @file
 * hilpd's connection handling: the daemon loop that accepts stream
 * connections and speaks the NDJSON protocol (protocol.hh) against a
 * shared EvalService.
 *
 * Every connection gets its own handler thread; eval and sweep
 * requests go through the service's admission-controlled job queue
 * (so a flooded daemon rejects with a reason instead of queueing
 * unboundedly), while stats and shutdown are answered inline. The
 * per-connection handler is exposed directly (serveConnection) so
 * tests can drive the full protocol over a socketpair without
 * binding anything.
 */

#ifndef HILP_SERVICE_DAEMON_HH
#define HILP_SERVICE_DAEMON_HH

#include <atomic>
#include <mutex>

#include "eval_service.hh"
#include "support/json.hh"
#include "support/net.hh"

namespace hilp {
namespace dse {
class Coordinator;
} // namespace dse

namespace service {

namespace protocol {
struct Request;
} // namespace protocol

/** Telemetry knobs for the daemon's request handling. */
struct DaemonOptions
{
    /**
     * Slow-request SLO in milliseconds; a request whose total
     * (admission to done) exceeds it is marked slow in the flight
     * recorder and, when tracing is recording, gets its span tree
     * dumped as a Chrome-trace file. 0 disables the capture.
     */
    double sloMs = 0.0;
    /** Directory the slow-request trace dumps land in. */
    std::string dumpDir = ".";
    /**
     * Per-connection read timeout in seconds; a peer that fails to
     * deliver a complete request line within the window is dropped
     * (counted as hilpd.peers.timed_out) instead of pinning its
     * handler thread forever. 0 waits forever (library default; the
     * hilpd binary defaults to 300s).
     */
    double readTimeoutS = 0.0;
};

class Daemon
{
  public:
    explicit Daemon(EvalService &service,
                    const DaemonOptions &options = {})
        : service_(service), options_(options)
    {}

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Serve one established connection until the peer disconnects or
     * sends a shutdown request. Returns true when the connection
     * requested daemon shutdown (the stop flag is then already set).
     * Thread-safe: the daemon runs one handler per connection.
     */
    bool serveConnection(net::Socket socket);

    /**
     * Accept-and-serve loop: one handler thread per connection,
     * until stop() is called or a connection requests shutdown. The
     * listener is closed (and its unix socket path unlinked) before
     * returning; in-flight requests finish first.
     */
    void run(net::Listener &listener);

    /**
     * Request the accept loop to exit. Callable from any thread and
     * from signal handlers' deferred context (it only flips an atomic
     * and shuts down the listening socket).
     */
    void stop();

    bool stopping() const { return stop_.load(); }

    // Distributed-sweep hosting (see dse/distribute.hh). The daemon
    // does not own the coordinator; the host registers one per sweep
    // and the lease/submit/heartbeat/drain ops are served against it.
    // Registration changes block until no coordinator op is in
    // flight, so the host may destroy a coordinator as soon as the
    // clearing call returns.

    /**
     * Serve lease/submit/heartbeat/drain against this coordinator;
     * params is the shared sweep body each lease grant embeds (see
     * protocol::sweepParamsJson).
     */
    void setCoordinator(dse::Coordinator *coordinator, Json params);

    /**
     * Unregister the coordinator; workers asking for work are told
     * to wait (the host is between sweeps).
     */
    void clearCoordinator();

    /**
     * Unregister permanently: workers asking for work are told the
     * run is complete and exit.
     */
    void retireCoordinator();

  private:
    void finishRequest(RequestSummary &summary, bool ok,
                       const std::string &error, size_t points,
                       int64_t queue_wait_us, int64_t solve_us,
                       int64_t serialize_us, int64_t total_us);
    void handleCoordinatorOp(const protocol::Request &request,
                             net::LineChannel &channel);

    EvalService &service_;
    const DaemonOptions options_;
    std::atomic<bool> stop_{false};
    std::atomic<int> listenerFd_{-1};

    /** Held across every coordinator op; see setCoordinator. */
    std::mutex coordMutex_;
    dse::Coordinator *coordinator_ = nullptr;
    Json coordParams_;
    bool coordRetired_ = false;
};

} // namespace service
} // namespace hilp

#endif // HILP_SERVICE_DAEMON_HH
