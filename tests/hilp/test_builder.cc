/** @file Unit tests for problem lowering (the T/B/P/E/U matrices). */

#include <gtest/gtest.h>

#include "arch/dvfs.hh"
#include "hilp/builder.hh"
#include "workload/rodinia.hh"
#include "workload/scaling.hh"

namespace hilp {
namespace {

using workload::Variant;
using workload::makeWorkload;
using workload::rodiniaIndex;

/** Find a phase spec by name; fails the test when missing. */
const PhaseSpec &
findPhase(const ProblemSpec &spec, const std::string &name)
{
    for (const AppSpec &app : spec.apps)
        for (const PhaseSpec &phase : app.phases)
            if (phase.name == name)
                return phase;
    ADD_FAILURE() << "phase " << name << " not found";
    static PhaseSpec missing;
    return missing;
}

arch::SocConfig
paperSoc()
{
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 16;
    auto priority = workload::dsaPriorityOrder();
    soc.dsas = {{16, priority[0]}, {16, priority[1]}};
    return soc;
}

TEST(Builder, SpecShapeMatchesWorkloadAndSoc)
{
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Default),
                                    paperSoc(), arch::Constraints{});
    EXPECT_EQ(spec.apps.size(), 10u);
    EXPECT_EQ(spec.numPhases(), 30);
    EXPECT_EQ(spec.deviceNames.size(), 3u); // GPU + 2 DSAs.
    EXPECT_DOUBLE_EQ(spec.cpuCores, 4.0);
    EXPECT_DOUBLE_EQ(spec.powerBudgetW, 600.0);
    EXPECT_DOUBLE_EQ(spec.bandwidthGBs, 800.0);
    EXPECT_EQ(spec.validate(), "");
}

TEST(Builder, SequentialPhasesAreCpuOnly)
{
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Default),
                                    paperSoc(), arch::Constraints{});
    const PhaseSpec &setup = findPhase(spec, "HS.setup");
    ASSERT_EQ(setup.options.size(), 1u);
    EXPECT_EQ(setup.options[0].device, kCpuPool);
    EXPECT_DOUBLE_EQ(setup.options[0].cpuCores, 1.0);
    EXPECT_NEAR(setup.options[0].timeS, 80.8 / 5.0, 1e-9);
    EXPECT_NEAR(setup.options[0].powerW, arch::kCpuCorePowerW,
                1e-9);
}

TEST(Builder, UnconstrainedBudgetPrunesToTopClock)
{
    // At 600 W nothing binds: each device keeps only its fastest
    // operating point, which is the paper's idealized-DVFS optimum.
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Default),
                                    paperSoc(), arch::Constraints{});
    const PhaseSpec &hs = findPhase(spec, "HS.compute");
    int gpu_options = 0;
    int dsa_options = 0;
    for (const UnitOption &option : hs.options) {
        if (option.label.rfind("GPU", 0) == 0)
            ++gpu_options;
        if (option.label.rfind("DSA", 0) == 0)
            ++dsa_options;
    }
    EXPECT_EQ(gpu_options, 1);
    EXPECT_EQ(dsa_options, 1);
}

TEST(Builder, DsaMatchesOnlyItsTarget)
{
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Default),
                                    paperSoc(), arch::Constraints{});
    // The two DSAs target LUD and HS; BFS must not see them.
    const PhaseSpec &bfs = findPhase(spec, "BFS.compute");
    for (const UnitOption &option : bfs.options)
        EXPECT_EQ(option.label.rfind("DSA", 0), std::string::npos)
            << option.label;
    const PhaseSpec &lud = findPhase(spec, "LUD.compute");
    bool has_dsa = false;
    for (const UnitOption &option : lud.options)
        has_dsa = has_dsa || option.label.rfind("DSA", 0) == 0;
    EXPECT_TRUE(has_dsa);
}

TEST(Builder, DsaPerformsLikeAdvantageTimesPes)
{
    // Key reverse-engineered semantic: a 16-PE DSA at 4x advantage
    // matches a 64-SM GPU's execution time.
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Default),
                                    paperSoc(), arch::Constraints{});
    const PhaseSpec &hs = findPhase(spec, "HS.compute");
    const workload::PhaseProfile hs_profile =
        workload::makeRodiniaApp(rodiniaIndex("HS"), 5.0).phases[1];
    double gpu64_time =
        workload::acceleratorTimeS(hs_profile, 64, 765);
    for (const UnitOption &option : hs.options) {
        if (option.label.rfind("DSA", 0) == 0)
            EXPECT_NEAR(option.timeS, gpu64_time, 1e-9);
    }
}

TEST(Builder, DsaPowerIsQuarterOfEqualPerformanceGpu)
{
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Default),
                                    paperSoc(), arch::Constraints{});
    const PhaseSpec &hs = findPhase(spec, "HS.compute");
    for (const UnitOption &option : hs.options) {
        if (option.label.rfind("DSA", 0) == 0) {
            EXPECT_NEAR(option.powerW, arch::gpuPowerW(64, 765) / 4.0,
                        1e-9);
        }
    }
}

TEST(Builder, TightPowerBudgetKeepsLowClockOptions)
{
    arch::Constraints constraints;
    constraints.powerBudgetW = 50.0;
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 64;
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Optimized),
                                    soc, constraints);
    const PhaseSpec &hs = findPhase(spec, "HS.compute");
    int gpu_options = 0;
    double max_power = 0.0;
    for (const UnitOption &option : hs.options) {
        if (option.label.rfind("GPU", 0) == 0) {
            ++gpu_options;
            max_power = std::max(max_power, option.powerW);
        }
    }
    // Paper anecdote: 50 W admits the 64-SM GPU up to 300 MHz,
    // i.e. the 210/240/300 operating points.
    EXPECT_EQ(gpu_options, 3);
    EXPECT_LE(max_power, 50.0);
}

TEST(Builder, CpuComputeOptionsUsePowersOfTwo)
{
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Default),
                                    paperSoc(), arch::Constraints{});
    const PhaseSpec &hs = findPhase(spec, "HS.compute");
    std::vector<double> cores;
    for (const UnitOption &option : hs.options)
        if (option.device == kCpuPool)
            cores.push_back(option.cpuCores);
    EXPECT_EQ(cores, (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(Builder, NoGpuSocHasNoGpuOptions)
{
    arch::SocConfig soc;
    soc.cpuCores = 2;
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Default),
                                    soc, arch::Constraints{});
    EXPECT_TRUE(spec.deviceNames.empty());
    for (const AppSpec &app : spec.apps)
        for (const PhaseSpec &phase : app.phases)
            for (const UnitOption &option : phase.options)
                EXPECT_EQ(option.device, kCpuPool);
}

TEST(Builder, ExplicitClockSubsetIsHonoured)
{
    BuildOptions options;
    options.clocksMhz = {300, 765};
    options.pruneDominated = false;
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Default),
                                    paperSoc(), arch::Constraints{},
                                    options);
    const PhaseSpec &hs = findPhase(spec, "HS.compute");
    int gpu_options = 0;
    for (const UnitOption &option : hs.options)
        if (option.label.rfind("GPU", 0) == 0)
            ++gpu_options;
    EXPECT_EQ(gpu_options, 2);
}

TEST(Builder, PruningPreservesBestUnconstrainedOption)
{
    // With and without pruning, the fastest option per device of
    // every phase must be identical under an unconstrained budget.
    BuildOptions no_prune;
    no_prune.pruneDominated = false;
    ProblemSpec full = buildProblem(makeWorkload(Variant::Default),
                                    paperSoc(), arch::Constraints{},
                                    no_prune);
    ProblemSpec pruned = buildProblem(makeWorkload(Variant::Default),
                                      paperSoc(), arch::Constraints{});
    for (size_t a = 0; a < full.apps.size(); ++a) {
        for (size_t p = 0; p < full.apps[a].phases.size(); ++p) {
            double best_full = 1e300;
            for (const UnitOption &option :
                 full.apps[a].phases[p].options)
                best_full = std::min(best_full, option.timeS);
            double best_pruned = 1e300;
            for (const UnitOption &option :
                 pruned.apps[a].phases[p].options)
                best_pruned = std::min(best_pruned, option.timeS);
            EXPECT_DOUBLE_EQ(best_full, best_pruned);
        }
    }
}

TEST(Builder, BandwidthBudgetDropsDemandingOptions)
{
    arch::Constraints constraints;
    constraints.memory.bandwidthGBs = 50.0;
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 16;
    ProblemSpec spec = buildProblem(makeWorkload(Variant::Optimized),
                                    soc, constraints);
    // SC demands ~216 GB/s on a 16-SM GPU: no GPU option survives.
    const PhaseSpec &sc = findPhase(spec, "SC.compute");
    for (const UnitOption &option : sc.options)
        EXPECT_EQ(option.device, kCpuPool) << option.label;
    EXPECT_EQ(spec.validate(), ""); // CPU fallback keeps it valid.
}

} // anonymous namespace
} // namespace hilp
