#include "client.hh"

#include <unordered_map>

#include "dse/checkpoint.hh"
#include "dse/pareto.hh"
#include "support/str.hh"

namespace hilp {
namespace service {

namespace {

std::string
typeOf(const Json &json)
{
    if (!json.isObject())
        return "";
    const Json *type = json.find("type");
    return type && type->isString() ? type->stringValue() : "";
}

/** The error of a done line ("" when it reports success). */
std::string
doneError(const Json &done)
{
    const Json *ok = done.find("ok");
    if (ok && ok->isBool() && ok->boolValue())
        return "";
    const Json *error = done.find("error");
    return error && error->isString() ? error->stringValue()
                                      : "request failed";
}

} // anonymous namespace

bool
ServiceClient::connect(const std::string &address, std::string *error)
{
    net::Socket socket = net::connectTo(address, error);
    if (!socket.valid())
        return false;
    channel_ = net::LineChannel(std::move(socket));
    return true;
}

bool
ServiceClient::sweep(const protocol::Request &request,
                     const std::vector<arch::SocConfig> &configs,
                     std::vector<dse::DsePoint> *points,
                     std::string *error,
                     const std::function<void(const std::string &)>
                         &on_record)
{
    if (!connected()) {
        if (error)
            *error = "not connected";
        return false;
    }

    protocol::Request wire = request;
    wire.configNames.clear();
    wire.configNames.reserve(configs.size());
    std::unordered_map<std::string, std::vector<size_t>> byName;
    for (size_t i = 0; i < configs.size(); ++i) {
        wire.configNames.push_back(configs[i].name());
        byName[configs[i].name()].push_back(i);
    }

    if (!channel_.writeLine(protocol::encodeRequest(wire))) {
        if (error)
            *error = "write failed (daemon gone?)";
        return false;
    }

    points->assign(configs.size(), dse::DsePoint());
    std::string line;
    while (channel_.readLine(&line)) {
        if (line.empty())
            continue;
        Json json;
        if (!Json::parse(line, &json)) {
            if (error)
                *error = format("bad response line: %s", line.c_str());
            return false;
        }
        std::string type = typeOf(json);
        if (type == "done") {
            const Json *traceId = json.find("trace_id");
            if (traceId && traceId->isNumber())
                lastTraceId_ = static_cast<uint64_t>(
                    traceId->numberValue());
            std::string failure = doneError(json);
            if (!failure.empty()) {
                if (error)
                    *error = failure;
                return false;
            }
            return true;
        }
        if (type != "point")
            continue; // Future response kinds: skip, don't choke.

        if (on_record)
            on_record(line);

        uint64_t key = 0;
        dse::DsePoint point;
        bool has_schedule = false;
        if (!dse::parsePointRecord(line, &key, &point, nullptr,
                                   &has_schedule)) {
            if (error)
                *error = format("bad point record: %s", line.c_str());
            return false;
        }
        const Json *name = json.find("config");
        if (!name || !name->isString())
            continue;
        auto it = byName.find(name->stringValue());
        if (it == byName.end() || it->second.empty())
            continue; // A point we did not ask for; ignore.
        size_t index = it->second.front();
        it->second.erase(it->second.begin());
        // Structural fields derive from the local config (the record
        // only carries the label), exactly like a checkpoint resume.
        point.config = configs[index];
        point.areaMm2 = configs[index].areaMm2();
        point.mix = dse::classifyAccelMix(configs[index]);
        (*points)[index] = std::move(point);
    }
    if (error)
        *error = "connection closed before the done line";
    return false;
}

bool
ServiceClient::stats(Json *out, std::string *error)
{
    if (!connected()) {
        if (error)
            *error = "not connected";
        return false;
    }
    protocol::Request request;
    request.op = protocol::Op::Stats;
    if (!channel_.writeLine(protocol::encodeRequest(request))) {
        if (error)
            *error = "write failed (daemon gone?)";
        return false;
    }
    bool have_stats = false;
    std::string line;
    while (channel_.readLine(&line)) {
        if (line.empty())
            continue;
        Json json;
        if (!Json::parse(line, &json))
            continue;
        std::string type = typeOf(json);
        if (type == "stats") {
            const Json *stats = json.find("stats");
            if (stats) {
                *out = *stats;
                have_stats = true;
            }
        } else if (type == "done") {
            std::string failure = doneError(json);
            if (!failure.empty()) {
                if (error)
                    *error = failure;
                return false;
            }
            if (!have_stats && error)
                *error = "done without a stats payload";
            return have_stats;
        }
    }
    if (error)
        *error = "connection closed before the done line";
    return false;
}

bool
ServiceClient::requestShutdown(std::string *error)
{
    if (!connected()) {
        if (error)
            *error = "not connected";
        return false;
    }
    protocol::Request request;
    request.op = protocol::Op::Shutdown;
    if (!channel_.writeLine(protocol::encodeRequest(request))) {
        if (error)
            *error = "write failed (daemon gone?)";
        return false;
    }
    std::string line;
    while (channel_.readLine(&line)) {
        if (line.empty())
            continue;
        Json json;
        if (!Json::parse(line, &json))
            continue;
        if (typeOf(json) == "done") {
            std::string failure = doneError(json);
            if (!failure.empty()) {
                if (error)
                    *error = failure;
                return false;
            }
            return true;
        }
    }
    if (error)
        *error = "connection closed before the done line";
    return false;
}

} // namespace service
} // namespace hilp
