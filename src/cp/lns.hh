/**
 * @file
 * Large-neighborhood search around an incumbent schedule.
 *
 * Classic LNS loop (Shaw-style destroy/repair): each iteration frees
 * a neighborhood of the incumbent - a time window around a random
 * task, one device group's tasks, or a random subset - and repairs
 * it with the serial-SGS list scheduler, keeping the fixed tasks
 * pinned to their incumbent modes while the freed tasks re-choose
 * modes and get permuted within the incumbent's priority order. The
 * repair is a full feasible reconstruction, so every accepted
 * schedule is valid; acceptance is monotone (never worse than the
 * incumbent), which makes the whole pass safe to bolt onto any
 * degraded path. A small warm-started branch-and-bound polish
 * ("repair = list-schedule + bounded B&B") runs mid-loop and at the
 * end to escape SGS-space local minima; warm-starting guarantees it
 * too can only improve.
 *
 * This lever complements no-good learning: no-goods make the *exact*
 * search cheaper, LNS makes the *incumbent* better when the exact
 * search cannot finish - together they close explore-class instances
 * at their certified gap far faster than either alone.
 */

#ifndef HILP_CP_LNS_HH
#define HILP_CP_LNS_HH

#include <chrono>
#include <cstdint>

#include "model.hh"

namespace hilp {
namespace cp {

/** Budgets and knobs for one lnsImprove call. */
struct LnsOptions
{
    /** Destroy/repair iterations. */
    int iterations = 256;
    /** Wall-clock budget for the whole pass, in seconds. */
    double maxSeconds = 1.0;
    /** Absolute cut-off shared with the enclosing evaluation. */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /** Seed for the destroy-operator randomness. */
    uint64_t seed = 1;
    /**
     * Node budget for each bounded branch-and-bound polish of the
     * incumbent (one mid-loop, one at the end). 0 disables polishing
     * and leaves pure destroy/repair.
     */
    int64_t polishNodes = 2000;
    /**
     * Stop as soon as (makespan - lowerBound) / makespan <=
     * targetGap (with lowerBound > 0); 0 keeps improving until the
     * budgets run out.
     */
    double targetGap = 0.0;
    /** Certified lower bound used for the targetGap stop. */
    Time lowerBound = 0;
    /** Let the polish B&B use no-good recording. */
    bool useNogoods = true;
    /** Memory layout for the polish B&B (see SearchLimits). */
    bool packedLayout = true;
};

/** Outcome of an LNS pass. */
struct LnsResult
{
    /** Best schedule found; never worse than the starting incumbent. */
    ScheduleVec schedule;
    Time makespan = 0;
    /** Destroy/repair iterations actually run. */
    int iterations = 0;
    /** Iterations that strictly improved the incumbent. */
    int improvements = 0;
    /** Bounded B&B polish calls that ran. */
    int polishes = 0;
    /** Nodes spent across the polish calls. */
    int64_t polishNodes = 0;
    /**
     * Order-sensitive digest of the destroy decisions (operator and
     * freed task set, per iteration). Two passes replayed the same
     * destroy trajectory iff their digests are equal - the handle the
     * retry-seeding regression test grips.
     */
    uint64_t trajectoryDigest = 0;
};

/**
 * Improve `incumbent` (which must be feasible for `model`) by
 * destroy/repair LNS. The result's schedule is always feasible and
 * its makespan is <= the incumbent's - acceptance is monotone and
 * the polish is warm-started - so callers can substitute the result
 * unconditionally.
 */
LnsResult lnsImprove(const Model &model, const ScheduleVec &incumbent,
                     const LnsOptions &options);

} // namespace cp
} // namespace hilp

#endif // HILP_CP_LNS_HH
