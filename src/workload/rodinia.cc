#include "rodinia.hh"

#include <algorithm>
#include <numeric>

#include "scaling.hh"
#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {
namespace workload {

const std::vector<RodiniaBenchmark> &
rodiniaBenchmarks()
{
    // Table II, verbatim. Power laws are (a, b, r2) with x = SM count
    // and y normalized to the 14-SM GPU.
    static const std::vector<RodiniaBenchmark> benchmarks = {
        {"Breadth-First Search", "BFS", 95.3, 17.0, 1.0, 11.9, 86.5,
         {7.83, -0.77, 0.95}, {0.07, 0.92, 0.98}, "128M elements"},
        {"Heartwall", "HW", 8.0e-4, 78.3, 1.2, 0.2, 7.3,
         {3.77, -0.52, 0.92}, {0.84, 0.24, 0.30}, "104 frames"},
        {"Hotspot3D", "HS3D", 0.7, 49.2, 0.1, 51.2, 36.4,
         {10.33, -0.86, 1.00}, {0.14, 0.75, 1.00},
         "512x512x8, 200 iterations"},
        {"Hotspot", "HS", 80.8, 395.9, 20.5, 71.3, 40.4,
         {13.93, -1.00, 1.00}, {0.07, 1.00, 1.00},
         "16Kx16K, 512 iterations"},
        {"LavaMD", "LMD", 0.3, 163.4, 2.5, 0.3, 0.6,
         {13.98, -0.99, 1.00}, {0.10, 0.90, 1.00}, "42 1D boxes"},
        {"LU Decomposition", "LUD", 0.1, 444.2, 12.0, 0.6, 61.6,
         {10.26, -0.88, 1.00}, {0.10, 0.87, 1.00}, "matrix size 16K"},
        {"Myocyte", "MC", 0.1, 77.6, 8.3e-2, 0.6, 0.1,
         {1.01, 8.98e-06, 0.00}, {2.60, -0.28, 0.15},
         "100K span, 12 w., 0 m."},
        {"Nearest Neighbor", "NN", 1.6e-3, 159.4, 3.8e-3, 0.3, 187.6,
         {8.97, -0.82, 0.98}, {0.07, 0.95, 0.99},
         "64K size, 2K neighbors"},
        {"Pathfinder", "PF", 72.1, 14.0, 0.2, 0.3, 95.2,
         {7.27, -0.76, 0.99}, {0.27, 0.58, 0.95},
         "400K rows, 5K col., 1 pyr."},
        {"Stream Cluster", "SC", 1.0e-4, 156.0, 2.1, 0.3, 216.1,
         {5.41, -0.62, 0.87}, {0.07, 0.88, 0.96},
         "30-40 centers, 128K points"},
    };
    return benchmarks;
}

int
rodiniaIndex(const std::string &abbrev)
{
    const auto &benchmarks = rodiniaBenchmarks();
    for (size_t i = 0; i < benchmarks.size(); ++i)
        if (abbrev == benchmarks[i].abbrev)
            return static_cast<int>(i);
    fatal("unknown Rodinia benchmark abbreviation: %s", abbrev.c_str());
}

double
variantDivisor(Variant variant)
{
    switch (variant) {
      case Variant::Rodinia:
        return 1.0;
      case Variant::Default:
        return 5.0;
      case Variant::Optimized:
        return 20.0;
    }
    panic("unhandled workload variant");
}

const char *
toString(Variant variant)
{
    switch (variant) {
      case Variant::Rodinia:
        return "Rodinia";
      case Variant::Default:
        return "Default";
      case Variant::Optimized:
        return "Optimized";
    }
    panic("unhandled workload variant");
}

Application
makeRodiniaApp(int bench_id, double setup_td_divisor)
{
    const auto &benchmarks = rodiniaBenchmarks();
    hilp_assert(bench_id >= 0 &&
                bench_id < static_cast<int>(benchmarks.size()));
    hilp_assert(setup_td_divisor >= 1.0);
    const RodiniaBenchmark &bench = benchmarks[bench_id];

    Application app;
    app.name = bench.abbrev;

    PhaseProfile setup;
    setup.name = format("%s.setup", bench.abbrev);
    setup.kind = PhaseKind::Sequential;
    setup.cpuTime1 = bench.setupS / setup_td_divisor;
    app.phases.push_back(setup);

    PhaseProfile compute;
    compute.name = format("%s.compute", bench.abbrev);
    compute.kind = PhaseKind::Compute;
    compute.cpuTime1 = bench.computeCpuS;
    compute.gpuCompatible = true;
    compute.gpuTime98 = bench.computeGpuS;
    compute.gpuBwBase = bench.gpuBwGBs;
    compute.timeLaw = bench.timeLaw;
    compute.bwLaw = bench.bwLaw;
    compute.freqGamma = frequencyGamma(bench.gpuBwGBs);
    compute.dsaTarget = bench_id;
    app.phases.push_back(compute);

    PhaseProfile teardown;
    teardown.name = format("%s.teardown", bench.abbrev);
    teardown.kind = PhaseKind::Sequential;
    teardown.cpuTime1 = bench.teardownS / setup_td_divisor;
    app.phases.push_back(teardown);

    return app;
}

Workload
makeWorkload(Variant variant, int copies)
{
    hilp_assert(copies >= 1);
    Workload workload;
    workload.name = copies == 1
        ? toString(variant)
        : format("%sx%d", toString(variant), copies);
    double divisor = variantDivisor(variant);
    for (int copy = 0; copy < copies; ++copy) {
        for (size_t i = 0; i < rodiniaBenchmarks().size(); ++i) {
            Application app =
                makeRodiniaApp(static_cast<int>(i), divisor);
            if (copy > 0) {
                app.name += format("#%d", copy);
                for (PhaseProfile &phase : app.phases)
                    phase.name += format("#%d", copy);
            }
            workload.apps.push_back(std::move(app));
        }
    }
    return workload;
}

std::vector<int>
dsaPriorityOrder()
{
    const auto &benchmarks = rodiniaBenchmarks();
    std::vector<int> order(benchmarks.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return benchmarks[a].computeCpuS > benchmarks[b].computeCpuS;
    });
    return order;
}

} // namespace workload
} // namespace hilp
