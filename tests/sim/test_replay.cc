/** @file Tests for the execution simulator: replay validation and
 * the online runtime scheduler. */

#include <gtest/gtest.h>

#include "baselines/multiamdahl.hh"
#include "hilp/builder.hh"
#include "hilp/engine.hh"
#include "hilp/showcase.hh"
#include "sim/replay.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace sim {
namespace {

EngineOptions
exampleEngine()
{
    EngineOptions options;
    options.initialStepS = 1.0;
    options.horizonSteps = 64;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0;
    return options;
}

TEST(Replay, HilpScheduleValidatesCleanly)
{
    ProblemSpec spec = makeTwoAppExample();
    EvalResult result = evaluate(spec, exampleEngine());
    ASSERT_TRUE(result.ok);
    SimResult sim = replaySchedule(spec, result.schedule);
    EXPECT_TRUE(sim.ok) << sim.violation;
    EXPECT_DOUBLE_EQ(sim.makespanS, 7.0);
    // The optimal schedule co-runs the 3 W GPU and 2 W DSA.
    EXPECT_DOUBLE_EQ(sim.peakPowerW, 5.0);
    EXPECT_LE(sim.peakCpuCores, 1.0);
}

TEST(Replay, PowerConstrainedScheduleStaysInBudget)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.powerBudgetW = 3.0;
    EvalResult result = evaluate(spec, exampleEngine());
    ASSERT_TRUE(result.ok);
    SimResult sim = replaySchedule(spec, result.schedule);
    EXPECT_TRUE(sim.ok) << sim.violation;
    EXPECT_LE(sim.peakPowerW, 3.0 + 1e-9);
}

TEST(Replay, MultiAmdahlScheduleValidates)
{
    ProblemSpec spec = makeTwoAppExample();
    baselines::MaResult ma = baselines::evaluateMultiAmdahl(spec);
    ASSERT_TRUE(ma.ok);
    SimResult sim = replaySchedule(spec, ma.schedule);
    EXPECT_TRUE(sim.ok) << sim.violation;
    EXPECT_DOUBLE_EQ(sim.makespanS, 11.0);
}

TEST(Replay, DetectsDependencyViolation)
{
    ProblemSpec spec = makeTwoAppExample();
    EvalResult result = evaluate(spec, exampleEngine());
    ASSERT_TRUE(result.ok);
    Schedule broken = result.schedule;
    // Move app m's teardown to time 0, before its compute phase.
    for (ScheduledPhase &phase : broken.phases)
        if (phase.name == "m2")
            phase.startS = 0.0;
    SimResult sim = replaySchedule(spec, broken);
    EXPECT_FALSE(sim.ok);
    EXPECT_NE(sim.violation.find("dependency"), std::string::npos);
}

TEST(Replay, DetectsDeviceOverlap)
{
    ProblemSpec spec = makeTwoAppExample();
    EvalResult result = evaluate(spec, exampleEngine());
    ASSERT_TRUE(result.ok);
    Schedule broken = result.schedule;
    // Move n1 onto the DSA while m1 (already on the DSA, [1, 6)) is
    // running; n0 ends at 2, so dependencies stay satisfied and the
    // device overlap is the only defect.
    for (ScheduledPhase &phase : broken.phases) {
        if (phase.name == "n1") {
            phase.option = 2;
            phase.unitLabel = "DSA";
            phase.device = 1;
            phase.startS = 2.0;
        }
    }
    SimResult sim = replaySchedule(spec, broken);
    EXPECT_FALSE(sim.ok);
    // Either a dependency or overlap failure fires first; overlap
    // is what we planted.
    EXPECT_NE(sim.violation.find("overlap"), std::string::npos)
        << sim.violation;
}

TEST(Replay, DetectsMissingPhase)
{
    ProblemSpec spec = makeTwoAppExample();
    EvalResult result = evaluate(spec, exampleEngine());
    Schedule broken = result.schedule;
    broken.phases.pop_back();
    SimResult sim = replaySchedule(spec, broken);
    EXPECT_FALSE(sim.ok);
    EXPECT_NE(sim.violation.find("missing"), std::string::npos);
}

TEST(Replay, DetectsPowerEnvelopeViolation)
{
    ProblemSpec spec = makeTwoAppExample();
    EvalResult result = evaluate(spec, exampleEngine());
    ASSERT_TRUE(result.ok);
    SimResult ok_sim = replaySchedule(spec, result.schedule);
    ASSERT_TRUE(ok_sim.ok);
    // Shrink the budget below the measured peak and replay again.
    spec.powerBudgetW = ok_sim.peakPowerW - 0.5;
    SimResult sim = replaySchedule(spec, result.schedule);
    EXPECT_FALSE(sim.ok);
    EXPECT_NE(sim.violation.find("power"), std::string::npos);
}

TEST(Online, SolvesTheExampleWorkload)
{
    ProblemSpec spec = makeTwoAppExample();
    SimResult sim = runOnlineScheduler(spec);
    ASSERT_TRUE(sim.ok) << sim.violation;
    // Online dispatch is legal...
    SimResult replay = replaySchedule(spec, sim.schedule);
    EXPECT_TRUE(replay.ok) << replay.violation;
    // ...and cannot beat the proven optimum of 7 s.
    EXPECT_GE(sim.makespanS, 7.0 - 1e-9);
}

TEST(Online, RespectsPowerBudget)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.powerBudgetW = 3.0;
    SimResult sim = runOnlineScheduler(spec);
    ASSERT_TRUE(sim.ok) << sim.violation;
    EXPECT_LE(sim.peakPowerW, 3.0 + 1e-9);
    EXPECT_GE(sim.makespanS, 9.0 - 1e-9); // proven optimum.
}

TEST(Online, HandlesDagWorkloads)
{
    ProblemSpec spec = makeSdaProblem(SdaVariant::Baseline, 2);
    SimResult sim = runOnlineScheduler(spec);
    ASSERT_TRUE(sim.ok) << sim.violation;
    SimResult replay = replaySchedule(spec, sim.schedule);
    EXPECT_TRUE(replay.ok) << replay.violation;
}

TEST(Online, HandlesStartLags)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.apps[0].startLags = {{0, 2, 12.0}};
    SimResult sim = runOnlineScheduler(spec);
    ASSERT_TRUE(sim.ok) << sim.violation;
    SimResult replay = replaySchedule(spec, sim.schedule);
    EXPECT_TRUE(replay.ok) << replay.violation;
    EXPECT_GE(sim.makespanS, 13.0 - 1e-9);
}

TEST(Online, DispatchOrdersAllProduceValidSchedules)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig soc;
    soc.cpuCores = 2;
    soc.gpuSms = 16;
    ProblemSpec spec = buildProblem(wl, soc, arch::Constraints{});
    for (DispatchOrder order : {DispatchOrder::Fifo,
                                DispatchOrder::LongestFirst,
                                DispatchOrder::ShortestFirst}) {
        OnlineOptions options;
        options.order = order;
        SimResult sim = runOnlineScheduler(spec, options);
        ASSERT_TRUE(sim.ok)
            << toString(order) << ": " << sim.violation;
        SimResult replay = replaySchedule(spec, sim.schedule);
        EXPECT_TRUE(replay.ok)
            << toString(order) << ": " << replay.violation;
    }
}

TEST(Online, NearOptimalOfflineBoundsTheRuntimeScheduler)
{
    // The Section I argument: HILP's near-optimal schedule is the
    // target that runtime software approaches; the online greedy
    // must be no better than the certified lower bound.
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 16;
    ProblemSpec spec = buildProblem(wl, soc, arch::Constraints{});
    EngineOptions engine = EngineOptions::explorationMode();
    engine.solver.maxSeconds = 2.0;
    EvalResult offline = evaluate(spec, engine);
    ASSERT_TRUE(offline.ok);
    SimResult online = runOnlineScheduler(spec);
    ASSERT_TRUE(online.ok) << online.violation;
    EXPECT_GE(online.makespanS, offline.lowerBoundS - 1e-6);
}

} // anonymous namespace
} // namespace sim
} // namespace hilp
