/**
 * @file
 * A minimal JSON writer and reader.
 *
 * HILP's results (schedules, DSE sweeps, traces) feed external
 * plotting and analysis pipelines; this writer produces
 * standards-compliant JSON without pulling in a dependency. The
 * reader (Json::parse) exists so tests and tooling can round-trip
 * HILP's own output - e.g. validating an exported Chrome trace -
 * not as a general configuration format; HILP's input formats remain
 * CSV (workload/io.hh) and code-level builders.
 */

#ifndef HILP_SUPPORT_JSON_HH
#define HILP_SUPPORT_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hilp {

/**
 * A JSON value under construction. Build with the static factories
 * and the object()/array() helpers, then render with dump().
 */
class Json
{
  public:
    /** Construct null. */
    Json();

    static Json null();
    static Json boolean(bool value);
    static Json number(double value);
    static Json number(int64_t value);
    static Json string(std::string value);
    static Json object();
    static Json array();

    /**
     * Parse JSON text into *out. Returns false (and sets *error to a
     * position-carrying message, when given) on malformed input, in
     * which case *out is left null. Accepts exactly what dump()
     * produces plus standard JSON written by other tools; trailing
     * non-whitespace after the top-level value is an error.
     */
    static bool parse(const std::string &text, Json *out,
                      std::string *error = nullptr);

    /** Kind predicates. isNumber covers doubles and integers. */
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const
    {
        return kind_ == Kind::Number || kind_ == Kind::Integer;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Scalar accessors; panic when the kind does not match. */
    bool boolValue() const;
    double numberValue() const;  //!< Doubles and integers.
    int64_t intValue() const;    //!< Integers; doubles truncate.
    const std::string &stringValue() const;

    /**
     * Object member lookup: the value for key, or nullptr when the
     * key is absent. Panics on non-objects.
     */
    const Json *find(const std::string &key) const;

    /** Array element access; panics on non-arrays or out of range. */
    const Json &at(size_t index) const;

    /** Object members in insertion order. Panics on non-objects. */
    const std::vector<std::pair<std::string, Json>> &members() const;

    /**
     * Set a key on an object (panics on non-objects). Returns *this
     * for chaining.
     */
    Json &set(const std::string &key, Json value);

    /** Append to an array (panics on non-arrays). */
    Json &append(Json value);

    /** Number of members/elements (0 for scalars). */
    size_t size() const;

    /**
     * Render as JSON text. indent < 0 renders compactly; indent >= 0
     * pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

  private:
    enum class Kind { Null, Bool, Number, Integer, String, Object,
                      Array };

    void write(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    int64_t integer_ = 0;
    std::string string_;
    std::vector<std::pair<std::string, Json>> members_;
    std::vector<Json> elements_;
};

/** Escape a string for inclusion in JSON text (without quotes). */
std::string jsonEscape(const std::string &text);

} // namespace hilp

#endif // HILP_SUPPORT_JSON_HH
