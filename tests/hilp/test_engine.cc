/** @file End-to-end tests for the HILP engine (Section II worked
 * example, adaptive resolution, schedule lifting). */

#include <gtest/gtest.h>

#include "cp/solver.hh"
#include "hilp/engine.hh"
#include "hilp/showcase.hh"

namespace hilp {
namespace {

EngineOptions
exampleOptions()
{
    EngineOptions options;
    options.initialStepS = 1.0;
    options.horizonSteps = 64;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0;
    return options;
}

TEST(Engine, Figure2OptimalSchedule)
{
    // The paper's Section II example: optimal makespan 7 s (2.4x
    // over the naive 17 s), average WLP 1.7.
    EvalResult result = evaluate(makeTwoAppExample(),
                                 exampleOptions());
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.status, cp::SolveStatus::Optimal);
    EXPECT_DOUBLE_EQ(result.makespanS, 7.0);
    EXPECT_DOUBLE_EQ(result.lowerBoundS, 7.0);
    EXPECT_NEAR(result.averageWlp, 12.0 / 7.0, 1e-9);
    EXPECT_NEAR(kTwoAppNaiveCpuS / result.makespanS, 2.43, 0.01);
}

TEST(Engine, Figure3PowerConstrainedSchedule)
{
    // Under a 3 W budget the GPU cannot overlap with anything; the
    // paper's optimal makespan is 9 s with power capped at 3 W.
    ProblemSpec spec = makeTwoAppExample();
    spec.powerBudgetW = 3.0;
    EvalResult result = evaluate(spec, exampleOptions());
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.status, cp::SolveStatus::Optimal);
    EXPECT_DOUBLE_EQ(result.makespanS, 9.0);
    for (double watts : result.schedule.powerTrace())
        EXPECT_LE(watts, 3.0 + 1e-9);
}

TEST(Engine, ScheduleIsInternallyConsistent)
{
    EvalResult result = evaluate(makeTwoAppExample(),
                                 exampleOptions());
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.schedule.phases.size(), 6u);
    EXPECT_DOUBLE_EQ(result.schedule.makespanS(), result.makespanS);
    for (const ScheduledPhase &phase : result.schedule.phases) {
        EXPECT_GE(phase.startS, 0.0);
        EXPECT_DOUBLE_EQ(phase.startS,
                         phase.startStep * result.stepS);
        EXPECT_DOUBLE_EQ(phase.durationS,
                         phase.durationSteps * result.stepS);
    }
}

TEST(Engine, RefinementIncreasesResolution)
{
    // At 4 s steps the example finishes in ~2-3 steps, far below a
    // refinement threshold of 16, so the engine must refine.
    EngineOptions options;
    options.initialStepS = 4.0;
    options.horizonSteps = 64;
    options.refineThreshold = 16;
    options.refineFactor = 2.0;
    options.maxRefinements = 3;
    options.solver.targetGap = 0.0;
    EvalResult result = evaluate(makeTwoAppExample(), options);
    ASSERT_TRUE(result.ok);
    EXPECT_LT(result.stepS, 4.0);
    EXPECT_GT(result.refinements, 0);
    // Refined resolution recovers the exact 7 s optimum.
    EXPECT_LE(result.makespanS, 8.0);
}

TEST(Engine, NoRefinementWhenThresholdMet)
{
    EngineOptions options = exampleOptions();
    options.maxRefinements = 5;
    options.refineThreshold = 4; // 7 steps >= 4: no refinement.
    EvalResult result = evaluate(makeTwoAppExample(), options);
    ASSERT_TRUE(result.ok);
    EXPECT_DOUBLE_EQ(result.stepS, 1.0);
    EXPECT_EQ(result.refinements, 0);
}

TEST(Engine, CoarseningRecoversFromTightHorizon)
{
    // With 1 s steps and a 6-step horizon the example cannot fit
    // (optimum 7); the engine must coarsen instead of failing.
    EngineOptions options;
    options.initialStepS = 1.0;
    options.horizonSteps = 6;
    options.refineFactor = 2.0;
    options.maxRefinements = 0;
    options.maxCoarsenings = 4;
    options.solver.targetGap = 0.0;
    EvalResult result = evaluate(makeTwoAppExample(), options);
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.stepS, 1.0);
    EXPECT_LT(result.refinements, 0);
}

TEST(Engine, UnschedulableProblemReportsFailure)
{
    ProblemSpec spec = makeTwoAppExample();
    EngineOptions options;
    options.initialStepS = 0.25;
    options.horizonSteps = 4; // 1 s horizon even after coarsening...
    options.maxCoarsenings = 0;
    EvalResult result = evaluate(spec, options);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.nearOptimal());
}

TEST(Engine, ExpiredPointDeadlineDegradesGracefully)
{
    // A deadline that is already over when the evaluation starts:
    // the engine must still hand back a certified schedule (the
    // greedy fallback or a budget-capped incumbent), flagged
    // degraded, never a hard failure. The power-constrained Figure 3
    // instance guarantees a positive certified gap (the lower bounds
    // are power-blind), so the cut is always observable.
    ProblemSpec spec = makeTwoAppExample();
    spec.powerBudgetW = 3.0;
    EngineOptions options = exampleOptions();
    options.pointTimeoutS = 1e-9;
    EvalResult result = evaluate(spec, options);
    ASSERT_TRUE(result.ok);
    EXPECT_TRUE(result.degraded);
    // The degraded result keeps the contract: a real schedule with
    // a certified optimality gap against a true lower bound.
    EXPECT_GT(result.makespanS, 0.0);
    EXPECT_GE(result.gap, 0.0);
    EXPECT_LT(result.gap, 1.0);
    EXPECT_LE(result.lowerBoundS, result.makespanS + 1e-9);
    EXPECT_FALSE(result.schedule.phases.empty());
}

TEST(Engine, GenerousDeadlineDoesNotDegrade)
{
    EngineOptions options = exampleOptions();
    options.pointTimeoutS = 3600.0;
    EvalResult result = evaluate(makeTwoAppExample(), options);
    ASSERT_TRUE(result.ok);
    EXPECT_FALSE(result.degraded);
    EXPECT_EQ(result.status, cp::SolveStatus::Optimal);
    EXPECT_DOUBLE_EQ(result.makespanS, 7.0);
}

TEST(Engine, ValidationAndExplorationPresets)
{
    EngineOptions validation = EngineOptions::validationMode();
    EXPECT_DOUBLE_EQ(validation.initialStepS, 2.0);
    EXPECT_EQ(validation.horizonSteps, 1000);
    EXPECT_EQ(validation.refineThreshold, 200);
    EngineOptions exploration = EngineOptions::explorationMode();
    EXPECT_DOUBLE_EQ(exploration.initialStepS, 10.0);
    EXPECT_EQ(exploration.horizonSteps, 200);
    EXPECT_EQ(exploration.refineThreshold, 40);
}

TEST(Engine, NearOptimalPredicate)
{
    EvalResult result;
    result.ok = true;
    result.gap = 0.05;
    EXPECT_TRUE(result.nearOptimal());
    result.gap = 0.15;
    EXPECT_FALSE(result.nearOptimal());
    result.ok = false;
    result.gap = 0.0;
    EXPECT_FALSE(result.nearOptimal());
}

TEST(Engine, SdaBaselineSolves)
{
    EngineOptions options = exampleOptions();
    options.horizonSteps = 128;
    EvalResult result =
        evaluate(makeSdaProblem(SdaVariant::Baseline, 1), options);
    ASSERT_TRUE(result.ok);
    // One sample: DS (4) -> DF (2) -> computes -> PP; critical path
    // is at least 4 + 2 + 2 + 1 = 9 s on the baseline SoC.
    EXPECT_GE(result.makespanS, 9.0);
}

TEST(Engine, SdaVariantsBeatBaseline)
{
    EngineOptions options = exampleOptions();
    options.horizonSteps = 128;
    options.solver.targetGap = 0.0;
    double base =
        evaluate(makeSdaProblem(SdaVariant::Baseline, 2), options)
            .makespanS;
    double fast_cpu =
        evaluate(makeSdaProblem(SdaVariant::FastCpu, 2), options)
            .makespanS;
    double big_gpu =
        evaluate(makeSdaProblem(SdaVariant::BigGpu, 2), options)
            .makespanS;
    EXPECT_LT(fast_cpu, base);
    EXPECT_LT(big_gpu, base);
}

} // anonymous namespace
} // namespace hilp
