/**
 * @file
 * Exports of design-space-exploration results: CSV and JSON for
 * plotting Figures 7 and 8 style scatter plots externally, and the
 * computed Section VI insight metrics.
 */

#ifndef HILP_DSE_REPORT_HH
#define HILP_DSE_REPORT_HH

#include <string>
#include <vector>

#include "explore.hh"
#include "support/json.hh"

namespace hilp {
namespace dse {

/**
 * CSV export of a sweep: one row per design point with config label,
 * structural parameters, area, speedup, WLP, gap, mix class, solver
 * telemetry (status, nodes, backtracks, solves, wall time, cache /
 * warm-start / pruning flags), the aggregate propagation-engine
 * counters (propagations, prunings, prop_s), and the failure note
 * for points that could not be scheduled.
 */
std::string pointsToCsv(const std::vector<DsePoint> &points);

/** JSON export of the same data. */
Json pointsToJson(const std::vector<DsePoint> &points);

/** Aggregate solver-effort telemetry over one sweep. */
struct SweepSummary
{
    int points = 0;          //!< Design points evaluated.
    int ok = 0;              //!< Points with a schedule.
    int infeasible = 0;      //!< Rejected by spec validation.
    int noSolution = 0;      //!< Solver found no schedule.
    int cacheHits = 0;       //!< Served from the solve cache.
    int warmStarted = 0;     //!< Solves seeded by a neighbor schedule.
    int pruned = 0;          //!< Refinement skipped as dominated.
    int degraded = 0;        //!< Deadline expired; incumbent returned.
    int errored = 0;         //!< Evaluation threw (fault-isolated).
    int resumed = 0;         //!< Served from a sweep checkpoint.
    int solves = 0;          //!< Total CP solves.
    int64_t nodes = 0;       //!< Total B&B nodes.
    int64_t backtracks = 0;  //!< Total B&B backtracks.
    double solveSeconds = 0.0; //!< Total solver wall-clock.
    /** Per-propagator telemetry merged (by name) over the sweep. */
    std::vector<cp::PropagatorStats> propagators;
};

/** Tally the telemetry of a finished sweep. */
SweepSummary summarizeSweep(const std::vector<DsePoint> &points);

/** One-line human-readable rendering of a sweep summary. */
std::string toString(const SweepSummary &summary);

/** JSON rendering of a sweep summary. */
Json toJson(const SweepSummary &summary);

/**
 * Complete machine-readable sweep report: the per-point rows
 * (pointsToJson), the aggregate summary (toJson of summarizeSweep),
 * and a snapshot of the process-wide metrics registry - so one file
 * carries both the sweep's results and the observability counters
 * that produced them.
 */
Json sweepReportJson(const std::vector<DsePoint> &points);

/**
 * The Section VI accelerator-offload analysis behind Key Insight 3
 * ("the primary function of DSAs in the top-performing SoCs is to
 * offload the GPU"), computed from one evaluated schedule.
 */
struct OffloadAnalysis
{
    double gpuBusyS = 0.0;     //!< GPU busy time in the schedule.
    double dsaBusyS = 0.0;     //!< Total DSA busy time.
    double cpuComputeS = 0.0;  //!< Compute-phase time on the CPUs.
    /** Fraction of accelerated compute time the DSAs absorbed. */
    double dsaShare = 0.0;
};

/** Analyze where a schedule's compute time went. */
OffloadAnalysis analyzeOffload(const Schedule &schedule);

} // namespace dse
} // namespace hilp

#endif // HILP_DSE_REPORT_HH
