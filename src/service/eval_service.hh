/**
 * @file
 * The evaluation service: the long-lived core behind both in-process
 * DSE sweeps (dse::exploreSpace is a thin client) and the hilpd
 * daemon.
 *
 * Historically each sweep was a batch process: it created a private
 * SolveMemo, ran, and threw the cache and every warm-start schedule
 * away on exit. The EvalService inverts that ownership: it owns
 *
 *  - a byte-bounded, concurrent SolveMemo shared across requests,
 *    with keys segmented by an engine-options digest so differing
 *    requests can never observe each other's entries unsoundly;
 *  - a warm-start ScheduleStore keyed by spec fingerprint, so a
 *    re-evaluation of a known instance under *different* engine
 *    options (a memo miss by construction) still seeds its solve;
 *  - an async job queue with admission control: bounded depth,
 *    priority ordering, reject-with-reason when full; and
 *  - the sweep orchestration itself (similarity chains, dominance
 *    bound, fault isolation, heartbeat, checkpointing), extracted
 *    from dse/explore.cc.
 *
 * Threading: jobs run on a small executor crew; each sweep spins its
 * ThreadPool against the process-wide ThreadBudget exactly as the
 * batch path always has, so daemon sweeps and inner parallel solves
 * arbitrate cores instead of oversubscribing. Per-request deadlines
 * ride the existing EngineOptions::pointTimeoutS degradation path.
 */

#ifndef HILP_SERVICE_EVAL_SERVICE_HH
#define HILP_SERVICE_EVAL_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dse/explore.hh"
#include "flight_recorder.hh"
#include "hilp/engine.hh"
#include "hilp/schedule.hh"
#include "support/json.hh"

namespace hilp {
namespace service {

/**
 * Byte-bounded LRU store of solved schedules keyed by
 * ProblemSpec::fingerprint(). Unlike the SolveMemo this is *not*
 * segmented by engine options: a schedule is a warm-start hint, not
 * a result, so feeding one solved under different options (or a
 * coarser deadline) to a fresh solve affects effort only - the solve
 * still certifies its own bound. Thread-safe.
 */
class ScheduleStore
{
  public:
    /** A store capped at max_bytes; 0 is unbounded. */
    explicit ScheduleStore(size_t max_bytes = 0);

    /** Copy the stored schedule out; refreshes LRU recency. */
    bool lookup(uint64_t fingerprint, Schedule *out);

    /**
     * Insert or replace the schedule for a fingerprint, evicting
     * least-recently-used entries beyond the byte cap.
     */
    void insert(uint64_t fingerprint, const Schedule &schedule);

    size_t bytes() const;
    size_t entries() const;
    int64_t evictions() const;
    int64_t hits() const { return hits_.load(); }
    int64_t misses() const { return misses_.load(); }

    /** Approximate heap footprint of one stored schedule. */
    static size_t scheduleFootprintBytes(const Schedule &schedule);

  private:
    struct Entry
    {
        Schedule schedule;
        size_t bytes = 0;
        std::list<uint64_t>::iterator lruIt;
    };

    void evictToCapLocked();

    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, Entry> entries_;
    std::list<uint64_t> lru_;
    size_t maxBytes_ = 0;
    size_t bytes_ = 0;
    int64_t evictions_ = 0;
    std::atomic<int64_t> hits_{0};
    std::atomic<int64_t> misses_{0};
};

/** Sizing and admission-control knobs for a service instance. */
struct ServiceOptions
{
    /**
     * Executor threads draining the async job queue. Each job is one
     * request (an eval or a whole sweep); the parallelism *inside* a
     * sweep comes from its own budget-arbitrated pool, so a small
     * crew suffices.
     */
    int executors = 2;
    /** Byte cap for the shared SolveMemo (0 = unbounded). */
    size_t memoMaxBytes = 256ull << 20;
    /** Byte cap for the warm-start schedule store. */
    size_t storeMaxBytes = 64ull << 20;
    /**
     * Admission control: jobs queued (accepted but not yet running)
     * beyond this depth are rejected with a reason.
     */
    size_t maxQueueDepth = 64;
};

/**
 * One sweep request: the full input of dse::exploreSpace plus an
 * optional per-point stream sink.
 */
struct SweepRequest
{
    std::vector<arch::SocConfig> configs;
    workload::Workload workload;
    arch::Constraints constraints;
    dse::ModelKind kind = dse::ModelKind::Hilp;
    dse::DseOptions options;
    /**
     * Called once per completed point, from sweep worker threads
     * (callers serialize internally; completion order is arbitrary
     * across similarity chains). The schedule is non-null for
     * successful HILP points. This is how the daemon streams sweep
     * results back per-point as they finish.
     */
    std::function<void(const dse::DsePoint &point,
                       const Schedule *schedule)> onPoint;
    /**
     * Trace context the sweep's spans and points are stamped with
     * (trace::newTraceId(); 0 = no request scope). Worker threads
     * re-establish the scope themselves, so spans recorded inside
     * the pool nest under the owning request, and every completed
     * DsePoint carries the id into checkpoint records and streamed
     * responses.
     */
    uint64_t traceId = 0;
};

/** Outcome of submitting an async job. */
struct Admission
{
    bool accepted = false;
    std::string reason;  //!< Why the job was rejected (when not).
    uint64_t jobId = 0;  //!< Assigned id (when accepted).
};

class EvalService
{
  public:
    explicit EvalService(const ServiceOptions &options = {});
    ~EvalService();

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /**
     * Run a sweep synchronously on the calling thread, through the
     * service-owned memo (keys salted with the request's engine
     * digest) and warm-start store. Semantically dse::exploreSpace
     * with cross-request reuse.
     */
    std::vector<dse::DsePoint> sweep(const SweepRequest &request);

    /** Evaluate one configuration synchronously (same reuse). */
    dse::DsePoint eval(const arch::SocConfig &config,
                       const workload::Workload &workload,
                       const arch::Constraints &constraints,
                       dse::ModelKind kind,
                       const dse::DseOptions &options);

    /**
     * Queue a job for the executor crew. Admission control: rejects
     * (with a reason) when the queue is at maxQueueDepth or the
     * service is shutting down. Higher priority runs first; ties in
     * submission order. The job runs exactly once.
     */
    Admission submit(std::function<void()> job, int priority = 0);

    /** Block until every accepted job has finished. */
    void drain();

    /**
     * Stop accepting jobs, drain the queue, and join the executors.
     * Idempotent; the destructor also calls it.
     */
    void shutdown();

    /** Jobs accepted and not yet finished (queued + running). */
    size_t pendingJobs() const;

    SolveMemo &memo() { return memo_; }
    ScheduleStore &scheduleStore() { return store_; }
    FlightRecorder &flightRecorder() { return recorder_; }

    /**
     * Service observability snapshot: uptime, build version, memo
     * and store occupancy/hit rates, queue accounting, latency
     * histogram percentiles, flight-recorder occupancy, and the
     * thread-budget state. The daemon's `stats` response.
     */
    Json statsJson() const;

    /**
     * The /healthz body: a small liveness snapshot (queue depth,
     * memo bytes, version, uptime) cheap enough to poll every
     * second.
     */
    Json healthJson() const;

  private:
    struct Job
    {
        int priority = 0;
        uint64_t seq = 0;
        std::chrono::steady_clock::time_point enqueued;
        std::function<void()> fn;

        bool
        operator<(const Job &other) const
        {
            // priority_queue surfaces the *largest*; higher priority
            // first, then earlier submission.
            if (priority != other.priority)
                return priority < other.priority;
            return seq > other.seq;
        }
    };

    void executorLoop();

    const ServiceOptions options_;
    const std::chrono::steady_clock::time_point started_;
    SolveMemo memo_;
    ScheduleStore store_;
    FlightRecorder recorder_;

    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable idle_;
    std::priority_queue<Job> queue_;
    std::vector<std::thread> executors_;
    size_t running_ = 0;
    uint64_t nextSeq_ = 0;
    bool shutdown_ = false;
    std::atomic<int64_t> accepted_{0};
    std::atomic<int64_t> rejected_{0};
    std::atomic<int64_t> completed_{0};
};

} // namespace service
} // namespace hilp

#endif // HILP_SERVICE_EVAL_SERVICE_HH
