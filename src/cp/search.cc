#include "search.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "bounds.hh"
#include "support/logging.hh"
#include "timetable.hh"

namespace hilp {
namespace cp {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * All mutable search state lives here; the recursion mutates it with
 * exact undo on backtrack.
 */
class Searcher
{
  public:
    Searcher(const Model &model, const ScheduleVec *warm_start,
             const SearchLimits &limits)
        : model_(model),
          limits_(limits),
          table_(model),
          cp_(criticalPathData(model)),
          topo_(model.topologicalOrder()),
          startTime_(Clock::now())
    {
        const int n = model.numTasks();
        assign_.assign(n, Assignment{});
        end_.assign(n, 0);
        est_.assign(n, 0);
        remainingPreds_.assign(n, 0);
        for (int t = 0; t < n; ++t) {
            remainingPreds_[t] =
                static_cast<int>(model.predecessors(t).size()) +
                static_cast<int>(model.lagPredecessors(t).size());
        }
        eligiblePos_.assign(n, -1);
        for (int t = 0; t < n; ++t)
            if (remainingPreds_[t] == 0)
                addEligible(t);

        // Incremental energy bookkeeping: per resource, the minimum
        // energy (usage * duration) each task must eventually commit
        // and, per group, the minimum busy time of tasks pinned to
        // that group. These give cheap per-node lower bounds.
        minEnergy_.assign(n, std::vector<double>(
            model.numResources(), 0.0));
        remainingEnergy_.assign(model.numResources(), 0.0);
        placedEnergy_.assign(model.numResources(), 0.0);
        pinnedGroup_.assign(n, kNoGroup);
        groupBusy_.assign(model.numGroups(), 0);
        remainingPinned_.assign(model.numGroups(), 0);
        for (int t = 0; t < n; ++t) {
            const Task &task = model.task(t);
            for (int r = 0; r < model.numResources(); ++r) {
                double min_e = -1.0;
                for (const Mode &mode : task.modes) {
                    double e = mode.usage[r] *
                        static_cast<double>(mode.duration);
                    if (min_e < 0.0 || e < min_e)
                        min_e = e;
                }
                minEnergy_[t][r] = std::max(0.0, min_e);
                remainingEnergy_[r] += minEnergy_[t][r];
            }
            int group = task.modes[0].group;
            bool pinned = group != kNoGroup;
            for (const Mode &mode : task.modes)
                pinned = pinned && mode.group == group;
            if (pinned) {
                pinnedGroup_[t] = group;
                remainingPinned_[group] += model.minDuration(t);
            }
        }

        ub_ = model.horizon() + 1;
        if (warm_start) {
            result_.foundSolution = true;
            result_.best = *warm_start;
            result_.bestMakespan = warm_start->makespan(model);
            ub_ = result_.bestMakespan;
        }
    }

    SearchResult
    run()
    {
        if (gapReached())
            stop_ = true;
        else
            dfs(0);
        result_.exhausted = !stop_ && !limitHit_;
        return result_;
    }

  private:
    void
    addEligible(int t)
    {
        eligiblePos_[t] = static_cast<int>(eligible_.size());
        eligible_.push_back(t);
    }

    /**
     * O(1) swap-remove from the eligible set. The set's internal
     * order is irrelevant: every node copies and re-sorts it into
     * branch_tasks, so the branch order stays deterministic.
     */
    void
    removeEligible(int t)
    {
        int pos = eligiblePos_[t];
        hilp_assert(pos >= 0 && eligible_[pos] == t);
        int last = eligible_.back();
        eligible_[pos] = last;
        eligiblePos_[last] = pos;
        eligible_.pop_back();
        eligiblePos_[t] = -1;
    }

    /** True when the incumbent already satisfies the target gap. */
    bool
    gapReached() const
    {
        if (!result_.foundSolution || limits_.targetGap <= 0.0)
            return false;
        if (result_.bestMakespan <= 0)
            return true;
        double gap =
            static_cast<double>(result_.bestMakespan - limits_.lowerBound) /
            static_cast<double>(result_.bestMakespan);
        return gap <= limits_.targetGap;
    }

    /** Periodically poll the wall-clock and node budgets. */
    bool
    limitsExceeded()
    {
        if (result_.nodes >= limits_.maxNodes) {
            limitHit_ = true;
            return true;
        }
        if ((result_.nodes & 1023) == 0) {
            double elapsed = std::chrono::duration<double>(
                Clock::now() - startTime_).count();
            if (elapsed >= limits_.maxSeconds) {
                limitHit_ = true;
                return true;
            }
        }
        return false;
    }

    /**
     * Critical-path bound of the current partial schedule: scheduled
     * tasks contribute their real finish, unscheduled ones their
     * precedence-propagated earliest start plus tail.
     */
    Time
    nodeBound(Time makespan)
    {
        Time bound = std::max(makespan, limits_.lowerBound);
        // Resource energy: committed plus minimum remaining energy
        // divided by capacity bounds any completion's makespan.
        for (int r = 0; r < model_.numResources(); ++r) {
            double cap = model_.capacity(r);
            if (cap <= 0.0)
                continue;
            double energy = placedEnergy_[r] + remainingEnergy_[r];
            bound = std::max(bound, static_cast<Time>(
                std::ceil(energy / cap - 1e-9)));
        }
        // Group load: busy time already scheduled on the group plus
        // the minimum durations still pinned to it.
        for (int g = 0; g < model_.numGroups(); ++g) {
            bound = std::max(bound, groupBusy_[g] +
                             remainingPinned_[g]);
        }
        for (int t : topo_) {
            if (assign_[t].scheduled())
                continue;
            Time est = cp_.head[t];
            for (int p : model_.predecessors(t)) {
                Time ready = assign_[p].scheduled()
                    ? end_[p] : est_[p] + model_.minDuration(p);
                est = std::max(est, ready);
            }
            for (const Model::LagEdge &edge :
                 model_.lagPredecessors(t)) {
                int p = edge.other;
                Time p_start = assign_[p].scheduled()
                    ? assign_[p].start : est_[p];
                est = std::max(est, p_start + edge.lag);
            }
            est_[t] = est;
            bound = std::max(bound, est + cp_.tail[t]);
        }
        return bound;
    }

    void
    recordIncumbent(Time makespan)
    {
        result_.foundSolution = true;
        result_.best.tasks = assign_;
        result_.bestMakespan = makespan;
        ub_ = makespan;
        ++result_.solutions;
        if (gapReached())
            stop_ = true;
    }

    void
    dfs(Time makespan)
    {
        ++result_.nodes;
        if (stop_ || limitsExceeded())
            return;
        const int n = model_.numTasks();
        if (scheduled_ == n) {
            recordIncumbent(makespan);
            return;
        }
        if (nodeBound(makespan) >= ub_)
            return;

        // Branch over all eligible tasks, longest tail first.
        std::vector<int> branch_tasks = eligible_;
        std::sort(branch_tasks.begin(), branch_tasks.end(),
                  [this](int a, int b) {
                      if (cp_.tail[a] != cp_.tail[b])
                          return cp_.tail[a] > cp_.tail[b];
                      return a < b;
                  });

        for (int t : branch_tasks) {
            Time est = 0;
            for (int p : model_.predecessors(t))
                est = std::max(est, end_[p]);
            for (const Model::LagEdge &edge :
                 model_.lagPredecessors(t))
                est = std::max(est, assign_[edge.other].start +
                                    edge.lag);

            const Task &task = model_.task(t);
            // Enumerate feasible (mode, start) options; sort by
            // completion time so promising branches go first.
            struct Option
            {
                int mode;
                Time start;
                Time complete;
            };
            std::vector<Option> options;
            Time tail_after = cp_.tail[t] - model_.minDuration(t);
            for (size_t m = 0; m < task.modes.size(); ++m) {
                const Mode &mode = task.modes[m];
                Time start = table_.earliestStart(mode, est);
                if (start < 0)
                    continue;
                Time complete = start + mode.duration;
                if (complete + tail_after >= ub_)
                    continue; // Cannot beat the incumbent.
                options.push_back({static_cast<int>(m), start, complete});
            }
            std::sort(options.begin(), options.end(),
                      [](const Option &a, const Option &b) {
                          return a.complete < b.complete;
                      });

            for (const Option &opt : options) {
                const Mode &mode = task.modes[opt.mode];
                // Apply.
                table_.place(mode, opt.start);
                assign_[t] = {opt.mode, opt.start};
                end_[t] = opt.complete;
                ++scheduled_;
                for (int r = 0; r < model_.numResources(); ++r) {
                    remainingEnergy_[r] -= minEnergy_[t][r];
                    placedEnergy_[r] += mode.usage[r] *
                        static_cast<double>(mode.duration);
                }
                if (pinnedGroup_[t] != kNoGroup)
                    remainingPinned_[pinnedGroup_[t]] -=
                        model_.minDuration(t);
                if (mode.group != kNoGroup)
                    groupBusy_[mode.group] += mode.duration;
                size_t eligible_size = eligible_.size();
                removeEligible(t);
                for (int s : model_.successors(t))
                    if (--remainingPreds_[s] == 0)
                        addEligible(s);

                dfs(std::max(makespan, opt.complete));

                // Undo.
                for (int s : model_.successors(t))
                    if (remainingPreds_[s]++ == 0)
                        removeEligible(s);
                addEligible(t);
                hilp_assert(eligible_.size() == eligible_size);
                --scheduled_;
                for (int r = 0; r < model_.numResources(); ++r) {
                    remainingEnergy_[r] += minEnergy_[t][r];
                    placedEnergy_[r] -= mode.usage[r] *
                        static_cast<double>(mode.duration);
                }
                if (pinnedGroup_[t] != kNoGroup)
                    remainingPinned_[pinnedGroup_[t]] +=
                        model_.minDuration(t);
                if (mode.group != kNoGroup)
                    groupBusy_[mode.group] -= mode.duration;
                assign_[t] = Assignment{};
                end_[t] = 0;
                table_.remove(mode, opt.start);

                if (stop_ || limitHit_)
                    return;
                // Re-check the prune: the incumbent may have improved.
                if (opt.complete + tail_after >= ub_)
                    break; // Options are completion-sorted.
            }
        }
        ++result_.backtracks;
    }

    const Model &model_;
    const SearchLimits &limits_;
    Timetable table_;
    CriticalPathData cp_;
    std::vector<int> topo_;
    Clock::time_point startTime_;

    std::vector<Assignment> assign_;
    std::vector<Time> end_;
    std::vector<Time> est_;
    std::vector<int> remainingPreds_;
    std::vector<int> eligible_;
    /** Position of each task inside eligible_, or -1 when absent. */
    std::vector<int> eligiblePos_;
    int scheduled_ = 0;

    std::vector<std::vector<double>> minEnergy_;
    std::vector<double> remainingEnergy_;
    std::vector<double> placedEnergy_;
    std::vector<int> pinnedGroup_;
    std::vector<Time> groupBusy_;
    std::vector<Time> remainingPinned_;

    Time ub_ = 0;
    bool stop_ = false;
    bool limitHit_ = false;
    SearchResult result_;
};

} // anonymous namespace

SearchResult
branchAndBound(const Model &model, const ScheduleVec *warm_start,
               const SearchLimits &limits)
{
    Searcher searcher(model, warm_start, limits);
    return searcher.run();
}

} // namespace cp
} // namespace hilp
