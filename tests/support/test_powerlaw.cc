/** @file Unit tests for power-law fitting (the Table II/III method). */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/powerlaw.hh"

namespace hilp {
namespace {

TEST(PowerLaw, EvalBasic)
{
    PowerLaw law{2.0, 0.5, 1.0};
    EXPECT_NEAR(law.eval(4.0), 4.0, 1e-12);
    EXPECT_NEAR(law.eval(1.0), 2.0, 1e-12);
}

TEST(PowerLaw, ScaleFromIndependentOfCoefficient)
{
    PowerLaw a{2.0, -0.8, 1.0};
    PowerLaw b{17.0, -0.8, 1.0};
    EXPECT_NEAR(a.scaleFrom(14, 98), b.scaleFrom(14, 98), 1e-12);
}

TEST(PowerLaw, ScaleFromIdentity)
{
    PowerLaw law{3.0, -1.0, 1.0};
    EXPECT_NEAR(law.scaleFrom(42.0, 42.0), 1.0, 1e-12);
}

TEST(PowerLaw, ScaleFromInverseLinear)
{
    // b = -1: doubling units halves the value.
    PowerLaw law{1.0, -1.0, 1.0};
    EXPECT_NEAR(law.scaleFrom(16, 32), 0.5, 1e-12);
}

TEST(PowerLaw, FitRecoversExactLaw)
{
    PowerLaw truth{13.93, -1.0, 0.0};
    std::vector<double> xs = {14, 28, 42, 56, 98};
    std::vector<double> ys = samplePowerLaw(truth, xs);
    PowerLaw fit = fitPowerLaw(xs, ys);
    EXPECT_NEAR(fit.a, truth.a, 1e-9);
    EXPECT_NEAR(fit.b, truth.b, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(PowerLaw, FitRecoversNoisyLawApproximately)
{
    // The paper's fits have r2 in [0.87, 1.0]; mild log-normal noise
    // should land in that band and recover the exponent.
    PowerLaw truth{7.83, -0.77, 0.0};
    std::vector<double> xs = {14, 28, 42, 56, 98};
    std::vector<double> ys = samplePowerLaw(truth, xs, 0.05, 7);
    PowerLaw fit = fitPowerLaw(xs, ys);
    EXPECT_NEAR(fit.b, truth.b, 0.1);
    EXPECT_GT(fit.r2, 0.9);
}

TEST(PowerLaw, FitOfIncreasingLaw)
{
    PowerLaw truth{0.07, 0.92, 0.0};
    std::vector<double> xs = {14, 28, 42, 56, 98};
    PowerLaw fit = fitPowerLaw(xs, samplePowerLaw(truth, xs));
    EXPECT_NEAR(fit.b, 0.92, 1e-9);
}

TEST(PowerLaw, FitTwoPoints)
{
    PowerLaw fit = fitPowerLaw({2, 8}, {4, 64});
    // y = x^3 through (2,8)? 2^3=8 no: (2,4),(8,64): b = log(16)/log(4) = 2.
    EXPECT_NEAR(fit.b, 2.0, 1e-9);
    EXPECT_NEAR(fit.a, 1.0, 1e-9);
}

TEST(PowerLaw, SampleDeterministicForSeed)
{
    PowerLaw law{5.0, -0.6, 0.0};
    std::vector<double> xs = {1, 2, 3};
    auto a = samplePowerLaw(law, xs, 0.1, 99);
    auto b = samplePowerLaw(law, xs, 0.1, 99);
    EXPECT_EQ(a, b);
    auto c = samplePowerLaw(law, xs, 0.1, 100);
    EXPECT_NE(a, c);
}

TEST(PowerLaw, SampleWithoutNoiseIsExact)
{
    PowerLaw law{5.0, -0.6, 0.0};
    auto ys = samplePowerLaw(law, {2.0});
    EXPECT_NEAR(ys[0], law.eval(2.0), 1e-12);
}

/**
 * Property sweep: fitting exact samples of y = a x^b recovers (a, b)
 * across a grid of exponents and coefficients.
 */
class PowerLawRecovery
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(PowerLawRecovery, RoundTrips)
{
    auto [a, b] = GetParam();
    PowerLaw truth{a, b, 0.0};
    std::vector<double> xs = {1, 2, 4, 8, 16, 32, 64};
    PowerLaw fit = fitPowerLaw(xs, samplePowerLaw(truth, xs));
    EXPECT_NEAR(fit.a, a, 1e-6 * a);
    EXPECT_NEAR(fit.b, b, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PowerLawRecovery,
    ::testing::Combine(::testing::Values(0.07, 1.0, 13.98),
                       ::testing::Values(-1.0, -0.52, 0.0, 0.92)));

} // anonymous namespace
} // namespace hilp
