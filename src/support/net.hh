/**
 * @file
 * Minimal stream-socket plumbing for the evaluation daemon: listen /
 * accept / connect over Unix-domain or TCP sockets, plus a buffered
 * newline-delimited text channel.
 *
 * Address syntax, shared by hilpd --listen and the clients'
 * --connect flag:
 *
 *   unix:/path/to.sock   Unix-domain stream socket at that path
 *   /path/to.sock        shorthand for the same (leading '/' or './')
 *   tcp:HOST:PORT        TCP socket (HOST resolved via getaddrinfo)
 *   HOST:PORT            shorthand for the same
 *
 * The listener owns its Unix socket path: a stale socket file left by
 * a SIGKILLed daemon is detected (nobody accepts connections on it)
 * and unlinked before bind, so a restart always succeeds; a *live*
 * daemon on the path is reported as an address-in-use error instead.
 */

#ifndef HILP_SUPPORT_NET_HH
#define HILP_SUPPORT_NET_HH

#include <cstddef>
#include <string>

namespace hilp {
namespace net {

/** RAII ownership of one stream-socket file descriptor. */
class Socket
{
  public:
    Socket() = default;
    /** Adopt an open descriptor (-1 = invalid). */
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }

    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Release ownership of the descriptor without closing it. */
    int release();

    void close();

    /**
     * Read up to size bytes; returns the count, 0 on orderly EOF,
     * -1 on error. Retries EINTR.
     */
    long read(void *data, size_t size);

    /**
     * Write the whole buffer (retrying short writes and EINTR,
     * suppressing SIGPIPE). False when the peer is gone.
     */
    bool writeAll(const void *data, size_t size);

    /**
     * Bound every subsequent read to `seconds` of blocking
     * (SO_RCVTIMEO); an expired read fails with errno EAGAIN /
     * EWOULDBLOCK. 0 restores the historical wait-forever behavior.
     */
    bool setReadTimeout(double seconds);

    /** SO_SNDTIMEO counterpart: bound blocking writes. */
    bool setWriteTimeout(double seconds);

  private:
    int fd_ = -1;
};

/** A listening socket bound to a unix:/tcp: address. */
class Listener
{
  public:
    Listener() = default;
    ~Listener() { close(); }

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Bind and listen on the address. Returns false and fills
     * *error on failure (including a live daemon already bound to a
     * Unix path); a stale Unix socket file is unlinked first.
     */
    bool open(const std::string &address, std::string *error);

    /**
     * Accept one connection (blocking). An invalid Socket means the
     * listener was closed or accept failed.
     */
    Socket accept();

    /** Close the socket and unlink a bound Unix path. */
    void close();

    bool listening() const { return socket_.valid(); }
    int fd() const { return socket_.fd(); }

    /** The bound Unix socket path (empty for TCP). */
    const std::string &unixPath() const { return unixPath_; }

    /**
     * The TCP port actually bound (useful with "tcp:host:0");
     * 0 for Unix listeners.
     */
    int port() const { return port_; }

  private:
    Socket socket_;
    std::string unixPath_;
    int port_ = 0;
};

/**
 * Connect to a unix:/tcp: address. Returns an invalid Socket and
 * fills *error on failure.
 */
Socket connectTo(const std::string &address, std::string *error);

/**
 * Buffered newline-delimited text over a socket: the framing of the
 * daemon protocol (one JSON value per line).
 */
class LineChannel
{
  public:
    explicit LineChannel(Socket socket) : socket_(std::move(socket))
    {}

    /**
     * Read one line into *line (terminator stripped). False on EOF
     * or error; a final unterminated fragment at EOF is delivered as
     * a line first. When the socket carries a read timeout (see
     * Socket::setReadTimeout) and it expires mid-line, readLine
     * returns false with timedOut() set and the partial line stays
     * buffered - a timeout is a stalled peer, not end of stream.
     */
    bool readLine(std::string *line);

    /** Write line plus the terminating newline. */
    bool writeLine(const std::string &line);

    /** True when the last readLine failure was a read timeout. */
    bool timedOut() const { return timedOut_; }

    Socket &socket() { return socket_; }
    bool valid() const { return socket_.valid(); }

  private:
    Socket socket_;
    std::string buffer_;
    size_t scanned_ = 0;
    bool timedOut_ = false;
};

} // namespace net
} // namespace hilp

#endif // HILP_SUPPORT_NET_HH
