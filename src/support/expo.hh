/**
 * @file
 * Prometheus text exposition (format 0.0.4) over the metrics
 * registry.
 *
 * prometheusText() renders one coherent RegistrySnapshot: counters
 * as `<name>_total`, gauges plain, histograms as the conventional
 * cumulative `_bucket{le="..."}` series (+ `_sum`/`_count`) with the
 * log-scale bucket bounds from metrics.hh, plus a derived
 * `<name>_quantile{q="..."}` gauge family for p50/p95/p99 so an
 * unaggregated scrape still shows tail latency. Registry names are
 * dotted (`cp.solve_us`) and may embed config labels like
 * `(c4,g16,d2^16)`; promSanitizeName() maps them into the legal
 * metric-name alphabet and promEscapeLabel() escapes label values,
 * so no registered name can produce output a scraper rejects.
 * validateExposition() is the matching structural checker used by
 * tests and scripts/check.sh.
 */

#ifndef HILP_SUPPORT_EXPO_HH
#define HILP_SUPPORT_EXPO_HH

#include <string>

namespace hilp {
namespace expo {

/**
 * Map an arbitrary registry name into the Prometheus metric-name
 * alphabet [a-zA-Z0-9_:]: every illegal character becomes '_', and a
 * leading digit (or empty name) gains a '_' prefix.
 */
std::string promSanitizeName(const std::string &name);

/**
 * Escape a label value for the text format: backslash, double
 * quote, and newline must be written as \\, \", and \n.
 */
std::string promEscapeLabel(const std::string &value);

/**
 * The whole metrics registry (plus a hilp_build_info gauge carrying
 * version provenance) as Prometheus text exposition 0.0.4.
 */
std::string prometheusText();

/**
 * Structural validation of a text exposition document: legal metric
 * and label names, properly quoted and escaped label values, a
 * parseable float value per sample, and well-formed HELP/TYPE
 * comments. Returns "" when valid, else a description of the first
 * problem (with its line number).
 */
std::string validateExposition(const std::string &text);

} // namespace expo
} // namespace hilp

#endif // HILP_SUPPORT_EXPO_HH
