/**
 * @file
 * Table III: GPU power versus clock frequency. Prints the embedded
 * operating points with the derived per-SM power (total / 128) and
 * refits the power-vs-SM-count law at each frequency, reproducing
 * the table's (a, b, r2) columns (b ~ 1: power is linear in SMs).
 */

#include <benchmark/benchmark.h>

#include "arch/dvfs.hh"
#include "common.hh"
#include "support/powerlaw.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

const std::vector<double> kMigSms = {14, 28, 42, 56, 98};

void
emitTable()
{
    bench::banner(
        "Table III - GPU power scaling",
        "Embedded operating points; per-SM power = total / 128 SMs.\n"
        "Per frequency we regenerate power-vs-SM samples (normalized\n"
        "to 14 SMs) and refit the power law; b ~ 1 as in the paper.");

    Table table({"clock (MHz)", "all SMs (W)", "per-SM (W)", "fit a",
                 "fit b", "fit r2"});
    for (const auto &point : arch::gpuOperatingPoints()) {
        // Power normalized to the 14-SM configuration is S/14: the
        // fit recovers b = 1, a = 1/14 = 0.07, as in Table III.
        std::vector<double> ys;
        for (double sms : kMigSms)
            ys.push_back(arch::gpuPowerW(static_cast<int>(sms),
                                         point.clockMhz) /
                         arch::gpuPowerW(14, point.clockMhz));
        PowerLaw fit = fitPowerLaw(kMigSms, ys);
        table.addRow(RowBuilder()
                         .cell(static_cast<int64_t>(point.clockMhz))
                         .cell(point.allSmsPowerW, 1)
                         .cell(point.perSmPowerW(), 1)
                         .cell(fit.a, 2)
                         .cell(fit.b, 2)
                         .cell(fit.r2, 2)
                         .take());
    }
    table.print();

    bench::section("derived accelerator power checks (Section V/VI)");
    Table checks({"check", "value (W)", "paper"});
    checks.setAlign(0, Table::Align::Left);
    checks.setAlign(2, Table::Align::Left);
    checks.addRow(RowBuilder()
                      .cell(std::string("64-SM GPU @ 300 MHz"))
                      .cell(arch::gpuPowerW(64, 300), 1)
                      .cell(std::string("<= 50 W (dark silicon cap)"))
                      .take());
    checks.addRow(RowBuilder()
                      .cell(std::string("64-SM GPU @ 360 MHz"))
                      .cell(arch::gpuPowerW(64, 360), 1)
                      .cell(std::string("> 50 W"))
                      .take());
    checks.addRow(RowBuilder()
                      .cell(std::string("16-SM GPU @ 210 MHz"))
                      .cell(arch::gpuPowerW(16, 210), 1)
                      .cell(std::string("~10 W (16-SM low point)"))
                      .take());
    checks.addRow(RowBuilder()
                      .cell(std::string("16-SM GPU @ 765 MHz"))
                      .cell(arch::gpuPowerW(16, 765), 1)
                      .cell(std::string("~24 W (16-SM high point)"))
                      .take());
    checks.print();
}

void
BM_GpuPowerLookup(benchmark::State &state)
{
    for (auto _ : state) {
        double watts = arch::gpuPowerW(64, 480);
        benchmark::DoNotOptimize(watts);
    }
}
BENCHMARK(BM_GpuPowerLookup);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
