/**
 * @file
 * Time discretization: ProblemSpec (seconds) -> cp::Model (steps).
 *
 * Following Section III-D, continuous phase times are rounded up to
 * an integer number of time steps of a chosen size. The resulting
 * model keeps an index map so solver assignments can be lifted back
 * to (application, phase, option) form.
 */

#ifndef HILP_HILP_DISCRETIZE_HH
#define HILP_HILP_DISCRETIZE_HH

#include <vector>

#include "cp/model.hh"
#include "problem.hh"

namespace hilp {

/** A discretized problem plus the maps back to the spec. */
struct DiscretizedProblem
{
    cp::Model model;
    double stepS = 0.0; //!< Size of one time step, seconds.

    /** Task index of (app, phase). */
    std::vector<std::vector<int>> taskOf;
    /** (app, phase) of each task. */
    std::vector<std::pair<int, int>> phaseOf;
    /**
     * Per task, the spec option index of each mode. Modes map 1:1 to
     * the phase's surviving unit options.
     */
    std::vector<std::vector<int>> optionOf;

    /** Resource ids inside the model; -1 when the budget is off. */
    int cpuResource = -1;
    int powerResource = -1;
    int bwResource = -1;
    /** Model resource id of each ProblemSpec extra resource. */
    std::vector<int> extraResourceOf;
};

/**
 * Discretize the spec with the given time-step size and horizon (in
 * steps). Durations round up (ceil), so a nonzero phase always takes
 * at least one step.
 */
DiscretizedProblem discretize(const ProblemSpec &spec, double step_s,
                              cp::Time horizon_steps);

} // namespace hilp

#endif // HILP_HILP_DISCRETIZE_HH
