/**
 * @file
 * The accelerator and CPU scaling model (Section IV).
 *
 * Scales the Table II profile points to arbitrary SM/PE counts via
 * the fitted power laws, to arbitrary GPU clocks via the per-phase
 * frequency sensitivity, and to multi-core CPU execution via the
 * documented substitution (DESIGN.md): the compute kernel scales on
 * CPU cores with the same exponent as on SMs.
 *
 * Bandwidth across mappings conserves the phase's memory traffic:
 * the bytes moved are frequency-independent, so bandwidth demand
 * scales inversely with execution time when only the clock changes.
 */

#ifndef HILP_WORKLOAD_SCALING_HH
#define HILP_WORKLOAD_SCALING_HH

#include "workload.hh"

namespace hilp {
namespace workload {

/**
 * Execution time of a compute phase on an accelerator with the given
 * number of compute units (GPU SMs or DSA PEs) at the given clock.
 * Requires a GPU-compatible compute phase and units >= 1.
 */
double acceleratorTimeS(const PhaseProfile &phase, int units,
                        int clock_mhz);

/**
 * Bandwidth demand of a compute phase on an accelerator with the
 * given unit count and clock, GB/s.
 */
double acceleratorBwGBs(const PhaseProfile &phase, int units,
                        int clock_mhz);

/**
 * Execution time of a phase on `cores` CPU cores. Sequential phases
 * ignore the core count; compute phases scale with the benchmark's
 * time-law exponent.
 */
double cpuTimeS(const PhaseProfile &phase, int cores);

/**
 * Bandwidth demand on the CPU, GB/s. Sequential phases use a nominal
 * 1 GB/s; compute phases conserve the traffic measured on the GPU.
 */
double cpuBwGBs(const PhaseProfile &phase, int cores);

/**
 * The frequency-sensitivity heuristic of DESIGN.md:
 * gamma = clamp(1 - bw98 / 250, 0.2, 1.0). Compute-bound kernels
 * (low bandwidth) scale almost linearly with clock; bandwidth-bound
 * ones barely scale.
 */
double frequencyGamma(double gpu_bw98);

} // namespace workload
} // namespace hilp

#endif // HILP_WORKLOAD_SCALING_HH
