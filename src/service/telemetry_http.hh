/**
 * @file
 * The telemetry endpoint: a minimal HTTP/1.0 GET server over the
 * support/net Listener, serving the metrics registry to scrapers.
 *
 *   GET /metrics       Prometheus text exposition (expo.hh)
 *   GET /metrics.json  the same registry as metrics::snapshotJson()
 *   GET /healthz       liveness JSON from the owning service
 *                      (queue depth, memo bytes, version, uptime)
 *
 * Deliberately not a web server: one short-lived thread per
 * connection, Connection: close, no keep-alive, no request bodies,
 * anything but a GET of a known path is answered 404/405. That is
 * exactly what prometheus-style scrapers and `curl` speak, and it
 * keeps the attack/maintenance surface near zero. The server shares
 * nothing with the NDJSON protocol port except the socket plumbing.
 */

#ifndef HILP_SERVICE_TELEMETRY_HTTP_HH
#define HILP_SERVICE_TELEMETRY_HTTP_HH

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "support/json.hh"
#include "support/net.hh"

namespace hilp {
namespace service {

class TelemetryServer
{
  public:
    /** Produces the /healthz body; called per request. */
    using HealthFn = std::function<Json()>;

    TelemetryServer() = default;
    ~TelemetryServer();

    TelemetryServer(const TelemetryServer &) = delete;
    TelemetryServer &operator=(const TelemetryServer &) = delete;

    /**
     * Bind the unix:/tcp: address and start the accept thread.
     * Returns false and fills *error on bind failure. A null health
     * callback serves a minimal {"ok": true} body.
     */
    bool start(const std::string &address, HealthFn health,
               std::string *error);

    /** Stop accepting, join the accept thread, close the listener. */
    void stop();

    bool running() const { return running_.load(); }

    /** The bound TCP port (for tcp:host:0 in tests); 0 for unix. */
    int port() const { return listener_.port(); }

  private:
    void acceptLoop();
    void serve(net::Socket socket);

    net::Listener listener_;
    std::thread acceptor_;
    HealthFn health_;
    std::atomic<bool> running_{false};
};

} // namespace service
} // namespace hilp

#endif // HILP_SERVICE_TELEMETRY_HTTP_HH
