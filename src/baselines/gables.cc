#include "gables.hh"

#include <algorithm>

#include "cp/bounds.hh"
#include "hilp/discretize.hh"
#include "support/logging.hh"

namespace hilp {
namespace baselines {

ProblemSpec
gablesTransform(const ProblemSpec &spec)
{
    ProblemSpec transformed = spec;
    transformed.name = spec.name + " [Gables]";
    for (AppSpec &app : transformed.apps) {
        app.deps.clear();
        app.independentPhases = true;
    }
    transformed.powerBudgetW = kUnlimited;
    return transformed;
}

EvalResult
evaluateGables(const ProblemSpec &spec, const EngineOptions &options)
{
    return evaluate(gablesTransform(spec), options);
}

double
evaluateGablesAnalyticS(const ProblemSpec &spec, double step_s)
{
    ProblemSpec transformed = gablesTransform(spec);
    std::string issue = transformed.validate();
    if (!issue.empty())
        fatal("invalid spec for analytic Gables: %s", issue.c_str());

    // Pick a resolution fine enough that ceil rounding is noise: a
    // thousandth of the longest single-option time.
    if (step_s <= 0.0) {
        double longest = 0.0;
        for (const AppSpec &app : transformed.apps)
            for (const PhaseSpec &phase : app.phases)
                for (const UnitOption &option : phase.options)
                    longest = std::max(longest, option.timeS);
        step_s = std::max(longest / 1000.0, 1e-6);
    }
    // The horizon does not constrain the LP relaxation; keep it
    // token-sized.
    DiscretizedProblem problem = discretize(transformed, step_s, 1);
    cp::LowerBounds bounds =
        cp::computeLowerBounds(problem.model, true);
    if (bounds.lpRelaxation <= 0 && bounds.best() <= 0)
        return 0.0;
    return static_cast<double>(bounds.best()) * step_s;
}

} // namespace baselines
} // namespace hilp
