#include "timetable.hh"

#include "support/logging.hh"

namespace hilp {
namespace cp {

namespace {
/** Slack for floating-point capacity comparisons. */
constexpr double kEps = 1e-9;
} // anonymous namespace

Timetable::Timetable(const Model &model)
    : model_(model),
      horizon_(model.horizon())
{
    hilp_assert(horizon_ > 0);
    usage_.assign(model.numResources(),
                  std::vector<double>(horizon_, 0.0));
    busy_.assign(model.numGroups(),
                 std::vector<uint8_t>(horizon_, 0));
}

Time
Timetable::firstConflict(const Mode &mode, Time start) const
{
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        const auto &busy = busy_[mode.group];
        for (Time s = start; s < end; ++s)
            if (busy[s])
                return s;
    }
    for (int r = 0; r < model_.numResources(); ++r) {
        double u = mode.usage[r];
        if (u <= 0.0)
            continue;
        double cap = model_.capacity(r);
        const auto &profile = usage_[r];
        for (Time s = start; s < end; ++s)
            if (profile[s] + u > cap + kEps)
                return s;
    }
    return -1;
}

bool
Timetable::fits(const Mode &mode, Time start) const
{
    hilp_assert(start >= 0);
    if (start + mode.duration > horizon_)
        return false;
    if (mode.duration == 0)
        return true;
    return firstConflict(mode, start) == -1;
}

Time
Timetable::earliestStart(const Mode &mode, Time est) const
{
    hilp_assert(est >= 0);
    if (mode.duration == 0)
        return est <= horizon_ ? est : -1;
    Time start = est;
    while (start + mode.duration <= horizon_) {
        Time conflict = firstConflict(mode, start);
        if (conflict < 0)
            return start;
        // Jump past the conflicting step: no window containing it
        // can be feasible.
        start = conflict + 1;
    }
    return -1;
}

void
Timetable::place(const Mode &mode, Time start)
{
    hilp_assert(start >= 0 && start + mode.duration <= horizon_);
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        auto &busy = busy_[mode.group];
        for (Time s = start; s < end; ++s) {
            hilp_assert(!busy[s]);
            busy[s] = 1;
        }
    }
    for (int r = 0; r < model_.numResources(); ++r) {
        double u = mode.usage[r];
        if (u == 0.0)
            continue;
        auto &profile = usage_[r];
        for (Time s = start; s < end; ++s)
            profile[s] += u;
    }
}

void
Timetable::remove(const Mode &mode, Time start)
{
    hilp_assert(start >= 0 && start + mode.duration <= horizon_);
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        auto &busy = busy_[mode.group];
        for (Time s = start; s < end; ++s) {
            hilp_assert(busy[s]);
            busy[s] = 0;
        }
    }
    for (int r = 0; r < model_.numResources(); ++r) {
        double u = mode.usage[r];
        if (u == 0.0)
            continue;
        auto &profile = usage_[r];
        for (Time s = start; s < end; ++s) {
            profile[s] -= u;
            if (profile[s] < 0.0 && profile[s] > -kEps)
                profile[s] = 0.0; // absorb rounding drift
        }
    }
}

} // namespace cp
} // namespace hilp
