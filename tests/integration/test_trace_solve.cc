/**
 * @file
 * Integration tests for the observability layer: a real solve with
 * tracing enabled exports a structurally valid, balanced Chrome
 * trace, and tracing never perturbs the search itself (bit-identical
 * node and backtrack counts on or off).
 */

#include <gtest/gtest.h>

#include <string>

#include "cp/model.hh"
#include "cp/solver.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace hilp {
namespace cp {
namespace {

/**
 * A small two-device instance with heterogeneous durations, so the
 * search has real mode/placement decisions to branch over.
 */
Model
makeInstance()
{
    Model m;
    int gpu = m.addGroup("GPU");
    int dsa = m.addGroup("DSA");
    const Time gpu_durations[8] = {5, 7, 3, 9, 4, 6, 8, 2};
    const Time dsa_durations[8] = {6, 4, 8, 3, 7, 5, 2, 9};
    for (int i = 0; i < 8; ++i) {
        Task t;
        t.modes.push_back({gpu, gpu_durations[i], {}});
        t.modes.push_back({dsa, dsa_durations[i], {}});
        m.addTask(t);
    }
    m.addPrecedence(0, 4);
    m.addPrecedence(1, 5);
    m.setHorizon(60);
    return m;
}

/**
 * Exact solve with the warm start and the LP bound dialed down, so
 * the branch-and-bound search (the instrumented hot path) must do
 * the proving itself - thousands of nodes rather than a root cutoff.
 */
SolverOptions
exactOptions()
{
    SolverOptions options;
    options.targetGap = 0.0;
    options.maxSeconds = 20.0;
    options.greedyRestarts = 1;
    options.lnsIterations = 0;
    options.useLpBound = false;
    return options;
}

class TraceSolveTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled_ = trace::enabled();
        trace::setEnabled(false);
        trace::clearAll();
    }

    void
    TearDown() override
    {
        trace::setEnabled(wasEnabled_);
        trace::clearAll();
    }

  private:
    bool wasEnabled_ = false;
};

TEST_F(TraceSolveTest, TracingDoesNotPerturbTheSearch)
{
    Model m = makeInstance();

    Result off = Solver(exactOptions()).solve(m);
    trace::setEnabled(true);
    Result on = Solver(exactOptions()).solve(m);
    trace::setEnabled(false);

    // The acceptance bar: identical trees, not merely close ones.
    EXPECT_EQ(off.status, on.status);
    EXPECT_EQ(off.makespan, on.makespan);
    EXPECT_EQ(off.lowerBound, on.lowerBound);
    EXPECT_EQ(off.stats.nodes, on.stats.nodes);
    EXPECT_EQ(off.stats.backtracks, on.stats.backtracks);
    EXPECT_EQ(off.stats.solutions, on.stats.solutions);
    EXPECT_GT(off.stats.nodes, 0);
}

TEST_F(TraceSolveTest, SolveExportsValidBalancedTrace)
{
    trace::setEnabled(true);
    Result result = Solver(exactOptions()).solve(makeInstance());
    trace::setEnabled(false);
    ASSERT_TRUE(result.hasSchedule());

    Json exported = trace::toJson();
    EXPECT_EQ(trace::validateChromeTrace(exported), "");

    // The solver phases appear as balanced B/E pairs.
    const Json *events = exported.find("traceEvents");
    ASSERT_NE(events, nullptr);
    int begins = 0;
    int ends = 0;
    bool saw_solve = false;
    bool saw_search = false;
    bool saw_bounds = false;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json &event = events->at(i);
        const std::string &phase = event.find("ph")->stringValue();
        if (phase == "B")
            ++begins;
        else if (phase == "E")
            ++ends;
        const std::string &name = event.find("name")->stringValue();
        saw_solve = saw_solve || name == "cp.solve";
        saw_search = saw_search || name == "cp.search";
        saw_bounds = saw_bounds || name == "cp.bounds";
    }
    EXPECT_EQ(begins, ends);
    EXPECT_GT(begins, 0);
    EXPECT_TRUE(saw_solve);
    EXPECT_TRUE(saw_search);
    EXPECT_TRUE(saw_bounds);

    // The exported text also survives a parse round-trip.
    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(exported.dump(), &reparsed, &error))
        << error;
    EXPECT_EQ(trace::validateChromeTrace(reparsed), "");
}

TEST_F(TraceSolveTest, SolveMovesTheMetricsCounters)
{
    metrics::counter("cp.solves").reset();
    metrics::counter("cp.search.nodes").reset();
    metrics::counter("cp.propagations").reset();
    metrics::histogram("cp.solve_us").reset();

    Result result = Solver(exactOptions()).solve(makeInstance());
    ASSERT_TRUE(result.hasSchedule());

    EXPECT_EQ(metrics::counter("cp.solves").value(), 1);
    EXPECT_EQ(metrics::counter("cp.search.nodes").value(),
              result.stats.nodes);
    EXPECT_GT(metrics::counter("cp.propagations").value(), 0);
    EXPECT_EQ(metrics::histogram("cp.solve_us").snapshot().count, 1);

    metrics::counter("cp.solves").reset();
    metrics::counter("cp.search.nodes").reset();
    metrics::counter("cp.propagations").reset();
    metrics::histogram("cp.solve_us").reset();
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
