/** @file Tests for schedule/result JSON export and utilization. */

#include <gtest/gtest.h>

#include "hilp/engine.hh"
#include "hilp/export.hh"
#include "hilp/showcase.hh"

namespace hilp {
namespace {

EvalResult
solvedExample()
{
    EngineOptions options;
    options.initialStepS = 1.0;
    options.horizonSteps = 64;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0;
    return evaluate(makeTwoAppExample(), options);
}

TEST(Export, ScheduleJsonHasCoreFields)
{
    EvalResult result = solvedExample();
    ASSERT_TRUE(result.ok);
    Json json = scheduleToJson(result.schedule);
    std::string text = json.dump();
    EXPECT_NE(text.find("\"makespan_s\":7"), std::string::npos);
    EXPECT_NE(text.find("\"phases\":["), std::string::npos);
    EXPECT_NE(text.find("\"m1\""), std::string::npos);
    EXPECT_NE(text.find("\"utilization\""), std::string::npos);
    EXPECT_NE(text.find("\"cpu-pool\""), std::string::npos);
}

TEST(Export, EvalResultJsonHasSolverBlock)
{
    EvalResult result = solvedExample();
    std::string text = evalResultToJson(result).dump();
    EXPECT_NE(text.find("\"status\":\"optimal\""), std::string::npos);
    EXPECT_NE(text.find("\"solver\""), std::string::npos);
    EXPECT_NE(text.find("\"lower_bounds_steps\""), std::string::npos);
    EXPECT_NE(text.find("\"near_optimal\":true"), std::string::npos);
}

TEST(Export, JsonIsParseableShape)
{
    // Cheap structural sanity: balanced braces/brackets, no raw
    // control characters.
    EvalResult result = solvedExample();
    std::string text = evalResultToJson(result).dump(2);
    int braces = 0;
    int brackets = 0;
    bool in_string = false;
    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{')
            ++braces;
        else if (c == '}')
            --braces;
        else if (c == '[')
            ++brackets;
        else if (c == ']')
            --brackets;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(in_string);
}

TEST(Utilization, ExampleScheduleSplitsWork)
{
    EvalResult result = solvedExample();
    auto rows = result.schedule.utilization();
    // GPU, DSA, CPU pool.
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].unit, "GPU");
    EXPECT_EQ(rows[1].unit, "DSA");
    EXPECT_EQ(rows[2].unit, "CPU pool");
    // Optimal schedule: GPU 3 s, DSA 5 s, CPU 4 x 1 s, makespan 7.
    EXPECT_NEAR(rows[0].busyS, 3.0, 1e-9);
    EXPECT_NEAR(rows[1].busyS, 5.0, 1e-9);
    EXPECT_NEAR(rows[2].busyS, 4.0, 1e-9);
    EXPECT_NEAR(rows[0].share, 3.0 / 7.0, 1e-9);
    EXPECT_NEAR(rows[2].share, 4.0 / 7.0, 1e-9);
}

TEST(Utilization, EmptyScheduleIsSafe)
{
    Schedule schedule;
    auto rows = schedule.utilization();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].unit, "CPU pool");
    EXPECT_DOUBLE_EQ(rows[0].share, 0.0);
}

TEST(Utilization, ParallelCpuPhasesCountCoreSeconds)
{
    Schedule schedule;
    schedule.cpuCores = 4.0;
    ScheduledPhase phase;
    phase.name = "p";
    phase.unitLabel = "CPUx4";
    phase.device = kCpuPool;
    phase.durationS = 10.0;
    phase.cpuCores = 4.0;
    schedule.phases.push_back(phase);
    auto rows = schedule.utilization();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_NEAR(rows[0].busyS, 40.0, 1e-9);
    EXPECT_NEAR(rows[0].share, 1.0, 1e-9); // 40 / (4 * 10).
}

} // anonymous namespace
} // namespace hilp
