/**
 * @file
 * Machine-readable exports of HILP results (JSON), for plotting and
 * downstream analysis pipelines.
 */

#ifndef HILP_HILP_EXPORT_HH
#define HILP_HILP_EXPORT_HH

#include "engine.hh"
#include "schedule.hh"
#include "support/json.hh"

namespace hilp {

/**
 * Serialize a schedule: step size, makespan, per-phase placements
 * (app/phase/unit/start/duration/power/bandwidth/cores), WLP
 * metrics, and per-unit utilization.
 */
Json scheduleToJson(const Schedule &schedule);

/**
 * Serialize a full evaluation result: status, makespan, certified
 * bound and gap, resolution, solver statistics, and the schedule.
 */
Json evalResultToJson(const EvalResult &result);

} // namespace hilp

#endif // HILP_HILP_EXPORT_HH
