#include "explore.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "baselines/gables.hh"
#include "baselines/multiamdahl.hh"
#include "checkpoint.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/str.hh"
#include "support/thread_pool.hh"
#include "support/trace.hh"

namespace hilp {
namespace dse {

const char *
toString(ModelKind kind)
{
    switch (kind) {
      case ModelKind::MultiAmdahl:
        return "MA";
      case ModelKind::Hilp:
        return "HILP";
      case ModelKind::Gables:
        return "Gables";
    }
    return "unknown";
}

namespace {

/**
 * Sweep-wide record of completed (area, makespan) points with an
 * atomic best-makespan fast path. A config whose certified makespan
 * lower bound is beaten by an already-completed point of no more
 * area can never reach the Pareto front, so its solve may stop
 * refining early (the result keeps its certified gap either way).
 */
class SweepBound
{
  public:
    void
    add(double area_mm2, double makespan_s)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            points_.emplace_back(area_mm2, makespan_s);
        }
        // Atomic running minimum of all completed makespans.
        double best = bestMakespanS_.load();
        while (makespan_s < best &&
               !bestMakespanS_.compare_exchange_weak(best, makespan_s))
            ;
    }

    /**
     * True when a completed point with area <= area_mm2 finishes
     * strictly sooner than this config could ever prove (its
     * certified lower bound).
     */
    bool
    dominates(double area_mm2, double lower_bound_s) const
    {
        // Fast reject without the lock: nothing anywhere in the
        // sweep beats this bound yet.
        if (bestMakespanS_.load() >= lower_bound_s)
            return false;
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[area, makespan] : points_)
            if (area <= area_mm2 && makespan < lower_bound_s)
                return true;
        return false;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<std::pair<double, double>> points_;
    std::atomic<double> bestMakespanS_{
        std::numeric_limits<double>::infinity()};
};

void
fillSolverTelemetry(DsePoint &point, const EvalResult &result)
{
    point.status = result.status;
    point.gap = result.gap;
    point.nodes = result.totalNodes;
    point.backtracks = result.totalBacktracks;
    point.solves = result.solves;
    point.solveSeconds = result.totalSeconds;
    point.cacheHit = result.cacheHit;
    point.warmStarted = result.warmStarted;
    point.pruned = result.prunedEarly;
    point.degraded = result.degraded;
    point.propagators = result.propagators;
}

/**
 * The evaluatePoint worker body. `reuse` (nullable) threads the
 * sweep's cross-config context into the HILP engine; on success
 * `schedule_out` (nullable) receives the solved schedule so chains
 * can warm-start their next configuration.
 */
DsePoint
evaluatePointBody(const arch::SocConfig &config,
                  const workload::Workload &workload,
                  const arch::Constraints &constraints, ModelKind kind,
                  const DseOptions &options, const EvalReuse *reuse,
                  Schedule *schedule_out)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = config.areaMm2();
    point.mix = classifyAccelMix(config);

    ProblemSpec spec =
        buildProblem(workload, config, constraints, options.build);
    point.fingerprint = spec.fingerprint();

    // A point a previous (interrupted) run already completed is
    // served from the checkpoint: the certified result comes back,
    // and a HILP record's persisted schedule stays available via
    // lookupSchedule for the sweep's warm-start chains.
    if (options.checkpoint &&
        options.checkpoint->lookup(
            checkpointKey(point.fingerprint, config.name(), kind),
            &point)) {
        point.config = config;
        point.areaMm2 = config.areaMm2();
        point.mix = classifyAccelMix(config);
        return point;
    }

    // After the checkpoint shortcut: the injected fault stands in
    // for a crash inside the evaluation, which a resumed point never
    // reaches.
    if (options.injectFault)
        options.injectFault(config);

    std::string invalid = spec.validate();
    if (!invalid.empty()) {
        // Unschedulable under these budgets; keep the reason so the
        // report can tell this apart from a solver failure.
        point.note = invalid;
        return point;
    }

    double reference = workload::sequentialCpuTimeS(workload);

    switch (kind) {
      case ModelKind::MultiAmdahl: {
        baselines::MaResult ma = baselines::evaluateMultiAmdahl(spec);
        if (!ma.ok) {
            point.note = "MultiAmdahl found no feasible sequential "
                         "placement";
            return point;
        }
        point.ok = true;
        point.makespanS = ma.makespanS;
        point.averageWlp = ma.averageWlp();
        point.gap = 0.0;
        point.status = cp::SolveStatus::Optimal;
        break;
      }
      case ModelKind::Hilp: {
        EvalResult result = reuse
            ? evaluate(spec, options.engine, *reuse)
            : evaluate(spec, options.engine);
        fillSolverTelemetry(point, result);
        if (!result.ok) {
            point.note = format("solver gave up: %s",
                                cp::toString(result.status));
            return point;
        }
        point.ok = true;
        point.makespanS = result.makespanS;
        point.averageWlp = result.averageWlp;
        if (schedule_out)
            *schedule_out = std::move(result.schedule);
        break;
      }
      case ModelKind::Gables: {
        EvalResult result =
            baselines::evaluateGables(spec, options.engine);
        fillSolverTelemetry(point, result);
        if (!result.ok) {
            point.note = format("solver gave up: %s",
                                cp::toString(result.status));
            return point;
        }
        point.ok = true;
        point.makespanS = result.makespanS;
        point.averageWlp = result.averageWlp;
        break;
      }
    }
    if (point.makespanS > 0.0)
        point.speedup = reference / point.makespanS;
    return point;
}

/**
 * Tracing/metrics wrapper around evaluatePointBody: one span per
 * design point so a sweep's trace shows the per-point timeline on
 * each worker thread, plus sweep-progress counters.
 */
DsePoint
evaluatePointImpl(const arch::SocConfig &config,
                  const workload::Workload &workload,
                  const arch::Constraints &constraints, ModelKind kind,
                  const DseOptions &options, const EvalReuse *reuse,
                  Schedule *schedule_out)
{
    trace::Span span("dse.point");
    if (trace::enabled())
        span.arg(trace::Arg::strArg("config", config.name()));
    DsePoint point = evaluatePointBody(config, workload, constraints,
                                       kind, options, reuse,
                                       schedule_out);
    span.arg(trace::Arg::intArg("ok", point.ok ? 1 : 0));
    span.arg(trace::Arg::intArg("cache_hit", point.cacheHit ? 1 : 0));
    span.arg(trace::Arg::intArg("degraded", point.degraded ? 1 : 0));
    span.arg(trace::Arg::intArg("resumed", point.resumed ? 1 : 0));
    metrics::counter("dse.points").add(1);
    if (point.ok)
        metrics::counter("dse.points.ok").add(1);
    if (point.degraded)
        metrics::counter("dse.points.degraded").add(1);
    if (point.resumed)
        metrics::counter("dse.points.resumed").add(1);
    return point;
}

/**
 * Fault-isolating wrapper around evaluatePointImpl for sweep
 * workers. A throwing evaluation no longer costs the sweep: the
 * point is retried once with a quarter of the node budget (the
 * common transient failures - allocation pressure, budget-dependent
 * pathologies - often clear under a smaller footprint), and a second
 * failure is recorded as an errored point carrying the exception
 * text while every other point proceeds. DseOptions::failFast
 * restores the historical rethrow.
 */
DsePoint
evaluateGuarded(const arch::SocConfig &config,
                const workload::Workload &workload,
                const arch::Constraints &constraints, ModelKind kind,
                const DseOptions &options, const EvalReuse *reuse,
                Schedule *schedule_out)
{
    if (options.failFast)
        return evaluatePointImpl(config, workload, constraints, kind,
                                 options, reuse, schedule_out);

    std::string error;
    try {
        return evaluatePointImpl(config, workload, constraints, kind,
                                 options, reuse, schedule_out);
    } catch (const std::exception &e) {
        error = e.what();
    } catch (...) {
        error = "unknown exception";
    }

    warn("dse: point %s threw (%s); retrying with a reduced node "
         "budget", config.name().c_str(), error.c_str());
    DseOptions retry = options;
    retry.engine.solver.maxNodes = std::max<int64_t>(
        1000, options.engine.solver.maxNodes / 4);
    try {
        return evaluatePointImpl(config, workload, constraints, kind,
                                 retry, reuse, schedule_out);
    } catch (const std::exception &e) {
        error = e.what();
    } catch (...) {
        error = "unknown exception";
    }

    warn("dse: point %s failed twice (%s); recording it as errored "
         "and continuing the sweep", config.name().c_str(),
         error.c_str());
    DsePoint failed;
    failed.config = config;
    failed.areaMm2 = config.areaMm2();
    failed.mix = classifyAccelMix(config);
    failed.errored = true;
    failed.note = format("exception: %s", error.c_str());
    metrics::counter("dse.points").add(1);
    metrics::counter("dse.points.errored").add(1);
    return failed;
}

/**
 * Rate-limited progress reporting for a sweep. Workers call tick()
 * once per completed design point; roughly every total/6 completions
 * (and at most once per kMinIntervalS seconds, since cache-hit bursts
 * can finish hundreds of points at once) one inform() line reports
 * done/total, elapsed time, a simple linear ETA, and the cache-hit
 * rate. The ETA rates on points that cost real solver work: cache
 * hits and checkpoint-resumed points complete in microseconds, so
 * averaging them in (the old formula) made the ETA collapse toward
 * zero right after a resumed burst even though every remaining point
 * is a cold solve. Sweeps below kMinPoints stay silent - they finish
 * before a heartbeat would help - and
 * setLogLevel(Warn)/HILP_LOG_LEVEL=warn silences the heartbeat like
 * any other status output.
 */
class Heartbeat
{
  public:
    explicit Heartbeat(size_t total)
        : total_(total),
          stride_(std::max<size_t>(1, total / 6)),
          start_(std::chrono::steady_clock::now())
    {}

    void
    tick(bool free_of_charge)
    {
        if (free_of_charge)
            freebies_.fetch_add(1, std::memory_order_relaxed);
        size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
        // The final point is the caller's summary to report.
        if (total_ < kMinPoints || done >= total_ ||
            done % stride_ != 0)
            return;
        double elapsed = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_).count();
        double last = lastReportS_.load(std::memory_order_relaxed);
        if (elapsed - last < kMinIntervalS ||
            !lastReportS_.compare_exchange_strong(last, elapsed))
            return; // Too soon, or another worker just reported.
        size_t freebies = freebies_.load(std::memory_order_relaxed);
        size_t cold = done > freebies ? done - freebies : 0;
        // Per-point rate over cold completions only; when everything
        // so far was free there is no cost signal yet, so fall back
        // to the naive all-points average rather than claim zero.
        double eta = cold > 0
            ? elapsed / static_cast<double>(cold) *
                  static_cast<double>(total_ - done)
            : elapsed / static_cast<double>(done) *
                  static_cast<double>(total_ - done);
        double free_rate = 100.0 * static_cast<double>(freebies) /
                           static_cast<double>(done);
        inform("dse: %zu/%zu points | %.1fs elapsed, ~%.1fs left | "
               "%.0f%% cached/resumed",
               done, total_, elapsed, eta, free_rate);
    }

  private:
    static constexpr size_t kMinPoints = 24;
    static constexpr double kMinIntervalS = 1.0;

    const size_t total_;
    const size_t stride_;
    const std::chrono::steady_clock::time_point start_;
    std::atomic<size_t> done_{0};
    //! Points that cost no solver work: cache hits + resumed.
    std::atomic<size_t> freebies_{0};
    std::atomic<double> lastReportS_{0.0};
};

/**
 * Group configuration indices into similarity chains: same CPU core
 * count and same DSA allocation (count, PE size, targets,
 * advantage), ordered by ascending GPU SM count within a chain.
 * Neighbors differ only in GPU capacity, so their optimal schedules
 * transfer well as warm starts.
 */
std::vector<std::vector<size_t>>
similarityChains(const std::vector<arch::SocConfig> &configs)
{
    using Key = std::tuple<int, size_t, int, double, std::vector<int>>;
    std::map<Key, std::vector<size_t>> chains;
    for (size_t i = 0; i < configs.size(); ++i) {
        const arch::SocConfig &config = configs[i];
        int pes = config.dsas.empty() ? 0 : config.dsas.front().pes;
        std::vector<int> targets;
        targets.reserve(config.dsas.size());
        for (const arch::DsaSpec &dsa : config.dsas)
            targets.push_back(dsa.target);
        chains[{config.cpuCores, config.dsas.size(), pes,
                config.dsaAdvantage, std::move(targets)}]
            .push_back(i);
    }
    std::vector<std::vector<size_t>> result;
    result.reserve(chains.size());
    for (auto &[key, indices] : chains) {
        std::sort(indices.begin(), indices.end(),
                  [&](size_t a, size_t b) {
                      if (configs[a].gpuSms != configs[b].gpuSms)
                          return configs[a].gpuSms < configs[b].gpuSms;
                      return a < b;
                  });
        result.push_back(std::move(indices));
    }
    return result;
}

} // anonymous namespace

DsePoint
evaluatePoint(const arch::SocConfig &config,
              const workload::Workload &workload,
              const arch::Constraints &constraints, ModelKind kind,
              const DseOptions &options)
{
    return evaluatePointImpl(config, workload, constraints, kind,
                             options, nullptr, nullptr);
}

std::vector<DsePoint>
exploreSpace(const std::vector<arch::SocConfig> &configs,
             const workload::Workload &workload,
             const arch::Constraints &constraints, ModelKind kind,
             const DseOptions &options)
{
    std::vector<DsePoint> points(configs.size());
    // The sweep pool shares the process-wide thread budget with the
    // solver's parallel search: an outer worker holds a CPU slot
    // only while evaluating a point, so inner solves that ask the
    // budget for helpers (SolverOptions::threads == 0) pick up
    // exactly the slots the sweep is not using.
    ThreadPool pool(options.threads, &ThreadBudget::global());
    Heartbeat heartbeat(configs.size());

    // Common completion path for both sweep modes: persist the point
    // to the checkpoint (skipping points that came FROM it, and
    // errored points, which deserve a fresh attempt on resume) and
    // advance the progress heartbeat. HILP chain workers pass the
    // solved schedule so the record can rehydrate warm starts after
    // a resume; everyone else passes null.
    auto finishPoint = [&](size_t i, const Schedule *schedule) {
        const DsePoint &point = points[i];
        if (options.checkpoint && !point.resumed && !point.errored)
            options.checkpoint->record(
                checkpointKey(point.fingerprint, configs[i].name(),
                              kind),
                kind, point, schedule);
        heartbeat.tick(point.cacheHit || point.resumed);
    };

    // Cold-start path: every point is independent. MA is analytic
    // and Gables rewrites the spec internally, so the cross-config
    // reuse layer applies to HILP sweeps only.
    if (!options.reuse || kind != ModelKind::Hilp) {
        pool.parallelFor(configs.size(), [&](size_t i) {
            points[i] = evaluateGuarded(configs[i], workload,
                                        constraints, kind, options,
                                        nullptr, nullptr);
            finishPoint(i, nullptr);
        });
        return points;
    }

    SolveMemo local_memo;
    SolveMemo *memo = options.memo ? options.memo : &local_memo;
    SweepBound bound;
    auto chains = similarityChains(configs);

    // Chains are independent; within a chain each config warm-starts
    // from its predecessor's schedule and every completed point
    // tightens the shared dominance bound.
    pool.parallelFor(chains.size(), [&](size_t c) {
        Schedule hint;
        bool have_hint = false;
        for (size_t idx : chains[c]) {
            double area = configs[idx].areaMm2();
            EvalReuse reuse;
            reuse.memo = memo;
            reuse.hint = have_hint ? &hint : nullptr;
            reuse.dominated = [&bound, area](double lower_bound_s) {
                return bound.dominates(area, lower_bound_s);
            };
            Schedule schedule;
            points[idx] = evaluateGuarded(configs[idx], workload,
                                          constraints, kind, options,
                                          &reuse, &schedule);
            finishPoint(idx,
                        points[idx].ok && !points[idx].resumed &&
                                !schedule.phases.empty()
                            ? &schedule
                            : nullptr);
            if (points[idx].ok) {
                bound.add(area, points[idx].makespanS);
                if (!points[idx].resumed) {
                    hint = std::move(schedule);
                    have_hint = true;
                } else if (options.checkpoint &&
                           options.checkpoint->lookupSchedule(
                               checkpointKey(points[idx].fingerprint,
                                             configs[idx].name(),
                                             kind),
                               &hint)) {
                    // A resumed point whose record carried its
                    // schedule still seeds the chain: the rehydrated
                    // schedule warm-starts the next configuration as
                    // if this run had solved the point itself.
                    have_hint = true;
                    metrics::counter("dse.chain.rehydrated").add(1);
                }
            }
        }
    });
    return points;
}

} // namespace dse
} // namespace hilp
