/** @file Unit tests for the daemon's flight recorder. */

#include <gtest/gtest.h>

#include <cstdint>

#include "service/flight_recorder.hh"

namespace hilp {
namespace {

using service::FlightRecorder;
using service::RequestSummary;

RequestSummary
summaryWithId(uint64_t id)
{
    RequestSummary summary;
    summary.traceId = id;
    summary.op = "sweep";
    summary.detail = "(c4,g16,d2^16)";
    summary.ok = true;
    summary.totalUs = static_cast<int64_t>(id) * 10;
    return summary;
}

TEST(FlightRecorderTest, StartsEmpty)
{
    FlightRecorder recorder(16, 4);
    EXPECT_EQ(recorder.size(), 0u);
    EXPECT_EQ(recorder.recorded(), 0);
    EXPECT_EQ(recorder.slowCount(), 0);
    EXPECT_TRUE(recorder.recent().empty());
}

TEST(FlightRecorderTest, CapacityRoundsUpToShardMultiple)
{
    FlightRecorder recorder(10, 4);
    EXPECT_EQ(recorder.capacity(), 12u);
    FlightRecorder tiny(1, 8);
    EXPECT_EQ(tiny.capacity(), 8u);
}

TEST(FlightRecorderTest, RetainsAndOrdersByTraceId)
{
    FlightRecorder recorder(16, 4);
    // Record out of shard order: ids spread across all four shards.
    for (uint64_t id : {5, 2, 7, 1, 4, 3, 6, 8})
        recorder.record(summaryWithId(id));
    EXPECT_EQ(recorder.size(), 8u);
    EXPECT_EQ(recorder.recorded(), 8);
    std::vector<RequestSummary> recent = recorder.recent();
    ASSERT_EQ(recent.size(), 8u);
    for (size_t i = 0; i < recent.size(); ++i) {
        EXPECT_EQ(recent[i].traceId, i + 1);
        EXPECT_EQ(recent[i].op, "sweep");
    }
}

TEST(FlightRecorderTest, EvictsOldestPerShardWhenFull)
{
    FlightRecorder recorder(8, 4); // 2 slots per shard.
    // 24 sequential ids: each shard sees 6 and keeps its last 2.
    for (uint64_t id = 1; id <= 24; ++id)
        recorder.record(summaryWithId(id));
    EXPECT_EQ(recorder.size(), 8u);
    EXPECT_EQ(recorder.recorded(), 24);
    std::vector<RequestSummary> recent = recorder.recent();
    ASSERT_EQ(recent.size(), 8u);
    // Sequential admission ids round-robin the shards, so the
    // retained set is exactly the newest 8, oldest first.
    for (size_t i = 0; i < recent.size(); ++i)
        EXPECT_EQ(recent[i].traceId, 17 + i);
}

TEST(FlightRecorderTest, CountsSlowRequests)
{
    FlightRecorder recorder(8, 2);
    RequestSummary slow = summaryWithId(1);
    slow.slow = true;
    recorder.record(slow);
    recorder.record(summaryWithId(2));
    EXPECT_EQ(recorder.slowCount(), 1);
}

TEST(FlightRecorderTest, StatsJsonReportsOccupancy)
{
    FlightRecorder recorder(8, 2);
    RequestSummary slow = summaryWithId(3);
    slow.slow = true;
    recorder.record(slow);
    recorder.record(summaryWithId(4));
    Json stats = recorder.statsJson();
    ASSERT_NE(stats.find("capacity"), nullptr);
    EXPECT_EQ(stats.find("capacity")->intValue(), 8);
    EXPECT_EQ(stats.find("occupancy")->intValue(), 2);
    EXPECT_EQ(stats.find("recorded")->intValue(), 2);
    EXPECT_EQ(stats.find("slow")->intValue(), 1);
}

TEST(FlightRecorderTest, SummaryJsonRoundTripsFields)
{
    RequestSummary summary = summaryWithId(42);
    summary.configs = 372;
    summary.points = 370;
    summary.ok = false;
    summary.slow = true;
    summary.error = "client write failed";
    summary.queueWaitUs = 11;
    summary.solveUs = 22;
    summary.serializeUs = 33;
    Json json = summary.toJson();
    EXPECT_EQ(json.find("trace_id")->intValue(), 42);
    EXPECT_EQ(json.find("op")->stringValue(), "sweep");
    EXPECT_EQ(json.find("detail")->stringValue(), "(c4,g16,d2^16)");
    EXPECT_EQ(json.find("configs")->intValue(), 372);
    EXPECT_EQ(json.find("points")->intValue(), 370);
    EXPECT_FALSE(json.find("ok")->boolValue());
    EXPECT_TRUE(json.find("slow")->boolValue());
    EXPECT_EQ(json.find("error")->stringValue(),
              "client write failed");
    EXPECT_EQ(json.find("queue_wait_us")->intValue(), 11);
    EXPECT_EQ(json.find("solve_us")->intValue(), 22);
    EXPECT_EQ(json.find("serialize_us")->intValue(), 33);
    EXPECT_EQ(json.find("total_us")->intValue(), 420);
}

} // anonymous namespace
} // namespace hilp
