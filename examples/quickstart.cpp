/**
 * @file
 * Quickstart: the paper's Section II worked example, end to end.
 *
 * Builds the two-application workload of Figure 2 (applications m
 * and n on an SoC with one CPU, one GPU, and one DSA), solves it
 * with HILP, compares against the MultiAmdahl and Gables extremes,
 * and then reruns under the 3 W power budget of Figure 3.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "baselines/gables.hh"
#include "baselines/multiamdahl.hh"
#include "hilp/engine.hh"
#include "hilp/showcase.hh"

int
main()
{
    using namespace hilp;

    // The workload and SoC of Figure 2, as a ProblemSpec: every
    // phase lists the units it may run on (the compatibility matrix
    // E) with its execution time, power, and CPU-core footprint (the
    // T, P, and U matrices).
    ProblemSpec spec = makeTwoAppExample();

    // One-second steps resolve the example exactly (Section II).
    EngineOptions options;
    options.initialStepS = 1.0;
    options.horizonSteps = 64;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0; // Small model: prove optimality.

    std::printf("== HILP on the two-application example ==\n");
    EvalResult hilp_result = evaluate(spec, options);
    std::printf("status: %s, makespan %.0f s, bound %.0f s, "
                "avg WLP %.1f\n",
                cp::toString(hilp_result.status),
                hilp_result.makespanS, hilp_result.lowerBoundS,
                hilp_result.averageWlp);
    std::printf("speedup over naive all-on-CPU execution (17 s): "
                "%.1fx\n\n", kTwoAppNaiveCpuS / hilp_result.makespanS);
    std::printf("%s\n", hilp_result.schedule.gantt().c_str());

    std::printf("== The WLP extremes ==\n");
    baselines::MaResult ma = baselines::evaluateMultiAmdahl(spec);
    EvalResult gables = baselines::evaluateGables(spec, options);
    std::printf("MultiAmdahl (minimal WLP): %5.0f s, avg WLP %.1f\n",
                ma.makespanS, ma.averageWlp());
    std::printf("HILP                     : %5.0f s, avg WLP %.1f\n",
                hilp_result.makespanS, hilp_result.averageWlp);
    std::printf("Gables (maximal WLP)     : %5.0f s, avg WLP %.1f\n\n",
                gables.makespanS, gables.averageWlp);

    // Figure 3: a 3 W power budget makes the GPU unusable alongside
    // the other units; both compute phases move to the DSA.
    std::printf("== With a 3 W power budget (Figure 3) ==\n");
    spec.powerBudgetW = 3.0;
    EvalResult constrained = evaluate(spec, options);
    std::printf("makespan %.0f s (was %.0f s unconstrained)\n",
                constrained.makespanS, hilp_result.makespanS);
    std::printf("%s\n", constrained.schedule.gantt().c_str());

    std::printf("per-step power (W):");
    for (double watts : constrained.schedule.powerTrace())
        std::printf(" %.0f", watts);
    std::printf("  (budget 3 W)\n");
    return 0;
}
