/**
 * @file
 * hilpd: the HILP evaluation daemon.
 *
 * Serves eval/sweep/stats/shutdown requests over a Unix or TCP
 * stream socket (NDJSON, see protocol.hh) against one long-lived
 * EvalService, so repeated sweeps share a bounded solve memo and
 * warm-start schedule store across client processes:
 *
 *   hilpd --listen=unix:/tmp/hilpd.sock
 *   hilpd --listen=tcp:127.0.0.1:7351 --memo-bytes=512M
 *
 * The same binary doubles as a minimal control client:
 *
 *   hilpd --connect=unix:/tmp/hilpd.sock stats
 *   hilpd --connect=unix:/tmp/hilpd.sock shutdown
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "client.hh"
#include "daemon.hh"
#include "eval_service.hh"
#include "telemetry_http.hh"
#include "support/logging.hh"
#include "support/net.hh"
#include "support/trace.hh"
#include "support/version.hh"

namespace {

using namespace hilp;

service::Daemon *gDaemon = nullptr;

void
onSignal(int)
{
    // stop() only flips an atomic and shutdown(2)s the listener:
    // async-signal-safe, and it unblocks the accept loop so the
    // daemon exits cleanly (unlinking its unix socket on the way).
    if (gDaemon)
        gDaemon->stop();
}

/** Parse a byte count with an optional K/M/G suffix. */
bool
parseBytes(const std::string &text, size_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    size_t scale = 1;
    if (*end == 'K' || *end == 'k')
        scale = 1ull << 10, ++end;
    else if (*end == 'M' || *end == 'm')
        scale = 1ull << 20, ++end;
    else if (*end == 'G' || *end == 'g')
        scale = 1ull << 30, ++end;
    if (*end != '\0')
        return false;
    *out = static_cast<size_t>(value) * scale;
    return true;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --listen=ADDR [--memo-bytes=N] "
                 "[--store-bytes=N]\n"
                 "          [--queue-depth=N] [--executors=N]\n"
                 "          [--metrics-addr=ADDR] [--slo-ms=N]\n"
                 "          [--slow-dump-dir=PATH] "
                 "[--read-timeout=S]\n"
                 "       %s --connect=ADDR stats|shutdown\n"
                 "       %s --version\n"
                 "ADDR is unix:/path or tcp:host:port.\n"
                 "--metrics-addr serves GET /metrics (Prometheus "
                 "text), /metrics.json,\n"
                 "and /healthz over HTTP/1.0. --slo-ms marks slower "
                 "requests in the\n"
                 "flight recorder and dumps their span trees into "
                 "--slow-dump-dir.\n"
                 "--read-timeout drops a peer that sends no complete "
                 "request line\n"
                 "within S seconds (default 300; 0 waits forever).\n",
                 argv0, argv0, argv0);
    return 2;
}

int
runClient(const std::string &address, const std::string &command)
{
    service::ServiceClient client;
    std::string error;
    if (!client.connect(address, &error)) {
        std::fprintf(stderr, "hilpd: connect %s: %s\n",
                     address.c_str(), error.c_str());
        return 1;
    }
    if (command == "stats") {
        Json stats;
        if (!client.stats(&stats, &error)) {
            std::fprintf(stderr, "hilpd: stats: %s\n", error.c_str());
            return 1;
        }
        std::printf("%s\n", stats.dump(2).c_str());
        return 0;
    }
    if (command == "shutdown") {
        if (!client.requestShutdown(&error)) {
            std::fprintf(stderr, "hilpd: shutdown: %s\n",
                         error.c_str());
            return 1;
        }
        return 0;
    }
    std::fprintf(stderr, "hilpd: unknown command \"%s\"\n",
                 command.c_str());
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string listen, connect, command, metricsAddr;
    service::ServiceOptions options;
    service::DaemonOptions daemonOptions;
    // The binary default; the library default (DaemonOptions) stays
    // 0 so embedded daemons keep the historical wait-forever reads.
    daemonOptions.readTimeoutS = 300.0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            size_t len = std::strlen(flag);
            if (arg.compare(0, len, flag) == 0 && arg[len] == '=')
                return arg.c_str() + len + 1;
            return nullptr;
        };
        if (arg == "--version") {
            std::printf("%s\n", versionString().c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (const char *v = value("--listen")) {
            listen = v;
        } else if (const char *v = value("--connect")) {
            connect = v;
        } else if (const char *v = value("--memo-bytes")) {
            if (!parseBytes(v, &options.memoMaxBytes))
                return usage(argv[0]);
        } else if (const char *v = value("--store-bytes")) {
            if (!parseBytes(v, &options.storeMaxBytes))
                return usage(argv[0]);
        } else if (const char *v = value("--queue-depth")) {
            options.maxQueueDepth =
                static_cast<size_t>(std::strtoull(v, nullptr, 10));
        } else if (const char *v = value("--executors")) {
            options.executors = std::atoi(v);
        } else if (const char *v = value("--metrics-addr")) {
            metricsAddr = v;
        } else if (const char *v = value("--slo-ms")) {
            daemonOptions.sloMs = std::atof(v);
        } else if (const char *v = value("--slow-dump-dir")) {
            daemonOptions.dumpDir = v;
        } else if (const char *v = value("--read-timeout")) {
            daemonOptions.readTimeoutS = std::atof(v);
        } else if (!arg.empty() && arg[0] != '-') {
            command = arg;
        } else {
            return usage(argv[0]);
        }
    }

    if (!connect.empty())
        return runClient(connect, command.empty() ? "stats"
                                                  : command);
    if (listen.empty())
        return usage(argv[0]);

    net::Listener listener;
    std::string error;
    if (!listener.open(listen, &error)) {
        std::fprintf(stderr, "hilpd: listen %s: %s\n", listen.c_str(),
                     error.c_str());
        return 1;
    }

    // The flight recorder is always on, and its slow-request capture
    // needs span data: daemon mode records into the tracer's ring
    // buffers unconditionally. The ring keeps the footprint fixed
    // (old events are overwritten, never accumulated), and the
    // solver_micro telemetry gate holds the recording overhead
    // under its budget.
    trace::setRingBuffered(true);
    trace::setEnabled(true);
    trace::setThreadName("hilpd-main");

    service::EvalService evalService(options);
    service::Daemon daemon(evalService, daemonOptions);

    service::TelemetryServer telemetry;
    if (!metricsAddr.empty()) {
        if (!telemetry.start(
                metricsAddr,
                [&evalService] { return evalService.healthJson(); },
                &error)) {
            std::fprintf(stderr, "hilpd: metrics %s: %s\n",
                         metricsAddr.c_str(), error.c_str());
            return 1;
        }
        inform("hilpd: telemetry on %s (GET /metrics, "
               "/metrics.json, /healthz)",
               metricsAddr.c_str());
    }

    gDaemon = &daemon;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    inform("hilpd %s listening on %s (memo cap %zu MiB, store cap "
           "%zu MiB, queue depth %zu)",
           buildGitDescribe(), listen.c_str(),
           options.memoMaxBytes >> 20, options.storeMaxBytes >> 20,
           options.maxQueueDepth);
    daemon.run(listener);
    evalService.drain();
    telemetry.stop();
    inform("hilpd: exiting");
    gDaemon = nullptr;
    return 0;
}
