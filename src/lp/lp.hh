/**
 * @file
 * A self-contained dense linear-programming solver.
 *
 * HILP's branch-and-bound search certifies its optimality gap with
 * lower bounds, one of which comes from a linear relaxation of the
 * scheduling problem (see cp/bounds.cc). The paper used an external
 * solver stack (MiniZinc + OR-Tools); this module is the from-scratch
 * substitute documented in DESIGN.md.
 *
 * The solver implements the classic two-phase primal simplex method
 * on a dense tableau with a Dantzig pricing rule and a Bland
 * anti-cycling fallback. Problems are expressed as
 *
 *     minimize    c^T x
 *     subject to  a_i^T x (<= | = | >=) b_i     for each constraint i
 *                 lb_j <= x_j <= ub_j           for each variable j
 *
 * This is not a high-performance LP code; it is sized for the small,
 * dense relaxations HILP generates (tens to a few hundred variables).
 */

#ifndef HILP_LP_LP_HH
#define HILP_LP_LP_HH

#include <limits>
#include <string>
#include <vector>

namespace hilp {
namespace lp {

/** Positive infinity for unbounded variable bounds. */
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/** Relation of a linear constraint to its right-hand side. */
enum class Relation { LessEqual, Equal, GreaterEqual };

/** Outcome of an LP solve. */
enum class Status {
    Optimal,       //!< Optimal solution found.
    Infeasible,    //!< No feasible point exists.
    Unbounded,     //!< Objective is unbounded below.
    IterationLimit //!< Pivot limit hit before convergence.
};

/** Human-readable name for a Status value. */
const char *toString(Status status);

/** One term of a linear expression: coefficient * variable. */
struct Term
{
    int var;       //!< Variable index from Problem::addVariable().
    double coeff;  //!< Coefficient.
};

/**
 * An LP in construction form. Variables and constraints are added
 * incrementally; the solver converts to standard form internally.
 */
class Problem
{
  public:
    /**
     * Add a variable with bounds [lb, ub] and objective coefficient
     * obj. Returns the variable index. lb must be finite (HILP's
     * relaxations never need free variables); ub may be kInf.
     */
    int addVariable(double lb, double ub, double obj,
                    std::string name = "");

    /** Add the constraint sum(terms) rel rhs. */
    void addConstraint(std::vector<Term> terms, Relation rel, double rhs);

    /** Number of variables added so far. */
    int numVariables() const { return static_cast<int>(lb_.size()); }

    /** Number of constraints added so far. */
    int numConstraints() const { return static_cast<int>(rhs_.size()); }

    /** Lower bound of variable v. */
    double lowerBound(int v) const { return lb_[v]; }

    /** Upper bound of variable v. */
    double upperBound(int v) const { return ub_[v]; }

    /** Objective coefficient of variable v. */
    double objective(int v) const { return obj_[v]; }

    /** Name of variable v (possibly empty). */
    const std::string &name(int v) const { return names_[v]; }

  private:
    friend class Solver;

    std::vector<double> lb_;
    std::vector<double> ub_;
    std::vector<double> obj_;
    std::vector<std::string> names_;

    std::vector<std::vector<Term>> rows_;
    std::vector<Relation> rels_;
    std::vector<double> rhs_;
};

/** Result of a solve: status, objective value, and primal point. */
struct Solution
{
    Status status = Status::Infeasible;
    double objective = 0.0;
    std::vector<double> x;

    /** True when an optimal point was found. */
    bool optimal() const { return status == Status::Optimal; }
};

/**
 * Two-phase dense primal simplex solver.
 */
class Solver
{
  public:
    /** Tunables; the defaults suit HILP's relaxations. */
    struct Options
    {
        /** Feasibility / pivot tolerance. */
        double eps = 1e-9;
        /** Maximum number of pivots across both phases. */
        int maxPivots = 50000;
        /** Pivots of non-improvement before switching to Bland. */
        int blandThreshold = 500;
    };

    Solver() = default;
    explicit Solver(Options options) : options_(options) {}

    /** Solve the problem; the problem object is not modified. */
    Solution solve(const Problem &problem) const;

  private:
    Options options_;
};

} // namespace lp
} // namespace hilp

#endif // HILP_LP_LP_HH
