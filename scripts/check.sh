#!/usr/bin/env sh
# Run the full verification gate: the plain build plus the sanitized
# (ASan + UBSan) build, each followed by the tier1 test suite. This is
# the one command to run before sending a change for review.
#
# Usage: scripts/check.sh [jobs]
#   jobs  parallel build/test width (default: nproc)

set -eu

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc 2>/dev/null || echo 4)}"

run_suite() {
    build_dir="$1"
    shift
    echo "==> configure ${build_dir} ($*)"
    cmake -B "${build_dir}" -S . "$@"
    echo "==> build ${build_dir}"
    cmake --build "${build_dir}" -j "${jobs}"
    echo "==> test ${build_dir} (tier1)"
    ctest --test-dir "${build_dir}" -L tier1 -j "${jobs}" \
        --output-on-failure
}

run_suite build
run_suite build-asan -DHILP_SANITIZE=ON

# No-good + LNS soundness under ASan: the differential tests (no-good
# pruning preserves the certified optimum, LNS never regresses its
# incumbent) run again on their own so a heap bug in the solver hot
# path fails this stage by name even when the tier1 sweep above is
# trimmed or filtered.
echo "==> no-good/LNS soundness (ASan)"
./build-asan/tests/hilp_test_cp \
    --gtest_filter='*Nogood*:*Lns*:*NogoodDiff*:*LnsMonotone*'

# Thread-sanitizer stage: build only the concurrency test binary
# (thread pool + budget + parallel branch-and-bound) under TSan and
# run it. TSan is incompatible with ASan, so this is a third build
# tree; benches and examples are skipped to keep it fast.
echo "==> configure build-tsan"
cmake -B build-tsan -S . -DHILP_TSAN=ON \
    -DHILP_BUILD_BENCH=OFF -DHILP_BUILD_EXAMPLES=OFF
echo "==> build build-tsan (hilp_test_concurrency)"
cmake --build build-tsan -j "${jobs}" --target hilp_test_concurrency
echo "==> test build-tsan (concurrency under TSan)"
./build-tsan/tests/hilp_test_concurrency

# Tracing smoke test: run the solver microbenchmark with a trace
# export (benchmark timing loops filtered out for speed) and validate
# that the file is a well-formed, balanced Chrome trace.
echo "==> trace smoke test"
trace_file="build/check_trace.json"
./build/bench/solver_micro "--trace-out=${trace_file}" \
    --no-thread-sweep --no-feature-sweep \
    --benchmark_filter=none > /dev/null
./build/bench/trace_check "${trace_file}"

# Checkpoint/resume round trip: an uninterrupted truncated fig7 sweep
# vs the same sweep SIGKILLed mid-run and resumed. The resumed
# checkpoint must end up with the same set of (key, ok) records - a
# kill loses only in-flight points, never completed ones, and resume
# re-solves only what is missing.
echo "==> checkpoint/resume round trip"
ckpt_a="build/check_ckpt_a.jsonl"
ckpt_b="build/check_ckpt_b.jsonl"
rm -f "${ckpt_a}" "${ckpt_b}"
fig7="./build/bench/fig7_design_space"
"${fig7}" --max-configs=16 "--checkpoint=${ckpt_a}" \
    --benchmark_filter=none > /dev/null

# Interrupted run: SIGKILL the sweep once a few points have been
# flushed. Best-effort timing - if the run finishes first, the resume
# below simply finds everything done, which is also a valid path.
"${fig7}" --max-configs=16 "--checkpoint=${ckpt_b}" \
    --benchmark_filter=none > /dev/null 2>&1 &
sweep_pid=$!
for _ in $(seq 1 200); do
    lines=$(wc -l < "${ckpt_b}" 2>/dev/null || echo 0)
    if [ "${lines}" -ge 20 ]; then
        kill -9 "${sweep_pid}" 2>/dev/null || true
        break
    fi
    kill -0 "${sweep_pid}" 2>/dev/null || break
    sleep 0.05
done
wait "${sweep_pid}" 2>/dev/null || true

"${fig7}" --max-configs=16 "--checkpoint=${ckpt_b}" --resume \
    --benchmark_filter=none > /dev/null

# Compare the completed point sets: sorted unique (key, ok) pairs.
# Telemetry fields (nodes, seconds) legitimately vary run to run.
point_set() {
    sed -n 's/.*"key":"\([0-9a-f]*\)".*"ok":\(true\|false\).*/\1 \2/p' \
        "$1" | sort -u
}
point_set "${ckpt_a}" > build/check_ckpt_a.set
point_set "${ckpt_b}" > build/check_ckpt_b.set
if ! diff build/check_ckpt_a.set build/check_ckpt_b.set; then
    echo "checkpoint/resume point sets differ" >&2
    exit 1
fi
if ! [ -s build/check_ckpt_a.set ]; then
    echo "checkpoint round trip produced no points" >&2
    exit 1
fi

# Warm-start rehydration after resume: drop the last few records from
# the completed checkpoint (its tail is the HILP sweep, which runs
# last) and resume. The re-solved tail points must warm-start from
# schedules persisted by the *previous* run - the resumed chain
# predecessors rehydrate their hints - so the resume's metrics must
# show both resumed points and rehydrated chain hints, and the final
# point set must again match the uninterrupted run.
echo "==> checkpoint resume rehydrates warm starts"
ckpt_c="build/check_ckpt_c.jsonl"
metrics_c="build/check_ckpt_c.metrics.json"
total=$(wc -l < "${ckpt_a}")
if [ "${total}" -le 3 ]; then
    echo "checkpoint too small to truncate (${total} lines)" >&2
    exit 1
fi
head -n "$((total - 3))" "${ckpt_a}" > "${ckpt_c}"
"${fig7}" --max-configs=16 "--checkpoint=${ckpt_c}" --resume \
    "--metrics-out=${metrics_c}" --benchmark_filter=none > /dev/null
counter() {
    sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "${metrics_c}" \
        | head -n 1
}
resumed=$(counter "dse.points.resumed")
rehydrated=$(counter "dse.chain.rehydrated")
if [ -z "${resumed}" ] || [ "${resumed}" -lt 1 ]; then
    echo "resume reported no resumed points (${resumed:-missing})" >&2
    exit 1
fi
if [ -z "${rehydrated}" ] || [ "${rehydrated}" -lt 1 ]; then
    echo "resume rehydrated no chain hints (${rehydrated:-missing})" >&2
    exit 1
fi
point_set "${ckpt_c}" > build/check_ckpt_c.set
if ! diff build/check_ckpt_a.set build/check_ckpt_c.set; then
    echo "truncated-resume point set differs" >&2
    exit 1
fi

echo "==> all checks passed"
