/**
 * @file
 * Figure 5c: reproducing dark silicon. Speedup versus the power
 * budget (50-400 W) for 4-CPU SoCs with 16/32/64-SM GPUs on the
 * Optimized workload. Expected shape (paper): 50 W suffices for the
 * 16-SM SoC; the 32-SM (64-SM) SoC needs ~100 W (~150 W) to reach
 * its potential; and at 50 W the 32-SM SoC beats the 64-SM SoC
 * because the budget caps the 64-SM GPU at 300 MHz while the 32-SM
 * GPU can use its full frequency range.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

void
emitFigure()
{
    bench::banner(
        "Figure 5c - reproducing dark silicon",
        "Optimized workload, 4 CPU cores, p_max swept 50-400 W.\n"
        "Expected: 16-SM flat from 50 W; 32-SM saturates ~100 W;\n"
        "64-SM saturates ~150 W; 32-SM beats 64-SM at 50 W (DVFS).");

    auto wl = workload::makeWorkload(workload::Variant::Optimized);
    dse::DseOptions options;
    options.engine = bench::validationEngine(8.0);

    const std::vector<double> budgets = {50,  100, 150, 200,
                                         250, 300, 350, 400};
    const std::vector<int> gpus = {16, 32, 64};

    Table table({"p_max (W)", "16-SM GPU", "32-SM GPU", "64-SM GPU"});
    std::vector<std::vector<double>> grid;
    for (double watts : budgets) {
        RowBuilder row;
        row.cell(static_cast<int64_t>(watts));
        std::vector<double> row_values;
        for (int sms : gpus) {
            arch::Constraints constraints;
            constraints.powerBudgetW = watts;
            arch::SocConfig soc;
            soc.cpuCores = 4;
            soc.gpuSms = sms;
            dse::DsePoint point = dse::evaluatePoint(
                soc, wl, constraints, dse::ModelKind::Hilp, options);
            row.cell(point.ok ? point.speedup : 0.0, 2);
            row_values.push_back(point.ok ? point.speedup : 0.0);
        }
        table.addRow(row.take());
        grid.push_back(row_values);
    }
    table.print();

    bench::section("dark-silicon crossover check");
    std::printf("at 50 W: 32-SM speedup %.2f vs 64-SM speedup %.2f "
                "(paper: 32-SM wins)\n", grid[0][1], grid[0][2]);
}

void
BM_EvaluatePowerBoundPoint(benchmark::State &state)
{
    auto wl = workload::makeWorkload(workload::Variant::Optimized);
    arch::Constraints constraints;
    constraints.powerBudgetW = 100.0;
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 64;
    dse::DseOptions options = bench::explorationOptions(1.0);
    for (auto _ : state) {
        dse::DsePoint point = dse::evaluatePoint(
            soc, wl, constraints, dse::ModelKind::Hilp, options);
        benchmark::DoNotOptimize(point.speedup);
    }
}
BENCHMARK(BM_EvaluatePowerBoundPoint)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
