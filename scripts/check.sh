#!/usr/bin/env sh
# Run the full verification gate: the plain build plus the sanitized
# (ASan + UBSan) build, each followed by the tier1 test suite. This is
# the one command to run before sending a change for review.
#
# Usage: scripts/check.sh [jobs]
#   jobs  parallel build/test width (default: nproc)

set -eu

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc 2>/dev/null || echo 4)}"

run_suite() {
    build_dir="$1"
    shift
    echo "==> configure ${build_dir} ($*)"
    cmake -B "${build_dir}" -S . "$@"
    echo "==> build ${build_dir}"
    cmake --build "${build_dir}" -j "${jobs}"
    echo "==> test ${build_dir} (tier1)"
    ctest --test-dir "${build_dir}" -L tier1 -j "${jobs}" \
        --output-on-failure
}

run_suite build
run_suite build-asan -DHILP_SANITIZE=ON

# No-good + LNS soundness under ASan: the differential tests (no-good
# pruning preserves the certified optimum, LNS never regresses its
# incumbent) run again on their own so a heap bug in the solver hot
# path fails this stage by name even when the tier1 sweep above is
# trimmed or filtered.
echo "==> no-good/LNS soundness (ASan)"
./build-asan/tests/hilp_test_cp \
    --gtest_filter='*Nogood*:*Lns*:*NogoodDiff*:*LnsMonotone*'

# Thread-sanitizer stage: build only the concurrency test binary
# (thread pool + budget + parallel branch-and-bound) under TSan and
# run it. TSan is incompatible with ASan, so this is a third build
# tree; benches and examples are skipped to keep it fast.
echo "==> configure build-tsan"
cmake -B build-tsan -S . -DHILP_TSAN=ON \
    -DHILP_BUILD_BENCH=OFF -DHILP_BUILD_EXAMPLES=OFF
echo "==> build build-tsan (hilp_test_concurrency)"
cmake --build build-tsan -j "${jobs}" --target hilp_test_concurrency
echo "==> test build-tsan (concurrency under TSan)"
./build-tsan/tests/hilp_test_concurrency

# Tracing smoke test: run the solver microbenchmark with a trace
# export (benchmark timing loops filtered out for speed) and validate
# that the file is a well-formed, balanced Chrome trace. --trace-out
# stamps the writing pid into the name (check_trace.<pid>.json), so
# clear old stamps first and glob for the one this run produced.
echo "==> trace smoke test"
rm -f build/check_trace.*.json
./build/bench/solver_micro "--trace-out=build/check_trace.json" \
    --no-thread-sweep --no-feature-sweep --no-layout-sweep \
    --benchmark_filter=none > /dev/null
trace_file=$(ls build/check_trace.*.json)
./build/bench/trace_check "${trace_file}"

# Memory-layout perf gate: rerun the packed-vs-legacy layout sweep
# (which also enforces bit-identical makespans/trees between the two
# layouts) and require the packed layout's explore-class speedup to
# hold. The sweep's own measurement reports >=1.3x; the gate runs at
# 1.2x so machine noise does not flake CI while a real regression
# still fails. Run from build/ so the sweep's BENCH_solver.json does
# not clobber the committed measurement at the repo root.
echo "==> memory layout perf gate"
(cd build && ./bench/solver_micro --no-thread-sweep \
    --no-feature-sweep --benchmark_filter=none > /dev/null)
layout_speedup=$(sed -n \
    's/.*"speedup_layout_explore": \([0-9.]*\).*/\1/p' \
    build/BENCH_solver.json | head -n 1)
if [ -z "${layout_speedup}" ]; then
    echo "layout sweep reported no explore-class speedup" >&2
    exit 1
fi
awk -v s="${layout_speedup}" 'BEGIN { exit !(s >= 1.2) }' || {
    echo "layout perf gate: speedup_layout_explore ${layout_speedup}" \
        "is below the 1.2x floor" >&2
    exit 1
}
echo "    speedup_layout_explore ${layout_speedup} (floor 1.2x)"

# Checkpoint/resume round trip: an uninterrupted truncated fig7 sweep
# vs the same sweep SIGKILLed mid-run and resumed. The resumed
# checkpoint must end up with the same set of (key, ok) records - a
# kill loses only in-flight points, never completed ones, and resume
# re-solves only what is missing.
echo "==> checkpoint/resume round trip"
ckpt_a="build/check_ckpt_a.jsonl"
ckpt_b="build/check_ckpt_b.jsonl"
rm -f "${ckpt_a}" "${ckpt_b}"
fig7="./build/bench/fig7_design_space"
"${fig7}" --max-configs=16 "--checkpoint=${ckpt_a}" \
    --benchmark_filter=none > /dev/null

# Interrupted run: SIGKILL the sweep once a few points have been
# flushed. Best-effort timing - if the run finishes first, the resume
# below simply finds everything done, which is also a valid path.
"${fig7}" --max-configs=16 "--checkpoint=${ckpt_b}" \
    --benchmark_filter=none > /dev/null 2>&1 &
sweep_pid=$!
for _ in $(seq 1 200); do
    lines=$(wc -l < "${ckpt_b}" 2>/dev/null || echo 0)
    if [ "${lines}" -ge 20 ]; then
        kill -9 "${sweep_pid}" 2>/dev/null || true
        break
    fi
    kill -0 "${sweep_pid}" 2>/dev/null || break
    sleep 0.05
done
wait "${sweep_pid}" 2>/dev/null || true

"${fig7}" --max-configs=16 "--checkpoint=${ckpt_b}" --resume \
    --benchmark_filter=none > /dev/null

# Compare the completed point sets: sorted unique (key, ok) pairs.
# Telemetry fields (nodes, seconds) legitimately vary run to run.
point_set() {
    sed -n 's/.*"key":"\([0-9a-f]*\)".*"ok":\(true\|false\).*/\1 \2/p' \
        "$1" | sort -u
}
point_set "${ckpt_a}" > build/check_ckpt_a.set
point_set "${ckpt_b}" > build/check_ckpt_b.set
if ! diff build/check_ckpt_a.set build/check_ckpt_b.set; then
    echo "checkpoint/resume point sets differ" >&2
    exit 1
fi
if ! [ -s build/check_ckpt_a.set ]; then
    echo "checkpoint round trip produced no points" >&2
    exit 1
fi

# Warm-start rehydration after resume: drop the last few records from
# the completed checkpoint (its tail is the HILP sweep, which runs
# last) and resume. The re-solved tail points must warm-start from
# schedules persisted by the *previous* run - the resumed chain
# predecessors rehydrate their hints - so the resume's metrics must
# show both resumed points and rehydrated chain hints, and the final
# point set must again match the uninterrupted run.
echo "==> checkpoint resume rehydrates warm starts"
ckpt_c="build/check_ckpt_c.jsonl"
metrics_c="build/check_ckpt_c.metrics.json"
total=$(wc -l < "${ckpt_a}")
if [ "${total}" -le 3 ]; then
    echo "checkpoint too small to truncate (${total} lines)" >&2
    exit 1
fi
head -n "$((total - 3))" "${ckpt_a}" > "${ckpt_c}"
"${fig7}" --max-configs=16 "--checkpoint=${ckpt_c}" --resume \
    "--metrics-out=${metrics_c}" --benchmark_filter=none > /dev/null
counter() {
    sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "${metrics_c}" \
        | head -n 1
}
resumed=$(counter "dse.points.resumed")
rehydrated=$(counter "dse.chain.rehydrated")
if [ -z "${resumed}" ] || [ "${resumed}" -lt 1 ]; then
    echo "resume reported no resumed points (${resumed:-missing})" >&2
    exit 1
fi
if [ -z "${rehydrated}" ] || [ "${rehydrated}" -lt 1 ]; then
    echo "resume rehydrated no chain hints (${rehydrated:-missing})" >&2
    exit 1
fi
point_set "${ckpt_c}" > build/check_ckpt_c.set
if ! diff build/check_ckpt_a.set build/check_ckpt_c.set; then
    echo "truncated-resume point set differs" >&2
    exit 1
fi

# Daemon round trip: boot hilpd on a Unix socket, run a truncated
# fig7 sweep through it via --connect, and require the figure output
# (Pareto fronts included) to match the in-process run. The one
# tolerated difference is the per-propagator telemetry line: the wire
# shares the checkpoint record format, which does not carry
# propagator stats (resumed points behave identically). A warm
# re-run must then hit the daemon's cross-request memo, stats must
# report it, shutdown must unlink the socket, and a SIGKILLed daemon
# must leave a stale socket that the next boot reclaims.
echo "==> hilpd daemon round trip"
hilpd="./build/src/service/hilpd"
daemon_sock="build/check_hilpd.sock"
rm -f "${daemon_sock}"
"${hilpd}" "--listen=unix:${daemon_sock}" \
    > build/check_hilpd.log 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -S "${daemon_sock}" ] && break
    kill -0 "${daemon_pid}" 2>/dev/null || {
        echo "hilpd died on startup" >&2
        cat build/check_hilpd.log >&2
        exit 1
    }
    sleep 0.05
done
"${fig7}" --max-configs=16 "--connect=unix:${daemon_sock}" \
    --benchmark_filter=none > build/check_fig7_daemon.out
"${fig7}" --max-configs=16 \
    --benchmark_filter=none > build/check_fig7_local.out
grep -v "solver effort" build/check_fig7_daemon.out \
    > build/check_fig7_daemon.cmp
grep -v "solver effort" build/check_fig7_local.out \
    > build/check_fig7_local.cmp
if ! diff build/check_fig7_daemon.cmp build/check_fig7_local.cmp; then
    echo "daemon sweep output differs from in-process run" >&2
    exit 1
fi

# Warm re-run: the daemon's memo outlives the first request, so the
# second identical sweep must record hits.
"${fig7}" --max-configs=16 "--connect=unix:${daemon_sock}" \
    --benchmark_filter=none > /dev/null
"${hilpd}" "--connect=unix:${daemon_sock}" stats \
    > build/check_hilpd_stats.json
memo_hits=$(sed -n '/"memo"/,/}/s/.*"hits": \([0-9][0-9]*\).*/\1/p' \
    build/check_hilpd_stats.json | head -n 1)
if [ -z "${memo_hits}" ] || [ "${memo_hits}" -lt 1 ]; then
    echo "daemon memo recorded no hits (${memo_hits:-missing})" >&2
    exit 1
fi

# Clean shutdown unlinks the socket.
"${hilpd}" "--connect=unix:${daemon_sock}" shutdown > /dev/null
wait "${daemon_pid}" || {
    echo "hilpd exited non-zero after shutdown" >&2
    exit 1
}
if [ -e "${daemon_sock}" ]; then
    echo "shutdown left the socket behind" >&2
    exit 1
fi

# A SIGKILLed daemon leaves a stale socket; the next boot on the same
# path must reclaim it (a live daemon would be address-in-use).
"${hilpd}" "--listen=unix:${daemon_sock}" > /dev/null 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -S "${daemon_sock}" ] && break
    sleep 0.05
done
kill -9 "${daemon_pid}" 2>/dev/null
wait "${daemon_pid}" 2>/dev/null || true
if ! [ -S "${daemon_sock}" ]; then
    echo "SIGKILL test expected a stale socket" >&2
    exit 1
fi
"${hilpd}" "--listen=unix:${daemon_sock}" > /dev/null 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
    if "${hilpd}" "--connect=unix:${daemon_sock}" stats \
        > /dev/null 2>&1; then
        break
    fi
    sleep 0.05
done
"${hilpd}" "--connect=unix:${daemon_sock}" shutdown > /dev/null
wait "${daemon_pid}" || {
    echo "hilpd restarted on a stale socket but exited non-zero" >&2
    exit 1
}

# Telemetry endpoint: boot hilpd with a metrics listener and a
# deliberately tiny SLO, drive one sweep through it, and check what
# an operator sees. /metrics must parse as Prometheus text (the
# expo_check validator) and count the served request, /healthz must
# answer ok, the stats op must report latency percentiles and flight
# recorder occupancy, and the slow request (everything beats a 1 ms
# SLO) must have left a request-id-stamped span-tree dump that the
# Chrome-trace validator accepts.
echo "==> hilpd telemetry endpoint"
expo="./build/bench/expo_check"
metrics_sock="build/check_hilpd_metrics.sock"
dump_dir="build/check_slow_dumps"
rm -f "${daemon_sock}" "${metrics_sock}"
rm -rf "${dump_dir}"
mkdir -p "${dump_dir}"
"${hilpd}" "--listen=unix:${daemon_sock}" \
    "--metrics-addr=unix:${metrics_sock}" \
    --slo-ms=1 "--slow-dump-dir=${dump_dir}" \
    > build/check_hilpd_telemetry.log 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -S "${daemon_sock}" ] && [ -S "${metrics_sock}" ] && break
    kill -0 "${daemon_pid}" 2>/dev/null || {
        echo "hilpd (telemetry) died on startup" >&2
        cat build/check_hilpd_telemetry.log >&2
        exit 1
    }
    sleep 0.05
done
"${fig7}" --max-configs=16 "--connect=unix:${daemon_sock}" \
    --benchmark_filter=none > /dev/null

"${expo}" "unix:${metrics_sock}" /metrics > build/check_metrics.prom
grep -q "^hilpd_requests_total [1-9]" build/check_metrics.prom || {
    echo "/metrics did not count the served requests" >&2
    exit 1
}
grep -q "^hilpd_request_total_us_count [1-9]" \
    build/check_metrics.prom || {
    echo "/metrics has no request latency histogram" >&2
    exit 1
}
"${expo}" "unix:${metrics_sock}" /healthz > build/check_healthz.json
grep -q '"ok":true' build/check_healthz.json || {
    echo "/healthz did not report ok" >&2
    exit 1
}

"${hilpd}" "--connect=unix:${daemon_sock}" stats \
    > build/check_hilpd_telemetry_stats.json
grep -q '"p50"' build/check_hilpd_telemetry_stats.json || {
    echo "stats has no latency percentiles" >&2
    exit 1
}
grep -q '"flight_recorder"' build/check_hilpd_telemetry_stats.json || {
    echo "stats has no flight recorder section" >&2
    exit 1
}

dump=$(ls "${dump_dir}"/hilpd_slow_req*.trace.json 2>/dev/null \
    | head -n 1)
if [ -z "${dump}" ]; then
    echo "no slow-request trace dump in ${dump_dir}" >&2
    exit 1
fi
./build/bench/trace_check "${dump}"

"${hilpd}" "--connect=unix:${daemon_sock}" shutdown > /dev/null
wait "${daemon_pid}" || {
    echo "hilpd (telemetry) exited non-zero" >&2
    exit 1
}

# Distributed-sweep chaos: run the same fig7 slice through a
# coordinator with three forked workers, SIGKILL one worker in the
# middle of the HILP sweep, and require (a) the merged figure output
# to match the in-process run byte for byte and (b) at least one
# lease to have been re-issued - proof the kill exercised the
# failure path rather than landing in an idle window. The kill is
# inherently racy (the victim may finish its unit first), so the
# stage retries; the output equality must hold on every attempt.
echo "==> distributed sweep chaos (worker SIGKILL)"
dist_sock="build/check_dist.sock"
chaos_ok=0
for attempt in 1 2 3 4 5; do
    rm -f "${dist_sock}"
    "${fig7}" --max-configs=16 "--coordinator=unix:${dist_sock}" \
        --spawn-workers=3 --lease-timeout=2 \
        --benchmark_filter=none \
        > build/check_fig7_chaos.out 2> build/check_fig7_chaos.log &
    chaos_pid=$!
    # Wait for the HILP sweep (the long, solver-bound one), then for
    # the first unit leased inside it, and SIGKILL that worker while
    # it is still solving.
    victim=""
    for _ in $(seq 1 1200); do
        kill -0 "${chaos_pid}" 2>/dev/null || break
        # The most recently leased unit is the one most likely to
        # still be in flight when the signal lands.
        victim=$(awk '/coordinator sweep \(HILP\)/ { hilp = 1 }
                      hilp && /worker w[0-9]+: leased unit/ {
                          pid = $0
                          sub(/.*worker w/, "", pid)
                          sub(/:.*/, "", pid) }
                      END { if (pid != "") print pid }' \
            build/check_fig7_chaos.log)
        [ -n "${victim}" ] && break
        sleep 0.05
    done
    if [ -n "${victim}" ]; then
        kill -9 "${victim}" 2>/dev/null || true
    fi
    wait "${chaos_pid}" || {
        echo "coordinator run exited non-zero (attempt ${attempt})" >&2
        cat build/check_fig7_chaos.log >&2
        exit 1
    }
    grep -v "solver effort" build/check_fig7_chaos.out \
        > build/check_fig7_chaos.cmp
    if ! diff build/check_fig7_chaos.cmp build/check_fig7_local.cmp
    then
        echo "chaos sweep output differs from in-process run" >&2
        exit 1
    fi
    if grep -Eq "[1-9][0-9]* lease\(s\) re-issued" \
        build/check_fig7_chaos.log; then
        chaos_ok=1
        break
    fi
    echo "    attempt ${attempt}: no lease re-issued (victim" \
        "${victim:-none} finished first?); retrying"
done
if [ "${chaos_ok}" != 1 ]; then
    echo "no attempt re-issued a lease after the worker SIGKILL" >&2
    exit 1
fi

echo "==> all checks passed"
