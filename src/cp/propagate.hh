/**
 * @file
 * The propagation layer of the CP core: modular pruning rules behind
 * one Propagator interface, driven to fixpoint by a PropagationEngine
 * with trail-based exact undo.
 *
 * Historically the branch-and-bound search fused all of its bound and
 * feasibility reasoning into the recursion (Searcher::nodeBound):
 * resource-energy accounting, disjunctive-group load, and the
 * critical-path pass were inlined and hand-undone on backtrack. This
 * layer extracts each rule into a Propagator:
 *
 *  - "precedence":  critical-path earliest-start propagation over the
 *                   precedence/lag DAG (head/tail bounds).
 *  - "timetable":   timetable-cumulative reasoning - committed plus
 *                   minimum remaining resource energy against each
 *                   capacity.
 *  - "disjunctive": per-group load - busy time already scheduled on a
 *                   device plus the minimum durations still pinned to
 *                   it.
 *  - "energetic":   optional energetic reasoning on the cumulative
 *                   resources (suffix energy over [est, M] windows);
 *                   off by default, plugged in via
 *                   SolverOptions::energeticReasoning.
 *
 * The engine owns the shared interval Profile, notifies every
 * propagator of each placement, records placements on a trail so
 * backtracking unwinds *exactly* (integer state throughout), and runs
 * the propagators through a fixpoint queue: a propagator that
 * tightens the shared earliest-start vector re-activates the
 * propagators that subscribe to it. Each propagator carries its own
 * telemetry (invocations, prunings, sampled time) which flows through
 * SearchResult/SolveStats into the DSE reports.
 *
 * New pruning rules plug in without touching search control flow:
 * implement Propagator, add it to the engine, done.
 */

#ifndef HILP_CP_PROPAGATE_HH
#define HILP_CP_PROPAGATE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bounds.hh"
#include "model.hh"
#include "profile.hh"
#include "support/arena.hh"

namespace hilp {
namespace cp {

/** Telemetry one propagator accumulates over a search. */
struct PropagatorStats
{
    std::string name;
    int64_t invocations = 0; //!< propagate() calls.
    int64_t prunings = 0;    //!< Cutoffs this propagator caused.
    double seconds = 0.0;    //!< Sampled propagate() wall time.
};

/** Merge per-propagator stats into an accumulator, matched by name. */
void mergePropagatorStats(std::vector<PropagatorStats> &into,
                          const std::vector<PropagatorStats> &from);

/**
 * Everything a propagator may read (and the earliest-start vector it
 * may tighten) about the current search node. The assignment/end
 * vectors belong to the search; makespan is the partial schedule's
 * completion time, ub the incumbent to prune against.
 */
struct PropagationContext
{
    const Model &model;
    const CriticalPathData &cp;
    const std::vector<Assignment> &assign;
    const std::vector<Time> &end;
    Time makespan = 0;
    Time externalLowerBound = 0;
    Time ub = 0;
    /**
     * Scratch earliest-start per task, recomputed inside the
     * fixpoint; only meaningful for unscheduled tasks and only after
     * the precedence propagator has run in the current fixpoint.
     */
    std::vector<Time> &est;
};

/**
 * One pruning rule. Propagators see every placement (onPlace) and
 * its exact undo (onUnplace, driven by the engine's trail), so they
 * can keep incremental summaries; propagate() turns the summary into
 * a makespan lower bound for the current node.
 */
class Propagator
{
  public:
    virtual ~Propagator() = default;

    /** Stable identifier used in telemetry and reports. */
    virtual const char *name() const = 0;

    /** Incorporate the placement of task t. */
    virtual void onPlace(int task, const Mode &mode, Time start) = 0;

    /** Exactly undo the matching onPlace (reverse order). */
    virtual void onUnplace(int task, const Mode &mode, Time start) = 0;

    /** What one propagate() invocation produced. */
    struct Outcome
    {
        /** Lower bound on any completion of this partial schedule. */
        Time bound = 0;
        /** The shared est vector changed (wakes subscribers). */
        bool changedEst = false;
    };

    /** Run the rule against the current node. */
    virtual Outcome propagate(const PropagationContext &ctx) = 0;

    /** Re-queue this propagator when another one changes est. */
    virtual bool wantsEstUpdates() const { return false; }
};

/** The built-in propagators (see file comment for their rules). */
std::unique_ptr<Propagator> makePrecedencePropagator(const Model &model);
std::unique_ptr<Propagator> makeTimetablePropagator(const Model &model);
std::unique_ptr<Propagator> makeDisjunctivePropagator(const Model &model);
std::unique_ptr<Propagator> makeEnergeticPropagator(const Model &model);

/**
 * Owns the shared interval Profile, the propagator set, and the
 * trail. The search places and unwinds decisions exclusively through
 * this engine, so propagator state can never drift out of sync with
 * the profile.
 */
class PropagationEngine
{
  public:
    /** `packed` selects the Profile layout (see Profile). */
    explicit PropagationEngine(const Model &model, bool packed = true);

    /** Register a propagator (fixpoint runs them in add order). */
    void add(std::unique_ptr<Propagator> propagator);

    /** The shared occupancy profile. */
    Profile &profile() { return profile_; }
    const Profile &profile() const { return profile_; }

    /**
     * Commit a placement: updates the profile, notifies every
     * propagator, and pushes a trail entry.
     */
    void place(int task, const Mode &mode, Time start);

    /** Unwind the most recent placement exactly. */
    void undo();

    /** Current trail depth (placements not yet undone). */
    size_t depth() const { return trail_.size(); }

    /**
     * Run all propagators to fixpoint and return the node's makespan
     * lower bound (at least max(ctx.makespan, externalLowerBound)).
     * Stops early once the bound reaches ctx.ub - the cutoff is
     * attributed to the propagator that proved it.
     */
    Time fixpoint(PropagationContext &ctx);

    /** Per-propagator telemetry accumulated so far. */
    std::vector<PropagatorStats> stats() const;

    /**
     * Arena backing the trail and fixpoint queue once they outgrow
     * their inline storage. Never rewound while the engine lives, so
     * spilled storage stays valid; exposed for scratch accounting.
     */
    const support::Arena &stateArena() const { return stateArena_; }

  private:
    struct TrailEntry
    {
        int task;
        const Mode *mode;
        Time start;
    };

    Profile profile_;
    std::vector<std::unique_ptr<Propagator>> propagators_;
    std::vector<PropagatorStats> stats_;
    /**
     * Spill arena for trail_/queue_ (declared first so it outlives
     * them). Depth is bounded by the task count, so after one spill
     * past the inline storage the steady state allocates nothing.
     */
    support::Arena stateArena_;
    support::SmallVector<TrailEntry, 64> trail_;
    /** Fixpoint scratch: queued flag per propagator. */
    std::vector<uint8_t> queued_;
    support::SmallVector<int, 8> queue_;
};

} // namespace cp
} // namespace hilp

#endif // HILP_CP_PROPAGATE_HH
