/**
 * @file
 * Differential tests: the interval-based Profile against the dense
 * step-indexed Timetable. Both implement the same occupancy contract
 * in the same scaled integer units, so across arbitrary operation
 * sequences every query must agree *exactly* - earliestStart, fits,
 * per-step usage, and group busyness. The dense table is the
 * obviously-correct reference; any disagreement is a Profile bug.
 *
 * The Profile runs in both of its layouts — packed (SoA slab,
 * galloping search, precomputed mode rows) and legacy (AoS
 * baseline) — against the same oracle, so the test also holds the
 * two layouts bit-identical to each other. Half the probed modes are
 * registered with the model (exercising the precomputed Mode::id
 * rows and the slab's region growth under many placements), half are
 * hand-built copies with id == -1 (exercising the per-query
 * conversion fallback).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cp/model.hh"
#include "cp/profile.hh"
#include "cp/timetable.hh"
#include "support/random.hh"
#include "support/str.hh"

namespace hilp {
namespace cp {
namespace {

/** Compare the complete observable state of all implementations. */
void
expectSameState(const Model &m, const Profile &packed,
                const Profile &legacy, const Timetable &table,
                int step)
{
    for (Time s = 0; s < m.horizon(); ++s) {
        for (int r = 0; r < m.numResources(); ++r) {
            ASSERT_EQ(packed.usageUnits(r, s),
                      table.usageUnits(r, s))
                << "packed usage mismatch r=" << r << " t=" << s
                << " at op " << step;
            ASSERT_EQ(legacy.usageUnits(r, s),
                      table.usageUnits(r, s))
                << "legacy usage mismatch r=" << r << " t=" << s
                << " at op " << step;
        }
        for (int g = 0; g < m.numGroups(); ++g) {
            ASSERT_EQ(packed.groupBusy(g, s), table.groupBusy(g, s))
                << "packed group mismatch g=" << g << " t=" << s
                << " at op " << step;
            ASSERT_EQ(legacy.groupBusy(g, s), table.groupBusy(g, s))
                << "legacy group mismatch g=" << g << " t=" << s
                << " at op " << step;
        }
    }
    // Representation invariant parity: a place/remove round-trip
    // leaves both layouts in canonical form, so the breakpoint and
    // interval counts agree too.
    for (int r = 0; r < m.numResources(); ++r)
        ASSERT_EQ(packed.breakpoints(r), legacy.breakpoints(r))
            << "breakpoint count mismatch r=" << r << " at op "
            << step;
    for (int g = 0; g < m.numGroups(); ++g)
        ASSERT_EQ(packed.intervals(g), legacy.intervals(g))
            << "interval count mismatch g=" << g << " at op "
            << step;
}

class ProfileDiff : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ProfileDiff, AgreesWithDenseTimetable)
{
    Rng rng(GetParam() * 7919 + 17);
    Model m;
    m.addResource(rng.uniformDouble(1.0, 3.0), "r0");
    m.addResource(rng.uniformDouble(0.5, 2.0), "r1");
    int g1 = m.addGroup("A");
    int g2 = m.addGroup("B");
    m.setHorizon(static_cast<Time>(rng.uniformInt(16, 48)));

    // A pool of candidate modes, including zero-duration,
    // zero-usage, and capacity-saturating shapes.
    std::vector<Mode> modes;
    for (int i = 0; i < 16; ++i) {
        Mode mode;
        double which = rng.uniformDouble();
        mode.group = which < 0.3 ? g1 : which < 0.6 ? g2 : kNoGroup;
        mode.duration = static_cast<Time>(rng.uniformInt(0, 6));
        mode.usage = {rng.uniformDouble(0.0, 1.5),
                      rng.uniformDouble(0.0, 1.0)};
        if (i % 5 == 0)
            mode.usage[0] = 0.0;
        modes.push_back(mode);
    }

    // Register every mode with the model (assigning Mode::id), but
    // probe through registered modes and unregistered copies
    // alternately: both resolution paths must agree.
    for (size_t i = 0; i < modes.size(); ++i) {
        Task task;
        task.name = format("t%zu", i);
        task.modes = {modes[i]};
        m.addTask(std::move(task));
    }
    std::vector<const Mode *> pool;
    for (size_t i = 0; i < modes.size(); ++i) {
        pool.push_back(i % 2 == 0
                           ? &m.task(static_cast<int>(i)).modes[0]
                           : &modes[i]);
    }

    Profile packed(m);
    Profile legacy(m, /*packed=*/false);
    ASSERT_TRUE(packed.packedLayout());
    ASSERT_FALSE(legacy.packedLayout());
    Timetable table(m);
    std::vector<std::pair<const Mode *, Time>> active;

    for (int step = 0; step < 500; ++step) {
        // Probe queries agree regardless of what gets placed.
        {
            const Mode &probe = *pool[static_cast<size_t>(
                rng.uniformInt(0, 15))];
            Time est = static_cast<Time>(
                rng.uniformInt(0, m.horizon()));
            Time expected = table.earliestStart(probe, est);
            ASSERT_EQ(packed.earliestStart(probe, est), expected)
                << "packed earliestStart mismatch at op " << step;
            ASSERT_EQ(legacy.earliestStart(probe, est), expected)
                << "legacy earliestStart mismatch at op " << step;
            Time at = static_cast<Time>(
                rng.uniformInt(0, m.horizon()));
            ASSERT_EQ(packed.fits(probe, at), table.fits(probe, at))
                << "packed fits mismatch at op " << step;
            ASSERT_EQ(legacy.fits(probe, at), table.fits(probe, at))
                << "legacy fits mismatch at op " << step;
        }

        if (active.size() < 10 && rng.chance(0.6)) {
            const Mode &mode = *pool[static_cast<size_t>(
                rng.uniformInt(0, 15))];
            Time est = static_cast<Time>(
                rng.uniformInt(0, m.horizon() - 1));
            Time start = table.earliestStart(mode, est);
            ASSERT_EQ(packed.earliestStart(mode, est), start);
            ASSERT_EQ(legacy.earliestStart(mode, est), start);
            if (start >= 0) {
                packed.place(mode, start);
                legacy.place(mode, start);
                table.place(mode, start);
                active.emplace_back(&mode, start);
            }
        } else if (!active.empty()) {
            size_t pick = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(active.size()) - 1));
            auto [mode, start] = active[pick];
            packed.remove(*mode, start);
            legacy.remove(*mode, start);
            table.remove(*mode, start);
            active.erase(active.begin() +
                         static_cast<ptrdiff_t>(pick));
        }

        if (step % 25 == 0)
            expectSameState(m, packed, legacy, table, step);
    }
    expectSameState(m, packed, legacy, table, 500);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileDiff,
                         ::testing::Range<uint64_t>(1, 17));

} // anonymous namespace
} // namespace cp
} // namespace hilp
