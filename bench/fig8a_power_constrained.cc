/**
 * @file
 * Figure 8a: Pareto fronts of the Default-workload design space under
 * 20 W, 50 W, and 600 W power budgets (HILP). Expected shape
 * (paper): the budget leaves low-performance SoCs untouched and
 * compresses the high-performance end; (c4,g16,d2^16) remains the
 * top performer at 50 W and 600 W, a scaled-down (c2,g4,d2^4)-style
 * mixed SoC wins at 20 W, and DSA-only SoCs appear near the top of
 * the 20 W front.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

void
emitFigure()
{
    bench::banner(
        "Figure 8a - power-constrained SoCs (20/50/600 W)",
        "HILP Pareto fronts for the Default workload. Paper: the\n"
        "50 W top performer matches 600 W's (c4,g16,d2^16) with a\n"
        "~26% performance loss; at 20 W a scaled-down mixed SoC\n"
        "wins and a DSA-only SoC is close behind.");

    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto configs = bench::paperDesignSpace();

    for (double watts : {20.0, 50.0, 600.0}) {
        arch::Constraints constraints;
        constraints.powerBudgetW = watts;
        dse::DseOptions options = bench::explorationOptions(1.0);
        auto points = bench::runSweep(configs, wl, constraints,
                                      dse::ModelKind::Hilp, options);
        auto front = bench::paretoOf(points);
        bench::printPareto(
            "HILP Pareto front at " + std::to_string(
                static_cast<int>(watts)) + " W", front);
        dse::DsePoint best = bench::bestOf(front);
        int schedulable = 0;
        for (const auto &point : points)
            schedulable += point.ok ? 1 : 0;
        std::printf("\nbest at %3.0f W: %s  speedup %.1f  "
                    "(%d/%zu configs schedulable)\n", watts,
                    best.config.name().c_str(), best.speedup,
                    schedulable, points.size());
    }
}

void
BM_EvaluateTwentyWattPoint(benchmark::State &state)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::Constraints constraints;
    constraints.powerBudgetW = 20.0;
    auto priority = workload::dsaPriorityOrder();
    arch::SocConfig soc;
    soc.cpuCores = 2;
    soc.gpuSms = 4;
    soc.dsas = {{4, priority[0]}, {4, priority[1]}};
    dse::DseOptions options = bench::explorationOptions(1.0);
    for (auto _ : state) {
        dse::DsePoint point = dse::evaluatePoint(
            soc, wl, constraints, dse::ModelKind::Hilp, options);
        benchmark::DoNotOptimize(point.speedup);
    }
}
BENCHMARK(BM_EvaluateTwentyWattPoint)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
