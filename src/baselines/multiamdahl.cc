#include "multiamdahl.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hilp {
namespace baselines {

namespace {

/**
 * Topological order of one app's phases under its effective
 * dependencies (chains come out in index order).
 */
std::vector<int>
phaseOrder(const AppSpec &app)
{
    const int n = static_cast<int>(app.phases.size());
    std::vector<std::vector<int>> succs(n);
    std::vector<int> indegree(n, 0);
    for (auto [from, to] : app.effectiveDeps()) {
        succs[from].push_back(to);
        ++indegree[to];
    }
    for (const StartLag &lag : app.effectiveStartLags()) {
        succs[lag.from].push_back(lag.to);
        ++indegree[lag.to];
    }
    std::vector<int> frontier;
    for (int p = n - 1; p >= 0; --p)
        if (indegree[p] == 0)
            frontier.push_back(p);
    std::vector<int> order;
    while (!frontier.empty()) {
        int p = frontier.back();
        frontier.pop_back();
        order.push_back(p);
        for (int s : succs[p])
            if (--indegree[s] == 0)
                frontier.push_back(s);
    }
    hilp_assert(static_cast<int>(order.size()) == n);
    return order;
}

} // anonymous namespace

MaResult
evaluateMultiAmdahl(const ProblemSpec &spec)
{
    MaResult result;
    result.schedule.stepS = 0.0; // Continuous-time schedule.
    result.schedule.deviceNames = spec.deviceNames;
    result.schedule.cpuCores = spec.cpuCores;

    double now = 0.0;
    for (size_t a = 0; a < spec.apps.size(); ++a) {
        const AppSpec &app = spec.apps[a];
        std::vector<double> start(app.phases.size(), 0.0);
        for (int p : phaseOrder(app)) {
            const PhaseSpec &phase = app.phases[p];
            // Initiation intervals can force idle gaps even in MA's
            // sequential order.
            for (const StartLag &lag : app.effectiveStartLags())
                if (lag.to == p)
                    now = std::max(now, start[lag.from] + lag.lagS);
            // Fastest option whose standalone demands fit.
            const UnitOption *best = nullptr;
            for (const UnitOption &option : phase.options) {
                if (option.powerW > spec.powerBudgetW ||
                    option.bwGBs > spec.bandwidthGBs ||
                    option.cpuCores > spec.cpuCores)
                    continue;
                bool fits_extra = true;
                for (size_t r = 0; r < option.extraUsage.size(); ++r) {
                    fits_extra = fits_extra &&
                        option.extraUsage[r] <=
                            spec.extraResources[r].capacity;
                }
                if (!fits_extra)
                    continue;
                if (!best || option.timeS < best->timeS)
                    best = &option;
            }
            if (!best) {
                result.ok = false;
                return result;
            }
            ScheduledPhase placed;
            placed.app = static_cast<int>(a);
            placed.phase = p;
            placed.name = phase.name;
            placed.option = static_cast<int>(best - phase.options.data());
            placed.unitLabel = best->label;
            placed.device = best->device;
            placed.startS = now;
            start[p] = now;
            placed.durationS = best->timeS;
            placed.powerW = best->powerW;
            placed.bwGBs = best->bwGBs;
            placed.cpuCores = best->cpuCores;
            result.schedule.phases.push_back(std::move(placed));
            now += best->timeS;
        }
    }
    result.ok = true;
    result.makespanS = now;
    return result;
}

} // namespace baselines
} // namespace hilp
