/**
 * @file
 * Tests for the propagation engine: fixpoint bounds reproduce the
 * individual pruning rules, the trail unwinds placements exactly,
 * per-propagator telemetry is populated, and the optional energetic
 * propagator is sound (never prunes the optimum away).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cp/bounds.hh"
#include "cp/model.hh"
#include "cp/propagate.hh"
#include "cp/search.hh"

namespace hilp {
namespace cp {
namespace {

/**
 * One group, one 2.0-capacity resource, three tasks:
 *  t0: G, 3 steps, 0.5   (pinned to G)
 *  t1: G, 4 steps, 0.5   (pinned to G)
 *  t2: -, 2 steps, 2.0
 * Disjunctive bound 7, energy bound ceil(7.5 / 2) = 4, critical
 * path 4; the fixpoint must report the max: 7.
 */
Model
smallModel()
{
    Model m;
    m.addResource(2.0, "power");
    int g = m.addGroup("GPU");
    m.setHorizon(40);
    m.addTask(Task{"t0", {Mode{g, 3, {0.5}}}});
    m.addTask(Task{"t1", {Mode{g, 4, {0.5}}}});
    m.addTask(Task{"t2", {Mode{kNoGroup, 2, {2.0}}}});
    return m;
}

/**
 * Install the three always-on propagators. (The engine is pinned in
 * place - its trail spills into an internal arena - so it cannot be
 * returned by value.)
 */
void
addDefaultPropagators(PropagationEngine &engine, const Model &m)
{
    engine.add(makeTimetablePropagator(m));
    engine.add(makeDisjunctivePropagator(m));
    engine.add(makePrecedencePropagator(m));
}

TEST(Propagate, FixpointReportsStrongestRule)
{
    Model m = smallModel();
    PropagationEngine engine(m);
    addDefaultPropagators(engine, m);
    CriticalPathData cp = criticalPathData(m);
    std::vector<Assignment> assign(3);
    std::vector<Time> end(3, 0);
    std::vector<Time> est(3, 0);

    PropagationContext ctx{m, cp, assign, end, 0, 0,
                           m.horizon() + 1, est};
    EXPECT_EQ(engine.fixpoint(ctx), 7); // disjunctive load wins.

    PropagationContext floored{m, cp, assign, end, 0, 9,
                               m.horizon() + 1, est};
    EXPECT_EQ(engine.fixpoint(floored), 9); // external LB dominates.
}

TEST(Propagate, PlacementTightensBoundsAndUndoRestoresThem)
{
    Model m = smallModel();
    PropagationEngine engine(m);
    addDefaultPropagators(engine, m);
    CriticalPathData cp = criticalPathData(m);
    std::vector<Assignment> assign(3);
    std::vector<Time> end(3, 0);
    std::vector<Time> est(3, 0);

    PropagationContext ctx{m, cp, assign, end, 0, 0,
                           m.horizon() + 1, est};
    Time before = engine.fixpoint(ctx);

    // Place t1 late: its window pushes the partial makespan.
    const Mode &mode = m.task(1).modes[0];
    engine.place(1, mode, 10);
    assign[1] = {0, 10};
    end[1] = 14;
    EXPECT_EQ(engine.depth(), 1u);
    EXPECT_TRUE(engine.profile().groupBusy(0, 12));

    PropagationContext placed{m, cp, assign, end, 14, 0,
                              m.horizon() + 1, est};
    // Busy 4 on the group + 3 still pinned, but the makespan 14
    // already dominates every rule.
    EXPECT_EQ(engine.fixpoint(placed), 14);

    engine.undo();
    assign[1] = Assignment{};
    end[1] = 0;
    EXPECT_EQ(engine.depth(), 0u);
    EXPECT_FALSE(engine.profile().groupBusy(0, 12));
    EXPECT_EQ(engine.profile().usageUnits(0, 12), 0);
    EXPECT_EQ(engine.fixpoint(ctx), before);
}

TEST(Propagate, TelemetryCountsInvocationsAndPrunings)
{
    Model m = smallModel();
    PropagationEngine engine(m);
    addDefaultPropagators(engine, m);
    CriticalPathData cp = criticalPathData(m);
    std::vector<Assignment> assign(3);
    std::vector<Time> end(3, 0);
    std::vector<Time> est(3, 0);

    PropagationContext ctx{m, cp, assign, end, 0, 0,
                           m.horizon() + 1, est};
    engine.fixpoint(ctx);
    // The true bound is 7: an incumbent of 5 must trigger a cutoff,
    // attributed to whichever propagator proved it.
    PropagationContext cutoff{m, cp, assign, end, 0, 0, 5, est};
    EXPECT_GE(engine.fixpoint(cutoff), 5);

    std::vector<PropagatorStats> stats = engine.stats();
    ASSERT_EQ(stats.size(), 3u);
    int64_t invocations = 0;
    int64_t prunings = 0;
    for (const PropagatorStats &s : stats) {
        EXPECT_FALSE(s.name.empty());
        invocations += s.invocations;
        prunings += s.prunings;
    }
    EXPECT_GE(invocations, 4);
    EXPECT_GE(prunings, 1);
}

TEST(Propagate, SearchReportsPerPropagatorStats)
{
    Model m = smallModel();
    SearchLimits limits;
    SearchResult result = branchAndBound(m, nullptr, limits);
    ASSERT_TRUE(result.foundSolution);
    ASSERT_TRUE(result.exhausted);

    std::vector<std::string> names;
    for (const PropagatorStats &s : result.propagators)
        names.push_back(s.name);
    EXPECT_NE(std::find(names.begin(), names.end(), "timetable"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "disjunctive"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "precedence"),
              names.end());
    // Energetic reasoning is opt-in.
    EXPECT_EQ(std::find(names.begin(), names.end(), "energetic"),
              names.end());
}

TEST(Propagate, EnergeticReasoningIsSound)
{
    // A staggered DAG where suffix-energy windows actually bite:
    // chains release energy late, so est-windowed bounds are
    // strictly stronger than the global energy bound. The optimum
    // must be identical with and without the extra propagator.
    Model m;
    m.addResource(1.5, "power");
    int g = m.addGroup("GPU");
    m.setHorizon(60);
    int a = m.addTask(Task{"a", {Mode{kNoGroup, 4, {1.0}}}});
    int b = m.addTask(Task{"b", {Mode{kNoGroup, 5, {1.0}},
                                 Mode{g, 3, {0.5}}}});
    int c = m.addTask(Task{"c", {Mode{kNoGroup, 3, {1.5}}}});
    int d = m.addTask(Task{"d", {Mode{g, 6, {0.2}}}});
    int e = m.addTask(Task{"e", {Mode{kNoGroup, 2, {1.0}},
                                 Mode{g, 4, {0.1}}}});
    m.addPrecedence(a, b);
    m.addPrecedence(b, c);
    m.addPrecedence(a, d);
    m.addPrecedence(d, e);

    SearchLimits plain;
    SearchResult without = branchAndBound(m, nullptr, plain);
    ASSERT_TRUE(without.exhausted);

    SearchLimits with = plain;
    with.energeticReasoning = true;
    SearchResult result = branchAndBound(m, nullptr, with);
    ASSERT_TRUE(result.exhausted);
    ASSERT_TRUE(result.foundSolution);
    EXPECT_EQ(result.bestMakespan, without.bestMakespan);

    std::vector<std::string> names;
    for (const PropagatorStats &s : result.propagators)
        names.push_back(s.name);
    EXPECT_NE(std::find(names.begin(), names.end(), "energetic"),
              names.end());
    // The extra rule may only shrink the tree, never grow it.
    EXPECT_LE(result.nodes, without.nodes);
}

TEST(Propagate, MergeStatsAccumulatesByName)
{
    std::vector<PropagatorStats> into;
    mergePropagatorStats(into, {{"timetable", 10, 2, 0.5},
                                {"precedence", 4, 1, 0.25}});
    mergePropagatorStats(into, {{"timetable", 5, 1, 0.5},
                                {"energetic", 7, 0, 0.125}});
    ASSERT_EQ(into.size(), 3u);
    EXPECT_EQ(into[0].name, "timetable");
    EXPECT_EQ(into[0].invocations, 15);
    EXPECT_EQ(into[0].prunings, 3);
    EXPECT_DOUBLE_EQ(into[0].seconds, 1.0);
    EXPECT_EQ(into[1].name, "precedence");
    EXPECT_EQ(into[2].name, "energetic");
    EXPECT_EQ(into[2].invocations, 7);
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
