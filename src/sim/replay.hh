/**
 * @file
 * An event-driven execution simulator for HILP schedules.
 *
 * HILP is an analytical model: it reasons about discretized time and
 * certifies its own schedules against its own constraints. This
 * module provides an independent check and a runtime counterpoint:
 *
 *  - replaySchedule() executes a schedule event by event in
 *    continuous time, tracking device occupancy and the power /
 *    bandwidth / CPU-core envelopes, and reports any violation -
 *    validation through a completely separate code path.
 *
 *  - runOnlineScheduler() simulates *runtime* system software: a
 *    greedy dispatcher that sees phases only as they become ready
 *    and places them on the best currently-free unit. The gap
 *    between its makespan and HILP's near-optimal schedule
 *    quantifies the paper's Section I argument that near-optimal
 *    offline schedules decouple hardware evaluation from scheduler
 *    maturity.
 */

#ifndef HILP_SIM_REPLAY_HH
#define HILP_SIM_REPLAY_HH

#include <string>
#include <vector>

#include "hilp/problem.hh"
#include "hilp/schedule.hh"

namespace hilp {
namespace sim {

/** Measured execution envelope of a simulated run. */
struct SimResult
{
    bool ok = false;          //!< Completed without violations.
    double makespanS = 0.0;   //!< Time the last phase finished.
    double peakPowerW = 0.0;  //!< Maximum instantaneous power.
    double peakBwGBs = 0.0;   //!< Maximum instantaneous bandwidth.
    double peakCpuCores = 0.0; //!< Maximum concurrent core usage.
    /** First violation found (replay mode), empty when ok. */
    std::string violation;
    /** The as-executed schedule (replay echoes its input). */
    Schedule schedule;
};

/**
 * Replay a schedule against the spec in continuous time. Checks
 * option indices, dependency and lag timing, per-device exclusivity,
 * and the power/bandwidth/CPU-core budgets at every event instant,
 * then reports the measured envelope.
 */
SimResult replaySchedule(const ProblemSpec &spec,
                         const Schedule &schedule);

/** Dispatch orders the online scheduler can use. */
enum class DispatchOrder {
    Fifo,         //!< Ready order (app index, then phase index).
    LongestFirst, //!< Longest best-case phase first.
    ShortestFirst, //!< Shortest best-case phase first.
};

/** Human-readable dispatch-order name. */
const char *toString(DispatchOrder order);

/** Online-scheduler configuration. */
struct OnlineOptions
{
    DispatchOrder order = DispatchOrder::Fifo;
    /**
     * When true the dispatcher always takes a ready phase's fastest
     * admissible option; when false it prefers options that leave
     * devices free (CPU last for compute phases).
     */
    bool greedyFastest = true;
};

/**
 * Simulate a runtime greedy scheduler on the spec: phases become
 * ready as their dependencies finish; at every event the dispatcher
 * places ready phases (in the configured order) onto the fastest
 * option whose device is idle and whose demands fit the remaining
 * power/bandwidth/core headroom. Work-conserving and deadlock-free
 * for valid specs; never backtracks, so its makespan upper-bounds
 * nothing and lower-bounds nothing - it is what naive system
 * software would achieve.
 */
SimResult runOnlineScheduler(const ProblemSpec &spec,
                             const OnlineOptions &options = {});

} // namespace sim
} // namespace hilp

#endif // HILP_SIM_REPLAY_HH
