#include "showcase.hh"

#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {

namespace {

/** Power of the Section II example units, active / idle (Figure 2). */
constexpr double kExampleCpuPowerW = 1.0;
constexpr double kExampleGpuPowerW = 3.0;
constexpr double kExampleDsaPowerW = 2.0;

/** A CPU-pool option for the Section II / VII examples. */
UnitOption
cpuOption(double time_s, double power_w = kExampleCpuPowerW)
{
    UnitOption option;
    option.label = "CPU";
    option.device = kCpuPool;
    option.timeS = time_s;
    option.powerW = power_w;
    option.cpuCores = 1.0;
    return option;
}

/** A device option (GPU or DSA). */
UnitOption
deviceOption(const std::string &label, int device, double time_s,
             double power_w)
{
    UnitOption option;
    option.label = label;
    option.device = device;
    option.timeS = time_s;
    option.powerW = power_w;
    return option;
}

} // anonymous namespace

ProblemSpec
makeTwoAppExample()
{
    ProblemSpec spec;
    spec.name = "two-app example (Fig. 2)";
    spec.cpuCores = 1.0;
    spec.deviceNames = {"GPU", "DSA"};
    constexpr int kGpu = 0;
    constexpr int kDsa = 1;

    auto make_app = [&](const std::string &name, double cpu_s,
                        double gpu_s, double dsa_s) {
        AppSpec app;
        app.name = name;
        PhaseSpec setup;
        setup.name = name + "0";
        setup.options = {cpuOption(1.0)};
        PhaseSpec compute;
        compute.name = name + "1";
        compute.options = {
            cpuOption(cpu_s),
            deviceOption("GPU", kGpu, gpu_s, kExampleGpuPowerW),
            deviceOption("DSA", kDsa, dsa_s, kExampleDsaPowerW),
        };
        PhaseSpec teardown;
        teardown.name = name + "2";
        teardown.options = {cpuOption(1.0)};
        app.phases = {setup, compute, teardown};
        return app;
    };

    spec.apps.push_back(make_app("m", 8.0, 6.0, 5.0));
    spec.apps.push_back(make_app("n", 5.0, 3.0, 2.0));
    return spec;
}

const char *
toString(SdaVariant variant)
{
    switch (variant) {
      case SdaVariant::Baseline:
        return "baseline (c1,g8,d3^1)";
      case SdaVariant::FastCpu:
        return "2x faster CPU";
      case SdaVariant::BigGpu:
        return "2x GPU SMs";
    }
    panic("unhandled SDA variant");
}

ProblemSpec
makeSdaProblem(SdaVariant variant, int samples)
{
    hilp_assert(samples >= 1);
    // Per-phase time estimates on the baseline SoC (seconds). The
    // paper's Figure 9 annotates these on the DAG but the values are
    // not in the text; this set reproduces the Figure 10 narrative.
    const double ds_time = 4.0;              // DS1..DS3 on their DSA.
    const double df_cpu = 2.0;               // DF, CPU only.
    const double c_cpu[3] = {4.0, 6.0, 4.0}; // C1..C3 on the CPU.
    const double c_gpu[3] = {2.0, 3.0, 2.0}; // C1..C3 on the GPU.
    const double pp_cpu = 2.0;
    const double pp_gpu = 1.0;

    double cpu_scale = variant == SdaVariant::FastCpu ? 0.5 : 1.0;
    double gpu_scale = variant == SdaVariant::BigGpu ? 0.5 : 1.0;

    ProblemSpec spec;
    spec.name = format("SDA x%d on %s", samples, toString(variant));
    spec.cpuCores = 1.0;
    spec.deviceNames = {"GPU", "DSA1", "DSA2", "DSA3"};
    constexpr int kGpu = 0;

    for (int sample = 0; sample < samples; ++sample) {
        AppSpec app;
        app.name = format("sda%d", sample);

        // Phases 0-2: DS1..DS3, pinned to their dedicated DSAs.
        for (int d = 0; d < 3; ++d) {
            PhaseSpec phase;
            phase.name = format("sda%d.DS%d", sample, d + 1);
            phase.options = {deviceOption(format("DSA%d", d + 1),
                                          1 + d, ds_time,
                                          kExampleDsaPowerW)};
            app.phases.push_back(phase);
        }
        // Phase 3: DF, CPU only.
        {
            PhaseSpec phase;
            phase.name = format("sda%d.DF", sample);
            phase.options = {cpuOption(df_cpu * cpu_scale)};
            app.phases.push_back(phase);
        }
        // Phases 4-6: C1..C3, CPU or GPU.
        for (int c = 0; c < 3; ++c) {
            PhaseSpec phase;
            phase.name = format("sda%d.C%d", sample, c + 1);
            phase.options = {
                cpuOption(c_cpu[c] * cpu_scale),
                deviceOption("GPU", kGpu, c_gpu[c] * gpu_scale,
                             kExampleGpuPowerW),
            };
            app.phases.push_back(phase);
        }
        // Phase 7: PP, CPU or GPU.
        {
            PhaseSpec phase;
            phase.name = format("sda%d.PP", sample);
            phase.options = {
                cpuOption(pp_cpu * cpu_scale),
                deviceOption("GPU", kGpu, pp_gpu * gpu_scale,
                             kExampleGpuPowerW),
            };
            app.phases.push_back(phase);
        }

        // The Figure 9 DAG (Eq. 9): fork from the data sources into
        // DF, fan out to the computes, and join in PP.
        app.deps = {
            {0, 3}, {1, 3}, {2, 3},          // DS1..DS3 -> DF
            {3, 4}, {3, 5}, {3, 6},          // DF -> C1..C3
            {4, 7}, {5, 7}, {6, 7},          // C1..C3 -> PP
        };
        spec.apps.push_back(std::move(app));
    }
    return spec;
}

} // namespace hilp
