/**
 * @file
 * ASCII and CSV table rendering for the experiment harnesses.
 *
 * Every benchmark binary regenerates one of the paper's tables or
 * figures as rows of data; this printer gives them a consistent,
 * aligned textual rendering plus a CSV export for plotting.
 */

#ifndef HILP_SUPPORT_TABLE_HH
#define HILP_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace hilp {

/**
 * A simple column-aligned table builder.
 */
class Table
{
  public:
    /** Column alignment. */
    enum class Align { Left, Right };

    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Set the alignment of a column (default: Right). */
    void setAlign(size_t col, Align align);

    /** Append a fully-populated row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

    /** Render as an aligned ASCII table with a header separator. */
    std::string toAscii() const;

    /** Render as CSV (header row first). */
    std::string toCsv() const;

    /** Convenience: print the ASCII rendering to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Helper for building a row from heterogeneous values.
 */
class RowBuilder
{
  public:
    /** Append a string cell. */
    RowBuilder &cell(const std::string &s);

    /** Append an integer cell. */
    RowBuilder &cell(int64_t v);

    /** Append a double cell rendered with the given precision. */
    RowBuilder &cell(double v, int decimals = 2);

    /** Take the accumulated cells. */
    std::vector<std::string> take() { return std::move(cells_); }

  private:
    std::vector<std::string> cells_;
};

} // namespace hilp

#endif // HILP_SUPPORT_TABLE_HH
