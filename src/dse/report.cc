#include "report.hh"

#include <algorithm>

#include "hilp/problem.hh"
#include "support/str.hh"

namespace hilp {
namespace dse {

namespace {

/** Keep free-form notes from breaking the CSV row structure. */
std::string
csvSafe(std::string text)
{
    std::replace(text.begin(), text.end(), ',', ';');
    std::replace(text.begin(), text.end(), '\n', ' ');
    return text;
}

} // anonymous namespace

std::string
pointsToCsv(const std::vector<DsePoint> &points)
{
    std::string out =
        "config,cpus,gpu_sms,dsas,pes,area_mm2,ok,makespan_s,"
        "speedup,avg_wlp,gap,mix,status,nodes,backtracks,solves,"
        "solve_s,cache_hit,warm_start,pruned,note\n";
    for (const DsePoint &point : points) {
        int pes = point.config.dsas.empty()
            ? 0 : point.config.dsas.front().pes;
        out += format("%s,%d,%d,%zu,%d,%.3f,%d,%.6f,%.6f,%.6f,%.6f,"
                      "%s,%s,%lld,%lld,%d,%.3f,%d,%d,%d,%s\n",
                      point.config.name().c_str(),
                      point.config.cpuCores, point.config.gpuSms,
                      point.config.dsas.size(), pes, point.areaMm2,
                      point.ok ? 1 : 0, point.makespanS,
                      point.speedup, point.averageWlp, point.gap,
                      toString(point.mix), cp::toString(point.status),
                      static_cast<long long>(point.nodes),
                      static_cast<long long>(point.backtracks),
                      point.solves, point.solveSeconds,
                      point.cacheHit ? 1 : 0,
                      point.warmStarted ? 1 : 0, point.pruned ? 1 : 0,
                      csvSafe(point.note).c_str());
    }
    return out;
}

Json
pointsToJson(const std::vector<DsePoint> &points)
{
    Json array = Json::array();
    for (const DsePoint &point : points) {
        Json entry = Json::object();
        entry.set("config", Json::string(point.config.name()));
        entry.set("cpus", Json::number(
            static_cast<int64_t>(point.config.cpuCores)));
        entry.set("gpu_sms", Json::number(
            static_cast<int64_t>(point.config.gpuSms)));
        entry.set("dsas", Json::number(
            static_cast<int64_t>(point.config.dsas.size())));
        entry.set("area_mm2", Json::number(point.areaMm2));
        entry.set("ok", Json::boolean(point.ok));
        entry.set("makespan_s", Json::number(point.makespanS));
        entry.set("speedup", Json::number(point.speedup));
        entry.set("avg_wlp", Json::number(point.averageWlp));
        entry.set("gap", Json::number(point.gap));
        entry.set("mix", Json::string(toString(point.mix)));
        entry.set("status", Json::string(cp::toString(point.status)));
        entry.set("nodes", Json::number(point.nodes));
        entry.set("backtracks", Json::number(point.backtracks));
        entry.set("solves", Json::number(
            static_cast<int64_t>(point.solves)));
        entry.set("solve_s", Json::number(point.solveSeconds));
        entry.set("cache_hit", Json::boolean(point.cacheHit));
        entry.set("warm_start", Json::boolean(point.warmStarted));
        entry.set("pruned", Json::boolean(point.pruned));
        entry.set("note", Json::string(point.note));
        array.append(std::move(entry));
    }
    return array;
}

SweepSummary
summarizeSweep(const std::vector<DsePoint> &points)
{
    SweepSummary summary;
    summary.points = static_cast<int>(points.size());
    for (const DsePoint &point : points) {
        if (point.ok)
            ++summary.ok;
        else if (point.status == cp::SolveStatus::NoSolution &&
                 point.solves == 0 && !point.cacheHit)
            ++summary.infeasible;
        else
            ++summary.noSolution;
        if (point.cacheHit)
            ++summary.cacheHits;
        if (point.warmStarted)
            ++summary.warmStarted;
        if (point.pruned)
            ++summary.pruned;
        summary.solves += point.solves;
        summary.nodes += point.nodes;
        summary.backtracks += point.backtracks;
        summary.solveSeconds += point.solveSeconds;
    }
    return summary;
}

std::string
toString(const SweepSummary &summary)
{
    return format("%d points: %d ok, %d infeasible, %d unsolved | "
                  "%d solves, %lld nodes, %lld backtracks, %.2fs | "
                  "%d cache hits, %d warm starts, %d pruned",
                  summary.points, summary.ok, summary.infeasible,
                  summary.noSolution, summary.solves,
                  static_cast<long long>(summary.nodes),
                  static_cast<long long>(summary.backtracks),
                  summary.solveSeconds, summary.cacheHits,
                  summary.warmStarted, summary.pruned);
}

OffloadAnalysis
analyzeOffload(const Schedule &schedule)
{
    OffloadAnalysis analysis;
    for (const ScheduledPhase &phase : schedule.phases) {
        bool is_gpu = phase.unitLabel.rfind("GPU", 0) == 0;
        bool is_dsa = phase.unitLabel.rfind("DSA", 0) == 0;
        bool is_cpu_compute = phase.device == kCpuPool &&
            phase.unitLabel.rfind("CPUx", 0) == 0;
        if (is_gpu)
            analysis.gpuBusyS += phase.durationS;
        else if (is_dsa)
            analysis.dsaBusyS += phase.durationS;
        else if (is_cpu_compute)
            analysis.cpuComputeS += phase.durationS;
    }
    double accelerated = analysis.gpuBusyS + analysis.dsaBusyS;
    if (accelerated > 0.0)
        analysis.dsaShare = analysis.dsaBusyS / accelerated;
    return analysis;
}

} // namespace dse
} // namespace hilp
