#include "io.hh"

#include <cstdlib>
#include <map>

#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {
namespace workload {

namespace {

const char *kHeader =
    "app,phase,kind,cpu_time1_s,gpu_compatible,gpu_time98_s,"
    "gpu_bw_base_gbs,time_a,time_b,bw_a,bw_b,freq_gamma,dsa_target";

constexpr int kColumns = 13;

/** Strict double parser; sets ok=false on trailing garbage. */
double
parseDouble(const std::string &field, bool &ok)
{
    if (field.empty()) {
        ok = false;
        return 0.0;
    }
    char *end = nullptr;
    double value = std::strtod(field.c_str(), &end);
    if (end != field.c_str() + field.size())
        ok = false;
    return value;
}

int
parseInt(const std::string &field, bool &ok)
{
    double value = parseDouble(field, ok);
    int as_int = static_cast<int>(value);
    if (static_cast<double>(as_int) != value)
        ok = false;
    return as_int;
}

} // anonymous namespace

std::string
workloadToCsv(const Workload &workload)
{
    std::string out = std::string(kHeader) + "\n";
    for (const Application &app : workload.apps) {
        for (const PhaseProfile &phase : app.phases) {
            out += format(
                "%s,%s,%s,%.17g,%d,%.17g,%.17g,%.17g,%.17g,%.17g,"
                "%.17g,%.17g,%d\n",
                app.name.c_str(), phase.name.c_str(),
                phase.kind == PhaseKind::Sequential ? "sequential"
                                                    : "compute",
                phase.cpuTime1, phase.gpuCompatible ? 1 : 0,
                phase.gpuTime98, phase.gpuBwBase, phase.timeLaw.a,
                phase.timeLaw.b, phase.bwLaw.a, phase.bwLaw.b,
                phase.freqGamma, phase.dsaTarget);
        }
    }
    return out;
}

ParseResult
workloadFromCsv(const std::string &text, const std::string &name)
{
    ParseResult result;
    result.workload.name = name;
    std::map<std::string, size_t> app_index;

    std::vector<std::string> lines = split(text, '\n');
    bool seen_header = false;
    for (size_t lineno = 0; lineno < lines.size(); ++lineno) {
        std::string line = trim(lines[lineno]);
        if (line.empty() || line[0] == '#')
            continue;
        if (!seen_header) {
            // The first non-empty row must be the header.
            if (line != kHeader) {
                result.error = format(
                    "line %zu: expected the workload CSV header",
                    lineno + 1);
                return result;
            }
            seen_header = true;
            continue;
        }
        std::vector<std::string> fields = split(line, ',');
        if (static_cast<int>(fields.size()) != kColumns) {
            result.error = format(
                "line %zu: expected %d columns, found %zu",
                lineno + 1, kColumns, fields.size());
            return result;
        }

        PhaseProfile phase;
        phase.name = trim(fields[1]);
        std::string kind = toLower(trim(fields[2]));
        if (kind == "sequential") {
            phase.kind = PhaseKind::Sequential;
        } else if (kind == "compute") {
            phase.kind = PhaseKind::Compute;
        } else {
            result.error = format("line %zu: unknown phase kind '%s'",
                                  lineno + 1, kind.c_str());
            return result;
        }

        bool ok = true;
        phase.cpuTime1 = parseDouble(trim(fields[3]), ok);
        int gpu_compat = parseInt(trim(fields[4]), ok);
        phase.gpuCompatible = gpu_compat != 0;
        phase.gpuTime98 = parseDouble(trim(fields[5]), ok);
        phase.gpuBwBase = parseDouble(trim(fields[6]), ok);
        phase.timeLaw.a = parseDouble(trim(fields[7]), ok);
        phase.timeLaw.b = parseDouble(trim(fields[8]), ok);
        phase.bwLaw.a = parseDouble(trim(fields[9]), ok);
        phase.bwLaw.b = parseDouble(trim(fields[10]), ok);
        phase.freqGamma = parseDouble(trim(fields[11]), ok);
        phase.dsaTarget = parseInt(trim(fields[12]), ok);
        if (!ok) {
            result.error = format("line %zu: malformed numeric field",
                                  lineno + 1);
            return result;
        }
        if (phase.cpuTime1 < 0.0 ||
            (phase.gpuCompatible && phase.gpuTime98 <= 0.0)) {
            result.error = format("line %zu: invalid phase timing",
                                  lineno + 1);
            return result;
        }

        std::string app_name = trim(fields[0]);
        auto [it, inserted] =
            app_index.try_emplace(app_name,
                                  result.workload.apps.size());
        if (inserted) {
            Application app;
            app.name = app_name;
            result.workload.apps.push_back(std::move(app));
        }
        result.workload.apps[it->second].phases.push_back(
            std::move(phase));
    }
    if (!seen_header) {
        result.error = "input contains no workload CSV header";
        return result;
    }
    if (result.workload.apps.empty()) {
        result.error = "input contains no phases";
        return result;
    }
    result.ok = true;
    return result;
}

} // namespace workload
} // namespace hilp
