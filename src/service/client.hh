/**
 * @file
 * The hilpd client: a thin synchronous wrapper over the NDJSON
 * protocol for bench binaries and scripts. A connected client routes
 * the same requests exploreSpace answers in-process to a daemon,
 * streaming per-point results back in completion order and matching
 * them to the caller's configuration list by label.
 */

#ifndef HILP_SERVICE_CLIENT_HH
#define HILP_SERVICE_CLIENT_HH

#include <functional>
#include <string>
#include <vector>

#include "protocol.hh"
#include "support/net.hh"

namespace hilp {
namespace service {

class ServiceClient
{
  public:
    ServiceClient() = default;

    /** Connect to a daemon (address syntax: see support/net.hh). */
    bool connect(const std::string &address, std::string *error);

    bool connected() const { return channel_.valid(); }

    /**
     * Run a sweep (or single eval) remotely. The request's
     * configNames are filled from `configs`; the returned points are
     * in `configs` order with their structural fields (config, area,
     * mix) restored locally from the matching configuration.
     * `on_record` (nullable) sees each raw streamed record line -
     * appending them to a file yields a valid --resume checkpoint.
     * Returns false and fills *error on transport errors, a rejected
     * request, or a failed sweep.
     */
    bool sweep(const protocol::Request &request,
               const std::vector<arch::SocConfig> &configs,
               std::vector<dse::DsePoint> *points, std::string *error,
               const std::function<void(const std::string &)>
                   &on_record = nullptr);

    /**
     * Fetch the daemon's stats snapshot (caches, queue, latency
     * histogram percentiles, flight-recorder occupancy).
     */
    bool stats(Json *out, std::string *error);

    /** Ask the daemon to shut down (acknowledged before it exits). */
    bool requestShutdown(std::string *error);

    /**
     * The daemon-assigned request/trace id from the last sweep()'s
     * done line (0 before any sweep, or against an older daemon).
     * Log it next to sweep artifacts: it names this request in the
     * daemon's spans, flight recorder, and slow-request dumps.
     */
    uint64_t lastTraceId() const { return lastTraceId_; }

  private:
    net::LineChannel channel_{net::Socket()};
    uint64_t lastTraceId_ = 0;
};

} // namespace service
} // namespace hilp

#endif // HILP_SERVICE_CLIENT_HH
