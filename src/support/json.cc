#include "json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "logging.hh"
#include "str.hh"

namespace hilp {

Json::Json() = default;

Json
Json::null()
{
    return Json();
}

Json
Json::boolean(bool value)
{
    Json json;
    json.kind_ = Kind::Bool;
    json.bool_ = value;
    return json;
}

Json
Json::number(double value)
{
    Json json;
    json.kind_ = Kind::Number;
    json.number_ = value;
    return json;
}

Json
Json::number(int64_t value)
{
    Json json;
    json.kind_ = Kind::Integer;
    json.integer_ = value;
    return json;
}

Json
Json::string(std::string value)
{
    Json json;
    json.kind_ = Kind::String;
    json.string_ = std::move(value);
    return json;
}

Json
Json::object()
{
    Json json;
    json.kind_ = Kind::Object;
    return json;
}

Json
Json::array()
{
    Json json;
    json.kind_ = Kind::Array;
    return json;
}

Json &
Json::set(const std::string &key, Json value)
{
    hilp_assert(kind_ == Kind::Object);
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::append(Json value)
{
    hilp_assert(kind_ == Kind::Array);
    elements_.push_back(std::move(value));
    return *this;
}

size_t
Json::size() const
{
    if (kind_ == Kind::Object)
        return members_.size();
    if (kind_ == Kind::Array)
        return elements_.size();
    return 0;
}

bool
Json::boolValue() const
{
    hilp_assert(kind_ == Kind::Bool);
    return bool_;
}

double
Json::numberValue() const
{
    hilp_assert(kind_ == Kind::Number || kind_ == Kind::Integer);
    return kind_ == Kind::Integer
        ? static_cast<double>(integer_) : number_;
}

int64_t
Json::intValue() const
{
    hilp_assert(kind_ == Kind::Number || kind_ == Kind::Integer);
    return kind_ == Kind::Integer
        ? integer_ : static_cast<int64_t>(number_);
}

const std::string &
Json::stringValue() const
{
    hilp_assert(kind_ == Kind::String);
    return string_;
}

const Json *
Json::find(const std::string &key) const
{
    hilp_assert(kind_ == Kind::Object);
    for (const auto &member : members_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const Json &
Json::at(size_t index) const
{
    hilp_assert(kind_ == Kind::Array);
    hilp_assert(index < elements_.size());
    return elements_[index];
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    hilp_assert(kind_ == Kind::Object);
    return members_;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += format("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

namespace {

/** Render a double as JSON (no NaN/Inf in JSON: emit null). */
std::string
numberText(double value)
{
    if (!std::isfinite(value))
        return "null";
    std::string text = format("%.17g", value);
    return text;
}

} // anonymous namespace

void
Json::write(std::string &out, int indent, int depth) const
{
    auto newline = [&](int level) {
        if (indent < 0)
            return;
        out += "\n";
        out += std::string(static_cast<size_t>(indent) *
                           static_cast<size_t>(level), ' ');
    };

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        out += numberText(number_);
        break;
      case Kind::Integer:
        out += std::to_string(integer_);
        break;
      case Kind::String:
        out += "\"" + jsonEscape(string_) + "\"";
        break;
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += "{";
        for (size_t i = 0; i < members_.size(); ++i) {
            if (i > 0)
                out += ",";
            newline(depth + 1);
            out += "\"" + jsonEscape(members_[i].first) + "\":";
            if (indent >= 0)
                out += " ";
            members_[i].second.write(out, indent, depth + 1);
        }
        newline(depth);
        out += "}";
        break;
      }
      case Kind::Array: {
        if (elements_.empty()) {
            out += "[]";
            break;
        }
        out += "[";
        for (size_t i = 0; i < elements_.size(); ++i) {
            if (i > 0)
                out += ",";
            newline(depth + 1);
            elements_[i].write(out, indent, depth + 1);
        }
        newline(depth);
        out += "]";
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    return out;
}

namespace {

/**
 * Recursive-descent JSON reader. Errors carry the byte offset so a
 * malformed multi-megabyte trace points at the problem.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(Json *out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    /** Nesting cap: malformed input must not overflow the stack. */
    static constexpr int kMaxDepth = 200;

    bool
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = format("%s at offset %zu", what.c_str(), pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(const char *word, Json value, Json *out)
    {
        size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail(format("invalid literal (expected '%s')",
                               word));
        pos_ += len;
        *out = std::move(value);
        return true;
    }

    bool
    parseValue(Json *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n':
            return literal("null", Json::null(), out);
          case 't':
            return literal("true", Json::boolean(true), out);
          case 'f':
            return literal("false", Json::boolean(false), out);
          case '"': {
            std::string value;
            if (!parseString(&value))
                return false;
            *out = Json::string(std::move(value));
            return true;
          }
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseArray(Json *out, int depth)
    {
        ++pos_; // '['
        Json array = Json::array();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            *out = std::move(array);
            return true;
        }
        for (;;) {
            skipSpace();
            Json element;
            if (!parseValue(&element, depth + 1))
                return false;
            array.append(std::move(element));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                break;
            if (c != ',') {
                --pos_;
                return fail("expected ',' or ']' in array");
            }
        }
        *out = std::move(array);
        return true;
    }

    bool
    parseObject(Json *out, int depth)
    {
        ++pos_; // '{'
        Json object = Json::object();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            *out = std::move(object);
            return true;
        }
        for (;;) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(&key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipSpace();
            Json value;
            if (!parseValue(&value, depth + 1))
                return false;
            object.set(key, std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                break;
            if (c != ',') {
                --pos_;
                return fail("expected ',' or '}' in object");
            }
        }
        *out = std::move(object);
        return true;
    }

    bool
    hex4(uint32_t *out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_ + i];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("invalid \\u escape digit");
        }
        pos_ += 4;
        *out = value;
        return true;
    }

    void
    appendUtf8(std::string *out, uint32_t cp)
    {
        if (cp < 0x80) {
            *out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            *out += static_cast<char>(0xc0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            *out += static_cast<char>(0xe0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            *out += static_cast<char>(0xf0 | (cp >> 18));
            *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseString(std::string *out)
    {
        ++pos_; // '"'
        out->clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("truncated escape sequence");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                uint32_t cp = 0;
                if (!hex4(&cp))
                    return false;
                // Combine UTF-16 surrogate pairs when both halves
                // are present; a lone surrogate becomes U+FFFD.
                if (cp >= 0xd800 && cp <= 0xdbff &&
                    pos_ + 1 < text_.size() &&
                    text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
                    pos_ += 2;
                    uint32_t low = 0;
                    if (!hex4(&low))
                        return false;
                    if (low >= 0xdc00 && low <= 0xdfff)
                        cp = 0x10000 + ((cp - 0xd800) << 10) +
                             (low - 0xdc00);
                    else
                        cp = 0xfffd;
                } else if (cp >= 0xd800 && cp <= 0xdfff) {
                    cp = 0xfffd;
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("invalid escape sequence");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Json *out)
    {
        size_t start = pos_;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return fail("invalid value");
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        std::string token = text_.substr(start, pos_ - start);
        errno = 0;
        if (integral) {
            char *end = nullptr;
            long long value = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0') {
                *out = Json::number(static_cast<int64_t>(value));
                return true;
            }
            // Out of int64 range: fall through to double.
            errno = 0;
        }
        char *end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0' || errno == ERANGE) {
            pos_ = start;
            return fail("malformed number");
        }
        *out = Json::number(value);
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
};

} // anonymous namespace

bool
Json::parse(const std::string &text, Json *out, std::string *error)
{
    *out = Json::null();
    JsonParser parser(text);
    Json value;
    if (!parser.parse(&value)) {
        if (error)
            *error = parser.error();
        return false;
    }
    *out = std::move(value);
    return true;
}

} // namespace hilp
