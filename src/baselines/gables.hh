/**
 * @file
 * The parallel-mode Gables baseline [Hill & Reddi, HPCA 2019].
 *
 * Gables' fully parallel mode assumes the workload is embarrassingly
 * parallel: phase dependencies are discarded entirely and every
 * phase may run as soon as a compatible unit is free (the
 * maximal-WLP extreme of the paper's Figure 2). Units still
 * serialize their own work and the bandwidth roofline still applies,
 * but Gables has no notion of a chip power budget, so the power
 * constraint is dropped (the paper levels the comparison the same
 * way in Section VI).
 *
 * Implementation: the HILP engine runs on a transformed spec with
 * all dependencies removed and the power budget lifted.
 */

#ifndef HILP_BASELINES_GABLES_HH
#define HILP_BASELINES_GABLES_HH

#include "hilp/engine.hh"
#include "hilp/problem.hh"

namespace hilp {
namespace baselines {

/** The dependency-free, power-unconstrained transform of a spec. */
ProblemSpec gablesTransform(const ProblemSpec &spec);

/** Evaluate the workload under parallel-mode Gables semantics. */
EvalResult evaluateGables(const ProblemSpec &spec,
                          const EngineOptions &options);

/**
 * Closed-form parallel-mode Gables: the fractional roofline. Work
 * may split fractionally across units and dependencies are ignored,
 * so the result is the LP relaxation of the dependency-free
 * scheduling problem - a provable lower bound on (and usually close
 * to) the packing-based evaluateGables makespan, and the purest
 * expression of Gables' "maximal WLP" optimism. Returns seconds, or
 * a negative value when the relaxation is unbounded/failed.
 */
double evaluateGablesAnalyticS(const ProblemSpec &spec,
                               double step_s = 0.0);

} // namespace baselines
} // namespace hilp

#endif // HILP_BASELINES_GABLES_HH
