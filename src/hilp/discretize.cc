#include "discretize.hh"

#include <cmath>

#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {

DiscretizedProblem
discretize(const ProblemSpec &spec, double step_s,
           cp::Time horizon_steps)
{
    hilp_assert(step_s > 0.0);
    hilp_assert(horizon_steps > 0);

    DiscretizedProblem out;
    out.stepS = step_s;
    out.model.setHorizon(horizon_steps);

    // Resources: CPU pool always; power/bandwidth only when bounded.
    out.cpuResource = out.model.addResource(spec.cpuCores, "cpu-cores");
    if (std::isfinite(spec.powerBudgetW))
        out.powerResource =
            out.model.addResource(spec.powerBudgetW, "power");
    if (std::isfinite(spec.bandwidthGBs))
        out.bwResource =
            out.model.addResource(spec.bandwidthGBs, "bandwidth");
    for (const ExtraResource &extra : spec.extraResources)
        out.extraResourceOf.push_back(
            out.model.addResource(extra.capacity, extra.name));
    const int num_resources = out.model.numResources();

    for (const std::string &device : spec.deviceNames)
        out.model.addGroup(device);

    out.taskOf.resize(spec.apps.size());
    for (size_t a = 0; a < spec.apps.size(); ++a) {
        const AppSpec &app = spec.apps[a];
        out.taskOf[a].resize(app.phases.size());
        for (size_t p = 0; p < app.phases.size(); ++p) {
            const PhaseSpec &phase = app.phases[p];
            cp::Task task;
            task.name = phase.name;
            std::vector<int> option_map;
            for (size_t o = 0; o < phase.options.size(); ++o) {
                const UnitOption &option = phase.options[o];
                cp::Mode mode;
                mode.group = option.device == kCpuPool
                    ? cp::kNoGroup : option.device;
                mode.duration = static_cast<cp::Time>(
                    std::ceil(option.timeS / step_s - 1e-9));
                hilp_assert(mode.duration >= 0);
                mode.usage.assign(num_resources, 0.0);
                mode.usage[out.cpuResource] = option.cpuCores;
                if (out.powerResource >= 0)
                    mode.usage[out.powerResource] = option.powerW;
                if (out.bwResource >= 0)
                    mode.usage[out.bwResource] = option.bwGBs;
                for (size_t r = 0; r < option.extraUsage.size(); ++r)
                    mode.usage[out.extraResourceOf[r]] =
                        option.extraUsage[r];
                task.modes.push_back(std::move(mode));
                option_map.push_back(static_cast<int>(o));
            }
            int task_id = out.model.addTask(std::move(task));
            out.taskOf[a][p] = task_id;
            out.phaseOf.emplace_back(static_cast<int>(a),
                                     static_cast<int>(p));
            out.optionOf.push_back(std::move(option_map));
        }
        for (auto [from, to] : app.effectiveDeps())
            out.model.addPrecedence(out.taskOf[a][from],
                                    out.taskOf[a][to]);
        for (const StartLag &lag : app.effectiveStartLags()) {
            out.model.addStartLag(
                out.taskOf[a][lag.from], out.taskOf[a][lag.to],
                static_cast<cp::Time>(
                    std::ceil(lag.lagS / step_s - 1e-9)));
        }
    }
    return out;
}

} // namespace hilp
