/**
 * @file
 * No-good store unit tests plus randomized differential soundness
 * checks: the search with no-good pruning enabled must reach exactly
 * the same certified optima as the plain exhaustive search, on the
 * same instances, across many random models.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cp/model.hh"
#include "cp/nogood.hh"
#include "cp/search.hh"
#include "cp/solver.hh"
#include "support/random.hh"

namespace hilp {
namespace cp {
namespace {

TEST(Nogood, LookupOnEmptyStoreMisses)
{
    NogoodStore store(1024);
    EXPECT_EQ(store.lookup(nogoodCode(0, 0, 0)), NogoodStore::kNoBound);
    EXPECT_EQ(store.size(), 0);
}

TEST(Nogood, RecordThenLookupReturnsBound)
{
    NogoodStore store(1024);
    uint64_t key = nogoodCode(3, 1, 7);
    store.record(key, 42, 5);
    EXPECT_EQ(store.lookup(key), 42);
    EXPECT_EQ(store.size(), 1);
}

TEST(Nogood, RecordStrengthensExistingBound)
{
    NogoodStore store(1024);
    uint64_t key = nogoodCode(1, 0, 2);
    store.record(key, 10, 3);
    store.record(key, 15, 3); // Stronger (higher) bound wins.
    EXPECT_EQ(store.lookup(key), 15);
    store.record(key, 5, 3); // Weaker bound must not regress it.
    EXPECT_EQ(store.lookup(key), 15);
    EXPECT_EQ(store.size(), 1);
}

TEST(Nogood, CodesDifferAcrossPlacements)
{
    std::set<uint64_t> codes;
    for (int task = 0; task < 8; ++task)
        for (int mode = 0; mode < 3; ++mode)
            for (Time start = 0; start < 16; ++start)
                codes.insert(nogoodCode(task, mode, start));
    EXPECT_EQ(codes.size(), 8u * 3u * 16u);
}

TEST(Nogood, EvictionDropsDeepestEntryInFullBucket)
{
    // The store is 4-way set-associative on the low key bits; five
    // crafted keys sharing a bucket overflow it, and the victim is
    // the deepest (largest placed count) entry - shallow no-goods
    // prune bigger subtrees and are worth keeping.
    NogoodStore store(1024); // 256 buckets, mask 0xff.
    auto key = [](uint64_t i) { return (i << 8) | 0x3f; };
    store.record(key(1), 10, 1);
    store.record(key(2), 11, 2);
    store.record(key(3), 12, 9); // Deepest: the eviction victim.
    store.record(key(4), 13, 4);
    EXPECT_EQ(store.size(), 4);
    store.record(key(5), 14, 5);
    EXPECT_EQ(store.size(), 4);
    EXPECT_EQ(store.lookup(key(3)), NogoodStore::kNoBound);
    EXPECT_EQ(store.lookup(key(1)), 10);
    EXPECT_EQ(store.lookup(key(2)), 11);
    EXPECT_EQ(store.lookup(key(4)), 13);
    EXPECT_EQ(store.lookup(key(5)), 14);
}

/** A contended multi-mode instance (same shape as the solver tests). */
Model
contendedModel(int tasks, uint64_t seed)
{
    Model m;
    m.addResource(4.0, "power");
    int g0 = m.addGroup("G0");
    int g1 = m.addGroup("G1");
    Rng rng(seed);
    for (int i = 0; i < tasks; ++i) {
        Task t;
        t.name = "t" + std::to_string(i);
        t.modes.push_back({kNoGroup,
                           static_cast<Time>(rng.uniformInt(3, 6)),
                           {1.0}});
        t.modes.push_back({rng.chance(0.5) ? g0 : g1,
                           static_cast<Time>(rng.uniformInt(1, 3)),
                           {2.0}});
        m.addTask(t);
        if (i > 0 && rng.chance(0.4))
            m.addPrecedence(static_cast<int>(rng.uniformInt(0, i - 1)),
                            i);
    }
    m.setHorizon(200);
    return m;
}

SolverOptions
exactOptions(bool nogoods)
{
    SolverOptions options;
    options.targetGap = 0.0;
    options.maxSeconds = 20.0;
    options.useNogoods = nogoods;
    return options;
}

/**
 * The soundness differential: on instances the plain search proves
 * optimal, the no-good search must prove the same optimum - a
 * learned bound that pruned the optimal branch would surface here as
 * a worse makespan or a lost Optimal status.
 */
class NogoodDiff : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(NogoodDiff, NeverPrunesTheCertifiedOptimum)
{
    Model m = contendedModel(8, GetParam() * 977 + 11);
    Result plain = Solver(exactOptions(false)).solve(m);
    Result learned = Solver(exactOptions(true)).solve(m);
    ASSERT_EQ(plain.status, SolveStatus::Optimal);
    EXPECT_EQ(learned.status, SolveStatus::Optimal);
    EXPECT_EQ(learned.makespan, plain.makespan);
    EXPECT_TRUE(checkSchedule(m, learned.schedule).empty());
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, NogoodDiff,
                         ::testing::Range<uint64_t>(1, 21));

TEST(Nogood, SerialSearchWithNogoodsIsDeterministic)
{
    Model m = contendedModel(10, 12345);
    SolverOptions options = exactOptions(true);
    Result a = Solver(options).solve(m);
    Result b = Solver(options).solve(m);
    ASSERT_TRUE(a.hasSchedule());
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.stats.nodes, b.stats.nodes);
    EXPECT_EQ(a.stats.backtracks, b.stats.backtracks);
    EXPECT_EQ(a.stats.nogoodHits, b.stats.nogoodHits);
    EXPECT_EQ(a.stats.nogoodsRecorded, b.stats.nogoodsRecorded);
}

TEST(Nogood, TranspositionRichSearchRecordsAndHits)
{
    // Many interchangeable tasks contending for two devices: the
    // tree revisits placement sets in different orders, which is
    // exactly what the store prunes.
    Model m = contendedModel(12, 999);
    SearchLimits limits;
    limits.maxNodes = 200000;
    limits.maxSeconds = 20.0;
    limits.useNogoods = true;
    SearchResult learned = branchAndBound(m, nullptr, limits);
    ASSERT_TRUE(learned.foundSolution);
    EXPECT_GT(learned.nogoodsRecorded, 0);
    EXPECT_GT(learned.nogoodHits, 0);

    // Same limits without the store: identical conclusion.
    limits.useNogoods = false;
    SearchResult plain = branchAndBound(m, nullptr, limits);
    ASSERT_TRUE(plain.foundSolution);
    EXPECT_EQ(plain.nogoodHits, 0);
    EXPECT_EQ(plain.nogoodsRecorded, 0);
    if (plain.exhausted && learned.exhausted)
        EXPECT_EQ(learned.bestMakespan, plain.bestMakespan);
}

TEST(Nogood, DisabledByDefault)
{
    Model m = contendedModel(6, 7);
    Result r = Solver(exactOptions(false)).solve(m);
    EXPECT_EQ(r.stats.nogoodHits, 0);
    EXPECT_EQ(r.stats.nogoodsRecorded, 0);
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
