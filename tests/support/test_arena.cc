/**
 * @file
 * Arena checkpoint/rewind round-trips (including spills across block
 * boundaries) and SmallVector spill semantics. The whole suite also
 * runs under the HILP_SANITIZE build, where the arena's manual ASan
 * poisoning turns any use-after-rewind into a hard failure.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "support/arena.hh"

namespace {

using hilp::support::Arena;
using hilp::support::SmallVector;

TEST(Arena, AllocatesDistinctAlignedMemory)
{
    Arena arena;
    char *a = static_cast<char *>(arena.alloc(13));
    char *b = static_cast<char *>(arena.alloc(1));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
    // Sizes round up to the 8-byte granule.
    EXPECT_EQ(arena.bytesInUse(), 16u + 8u);
    std::memset(a, 0xab, 13);
    std::memset(b, 0xcd, 1);
}

TEST(Arena, CheckpointRewindRoundTrip)
{
    Arena arena;
    int *first = arena.allocArray<int>(4);
    first[0] = 42;
    size_t base = arena.bytesInUse();

    Arena::Checkpoint mark = arena.checkpoint();
    for (int i = 0; i < 100; ++i)
        arena.allocArray<double>(16);
    EXPECT_GT(arena.bytesInUse(), base);

    arena.rewind(mark);
    EXPECT_EQ(arena.bytesInUse(), base);
    EXPECT_EQ(first[0], 42); // Pre-checkpoint data survives.
    EXPECT_EQ(arena.rewinds(), 1);

    // The same bytes are handed out again: steady state allocates
    // nothing new from the heap.
    size_t heap = arena.heapBytes();
    for (int round = 0; round < 50; ++round) {
        Arena::Checkpoint again = arena.checkpoint();
        for (int i = 0; i < 100; ++i)
            arena.allocArray<double>(16);
        arena.rewind(again);
    }
    EXPECT_EQ(arena.heapBytes(), heap);
    EXPECT_EQ(arena.bytesInUse(), base);
}

TEST(Arena, RewindAcrossBlockBoundaries)
{
    // A tiny first block forces the chain to grow several times
    // between checkpoint and rewind.
    Arena arena(/*initial_block_bytes=*/32);
    char *keep = static_cast<char *>(arena.alloc(8));
    std::memset(keep, 0x5a, 8);

    Arena::Checkpoint mark = arena.checkpoint();
    std::vector<char *> scratch;
    for (int i = 0; i < 64; ++i) {
        char *p = static_cast<char *>(arena.alloc(24));
        std::memset(p, i, 24);
        scratch.push_back(p);
    }
    size_t grown_heap = arena.heapBytes();
    EXPECT_GT(grown_heap, 32u);

    arena.rewind(mark);
    EXPECT_EQ(arena.bytesInUse(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(keep[i], 0x5a);

    // Refill past the same boundaries: the cached blocks are reused,
    // so the heap footprint stays exactly where it was.
    for (int i = 0; i < 64; ++i)
        arena.alloc(24);
    EXPECT_EQ(arena.heapBytes(), grown_heap);
}

TEST(Arena, OversizedAllocationGetsItsOwnBlock)
{
    Arena arena(/*initial_block_bytes=*/64);
    arena.alloc(8);
    // Larger than any block in the chain so far.
    char *big = static_cast<char *>(arena.alloc(4096));
    std::memset(big, 0x11, 4096);
    EXPECT_GE(arena.heapBytes(), 4096u + 64u);
    arena.reset();
    EXPECT_EQ(arena.bytesInUse(), 0u);
}

TEST(Arena, HighWaterTracksPeakNotCurrent)
{
    Arena arena;
    Arena::Checkpoint mark = arena.checkpoint();
    arena.alloc(1000);
    size_t peak = arena.bytesInUse();
    arena.rewind(mark);
    EXPECT_EQ(arena.bytesInUse(), 0u);
    EXPECT_GE(arena.highWater(), peak);
    arena.alloc(8);
    EXPECT_GE(arena.highWater(), peak); // Never decreases.
}

TEST(Arena, ScopeRewindsOnAllExits)
{
    Arena arena;
    {
        Arena::Scope scope(&arena);
        arena.alloc(256);
        EXPECT_GT(arena.bytesInUse(), 0u);
    }
    EXPECT_EQ(arena.bytesInUse(), 0u);

    // Nested scopes unwind LIFO.
    {
        Arena::Scope outer(&arena);
        arena.alloc(64);
        {
            Arena::Scope inner(&arena);
            arena.alloc(64);
            EXPECT_EQ(arena.bytesInUse(), 128u);
        }
        EXPECT_EQ(arena.bytesInUse(), 64u);
    }
    EXPECT_EQ(arena.bytesInUse(), 0u);

    // A null arena makes the scope a no-op (legacy-layout path).
    Arena::Scope noop(nullptr);
}

TEST(SmallVector, StaysInlineUpToN)
{
    SmallVector<int, 8> vec;
    for (int i = 0; i < 8; ++i)
        vec.push_back(i);
    EXPECT_EQ(vec.size(), 8u);
    EXPECT_FALSE(vec.spilled());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(vec[i], i);
}

TEST(SmallVector, SpillsToHeapWithoutArena)
{
    SmallVector<int, 4> vec;
    for (int i = 0; i < 100; ++i)
        vec.push_back(i);
    EXPECT_EQ(vec.size(), 100u);
    EXPECT_TRUE(vec.spilled());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(vec[i], i);
    vec.pop_back();
    EXPECT_EQ(vec.size(), 99u);
    EXPECT_EQ(vec.back(), 98);
    vec.clear();
    EXPECT_TRUE(vec.empty());
}

TEST(SmallVector, SpillsToArenaWhenAttached)
{
    Arena arena;
    SmallVector<int, 4> vec(&arena);
    for (int i = 0; i < 100; ++i)
        vec.push_back(i);
    EXPECT_TRUE(vec.spilled());
    EXPECT_GT(arena.bytesInUse(), 0u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(vec[i], i);
    // Growth is geometric, so the arena holds the abandoned smaller
    // generations too — bounded by ~2x the final capacity.
    EXPECT_GE(arena.bytesInUse(), vec.capacity() * sizeof(int));
}

TEST(SmallVector, ArenaSpillSurvivesManyCycles)
{
    // The engine trail's usage pattern: grow past the inline storage
    // once, then push/pop forever. After the first spill the arena
    // footprint must not move.
    Arena arena;
    SmallVector<int, 4> vec(&arena);
    for (int i = 0; i < 64; ++i)
        vec.push_back(i);
    size_t heap = arena.heapBytes();
    size_t in_use = arena.bytesInUse();
    for (int round = 0; round < 1000; ++round) {
        while (vec.size() > 2)
            vec.pop_back();
        while (vec.size() < 64)
            vec.push_back(static_cast<int>(vec.size()));
    }
    EXPECT_EQ(arena.heapBytes(), heap);
    EXPECT_EQ(arena.bytesInUse(), in_use);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(vec[i], i);
}

TEST(SmallVector, HoldsTrivialStructs)
{
    struct Entry
    {
        int task;
        const void *mode;
        long start;
    };
    Arena arena;
    SmallVector<Entry, 2> vec(&arena);
    for (int i = 0; i < 20; ++i)
        vec.push_back(Entry{i, nullptr, 10L * i});
    EXPECT_EQ(vec.size(), 20u);
    EXPECT_EQ(vec[19].task, 19);
    EXPECT_EQ(vec[19].start, 190L);
}

} // namespace
