/** @file Unit tests for the lower-bound engine. */

#include <gtest/gtest.h>

#include "cp/bounds.hh"
#include "cp/model.hh"

namespace hilp {
namespace cp {
namespace {

Model
chainModel(const std::vector<Time> &durations)
{
    Model m;
    for (Time d : durations) {
        Task t;
        t.modes.push_back({kNoGroup, d, {}});
        m.addTask(t);
    }
    for (size_t i = 0; i + 1 < durations.size(); ++i)
        m.addPrecedence(static_cast<int>(i), static_cast<int>(i + 1));
    m.setHorizon(1000);
    return m;
}

TEST(Bounds, CriticalPathOfChainIsSum)
{
    Model m = chainModel({3, 4, 5});
    LowerBounds lb = computeLowerBounds(m, false);
    EXPECT_EQ(lb.criticalPath, 12);
    EXPECT_EQ(lb.best(), 12);
}

TEST(Bounds, CriticalPathUsesMinDurations)
{
    Model m;
    Task a;
    a.modes.push_back({kNoGroup, 10, {}});
    a.modes.push_back({kNoGroup, 4, {}});
    m.addTask(a);
    Task b;
    b.modes.push_back({kNoGroup, 6, {}});
    m.addTask(b);
    m.addPrecedence(0, 1);
    m.setHorizon(100);
    LowerBounds lb = computeLowerBounds(m, false);
    EXPECT_EQ(lb.criticalPath, 10); // 4 + 6.
}

TEST(Bounds, CriticalPathOfDiamondDag)
{
    // 0 -> {1, 2} -> 3 with durations 1, 5, 2, 1: path 0-1-3 = 7.
    Model m;
    std::vector<Time> durs = {1, 5, 2, 1};
    for (Time d : durs) {
        Task t;
        t.modes.push_back({kNoGroup, d, {}});
        m.addTask(t);
    }
    m.addPrecedence(0, 1);
    m.addPrecedence(0, 2);
    m.addPrecedence(1, 3);
    m.addPrecedence(2, 3);
    m.setHorizon(100);
    CriticalPathData cp = criticalPathData(m);
    EXPECT_EQ(cp.head[0], 0);
    EXPECT_EQ(cp.head[1], 1);
    EXPECT_EQ(cp.head[3], 6);
    EXPECT_EQ(cp.tail[0], 7);
    EXPECT_EQ(cp.tail[3], 1);
    LowerBounds lb = computeLowerBounds(m, false);
    EXPECT_EQ(lb.criticalPath, 7);
}

TEST(Bounds, GroupLoadOfPinnedTasks)
{
    Model m;
    int g = m.addGroup("G");
    for (Time d : {3, 4, 5}) {
        Task t;
        t.modes.push_back({g, d, {}});
        m.addTask(t);
    }
    m.setHorizon(100);
    LowerBounds lb = computeLowerBounds(m, false);
    EXPECT_EQ(lb.groupLoad, 12);
    EXPECT_EQ(lb.best(), 12);
}

TEST(Bounds, GroupLoadIgnoresUnpinnedTasks)
{
    Model m;
    int g = m.addGroup("G");
    Task pinned;
    pinned.modes.push_back({g, 5, {}});
    m.addTask(pinned);
    Task flexible;
    flexible.modes.push_back({g, 5, {}});
    flexible.modes.push_back({kNoGroup, 9, {}});
    m.addTask(flexible);
    m.setHorizon(100);
    LowerBounds lb = computeLowerBounds(m, false);
    EXPECT_EQ(lb.groupLoad, 5);
}

TEST(Bounds, ResourceEnergyBound)
{
    Model m;
    m.addResource(2.0, "power");
    for (int i = 0; i < 4; ++i) {
        Task t;
        t.modes.push_back({kNoGroup, 3, {2.0}});
        m.addTask(t);
    }
    m.setHorizon(100);
    LowerBounds lb = computeLowerBounds(m, false);
    // Total energy 4 * 3 * 2 = 24; capacity 2 -> at least 12 steps.
    EXPECT_EQ(lb.resourceEnergy, 12);
}

TEST(Bounds, ResourceEnergyUsesCheapestMode)
{
    Model m;
    m.addResource(1.0, "power");
    Task t;
    t.modes.push_back({kNoGroup, 10, {1.0}}); // energy 10
    t.modes.push_back({kNoGroup, 4, {1.0}});  // energy 4
    m.addTask(t);
    m.setHorizon(100);
    LowerBounds lb = computeLowerBounds(m, false);
    EXPECT_EQ(lb.resourceEnergy, 4);
}

TEST(Bounds, LpDominatesOnMixedInstance)
{
    // Two chains share one group; the LP sees both the path and the
    // load, and its bound must be at least each combinatorial bound.
    Model m;
    int g = m.addGroup("G");
    for (int chain = 0; chain < 2; ++chain) {
        Task a;
        a.modes.push_back({kNoGroup, 2, {}});
        int ai = m.addTask(a);
        Task b;
        b.modes.push_back({g, 6, {}});
        int bi = m.addTask(b);
        m.addPrecedence(ai, bi);
    }
    m.setHorizon(100);
    LowerBounds lb = computeLowerBounds(m, true);
    EXPECT_EQ(lb.criticalPath, 8);
    EXPECT_EQ(lb.groupLoad, 12);
    // LP combines: start of second group task >= 2, plus 12 load.
    EXPECT_GE(lb.lpRelaxation, 12);
    EXPECT_GE(lb.best(), 12);
}

TEST(Bounds, LpAccountsForPrecedenceOffsets)
{
    // setup (3) -> compute (5, pinned); LP must see 3 + 5 = 8.
    Model m;
    int g = m.addGroup("G");
    Task a;
    a.modes.push_back({kNoGroup, 3, {}});
    m.addTask(a);
    Task b;
    b.modes.push_back({g, 5, {}});
    m.addTask(b);
    m.addPrecedence(0, 1);
    m.setHorizon(100);
    LowerBounds lb = computeLowerBounds(m, true);
    EXPECT_GE(lb.lpRelaxation, 8);
}

TEST(Bounds, LpNeverExceedsKnownOptimum)
{
    // Two independent unit tasks on one group: optimum is 2.
    Model m;
    int g = m.addGroup("G");
    for (int i = 0; i < 2; ++i) {
        Task t;
        t.modes.push_back({g, 1, {}});
        m.addTask(t);
    }
    m.setHorizon(100);
    LowerBounds lb = computeLowerBounds(m, true);
    EXPECT_LE(lb.best(), 2);
    EXPECT_GE(lb.best(), 2); // Here the load bound is exact.
}

TEST(Bounds, EmptyishModelHasZeroBounds)
{
    Model m;
    Task t;
    t.modes.push_back({kNoGroup, 0, {}});
    m.addTask(t);
    m.setHorizon(10);
    LowerBounds lb = computeLowerBounds(m, true);
    EXPECT_EQ(lb.best(), 0);
}

TEST(Bounds, BestPicksMaximum)
{
    LowerBounds lb;
    lb.criticalPath = 3;
    lb.groupLoad = 7;
    lb.resourceEnergy = 5;
    lb.lpRelaxation = 6;
    EXPECT_EQ(lb.best(), 7);
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
