/** @file Unit tests for the thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "support/thread_pool.hh"

namespace hilp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItems)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForSingleItem)
{
    ThreadPool pool(2);
    std::atomic<int> hits{0};
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++hits;
    });
    EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolWorks)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> counter{0};
    pool.parallelFor(50, [&](size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultSizeIsPositive)
{
    ThreadPool pool;
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitWithNoWorkReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, SequentialParallelForBatches)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int round = 0; round < 5; ++round)
        pool.parallelFor(20, [&](size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 100);
}

} // anonymous namespace
} // namespace hilp
