/**
 * @file
 * Enumeration of the Section VI SoC design space.
 *
 * The paper sweeps SoCs with 1/2/4 CPU cores, an optional GPU with
 * 4/16/64 SMs, and 0-10 DSAs with 1/4/16 PEs each. DSAs are
 * allocated to applications in descending order of CPU compute-phase
 * time, and every DSA in a config has the same PE count, which yields
 * exactly 372 configurations.
 */

#ifndef HILP_ARCH_DESIGN_SPACE_HH
#define HILP_ARCH_DESIGN_SPACE_HH

#include <vector>

#include "soc.hh"

namespace hilp {
namespace arch {

/**
 * Parameters of a design-space sweep; the defaults are the paper's
 * Section VI space.
 */
struct DesignSpace
{
    std::vector<int> cpuOptions = {1, 2, 4};
    /** GPU SM counts; 0 means "no GPU" and is a valid option. */
    std::vector<int> gpuOptions = {0, 4, 16, 64};
    /** DSA counts swept from 0 to maxDsas inclusive. */
    int maxDsas = 10;
    std::vector<int> peOptions = {1, 4, 16};
    double dsaAdvantage = 4.0;
};

/**
 * Enumerate every SoC in the space. dsa_priority lists the workload
 * target identifiers in allocation order (most deserving first); a
 * k-DSA SoC accelerates the first k targets. Configurations with
 * zero DSAs are emitted once (the PE count is meaningless there).
 * With the default space and a 10-entry priority list this produces
 * the paper's 372 configurations.
 */
std::vector<SocConfig> enumerateDesignSpace(
    const DesignSpace &space, const std::vector<int> &dsa_priority);

} // namespace arch
} // namespace hilp

#endif // HILP_ARCH_DESIGN_SPACE_HH
