#!/usr/bin/env sh
# Run the full verification gate: the plain build plus the sanitized
# (ASan + UBSan) build, each followed by the tier1 test suite. This is
# the one command to run before sending a change for review.
#
# Usage: scripts/check.sh [jobs]
#   jobs  parallel build/test width (default: nproc)

set -eu

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc 2>/dev/null || echo 4)}"

run_suite() {
    build_dir="$1"
    shift
    echo "==> configure ${build_dir} ($*)"
    cmake -B "${build_dir}" -S . "$@"
    echo "==> build ${build_dir}"
    cmake --build "${build_dir}" -j "${jobs}"
    echo "==> test ${build_dir} (tier1)"
    ctest --test-dir "${build_dir}" -L tier1 -j "${jobs}" \
        --output-on-failure
}

run_suite build
run_suite build-asan -DHILP_SANITIZE=ON

# Thread-sanitizer stage: build only the concurrency test binary
# (thread pool + budget + parallel branch-and-bound) under TSan and
# run it. TSan is incompatible with ASan, so this is a third build
# tree; benches and examples are skipped to keep it fast.
echo "==> configure build-tsan"
cmake -B build-tsan -S . -DHILP_TSAN=ON \
    -DHILP_BUILD_BENCH=OFF -DHILP_BUILD_EXAMPLES=OFF
echo "==> build build-tsan (hilp_test_concurrency)"
cmake --build build-tsan -j "${jobs}" --target hilp_test_concurrency
echo "==> test build-tsan (concurrency under TSan)"
./build-tsan/tests/hilp_test_concurrency

# Tracing smoke test: run the solver microbenchmark with a trace
# export (benchmark timing loops filtered out for speed) and validate
# that the file is a well-formed, balanced Chrome trace.
echo "==> trace smoke test"
trace_file="build/check_trace.json"
./build/bench/solver_micro "--trace-out=${trace_file}" \
    --no-thread-sweep --benchmark_filter=none > /dev/null
./build/bench/trace_check "${trace_file}"

echo "==> all checks passed"
