/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * log-scale histograms.
 *
 * Counters and histograms accumulate into thread-local shards so the
 * hot path is a single relaxed atomic add with no cross-thread
 * contention; shards are merged on snapshot. Metric objects are
 * created on first lookup and live for the remainder of the process,
 * so references returned by counter()/gauge()/histogram() never
 * dangle and may be cached (e.g. in a function-local static) on hot
 * paths.
 *
 * The registry is the numeric side of the observability layer (the
 * tracer in trace.hh is the timeline side): solver and sweep code
 * publishes effort totals here, and snapshotJson()/snapshotCsv()
 * fold them into the DSE reports and the --metrics-out dumps.
 */

#ifndef HILP_SUPPORT_METRICS_HH
#define HILP_SUPPORT_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "json.hh"

namespace hilp {
namespace metrics {

/**
 * Histogram bucket count: bucket 0 collects values <= 0, bucket b in
 * [1, 64] collects values whose bit width is b, i.e. the range
 * [2^(b-1), 2^b - 1]. Log-scale, so microsecond latencies and node
 * counts alike need no per-metric configuration.
 */
constexpr int kHistogramBuckets = 65;

/**
 * A monotonically increasing counter. add() lands in a thread-local
 * cell (a relaxed fetch_add on an uncontended cache line); value()
 * merges every thread's cell. The merged value is exact once the
 * writing threads have synchronized with the reader (e.g. a joined
 * thread or a drained ThreadPool::wait()).
 */
class Counter
{
  public:
    explicit Counter(std::string name);
    ~Counter();

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    const std::string &name() const { return name_; }

    /** Add delta to this thread's cell. */
    void add(int64_t delta = 1);

    /** Sum over all threads' cells. */
    int64_t value() const;

    /** Zero every cell. Only safe with no concurrent writers. */
    void reset();

    struct Cell;

  private:
    Cell &localCell();

    std::string name_;
    uint64_t id_;
    mutable std::mutex mutex_;
    std::vector<std::shared_ptr<Cell>> cells_;
};

/** A last-value-wins gauge. Single atomic double, no sharding. */
class Gauge
{
  public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    const std::string &name() const { return name_; }

    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::string name_;
    std::atomic<double> value_{0.0};
};

/** A merged view of a histogram at one point in time. */
struct HistogramSnapshot
{
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;  //!< 0 when count == 0.
    int64_t max = 0;
    std::array<int64_t, kHistogramBuckets> buckets{};

    double mean() const;

    /**
     * Approximate quantile (q in [0, 1]) from the log-scale buckets:
     * linear interpolation across the bucket holding the q-th
     * sample, clamped to the observed [min, max]. q=0 returns min,
     * q=1 returns max exactly; elsewhere the error is bounded by the
     * bucket width (one power of two).
     */
    double quantile(double q) const;
};

/**
 * A log-scale histogram of int64 samples. record() updates a
 * thread-local cell (relaxed adds; min/max are owner-thread stores),
 * snapshot() merges all cells.
 */
class Histogram
{
  public:
    explicit Histogram(std::string name);
    ~Histogram();

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    const std::string &name() const { return name_; }

    /** Record one sample. */
    void record(int64_t value);

    /** Merge every thread's cell into one view. */
    HistogramSnapshot snapshot() const;

    /** Zero every cell. Only safe with no concurrent writers. */
    void reset();

    /** Bucket index a value lands in (see kHistogramBuckets). */
    static int bucketOf(int64_t value);

    struct Cell;

  private:
    Cell &localCell();

    std::string name_;
    uint64_t id_;
    mutable std::mutex mutex_;
    std::vector<std::shared_ptr<Cell>> cells_;
};

/** Find or create the named metric. References stay valid forever. */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

/**
 * A coherent value snapshot of every registered metric, in sorted
 * name order. This is the one structure every exporter (JSON, CSV,
 * Prometheus text, the daemon's stats op) renders from, so they can
 * never disagree about what the registry held.
 */
struct RegistrySnapshot
{
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

RegistrySnapshot snapshotAll();

/**
 * Snapshot of the whole registry as JSON:
 * {"counters": {name: value}, "gauges": {name: value},
 *  "histograms": {name: {count, sum, min, max, mean, p50, p95, p99}}}
 */
Json snapshotJson();

/**
 * Snapshot of the whole registry as CSV rows "metric,kind,value".
 * Histograms expand to one row per derived statistic
 * (name.count, name.sum, name.mean, ...).
 */
std::string snapshotCsv();

/**
 * Zero every registered metric. For tests; only safe when no other
 * thread is concurrently recording.
 */
void resetAll();

} // namespace metrics
} // namespace hilp

#endif // HILP_SUPPORT_METRICS_HH
