/**
 * @file
 * No-good recording for the branch-and-bound search.
 *
 * The serial-SGS search keeps rediscovering the same subtrees: two
 * different decision *orders* that place the same (task, mode, start)
 * set reach bit-identical search states (profile, eligible set,
 * earliest starts are all functions of the placement set, and the
 * engine's placements commute). A no-good caches what exploring such
 * a state proved - "every completion of this placement set has
 * makespan >= bound" - keyed by an order-independent Zobrist hash of
 * the set, so a revisit through a different permutation prunes
 * instantly when the recorded bound cannot beat the incumbent.
 *
 * Soundness of the recorded bounds:
 *  - A node cut by propagation records the fixpoint bound, which the
 *    propagators certify against any completion of the placements.
 *  - A fully explored node records the incumbent upper bound at
 *    backtrack time: every completion inside the subtree was either
 *    enumerated (and thus >= the final incumbent) or pruned against
 *    an incumbent that was at least as large, and the incumbent only
 *    ever decreases - so the claim stays valid for the rest of the
 *    search, including when the store is shared across parallel
 *    workers pruning against the shared incumbent.
 *  - A node whose budget/gap stop unwound it records nothing.
 *
 * The store is a bounded, sharded, set-associative table (a
 * transposition table in game-tree terms): fixed memory, lock-light
 * (one small mutex per shard, touched twice per node), and lossy by
 * design - eviction only loses pruning opportunities, never
 * soundness. Distinct placement sets colliding on the full 64-bit
 * key could in principle prune wrongly; as in chess transposition
 * tables the probability is negligible next to the node counts
 * involved, and the differential tests in tests/cp/test_nogood.cc
 * hold the optimum against an exhaustive oracle.
 */

#ifndef HILP_CP_NOGOOD_HH
#define HILP_CP_NOGOOD_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "model.hh"

namespace hilp {
namespace cp {

/**
 * The Zobrist code of one (task, mode, start) placement. XOR-ing the
 * codes of a placement set yields its order-independent key; the
 * same XOR applied again removes a placement, so the search keeps
 * the running key incrementally in O(1) per place/undo.
 */
uint64_t nogoodCode(int task, int mode, Time start);

/**
 * Bounded transposition-table store of no-goods. Thread-safe: the
 * opportunistic parallel search shares one store across its workers
 * (a recorded bound is globally valid, see the file comment), while
 * the serial and deterministic searches keep private stores so their
 * node counts stay exactly reproducible.
 */
class NogoodStore
{
  public:
    /** Returned by lookup() when the key has no entry. */
    static constexpr Time kNoBound = -1;

    /**
     * Create a store with roughly `capacity` entries (rounded up to
     * a power of two, 16 bytes each). Bounded for the whole search:
     * a full bucket evicts its cheapest (deepest) subtree.
     */
    explicit NogoodStore(size_t capacity);

    /**
     * The proven makespan bound recorded for this placement-set key,
     * or kNoBound. The caller prunes when the bound cannot beat its
     * current incumbent (bound >= ub).
     */
    Time lookup(uint64_t key) const;

    /**
     * Record "every completion of this placement set has makespan >=
     * bound". `placed` (the set's size) steers eviction: shallower
     * entries guard larger subtrees and are kept preferentially.
     * Re-recording a key keeps the stronger (larger) bound.
     */
    void record(uint64_t key, Time bound, int placed);

    /** Occupied entries (linear scan; telemetry and tests only). */
    int64_t size() const;

  private:
    /** placed == 0 marks an empty slot (real sets are non-empty). */
    struct Entry
    {
        uint64_t key = 0;
        Time bound = 0;
        uint16_t placed = 0;
    };

    static constexpr size_t kWays = 4;
    static constexpr size_t kShards = 64;

    size_t
    bucketOf(uint64_t key) const
    {
        // The low bits index the bucket; kWays consecutive entries
        // form its ways.
        return (static_cast<size_t>(key) & bucketMask_) * kWays;
    }

    size_t bucketMask_ = 0;
    std::vector<Entry> entries_;
    mutable std::mutex shards_[kShards];
};

} // namespace cp
} // namespace hilp

#endif // HILP_CP_NOGOOD_HH
