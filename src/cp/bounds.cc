#include "bounds.hh"

#include <algorithm>
#include <cmath>

#include "lp/lp.hh"
#include "support/logging.hh"

namespace hilp {
namespace cp {

CriticalPathData
criticalPathData(const Model &model)
{
    std::vector<int> order = model.topologicalOrder();
    CriticalPathData data;
    data.head.assign(model.numTasks(), 0);
    data.tail.assign(model.numTasks(), 0);
    for (int t : order) {
        Time head = 0;
        for (int p : model.predecessors(t))
            head = std::max(head, data.head[p] + model.minDuration(p));
        for (const Model::LagEdge &edge : model.lagPredecessors(t))
            head = std::max(head, data.head[edge.other] + edge.lag);
        data.head[t] = head;
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        int t = *it;
        // tail[t] lower-bounds the time from the start of t to the
        // end of the schedule.
        Time tail = model.minDuration(t);
        for (int s : model.successors(t))
            tail = std::max(tail, model.minDuration(t) + data.tail[s]);
        for (const Model::LagEdge &edge : model.lagSuccessors(t))
            tail = std::max(tail, edge.lag + data.tail[edge.other]);
        data.tail[t] = tail;
    }
    return data;
}

Time
LowerBounds::best() const
{
    return std::max({criticalPath, groupLoad, resourceEnergy,
                     lpRelaxation});
}

namespace {

/** Longest head + tail across all tasks. */
Time
criticalPathBound(const Model &model, const CriticalPathData &cp)
{
    Time best = 0;
    for (int t = 0; t < model.numTasks(); ++t)
        best = std::max(best, cp.head[t] + cp.tail[t]);
    return best;
}

/**
 * For each group, the total minimum duration of tasks all of whose
 * modes run on that group: those tasks must serialize there.
 */
Time
groupLoadBound(const Model &model)
{
    std::vector<Time> load(model.numGroups(), 0);
    for (int t = 0; t < model.numTasks(); ++t) {
        const Task &task = model.task(t);
        int group = task.modes[0].group;
        bool pinned = group != kNoGroup;
        Time min_d = task.modes[0].duration;
        for (const Mode &mode : task.modes) {
            pinned = pinned && mode.group == group;
            min_d = std::min(min_d, mode.duration);
        }
        if (pinned)
            load[group] += min_d;
    }
    Time best = 0;
    for (Time l : load)
        best = std::max(best, l);
    return best;
}

/**
 * For each cumulative resource, the minimum possible total energy
 * (usage * duration) divided by capacity is a bound on the number of
 * time steps needed.
 */
Time
resourceEnergyBound(const Model &model)
{
    Time best = 0;
    for (int r = 0; r < model.numResources(); ++r) {
        double cap = model.capacity(r);
        if (cap <= 0.0)
            continue;
        double energy = 0.0;
        for (int t = 0; t < model.numTasks(); ++t) {
            const Task &task = model.task(t);
            double min_e = -1.0;
            for (const Mode &mode : task.modes) {
                double e = mode.usage[r] *
                           static_cast<double>(mode.duration);
                if (min_e < 0.0 || e < min_e)
                    min_e = e;
            }
            energy += std::max(0.0, min_e);
        }
        Time bound = static_cast<Time>(std::ceil(energy / cap - 1e-9));
        best = std::max(best, bound);
    }
    return best;
}

/**
 * LP relaxation: fractional mode choice x_tm, continuous start
 * bounds e_t, and makespan M with
 *   sum_m x_tm = 1                                  (convexity)
 *   e_t >= e_p + sum_m d_pm x_pm    for edges p->t  (precedence)
 *   M   >= e_t + sum_m d_tm x_tm                    (completion)
 *   sum_{t,m in g} d_tm x_tm <= M                   (group load)
 *   sum_{t,m} d_tm u_tmr x_tm <= cap_r * M          (resource energy)
 * Any feasible schedule of makespan T yields a feasible LP point with
 * M = T, so the LP optimum lower-bounds the integer optimum.
 */
Time
lpRelaxationBound(const Model &model)
{
    lp::Problem problem;

    // Mode-choice variables.
    std::vector<std::vector<int>> x(model.numTasks());
    for (int t = 0; t < model.numTasks(); ++t) {
        const Task &task = model.task(t);
        x[t].resize(task.modes.size());
        for (size_t m = 0; m < task.modes.size(); ++m) {
            // Modes whose usage exceeds a capacity outright can never
            // be selected; pin them to zero.
            bool usable = true;
            for (int r = 0; r < model.numResources(); ++r) {
                if (task.modes[m].usage[r] >
                    model.capacity(r) + 1e-9) {
                    usable = false;
                    break;
                }
            }
            x[t][m] = problem.addVariable(0.0, usable ? 1.0 : 0.0, 0.0);
        }
    }
    // Start-bound variables.
    std::vector<int> e(model.numTasks());
    for (int t = 0; t < model.numTasks(); ++t)
        e[t] = problem.addVariable(0.0, lp::kInf, 0.0);
    // Makespan.
    int big_m = problem.addVariable(0.0, lp::kInf, 1.0);

    // Convexity.
    for (int t = 0; t < model.numTasks(); ++t) {
        std::vector<lp::Term> terms;
        for (int xv : x[t])
            terms.push_back({xv, 1.0});
        problem.addConstraint(std::move(terms), lp::Relation::Equal, 1.0);
    }
    // Precedence: e_t - e_p - sum d_pm x_pm >= 0.
    for (int p = 0; p < model.numTasks(); ++p) {
        for (int t : model.successors(p)) {
            std::vector<lp::Term> terms;
            terms.push_back({e[t], 1.0});
            terms.push_back({e[p], -1.0});
            const Task &ptask = model.task(p);
            for (size_t m = 0; m < ptask.modes.size(); ++m) {
                terms.push_back({x[p][m],
                    -static_cast<double>(ptask.modes[m].duration)});
            }
            problem.addConstraint(std::move(terms),
                                  lp::Relation::GreaterEqual, 0.0);
        }
        // Start lags: e_t - e_p >= lag.
        for (const Model::LagEdge &edge : model.lagSuccessors(p)) {
            problem.addConstraint({{e[edge.other], 1.0}, {e[p], -1.0}},
                                  lp::Relation::GreaterEqual,
                                  static_cast<double>(edge.lag));
        }
    }
    // Completion: M - e_t - sum d_tm x_tm >= 0.
    for (int t = 0; t < model.numTasks(); ++t) {
        std::vector<lp::Term> terms;
        terms.push_back({big_m, 1.0});
        terms.push_back({e[t], -1.0});
        const Task &task = model.task(t);
        for (size_t m = 0; m < task.modes.size(); ++m) {
            terms.push_back({x[t][m],
                -static_cast<double>(task.modes[m].duration)});
        }
        problem.addConstraint(std::move(terms),
                              lp::Relation::GreaterEqual, 0.0);
    }
    // Group load: sum d x - M <= 0.
    for (int g = 0; g < model.numGroups(); ++g) {
        std::vector<lp::Term> terms;
        for (int t = 0; t < model.numTasks(); ++t) {
            const Task &task = model.task(t);
            for (size_t m = 0; m < task.modes.size(); ++m) {
                if (task.modes[m].group == g) {
                    terms.push_back({x[t][m],
                        static_cast<double>(task.modes[m].duration)});
                }
            }
        }
        if (terms.empty())
            continue;
        terms.push_back({big_m, -1.0});
        problem.addConstraint(std::move(terms),
                              lp::Relation::LessEqual, 0.0);
    }
    // Resource energy: sum d u x - cap * M <= 0.
    for (int r = 0; r < model.numResources(); ++r) {
        double cap = model.capacity(r);
        if (cap <= 0.0)
            continue;
        std::vector<lp::Term> terms;
        for (int t = 0; t < model.numTasks(); ++t) {
            const Task &task = model.task(t);
            for (size_t m = 0; m < task.modes.size(); ++m) {
                double coeff = task.modes[m].usage[r] *
                    static_cast<double>(task.modes[m].duration);
                if (coeff > 0.0)
                    terms.push_back({x[t][m], coeff});
            }
        }
        if (terms.empty())
            continue;
        terms.push_back({big_m, -cap});
        problem.addConstraint(std::move(terms),
                              lp::Relation::LessEqual, 0.0);
    }

    lp::Solver solver;
    lp::Solution sol = solver.solve(problem);
    if (!sol.optimal())
        return 0; // Infeasible relaxation cases are caught elsewhere.
    return static_cast<Time>(std::ceil(sol.objective - 1e-6));
}

} // anonymous namespace

LowerBounds
computeLowerBounds(const Model &model, bool use_lp)
{
    LowerBounds bounds;
    CriticalPathData cp = criticalPathData(model);
    bounds.criticalPath = criticalPathBound(model, cp);
    bounds.groupLoad = groupLoadBound(model);
    bounds.resourceEnergy = resourceEnergyBound(model);
    if (use_lp)
        bounds.lpRelaxation = lpRelaxationBound(model);
    return bounds;
}

} // namespace cp
} // namespace hilp
