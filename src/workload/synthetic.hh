/**
 * @file
 * Deterministic synthetic workload generation.
 *
 * The paper evaluates on Rodinia-derived workloads; the synthetic
 * generator provides structurally similar (multi-phase, mixed
 * sequential/compute) workloads with controllable shape for property
 * tests, fuzzing of the end-to-end pipeline, and sensitivity studies
 * beyond the paper's benchmarks.
 */

#ifndef HILP_WORKLOAD_SYNTHETIC_HH
#define HILP_WORKLOAD_SYNTHETIC_HH

#include <cstdint>

#include "workload.hh"

namespace hilp {
namespace workload {

/** Shape parameters for a synthetic workload. */
struct SyntheticOptions
{
    int numApps = 5;
    int minComputePhases = 1; //!< Compute phases per app (min).
    int maxComputePhases = 2; //!< Compute phases per app (max).
    double minSetupS = 0.5;   //!< Sequential phase duration range.
    double maxSetupS = 60.0;
    double minComputeCpuS = 20.0; //!< Single-core compute time range.
    double maxComputeCpuS = 500.0;
    double minGpuSpeedup98 = 5.0; //!< CPU/GPU time ratio range at 98
    double maxGpuSpeedup98 = 200.0; //!< SMs.
    double minBw98 = 1.0;     //!< Full-GPU bandwidth range, GB/s.
    double maxBw98 = 250.0;
    double dsaTargetFraction = 0.5; //!< Fraction of apps that get a
                                    //!< DSA-targetable compute phase.
    uint64_t seed = 42;
};

/**
 * Generate a workload: each app is setup -> compute+ -> teardown with
 * log-uniform times and Table-II-like power laws. Equal options and
 * seed produce identical workloads.
 */
Workload makeSyntheticWorkload(const SyntheticOptions &options);

} // namespace workload
} // namespace hilp

#endif // HILP_WORKLOAD_SYNTHETIC_HH
