#include "lp.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace hilp {
namespace lp {

const char *
toString(Status status)
{
    switch (status) {
      case Status::Optimal:
        return "optimal";
      case Status::Infeasible:
        return "infeasible";
      case Status::Unbounded:
        return "unbounded";
      case Status::IterationLimit:
        return "iteration-limit";
    }
    return "unknown";
}

int
Problem::addVariable(double lb, double ub, double obj, std::string name)
{
    hilp_assert(std::isfinite(lb));
    hilp_assert(ub >= lb);
    lb_.push_back(lb);
    ub_.push_back(ub);
    obj_.push_back(obj);
    names_.push_back(std::move(name));
    return static_cast<int>(lb_.size()) - 1;
}

void
Problem::addConstraint(std::vector<Term> terms, Relation rel, double rhs)
{
    for (const Term &t : terms)
        hilp_assert(t.var >= 0 && t.var < numVariables());
    rows_.push_back(std::move(terms));
    rels_.push_back(rel);
    rhs_.push_back(rhs);
}

namespace {

/**
 * Dense simplex tableau. Row layout: m constraint rows followed by
 * one cost row; column layout: structural + slack/artificial columns
 * followed by the right-hand side.
 */
struct Tableau
{
    int m = 0;            //!< Constraint rows.
    int ncols = 0;        //!< Columns excluding the rhs.
    std::vector<std::vector<double>> a;  //!< m rows of ncols + 1.
    std::vector<double> cost;            //!< ncols + 1 (rhs = -z).
    std::vector<int> basis;              //!< Basic column per row.
    std::vector<bool> artificial;        //!< Per-column artificial flag.

    double &rhs(int row) { return a[row][ncols]; }
    double rhsVal(int row) const { return a[row][ncols]; }

    /** Pivot on (row, col): col becomes basic in row. */
    void
    pivot(int row, int col)
    {
        double p = a[row][col];
        for (int j = 0; j <= ncols; ++j)
            a[row][j] /= p;
        a[row][col] = 1.0; // exact
        for (int i = 0; i < m; ++i) {
            if (i == row)
                continue;
            double f = a[i][col];
            if (f == 0.0)
                continue;
            for (int j = 0; j <= ncols; ++j)
                a[i][j] -= f * a[row][j];
            a[i][col] = 0.0; // exact
        }
        double f = cost[col];
        if (f != 0.0) {
            for (int j = 0; j <= ncols; ++j)
                cost[j] -= f * a[row][j];
            cost[col] = 0.0;
        }
        basis[row] = col;
    }

    /**
     * Install reduced costs for objective coefficients c over the
     * current basis: cost_j = c_j - c_B^T B^{-1} A_j, where the
     * tableau rows already hold B^{-1} A.
     */
    void
    setObjective(const std::vector<double> &c)
    {
        hilp_assert(static_cast<int>(c.size()) == ncols);
        for (int j = 0; j < ncols; ++j)
            cost[j] = c[j];
        cost[ncols] = 0.0;
        for (int i = 0; i < m; ++i) {
            double cb = c[basis[i]];
            if (cb == 0.0)
                continue;
            for (int j = 0; j <= ncols; ++j)
                cost[j] -= cb * a[i][j];
            cost[basis[i]] = 0.0;
        }
    }
};

/** Result of a simplex phase. */
enum class PhaseResult { Optimal, Unbounded, IterationLimit };

/**
 * Run primal simplex iterations on the tableau until optimality,
 * unboundedness, or the pivot budget is spent. Columns flagged in
 * blocked may never enter the basis (used to keep artificials out in
 * phase 2).
 */
PhaseResult
runSimplex(Tableau &t, const std::vector<bool> &blocked, double eps,
           int &pivot_budget, int bland_threshold)
{
    int stalled = 0;
    bool use_bland = false;
    double last_obj = -t.cost[t.ncols];
    while (pivot_budget > 0) {
        // Entering column.
        int enter = -1;
        if (use_bland) {
            for (int j = 0; j < t.ncols; ++j) {
                if (!blocked[j] && t.cost[j] < -eps) {
                    enter = j;
                    break;
                }
            }
        } else {
            double best = -eps;
            for (int j = 0; j < t.ncols; ++j) {
                if (!blocked[j] && t.cost[j] < best) {
                    best = t.cost[j];
                    enter = j;
                }
            }
        }
        if (enter < 0)
            return PhaseResult::Optimal;

        // Ratio test; Bland tie-break on the basis variable index.
        int leave = -1;
        double best_ratio = 0.0;
        for (int i = 0; i < t.m; ++i) {
            double aij = t.a[i][enter];
            if (aij <= eps)
                continue;
            double ratio = t.rhsVal(i) / aij;
            if (leave < 0 || ratio < best_ratio - eps ||
                (ratio < best_ratio + eps && t.basis[i] < t.basis[leave])) {
                leave = i;
                best_ratio = ratio;
            }
        }
        if (leave < 0)
            return PhaseResult::Unbounded;

        t.pivot(leave, enter);
        --pivot_budget;

        double obj = -t.cost[t.ncols];
        if (obj < last_obj - eps) {
            stalled = 0;
            last_obj = obj;
        } else if (++stalled >= bland_threshold) {
            use_bland = true;
        }
    }
    return PhaseResult::IterationLimit;
}

} // anonymous namespace

Solution
Solver::solve(const Problem &problem) const
{
    const double eps = options_.eps;
    const int n = problem.numVariables();

    // Shift every variable to x = lb + x' with x' >= 0, and turn
    // finite upper bounds into explicit constraints.
    std::vector<double> shift(n);
    double obj_const = 0.0;
    for (int j = 0; j < n; ++j) {
        shift[j] = problem.lowerBound(j);
        obj_const += problem.objective(j) * shift[j];
    }

    struct Row
    {
        std::vector<double> coeffs;
        Relation rel;
        double rhs;
    };
    std::vector<Row> rows;
    rows.reserve(problem.numConstraints() + n);
    for (int i = 0; i < problem.numConstraints(); ++i) {
        Row row;
        row.coeffs.assign(n, 0.0);
        double shift_sum = 0.0;
        for (const Term &term : problem.rows_[i]) {
            row.coeffs[term.var] += term.coeff;
            shift_sum += term.coeff * shift[term.var];
        }
        row.rel = problem.rels_[i];
        row.rhs = problem.rhs_[i] - shift_sum;
        rows.push_back(std::move(row));
    }
    for (int j = 0; j < n; ++j) {
        double ub = problem.upperBound(j);
        if (std::isinf(ub))
            continue;
        Row row;
        row.coeffs.assign(n, 0.0);
        row.coeffs[j] = 1.0;
        row.rel = Relation::LessEqual;
        row.rhs = ub - shift[j];
        rows.push_back(std::move(row));
    }

    // Normalize to non-negative right-hand sides.
    for (Row &row : rows) {
        if (row.rhs < 0.0) {
            for (double &c : row.coeffs)
                c = -c;
            row.rhs = -row.rhs;
            if (row.rel == Relation::LessEqual)
                row.rel = Relation::GreaterEqual;
            else if (row.rel == Relation::GreaterEqual)
                row.rel = Relation::LessEqual;
        }
    }

    const int m = static_cast<int>(rows.size());

    // Count auxiliary columns.
    int num_slack = 0;
    int num_artificial = 0;
    for (const Row &row : rows) {
        if (row.rel != Relation::Equal)
            ++num_slack;
        if (row.rel != Relation::LessEqual)
            ++num_artificial;
    }

    Tableau t;
    t.m = m;
    t.ncols = n + num_slack + num_artificial;
    t.a.assign(m, std::vector<double>(t.ncols + 1, 0.0));
    t.cost.assign(t.ncols + 1, 0.0);
    t.basis.assign(m, -1);
    t.artificial.assign(t.ncols, false);

    int slack_col = n;
    int art_col = n + num_slack;
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j)
            t.a[i][j] = rows[i].coeffs[j];
        t.rhs(i) = rows[i].rhs;
        switch (rows[i].rel) {
          case Relation::LessEqual:
            t.a[i][slack_col] = 1.0;
            t.basis[i] = slack_col++;
            break;
          case Relation::GreaterEqual:
            t.a[i][slack_col] = -1.0;
            ++slack_col;
            t.a[i][art_col] = 1.0;
            t.artificial[art_col] = true;
            t.basis[i] = art_col++;
            break;
          case Relation::Equal:
            t.a[i][art_col] = 1.0;
            t.artificial[art_col] = true;
            t.basis[i] = art_col++;
            break;
        }
    }

    Solution sol;
    int pivot_budget = options_.maxPivots;
    std::vector<bool> never_blocked(t.ncols, false);

    // Phase 1: minimize the sum of artificial variables.
    if (num_artificial > 0) {
        std::vector<double> phase1_cost(t.ncols, 0.0);
        for (int j = 0; j < t.ncols; ++j)
            if (t.artificial[j])
                phase1_cost[j] = 1.0;
        t.setObjective(phase1_cost);
        PhaseResult pr = runSimplex(t, never_blocked, eps, pivot_budget,
                                    options_.blandThreshold);
        if (pr == PhaseResult::IterationLimit) {
            sol.status = Status::IterationLimit;
            return sol;
        }
        double phase1_obj = -t.cost[t.ncols];
        if (phase1_obj > 1e-7) {
            sol.status = Status::Infeasible;
            return sol;
        }
        // Drive any artificial that is still basic (at value zero)
        // out of the basis if a non-artificial pivot exists.
        for (int i = 0; i < m; ++i) {
            if (!t.artificial[t.basis[i]])
                continue;
            int pivot_col = -1;
            for (int j = 0; j < t.ncols; ++j) {
                if (!t.artificial[j] && std::fabs(t.a[i][j]) > eps) {
                    pivot_col = j;
                    break;
                }
            }
            if (pivot_col >= 0)
                t.pivot(i, pivot_col);
            // Otherwise the row is redundant; the artificial stays
            // basic at zero and is blocked from moving in phase 2.
        }
    }

    // Phase 2: original objective; artificials may never re-enter.
    std::vector<double> phase2_cost(t.ncols, 0.0);
    for (int j = 0; j < n; ++j)
        phase2_cost[j] = problem.objective(j);
    t.setObjective(phase2_cost);
    std::vector<bool> blocked = t.artificial;
    PhaseResult pr = runSimplex(t, blocked, eps, pivot_budget,
                                options_.blandThreshold);
    if (pr == PhaseResult::IterationLimit) {
        sol.status = Status::IterationLimit;
        return sol;
    }
    if (pr == PhaseResult::Unbounded) {
        sol.status = Status::Unbounded;
        return sol;
    }

    sol.status = Status::Optimal;
    sol.x.assign(n, 0.0);
    for (int i = 0; i < m; ++i)
        if (t.basis[i] < n)
            sol.x[t.basis[i]] = t.rhsVal(i);
    for (int j = 0; j < n; ++j)
        sol.x[j] += shift[j];
    sol.objective = -t.cost[t.ncols] + obj_const;
    return sol;
}

} // namespace lp
} // namespace hilp
