/**
 * @file
 * Work-stealing parallel branch-and-bound over the serial-SGS tree.
 *
 * The serial searcher in search.cc walks one depth-first tree. This
 * layer decomposes the same tree into *subproblems* — decision
 * prefixes from the root — and lets a crew of workers, each with its
 * own propagation engine and trail, search the subtrees:
 *
 *  - Frontier splitting: nodes above SearchLimits::splitDepth are
 *    expanded into child subproblems pushed onto the owning worker's
 *    deque instead of being recursed into; deeper nodes also spill
 *    their children whenever other workers are starving, so one hard
 *    subtree cannot serialize the crew.
 *  - Chase–Lev-style deques: the owner pushes and pops at the bottom
 *    (depth-first order, so a deque holds roughly the siblings along
 *    the current path), thieves steal half from the top — the
 *    shallowest, largest subtrees.
 *  - Shared incumbent: the best makespan is a CAS-updated atomic every
 *    worker prunes against; the schedule itself is published under a
 *    mutex by whichever worker wins the CAS.
 *  - Bound aggregation: every queued or in-flight subproblem keeps its
 *    certified lower bound registered in a global aggregator, so the
 *    targetGap stop can use min(incumbent, min over remaining
 *    subtrees) as a sound global lower bound instead of only the
 *    weaker external bound.
 *
 * Deterministic mode trades pruning power for reproducibility: the
 * frontier is generated serially at a fixed depth, assigned
 * round-robin, workers keep private incumbents (no stealing, no
 * sharing), and the results merge by (makespan, subproblem index).
 * A deterministic run that completes within its node budget is
 * exactly reproducible for a given thread count.
 *
 * Both modes return the same optimal makespans and the same
 * exhausted/foundSolution statuses as the serial search; only node
 * counts differ (pruning happens in a different order). See
 * tests/cp/test_parallel_search.cc for the differential guarantee.
 */

#ifndef HILP_CP_PARALLEL_SEARCH_HH
#define HILP_CP_PARALLEL_SEARCH_HH

#include "search.hh"

namespace hilp {
namespace cp {

/**
 * Run the parallel branch-and-bound (limits.threads >= 2). Called by
 * branchAndBound(), which keeps the bit-identical serial path for
 * limits.threads <= 1; call through branchAndBound() unless you
 * specifically want to force the parallel driver.
 */
SearchResult parallelBranchAndBound(const Model &model,
                                    const ScheduleVec *warm_start,
                                    const SearchLimits &limits);

} // namespace cp
} // namespace hilp

#endif // HILP_CP_PARALLEL_SEARCH_HH
