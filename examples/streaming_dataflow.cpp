/**
 * @file
 * Example: modeling a custom application with a dependency graph
 * (the Section VII extensibility story).
 *
 * Builds the streaming-dataflow application of Figure 9 by hand -
 * three pinned data sources forking into a fusion phase, fanning out
 * to three compute phases, and joining in post-processing - and uses
 * HILP to compare three candidate SoCs for it (Figure 10).
 *
 * Run: ./build/examples/streaming_dataflow
 */

#include <cstdio>

#include "hilp/engine.hh"
#include "hilp/problem.hh"
#include "support/str.hh"

using namespace hilp;

namespace {

/**
 * Build one SDA instance from scratch to show the raw ProblemSpec
 * API (the showcase library provides makeSdaProblem() for the same
 * thing). cpu_speed and gpu_speed scale the respective unit's
 * throughput.
 */
ProblemSpec
buildSda(int samples, double cpu_speed, double gpu_speed)
{
    ProblemSpec spec;
    spec.name = format("SDA x%d (cpu %.1fx, gpu %.1fx)", samples,
                       cpu_speed, gpu_speed);
    spec.cpuCores = 1.0;
    spec.deviceNames = {"GPU", "DSA1", "DSA2", "DSA3"};

    auto cpu = [&](double seconds) {
        UnitOption option;
        option.label = "CPU";
        option.device = kCpuPool;
        option.timeS = seconds / cpu_speed;
        option.powerW = 1.0;
        option.cpuCores = 1.0;
        return option;
    };
    auto gpu = [&](double seconds) {
        UnitOption option;
        option.label = "GPU";
        option.device = 0;
        option.timeS = seconds / gpu_speed;
        option.powerW = 3.0;
        return option;
    };
    auto dsa = [&](int which, double seconds) {
        UnitOption option;
        option.label = format("DSA%d", which);
        option.device = which;
        option.timeS = seconds;
        option.powerW = 2.0;
        return option;
    };

    for (int s = 0; s < samples; ++s) {
        AppSpec app;
        app.name = format("sample%d", s);
        // Phases 0-2: the data sources, pinned to their DSAs.
        for (int d = 1; d <= 3; ++d)
            app.phases.push_back(
                {format("s%d.DS%d", s, d), {dsa(d, 4.0)}});
        // Phase 3: data fusion on the CPU.
        app.phases.push_back({format("s%d.DF", s), {cpu(2.0)}});
        // Phases 4-6: the compute phases, CPU or GPU.
        app.phases.push_back(
            {format("s%d.C1", s), {cpu(4.0), gpu(2.0)}});
        app.phases.push_back(
            {format("s%d.C2", s), {cpu(6.0), gpu(3.0)}});
        app.phases.push_back(
            {format("s%d.C3", s), {cpu(4.0), gpu(2.0)}});
        // Phase 7: post-processing, CPU or GPU.
        app.phases.push_back(
            {format("s%d.PP", s), {cpu(2.0), gpu(1.0)}});
        // The Figure 9 DAG (Eq. 9 in the paper).
        app.deps = {{0, 3}, {1, 3}, {2, 3},
                    {3, 4}, {3, 5}, {3, 6},
                    {4, 7}, {5, 7}, {6, 7}};
        spec.apps.push_back(std::move(app));
    }
    return spec;
}

} // anonymous namespace

int
main()
{
    EngineOptions options;
    options.initialStepS = 0.5;
    options.horizonSteps = 128;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0;
    options.solver.maxSeconds = 10.0;

    struct Candidate
    {
        const char *label;
        double cpuSpeed;
        double gpuSpeed;
    };
    const Candidate candidates[] = {
        {"baseline (c1,g8,d3^1)", 1.0, 1.0},
        {"2x faster CPU", 2.0, 1.0},
        {"2x GPU SMs", 1.0, 2.0},
    };

    for (const Candidate &candidate : candidates) {
        ProblemSpec spec =
            buildSda(2, candidate.cpuSpeed, candidate.gpuSpeed);
        EvalResult result = evaluate(spec, options);
        std::printf("== %s ==\n", candidate.label);
        if (!result.ok) {
            std::printf("no schedule found\n\n");
            continue;
        }
        std::printf("makespan %.1f s (%s), avg WLP %.2f\n",
                    result.makespanS, cp::toString(result.status),
                    result.averageWlp);
        std::printf("%s\n", result.schedule.gantt().c_str());
    }
    std::printf("Both upgrades pipeline sample i+1 under sample i,\n"
                "meeting the design objective of Section VII.\n");
    return 0;
}
