#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "logging.hh"

namespace hilp {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return sum(xs) / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
geomean(const std::vector<double> &xs)
{
    hilp_assert(!xs.empty());
    double acc = 0.0;
    for (double x : xs) {
        hilp_assert(x > 0.0);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double> &xs)
{
    hilp_assert(!xs.empty());
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    hilp_assert(!xs.empty());
    return *std::max_element(xs.begin(), xs.end());
}

double
sum(const std::vector<double> &xs)
{
    return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    hilp_assert(xs.size() == ys.size());
    if (xs.size() < 2)
        return 0.0;
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
        syy += (ys[i] - my) * (ys[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

LinearFit
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    hilp_assert(xs.size() == ys.size());
    hilp_assert(xs.size() >= 2);
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0;
    double sxx = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    LinearFit fit;
    if (sxx == 0.0) {
        // Degenerate vertical data; report a flat line through the mean.
        fit.slope = 0.0;
        fit.intercept = my;
        fit.r2 = 0.0;
        return fit;
    }
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        double pred = fit.slope * xs[i] + fit.intercept;
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - my) * (ys[i] - my);
    }
    fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
    if (fit.r2 < 0.0)
        fit.r2 = 0.0;
    return fit;
}

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    // Welford's online update.
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::stddev() const
{
    if (count_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_));
}

} // namespace hilp
