#include "common.hh"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dse/checkpoint.hh"
#include "dse/distribute.hh"
#include "dse/pareto.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/eval_service.hh"
#include "service/protocol.hh"
#include "service/telemetry_http.hh"
#include "service/worker.hh"
#include "support/net.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "support/trace.hh"
#include "support/version.hh"

namespace hilp {
namespace bench {

namespace {

std::string g_trace_path;
std::string g_metrics_path;
int g_solver_threads = 1;
bool g_deterministic_search = false;
std::string g_checkpoint_path;
bool g_resume = false;
double g_point_timeout_s = 0.0;
bool g_fail_fast = false;
bool g_nogoods = false;
bool g_lns = false;
bool g_packed_layout = true;
std::string g_connect;
bool g_no_reuse = false;
size_t g_max_configs = 0;
size_t g_memo_bytes = 0;
std::string g_metrics_addr;
std::string g_coordinator;
bool g_worker = false;
size_t g_spawn_workers = 0;
double g_lease_timeout_s = 30.0;
bool g_fsync_checkpoint = false;

void
dumpTelemetry()
{
    if (!g_trace_path.empty()) {
        std::string error = trace::writeFile(g_trace_path);
        if (!error.empty())
            warn("trace export failed: %s", error.c_str());
        else
            inform("wrote Chrome trace to %s (open in "
                   "https://ui.perfetto.dev)", g_trace_path.c_str());
    }
    if (!g_metrics_path.empty()) {
        std::string text = metrics::snapshotJson().dump(2);
        text += '\n';
        std::FILE *file = std::fopen(g_metrics_path.c_str(), "w");
        if (!file) {
            warn("cannot open metrics output '%s'",
                 g_metrics_path.c_str());
            return;
        }
        std::fwrite(text.data(), 1, text.size(), file);
        std::fclose(file);
        inform("wrote metrics snapshot to %s", g_metrics_path.c_str());
    }
}

} // anonymous namespace

void
initHarness(int *argc, char **argv)
{
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace-out=", 12) == 0)
            g_trace_path = arg + 12;
        else if (std::strncmp(arg, "--metrics-out=", 14) == 0)
            g_metrics_path = arg + 14;
        else if (std::strncmp(arg, "--solver-threads=", 17) == 0)
            g_solver_threads = std::atoi(arg + 17);
        else if (std::strcmp(arg, "--deterministic-search") == 0)
            g_deterministic_search = true;
        else if (std::strncmp(arg, "--checkpoint=", 13) == 0)
            g_checkpoint_path = arg + 13;
        else if (std::strcmp(arg, "--resume") == 0)
            g_resume = true;
        else if (std::strncmp(arg, "--point-timeout=", 16) == 0)
            g_point_timeout_s = std::atof(arg + 16);
        else if (std::strcmp(arg, "--fail-fast") == 0)
            g_fail_fast = true;
        else if (std::strcmp(arg, "--nogoods") == 0)
            g_nogoods = true;
        else if (std::strcmp(arg, "--lns") == 0)
            g_lns = true;
        else if (std::strncmp(arg, "--layout=", 9) == 0) {
            const char *layout = arg + 9;
            if (std::strcmp(layout, "legacy") == 0)
                g_packed_layout = false;
            else if (std::strcmp(layout, "packed") == 0)
                g_packed_layout = true;
            else
                fatal("--layout must be 'packed' or 'legacy', "
                      "got '%s'", layout);
        }
        else if (std::strncmp(arg, "--connect=", 10) == 0)
            g_connect = arg + 10;
        else if (std::strncmp(arg, "--coordinator=", 14) == 0)
            g_coordinator = arg + 14;
        else if (std::strcmp(arg, "--worker") == 0)
            g_worker = true;
        else if (std::strncmp(arg, "--spawn-workers=", 16) == 0)
            g_spawn_workers =
                static_cast<size_t>(std::atoll(arg + 16));
        else if (std::strncmp(arg, "--lease-timeout=", 16) == 0)
            g_lease_timeout_s = std::atof(arg + 16);
        else if (std::strcmp(arg, "--fsync-checkpoint") == 0)
            g_fsync_checkpoint = true;
        else if (std::strncmp(arg, "--metrics-addr=", 15) == 0)
            g_metrics_addr = arg + 15;
        else if (std::strcmp(arg, "--no-reuse") == 0)
            g_no_reuse = true;
        else if (std::strncmp(arg, "--max-configs=", 14) == 0)
            g_max_configs =
                static_cast<size_t>(std::atoll(arg + 14));
        else if (std::strncmp(arg, "--memo-bytes=", 13) == 0) {
            char *end = nullptr;
            g_memo_bytes = std::strtoull(arg + 13, &end, 10);
            if (*end == 'K' || *end == 'k')
                g_memo_bytes <<= 10;
            else if (*end == 'M' || *end == 'm')
                g_memo_bytes <<= 20;
            else if (*end == 'G' || *end == 'g')
                g_memo_bytes <<= 30;
        } else if (std::strcmp(arg, "--version") == 0) {
            std::printf("%s\n", versionString().c_str());
            std::exit(0);
        } else
            argv[kept++] = argv[i];
    }
    *argc = kept;
    if (!g_trace_path.empty()) {
        // Stamp the pid into the filename so concurrent harness
        // processes pointed at the same --trace-out (scripted
        // sweeps, check.sh stages) never interleave writes into one
        // file: out/trace.json becomes out/trace.<pid>.json.
        g_trace_path = trace::taggedPath(
            g_trace_path, std::to_string(::getpid()));
        trace::setEnabled(true);
    }
    if (!g_metrics_addr.empty()) {
        // The same exposition endpoint hilpd serves, in-process: a
        // long sweep can be watched live with curl while it runs.
        static service::TelemetryServer telemetry;
        std::string error;
        if (!telemetry.start(g_metrics_addr, nullptr, &error))
            fatal("--metrics-addr %s: %s", g_metrics_addr.c_str(),
                  error.c_str());
        inform("telemetry on %s (GET /metrics, /metrics.json, "
               "/healthz)", g_metrics_addr.c_str());
    }
    // Dump at exit so the trace also covers the google-benchmark
    // loops that run after each binary's figure emission.
    if (!g_trace_path.empty() || !g_metrics_path.empty())
        std::atexit(dumpTelemetry);

    if (g_worker) {
        // Worker mode replaces the whole harness: lease, evaluate,
        // stream, exit. None of the figure code runs.
        if (g_coordinator.empty())
            fatal("--worker needs --coordinator=ADDR");
        service::WorkerOptions worker_options;
        worker_options.id = format("w%d", static_cast<int>(getpid()));
        std::string error;
        const bool ok =
            service::runWorker(g_coordinator, worker_options, &error);
        if (!ok)
            warn("worker %s: %s", worker_options.id.c_str(),
                 error.c_str());
        std::exit(ok ? 0 : 1);
    }
}

int
solverThreads()
{
    return g_solver_threads;
}

bool
deterministicSearch()
{
    return g_deterministic_search;
}

double
pointTimeoutS()
{
    return g_point_timeout_s;
}

bool
failFast()
{
    return g_fail_fast;
}

bool
useNogoods()
{
    return g_nogoods;
}

bool
useLns()
{
    return g_lns;
}

bool
packedLayout()
{
    return g_packed_layout;
}

const std::string &
connectAddress()
{
    return g_connect;
}

bool
noReuse()
{
    return g_no_reuse;
}

size_t
maxConfigs()
{
    return g_max_configs;
}

dse::SweepCheckpoint *
sweepCheckpoint()
{
    if (g_checkpoint_path.empty())
        return nullptr;
    // One checkpoint per process, shared by every sweep the binary
    // runs - the key's model kind keeps their records apart.
    static dse::SweepCheckpoint checkpoint;
    static bool opened = false;
    if (!opened) {
        std::string error;
        if (!checkpoint.open(g_checkpoint_path, g_resume, &error))
            fatal("%s", error.c_str());
        if (g_resume && checkpoint.loaded() > 0)
            inform("checkpoint %s: resuming past %zu completed "
                   "point(s)", g_checkpoint_path.c_str(),
                   checkpoint.loaded());
        if (g_resume && checkpoint.dropped() > 0)
            inform("checkpoint %s: skipped %zu malformed record(s); "
                   "their points will be re-evaluated",
                   g_checkpoint_path.c_str(), checkpoint.dropped());
        checkpoint.setFsync(g_fsync_checkpoint);
        opened = true;
    }
    return &checkpoint;
}

void
banner(const std::string &title, const std::string &description)
{
    std::string bar(70, '=');
    std::printf("%s\n%s\n%s\n%s\n\n", bar.c_str(), title.c_str(),
                description.c_str(), bar.c_str());
}

void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

EngineOptions
validationEngine(double solver_seconds)
{
    EngineOptions options = EngineOptions::validationMode();
    options.solver.maxSeconds = solver_seconds;
    options.solver.maxNodes = 400000;
    options.solver.threads = g_solver_threads;
    options.solver.deterministicSearch = g_deterministic_search;
    options.solver.useNogoods = g_nogoods;
    options.solver.lns = g_lns;
    options.solver.packedLayout = g_packed_layout;
    // Rerun near-optimality misses with 4x the budget, as the paper
    // does for its validation experiments.
    options.escalations = 1;
    options.pointTimeoutS = g_point_timeout_s;
    return options;
}

dse::DseOptions
explorationOptions(double solver_seconds)
{
    dse::DseOptions options;
    options.engine = EngineOptions::explorationMode();
    options.engine.solver.maxSeconds = solver_seconds;
    options.engine.solver.maxNodes = 120000;
    options.engine.solver.threads = g_solver_threads;
    options.engine.solver.deterministicSearch = g_deterministic_search;
    options.engine.solver.useNogoods = g_nogoods;
    options.engine.solver.lns = g_lns;
    options.engine.solver.packedLayout = g_packed_layout;
    options.engine.pointTimeoutS = g_point_timeout_s;
    options.failFast = g_fail_fast;
    return options;
}

std::vector<arch::SocConfig>
paperDesignSpace(double advantage)
{
    arch::DesignSpace space;
    space.dsaAdvantage = advantage;
    return enumerateDesignSpace(space, workload::dsaPriorityOrder());
}

namespace {

/**
 * The process-wide coordinator host behind --coordinator=ADDR: a
 * daemon thread serving the lease protocol at the address, reused by
 * every runSweep call (fig7 runs three sweeps back to back against
 * the same worker fleet). Each sweep registers a fresh Coordinator;
 * between sweeps workers poll "wait", and the destructor retires the
 * run so they exit, then reaps spawned worker processes.
 */
class CoordinatorHost
{
  public:
    static CoordinatorHost &
    instance()
    {
        static CoordinatorHost host;
        return host;
    }

    std::vector<dse::DsePoint>
    sweep(const std::vector<arch::SocConfig> &configs,
          const service::protocol::Request &params)
    {
        start();
        dse::CoordinatorOptions coordinator_options;
        coordinator_options.leaseTimeoutS = g_lease_timeout_s;
        coordinator_options.ledger = sweepCheckpoint();
        dse::Coordinator coordinator(configs, params.kind,
                                     coordinator_options);
        daemon_->setCoordinator(
            &coordinator, service::protocol::sweepParamsJson(params));
        const dse::CoordinatorProgress initial =
            coordinator.progress();
        inform("coordinator sweep (%s): %zu configs in %zu units, "
               "lease timeout %.1fs",
               dse::toString(params.kind), configs.size(),
               initial.units, g_lease_timeout_s);
        spawnWorkers();

        // Wait for the merge; reap expired leases ourselves so a
        // dead worker's unit is re-queued even while every live
        // worker is deep in a long solve (none would be polling).
        auto last_advance = std::chrono::steady_clock::now();
        size_t last_done = 0;
        while (!coordinator.finished()) {
            coordinator.reapExpired();
            const dse::CoordinatorProgress progress =
                coordinator.progress();
            const auto now = std::chrono::steady_clock::now();
            if (progress.unitsDone != last_done) {
                last_done = progress.unitsDone;
                last_advance = now;
            } else if (now - last_advance >
                       std::chrono::seconds(600)) {
                fatal("coordinator: no unit completed in 600s "
                      "(%zu/%zu done, %zu leases active) - did "
                      "every worker die?",
                      progress.unitsDone, progress.units,
                      progress.leasesActive);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        daemon_->clearCoordinator();
        const dse::CoordinatorProgress final_progress =
            coordinator.progress();
        inform("coordinator sweep (%s) merged: %zu points, "
               "%zu duplicates dropped, %zu lease(s) re-issued",
               dse::toString(params.kind),
               final_progress.pointsMerged,
               final_progress.duplicates, final_progress.reissued);
        return coordinator.takePoints();
    }

  private:
    CoordinatorHost() = default;

    ~CoordinatorHost()
    {
        if (!daemon_)
            return;
        // Tell the fleet the run is over; workers see "complete" on
        // their next poll and exit, so the waitpids below are short.
        daemon_->retireCoordinator();
        for (pid_t pid : workers_) {
            int status = 0;
            waitpid(pid, &status, 0);
        }
        daemon_->stop();
        if (serveThread_.joinable())
            serveThread_.join();
    }

    void
    start()
    {
        if (daemon_)
            return;
        listener_.reset(new net::Listener());
        std::string error;
        if (!listener_->open(g_coordinator, &error))
            fatal("--coordinator %s: %s", g_coordinator.c_str(),
                  error.c_str());
        service::ServiceOptions service_options;
        service_options.executors = 1; // Coordinator ops only.
        service_.reset(new service::EvalService(service_options));
        daemon_.reset(new service::Daemon(*service_));
        serveThread_ = std::thread(
            [this] { daemon_->run(*listener_); });
        inform("coordinator listening on %s", g_coordinator.c_str());
    }

    void
    spawnWorkers()
    {
        if (spawned_ || g_spawn_workers == 0)
            return;
        spawned_ = true;
        const std::string flag = "--coordinator=" + g_coordinator;
        for (size_t i = 0; i < g_spawn_workers; ++i) {
            pid_t pid = fork();
            if (pid < 0)
                fatal("--spawn-workers: fork failed");
            if (pid == 0) {
                // The parent is multithreaded by now (daemon
                // thread), so only exec is safe in the child.
                const char *args[] = {"bench-worker", "--worker",
                                      flag.c_str(), nullptr};
                execv("/proc/self/exe",
                      const_cast<char *const *>(args));
                _exit(127);
            }
            // Announced on stderr so scripts (check.sh's chaos
            // stage) can target a worker to kill.
            std::fprintf(stderr, "spawned worker %d\n",
                         static_cast<int>(pid));
            workers_.push_back(pid);
        }
    }

    std::unique_ptr<net::Listener> listener_;
    std::unique_ptr<service::EvalService> service_;
    std::unique_ptr<service::Daemon> daemon_;
    std::thread serveThread_;
    std::vector<pid_t> workers_;
    bool spawned_ = false;
};

} // anonymous namespace

std::vector<dse::DsePoint>
runSweep(const std::vector<arch::SocConfig> &configs,
         const workload::Workload &wl,
         const arch::Constraints &constraints, dse::ModelKind kind,
         dse::DseOptions options, workload::Variant variant,
         int copies, double advantage)
{
    options.reuse = !g_no_reuse;
    options.engine.memoMaxBytes = g_memo_bytes;

    if (!g_coordinator.empty()) {
        // Distributed: shard the sweep over the worker fleet. The
        // params object is everything a worker needs besides its
        // unit's config labels.
        service::protocol::Request params;
        params.op = service::protocol::Op::Sweep;
        params.variant = variant;
        params.copies = copies;
        params.dsaAdvantage = advantage;
        params.constraints = constraints;
        params.kind = kind;
        params.options = options;
        return CoordinatorHost::instance().sweep(configs, params);
    }

    if (g_connect.empty()) {
        // In-process: route through the process-wide EvalService so
        // consecutive sweeps of one binary share its memo and
        // warm-start store, exactly like a warm daemon would.
        static service::EvalService evalService(
            [] {
                service::ServiceOptions service_options;
                if (g_memo_bytes > 0)
                    service_options.memoMaxBytes = g_memo_bytes;
                return service_options;
            }());
        service::SweepRequest request;
        request.configs = configs;
        request.workload = wl;
        request.constraints = constraints;
        request.kind = kind;
        request.options = options;
        request.options.checkpoint = sweepCheckpoint();
        return evalService.sweep(request);
    }

    // Daemon mode: the sweep runs inside hilpd; results stream back
    // per point in the checkpoint record format. A --checkpoint file
    // captures the raw record stream, so it doubles as a --resume
    // file for a later in-process run.
    static service::ServiceClient client;
    std::string error;
    if (!client.connected() &&
        !client.connect(g_connect, &error))
        fatal("--connect %s: %s", g_connect.c_str(), error.c_str());

    service::protocol::Request request;
    request.op = configs.size() == 1 ? service::protocol::Op::Eval
                                     : service::protocol::Op::Sweep;
    request.variant = variant;
    request.copies = copies;
    request.dsaAdvantage = advantage;
    request.constraints = constraints;
    request.kind = kind;
    request.options = options;

    std::FILE *capture = nullptr;
    if (!g_checkpoint_path.empty()) {
        capture = std::fopen(g_checkpoint_path.c_str(), "a");
        if (!capture)
            warn("cannot open checkpoint capture '%s'",
                 g_checkpoint_path.c_str());
    }
    std::vector<dse::DsePoint> points;
    bool ok = client.sweep(
        request, configs, &points, &error,
        [&](const std::string &line) {
            if (!capture)
                return;
            std::fwrite(line.data(), 1, line.size(), capture);
            std::fputc('\n', capture);
            std::fflush(capture);
        });
    if (capture)
        std::fclose(capture);
    if (!ok)
        fatal("daemon sweep failed: %s", error.c_str());
    return points;
}

std::vector<dse::DsePoint>
paretoOf(const std::vector<dse::DsePoint> &points)
{
    std::vector<double> cost;
    std::vector<double> value;
    std::vector<size_t> index;
    for (size_t i = 0; i < points.size(); ++i) {
        if (!points[i].ok)
            continue;
        cost.push_back(points[i].areaMm2);
        value.push_back(points[i].speedup);
        index.push_back(i);
    }
    std::vector<dse::DsePoint> front;
    // Epsilon-dominance: a bigger SoC must buy at least 0.5% more
    // performance to count as Pareto-improving (suppresses float
    // noise between configurations with identical schedules).
    for (size_t f : dse::paretoFront(cost, value, 5e-3))
        front.push_back(points[index[f]]);
    return front;
}

dse::DsePoint
bestOf(const std::vector<dse::DsePoint> &points)
{
    dse::DsePoint best;
    for (const dse::DsePoint &point : points)
        if (point.ok && point.speedup > best.speedup)
            best = point;
    return best;
}

void
printPareto(const std::string &title,
            const std::vector<dse::DsePoint> &points)
{
    section(title);
    Table table({"config", "area (mm2)", "speedup", "avg WLP", "gap",
                 "mix"});
    table.setAlign(0, Table::Align::Left);
    for (const dse::DsePoint &point : points) {
        table.addRow(RowBuilder()
                         .cell(point.config.name())
                         .cell(point.areaMm2, 1)
                         .cell(point.speedup, 2)
                         .cell(point.averageWlp, 2)
                         .cell(point.gap, 3)
                         .cell(std::string(dse::toString(point.mix)))
                         .take());
    }
    table.print();
}

} // namespace bench
} // namespace hilp
