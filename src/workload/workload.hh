/**
 * @file
 * Applications, phases, and workloads (Section II of the paper).
 *
 * A workload is a set of independent applications; each application
 * is a chain (or, for the Section VII extension, a DAG) of dependent
 * phases. Sequential phases (setup/teardown) only run on CPU cores;
 * compute phases can additionally run on the GPU and, when one
 * exists for them, a DSA.
 *
 * Phase performance is described by a profile in the units of the
 * paper's experimental setup: measured single-core CPU time, measured
 * full-GPU (98-SM) time and bandwidth, and the fitted power laws of
 * Table II that scale them to any SM/PE count.
 */

#ifndef HILP_WORKLOAD_WORKLOAD_HH
#define HILP_WORKLOAD_WORKLOAD_HH

#include <string>
#include <utility>
#include <vector>

#include "support/powerlaw.hh"

namespace hilp {
namespace workload {

/** The SM count Table II's C-GPU time column was measured at. */
inline constexpr int kProfileSms = 98;

/** The SM count the Table II power laws are normalized to. */
inline constexpr int kLawBaseSms = 14;

/**
 * The SM count Table II's GPU BW column is referenced to. The paper
 * leaves the column's measurement point ambiguous; physical per-SM
 * bandwidth and the paper's reported behaviours (MultiAmdahl fits
 * every kernel on a 64-SM GPU under 800 GB/s; the Figure 5b memory
 * wall binds a 16-SM GPU at 50 GB/s but not at 100) pin it to the
 * low-SM end; 16 reproduces all of them (see DESIGN.md).
 */
inline constexpr int kBwBaseSms = 16;

/** What a phase fundamentally is, which determines compatibility. */
enum class PhaseKind {
    Sequential, //!< Setup/teardown: CPU-only, single core.
    Compute,    //!< Parallel kernel: CPU (all cores), GPU, maybe DSA.
};

/**
 * Unit-independent performance description of one phase.
 */
struct PhaseProfile
{
    std::string name;                        //!< E.g. "HS.compute".
    PhaseKind kind = PhaseKind::Sequential;

    /** Execution time on a single CPU core, seconds. */
    double cpuTime1 = 0.0;

    /** True when the phase has a GPU implementation. */
    bool gpuCompatible = false;
    /** Time on the full 98-SM GPU at 765 MHz, seconds. */
    double gpuTime98 = 0.0;
    /** Memory bandwidth at the kBwBaseSms reference point, GB/s. */
    double gpuBwBase = 0.0;
    /** Table II execution-time power law (normalized to 14 SMs). */
    PowerLaw timeLaw;
    /** Table II bandwidth power law (normalized to 14 SMs). */
    PowerLaw bwLaw;
    /**
     * Clock-frequency sensitivity in [0, 1]: execution time scales
     * as (f_base / f)^gamma. See DESIGN.md for the derivation.
     */
    double freqGamma = 1.0;

    /**
     * Identifier matched against arch::DsaSpec::target; a DSA with
     * this target can execute the phase. -1 means no DSA can.
     */
    int dsaTarget = -1;
};

/** An application: named, with dependent phases. */
struct Application
{
    std::string name;
    std::vector<PhaseProfile> phases;
    /**
     * Explicit dependency edges (from, to) between phase indices.
     * When empty the phases form a chain in index order, which is
     * the paper's default (Eq. 2); non-empty edges express the
     * general dependency graphs of Section VII (Eq. 9).
     */
    std::vector<std::pair<int, int>> deps;

    /** True when the phases form the default chain. */
    bool isChain() const { return deps.empty(); }
};

/** A workload: the set of independent applications. */
struct Workload
{
    std::string name;
    std::vector<Application> apps;

    /** Total number of phases across all applications. */
    int numPhases() const;
};

/**
 * The reference time every speedup in the paper is computed against:
 * fully sequential execution of the whole workload on a single CPU
 * core (every phase at its single-core CPU time).
 */
double sequentialCpuTimeS(const Workload &workload);

} // namespace workload
} // namespace hilp

#endif // HILP_WORKLOAD_WORKLOAD_HH
