#include "report.hh"

#include "hilp/problem.hh"
#include "support/str.hh"

namespace hilp {
namespace dse {

std::string
pointsToCsv(const std::vector<DsePoint> &points)
{
    std::string out =
        "config,cpus,gpu_sms,dsas,pes,area_mm2,ok,makespan_s,"
        "speedup,avg_wlp,gap,mix\n";
    for (const DsePoint &point : points) {
        int pes = point.config.dsas.empty()
            ? 0 : point.config.dsas.front().pes;
        out += format("%s,%d,%d,%zu,%d,%.3f,%d,%.6f,%.6f,%.6f,%.6f,"
                      "%s\n",
                      point.config.name().c_str(),
                      point.config.cpuCores, point.config.gpuSms,
                      point.config.dsas.size(), pes, point.areaMm2,
                      point.ok ? 1 : 0, point.makespanS,
                      point.speedup, point.averageWlp, point.gap,
                      toString(point.mix));
    }
    return out;
}

Json
pointsToJson(const std::vector<DsePoint> &points)
{
    Json array = Json::array();
    for (const DsePoint &point : points) {
        Json entry = Json::object();
        entry.set("config", Json::string(point.config.name()));
        entry.set("cpus", Json::number(
            static_cast<int64_t>(point.config.cpuCores)));
        entry.set("gpu_sms", Json::number(
            static_cast<int64_t>(point.config.gpuSms)));
        entry.set("dsas", Json::number(
            static_cast<int64_t>(point.config.dsas.size())));
        entry.set("area_mm2", Json::number(point.areaMm2));
        entry.set("ok", Json::boolean(point.ok));
        entry.set("makespan_s", Json::number(point.makespanS));
        entry.set("speedup", Json::number(point.speedup));
        entry.set("avg_wlp", Json::number(point.averageWlp));
        entry.set("gap", Json::number(point.gap));
        entry.set("mix", Json::string(toString(point.mix)));
        array.append(std::move(entry));
    }
    return array;
}

OffloadAnalysis
analyzeOffload(const Schedule &schedule)
{
    OffloadAnalysis analysis;
    for (const ScheduledPhase &phase : schedule.phases) {
        bool is_gpu = phase.unitLabel.rfind("GPU", 0) == 0;
        bool is_dsa = phase.unitLabel.rfind("DSA", 0) == 0;
        bool is_cpu_compute = phase.device == kCpuPool &&
            phase.unitLabel.rfind("CPUx", 0) == 0;
        if (is_gpu)
            analysis.gpuBusyS += phase.durationS;
        else if (is_dsa)
            analysis.dsaBusyS += phase.durationS;
        else if (is_cpu_compute)
            analysis.cpuComputeS += phase.durationS;
    }
    double accelerated = analysis.gpuBusyS + analysis.dsaBusyS;
    if (accelerated > 0.0)
        analysis.dsaShare = analysis.dsaBusyS / accelerated;
    return analysis;
}

} // namespace dse
} // namespace hilp
