/** @file No-good store implementation. See nogood.hh. */

#include "nogood.hh"

namespace hilp {
namespace cp {
namespace {

/**
 * splitmix64 finalizer: a full-avalanche 64-bit mixer, so the codes
 * of nearby placements (task 3 vs 4, start 10 vs 11) share no bit
 * structure and XOR combinations spread uniformly over the table.
 */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // anonymous namespace

uint64_t
nogoodCode(int task, int mode, Time start)
{
    // Pack the triple injectively (task and mode are small, start
    // fits 32 bits), then mix. Equal triples always produce equal
    // codes, which is all XOR-hashing needs.
    uint64_t packed = (static_cast<uint64_t>(static_cast<uint32_t>(task))
                       << 40) ^
                      (static_cast<uint64_t>(static_cast<uint32_t>(mode) &
                                             0xff)
                       << 32) ^
                      static_cast<uint64_t>(static_cast<uint32_t>(start));
    return mix64(packed);
}

NogoodStore::NogoodStore(size_t capacity)
{
    size_t buckets = 256; // floor: 1024 entries at 4 ways.
    while (buckets * kWays < capacity)
        buckets *= 2;
    bucketMask_ = buckets - 1;
    entries_.assign(buckets * kWays, Entry{});
}

Time
NogoodStore::lookup(uint64_t key) const
{
    const size_t base = bucketOf(key);
    std::lock_guard<std::mutex> lock(
        shards_[(base / kWays) & (kShards - 1)]);
    for (size_t w = 0; w < kWays; ++w) {
        const Entry &e = entries_[base + w];
        if (e.placed != 0 && e.key == key)
            return e.bound;
    }
    return kNoBound;
}

void
NogoodStore::record(uint64_t key, Time bound, int placed)
{
    if (placed <= 0)
        return;
    const uint16_t depth =
        placed > 0xffff ? 0xffff : static_cast<uint16_t>(placed);
    const size_t base = bucketOf(key);
    std::lock_guard<std::mutex> lock(
        shards_[(base / kWays) & (kShards - 1)]);
    Entry *victim = nullptr;
    for (size_t w = 0; w < kWays; ++w) {
        Entry &e = entries_[base + w];
        if (e.placed != 0 && e.key == key) {
            // Re-proved the same set: keep the stronger bound.
            if (bound > e.bound)
                e.bound = bound;
            return;
        }
        if (e.placed == 0) {
            if (victim == nullptr || victim->placed != 0)
                victim = &e;
        } else if (victim == nullptr ||
                   (victim->placed != 0 &&
                    (e.placed > victim->placed ||
                     (e.placed == victim->placed &&
                      e.bound < victim->bound)))) {
            // Prefer evicting the deepest (cheapest-to-reprove)
            // entry; among equals, the weakest bound.
            victim = &e;
        }
    }
    victim->key = key;
    victim->bound = bound;
    victim->placed = depth;
}

int64_t
NogoodStore::size() const
{
    int64_t n = 0;
    for (size_t base = 0; base < entries_.size(); base += kWays) {
        std::lock_guard<std::mutex> lock(
            shards_[(base / kWays) & (kShards - 1)]);
        for (size_t w = 0; w < kWays; ++w)
            if (entries_[base + w].placed != 0)
                ++n;
    }
    return n;
}

} // namespace cp
} // namespace hilp
