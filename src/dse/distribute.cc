/** @file Distributed-sweep coordinator. See distribute.hh. */

#include "distribute.hh"

#include <algorithm>
#include <utility>

#include "checkpoint.hh"
#include "pareto.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace hilp {
namespace dse {

Coordinator::Coordinator(std::vector<arch::SocConfig> configs,
                         ModelKind kind, CoordinatorOptions options)
    : configs_(std::move(configs)), kind_(kind),
      options_(std::move(options))
{
    units_ = similarityChains(configs_);
    unitState_.assign(units_.size(), UnitState::Pending);
    unitReissued_.assign(units_.size(), 0);
    for (size_t u = 0; u < units_.size(); ++u)
        pending_.push_back(u);
    merged_.resize(configs_.size());
    have_.assign(configs_.size(), 0);
    for (size_t i = 0; i < configs_.size(); ++i)
        byName_[configs_[i].name()].push_back(i);
}

Coordinator::Clock::time_point
Coordinator::expiryFromNow() const
{
    return Clock::now() +
           std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(options_.leaseTimeoutS));
}

size_t
Coordinator::reapLocked()
{
    const Clock::time_point now = Clock::now();
    size_t reaped = 0;
    for (auto it = leases_.begin(); it != leases_.end();) {
        if (it->second.expiry > now) {
            ++it;
            continue;
        }
        const size_t unit = it->second.unit;
        warn("dse: lease %llu (worker %s, unit %zu) expired; "
             "re-queueing the unit",
             static_cast<unsigned long long>(it->first),
             it->second.worker.c_str(), unit);
        it = leases_.erase(it);
        ++reaped;
        metrics::counter("dse.lease.expired").add(1);
        if (unitState_[unit] == UnitState::Leased) {
            unitState_[unit] = UnitState::Pending;
            unitReissued_[unit] = 1;
            pending_.push_back(unit);
        }
    }
    if (reaped > 0)
        metrics::gauge("dse.lease.active")
            .set(static_cast<double>(leases_.size()));
    return reaped;
}

size_t
Coordinator::reapExpired()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reapLocked();
}

LeaseOutcome
Coordinator::lease(const std::string &worker, LeaseGrant *grant)
{
    std::lock_guard<std::mutex> lock(mutex_);
    reapLocked();
    if (pending_.empty())
        return LeaseOutcome::Wait;

    const size_t unit = pending_.front();
    pending_.pop_front();
    unitState_[unit] = UnitState::Leased;

    const uint64_t id = nextLeaseId_++;
    leases_[id] = Lease{unit, worker, expiryFromNow()};

    grant->leaseId = id;
    grant->unit = unit;
    grant->expiresS = options_.leaseTimeoutS;
    grant->configNames.clear();
    grant->configNames.reserve(units_[unit].size());
    for (size_t idx : units_[unit])
        grant->configNames.push_back(configs_[idx].name());

    metrics::counter("dse.lease.issued").add(1);
    metrics::gauge("dse.lease.active")
        .set(static_cast<double>(leases_.size()));
    if (unitReissued_[unit]) {
        unitReissued_[unit] = 0;
        ++reissued_;
        metrics::counter("dse.lease.reissued").add(1);
    }
    return LeaseOutcome::Granted;
}

bool
Coordinator::heartbeat(const std::string &worker, uint64_t lease_id)
{
    (void)worker;
    std::lock_guard<std::mutex> lock(mutex_);
    metrics::counter("dse.worker.heartbeats").add(1);
    auto it = leases_.find(lease_id);
    if (it == leases_.end())
        return false;
    it->second.expiry = expiryFromNow();
    return true;
}

bool
Coordinator::submitRecord(const std::string &worker, uint64_t lease_id,
                          const std::string &record_line,
                          std::string *error, bool *duplicate)
{
    (void)worker;
    if (duplicate)
        *duplicate = false;
    uint64_t key = 0;
    DsePoint point;
    Schedule schedule;
    bool has_schedule = false;
    std::string name;
    if (!parsePointRecord(record_line, &key, &point, &schedule,
                          &has_schedule, &name)) {
        metrics::counter("dse.worker.rejected").add(1);
        if (error)
            *error = "malformed record line";
        return false;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    metrics::counter("dse.worker.submits").add(1);
    auto lease = leases_.find(lease_id);
    if (lease != leases_.end())
        lease->second.expiry = expiryFromNow();

    // Idempotent merge: the first record for a key wins; duplicates
    // (a zombie worker redoing a re-issued unit, a resubmit after a
    // lost ack) are dropped. Deterministic evaluation means the
    // colliding records would have agreed anyway.
    if (!seen_.insert(key).second) {
        ++duplicates_;
        metrics::counter("dse.worker.duplicates").add(1);
        if (duplicate)
            *duplicate = true;
        return true;
    }

    auto slot = byName_.find(name);
    if (slot == byName_.end() || slot->second.empty()) {
        // A record for a config this sweep never asked for: count it
        // and move on; it cannot be merged.
        metrics::counter("dse.worker.rejected").add(1);
        warn("dse: submitted record for unknown config '%s'",
             name.c_str());
        return true;
    }
    const size_t index = slot->second.front();
    slot->second.pop_front();

    // Structural fields derive from the local config (the record
    // only carries the label), exactly like a checkpoint resume.
    point.config = configs_[index];
    point.areaMm2 = configs_[index].areaMm2();
    point.mix = classifyAccelMix(configs_[index]);
    merged_[index] = std::move(point);
    have_[index] = 1;
    ++pointsMerged_;

    if (options_.ledger && !merged_[index].errored)
        options_.ledger->record(key, kind_, merged_[index],
                                has_schedule ? &schedule : nullptr);
    return true;
}

bool
Coordinator::completeLease(const std::string &worker, uint64_t lease_id)
{
    (void)worker;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = leases_.find(lease_id);
    if (it == leases_.end())
        return false;
    const size_t unit = it->second.unit;
    leases_.erase(it);
    if (unitState_[unit] != UnitState::Done) {
        unitState_[unit] = UnitState::Done;
        ++unitsDone_;
        metrics::counter("dse.lease.completed").add(1);
    }
    metrics::gauge("dse.lease.active")
        .set(static_cast<double>(leases_.size()));
    return true;
}

bool
Coordinator::finished() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return unitsDone_ == units_.size();
}

CoordinatorProgress
Coordinator::progress() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CoordinatorProgress progress;
    progress.units = units_.size();
    progress.unitsDone = unitsDone_;
    progress.leasesActive = leases_.size();
    progress.pointsMerged = pointsMerged_;
    progress.duplicates = duplicates_;
    progress.reissued = reissued_;
    progress.finished = unitsDone_ == units_.size();
    return progress;
}

std::vector<DsePoint>
Coordinator::takePoints()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<DsePoint> points = merged_;
    for (size_t i = 0; i < configs_.size(); ++i) {
        if (have_[i])
            continue;
        // Never merged (only possible before finished()): keep the
        // default not-ok point but restore its structural identity.
        points[i].config = configs_[i];
        points[i].areaMm2 = configs_[i].areaMm2();
        points[i].mix = classifyAccelMix(configs_[i]);
        points[i].note = "never merged (distributed sweep incomplete)";
    }
    return points;
}

} // namespace dse
} // namespace hilp
