/**
 * @file
 * A small deterministic streaming hasher (64-bit FNV-1a) used to
 * fingerprint lowered scheduling problems for the DSE solve cache.
 * Not cryptographic; stability across platforms matters more than
 * collision resistance at the cache's scale (hundreds of entries).
 */

#ifndef HILP_SUPPORT_HASH_HH
#define HILP_SUPPORT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace hilp {

/**
 * Streaming 64-bit FNV-1a. Feed fields in a fixed order; variable-
 * length data (strings, vectors) must be prefixed with their length
 * by the caller-facing helpers so concatenations cannot collide.
 */
class Hasher
{
  public:
    /** Mix raw bytes. */
    void bytes(const void *data, size_t size);

    /** Mix a 64-bit value. */
    void u64(uint64_t value);

    /** Mix a signed integer. */
    void i64(int64_t value) { u64(static_cast<uint64_t>(value)); }

    /**
     * Mix a double by bit pattern, canonicalizing -0.0 to 0.0 so
     * numerically equal specs fingerprint equally. (NaNs keep their
     * payload; specs never contain NaNs.)
     */
    void f64(double value);

    /** Mix a bool. */
    void boolean(bool value) { u64(value ? 1 : 0); }

    /** Mix a string (length-prefixed). */
    void str(const std::string &value);

    /** The current digest. */
    uint64_t digest() const { return state_; }

  private:
    /** FNV-1a offset basis. */
    uint64_t state_ = 1469598103934665603ull;
};

} // namespace hilp

#endif // HILP_SUPPORT_HASH_HH
