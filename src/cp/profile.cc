#include "profile.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/logging.hh"

namespace hilp {
namespace cp {

namespace {

/**
 * Last index i in [0, len) with arr[i] <= key. Requires
 * arr[0] <= key (segment arrays always start at time 0). Galloping:
 * double the stride from the front, then binary-search the bracket —
 * branch-light and touching only the flat key array.
 */
int32_t
gallopLast(const Time *arr, int32_t len, Time key)
{
    // The serial-SGS search queries the schedule frontier far more
    // often than the interior, so a key at or past the last
    // breakpoint - the common case - resolves in one comparison.
    if (arr[len - 1] <= key)
        return len - 1;
    int32_t lo = 0;
    int32_t span = 1;
    while (lo + span < len && arr[lo + span] <= key) {
        lo += span;
        span <<= 1;
    }
    int32_t hi = std::min(len, lo + span);
    while (lo + 1 < hi) {
        int32_t mid = (lo + hi) >> 1;
        if (arr[mid] <= key)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

/** First index i in [0, len) with arr[i] > key (len when none). */
int32_t
gallopUpper(const Time *arr, int32_t len, Time key)
{
    if (len == 0 || arr[0] > key)
        return 0;
    return gallopLast(arr, len, key) + 1;
}

} // anonymous namespace

Units
toUnits(double value)
{
    return static_cast<Units>(
        std::llround(value * static_cast<double>(kUnitScale)));
}

double
fromUnits(Units units)
{
    return static_cast<double>(units) /
           static_cast<double>(kUnitScale);
}

Profile::Profile(const Model &model, bool packed)
    : model_(model),
      horizon_(model.horizon()),
      packed_(packed)
{
    hilp_assert(horizon_ > 0);
    const int nr = model.numResources();
    capUnits_.reserve(static_cast<size_t>(nr));
    for (int r = 0; r < nr; ++r)
        capUnits_.push_back(toUnits(model.capacity(r)));
    unitsScratch_.resize(static_cast<size_t>(nr), 0);
    nzScratch_.reserve(static_cast<size_t>(nr));
    sweepScratch_.resize(static_cast<size_t>(nr));

    if (!packed_) {
        resources_.assign(static_cast<size_t>(nr), {Segment{0, 0}});
        groups_.resize(static_cast<size_t>(model.numGroups()));
        return;
    }

    // Slab regions sized for the common case (a full schedule
    // contributes at most two breakpoints per task and one interval
    // per task); growResource/growGroup doubles on overflow.
    const int32_t res_cap =
        std::max<int32_t>(8, 2 * model.numTasks() + 4);
    resOff_.resize(static_cast<size_t>(nr));
    resLen_.assign(static_cast<size_t>(nr), 1);
    resCap_.assign(static_cast<size_t>(nr), res_cap);
    segStart_.assign(static_cast<size_t>(nr) *
                         static_cast<size_t>(res_cap), 0);
    segLevel_.assign(segStart_.size(), 0);
    for (int r = 0; r < nr; ++r)
        resOff_[r] = r * res_cap; // Region r starts as one {0, 0}.

    const int ng = model.numGroups();
    const int32_t grp_cap =
        std::max<int32_t>(8, model.numTasks() + 2);
    grpOff_.resize(static_cast<size_t>(ng));
    grpLen_.assign(static_cast<size_t>(ng), 0);
    grpCap_.assign(static_cast<size_t>(ng), grp_cap);
    ivStart_.assign(static_cast<size_t>(ng) *
                        static_cast<size_t>(grp_cap), 0);
    ivEnd_.assign(ivStart_.size(), 0);
    for (int g = 0; g < ng; ++g)
        grpOff_[g] = g * grp_cap;

    // Precompute each mode's resource-unit row and non-zero resource
    // list once, so the hot queries never call llround again.
    const int nm = model.numModes();
    modeUnits_.assign(static_cast<size_t>(nm) *
                          static_cast<size_t>(nr), 0);
    modeNzOff_.assign(static_cast<size_t>(nm), 0);
    modeNzLen_.assign(static_cast<size_t>(nm), 0);
    for (int t = 0; t < model.numTasks(); ++t) {
        for (const Mode &mode : model.task(t).modes) {
            hilp_assert(mode.id >= 0 && mode.id < nm);
            Units *row = modeUnits_.data() +
                         static_cast<size_t>(mode.id) *
                             static_cast<size_t>(nr);
            modeNzOff_[mode.id] =
                static_cast<int32_t>(nzRes_.size());
            for (int r = 0; r < nr; ++r) {
                row[r] = toUnits(mode.usage[r]);
                if (row[r] > 0) {
                    nzRes_.push_back(r);
                    // The level limit this mode tolerates on r is a
                    // constant of the (mode, resource) pair; bake it
                    // so earliestStart never gathers capacities.
                    nzLimit_.push_back(capUnits_[r] +
                                       kCapacitySlack - row[r]);
                }
            }
            modeNzLen_[mode.id] =
                static_cast<int32_t>(nzRes_.size()) -
                modeNzOff_[mode.id];
        }
    }
}

void
Profile::modeRow(const Mode &mode, const Units **units,
                 const int32_t **nz, int32_t *nnz) const
{
    const int nr = model_.numResources();
    if (mode.id >= 0 &&
        static_cast<size_t>(mode.id) < modeNzOff_.size()) {
        *units = modeUnits_.data() +
                 static_cast<size_t>(mode.id) *
                     static_cast<size_t>(nr);
        *nz = nzRes_.data() + modeNzOff_[mode.id];
        *nnz = modeNzLen_[mode.id];
        return;
    }
    // Hand-built mode (never added to a model): convert per query,
    // exactly like the legacy layout does.
    nzScratch_.clear();
    for (int r = 0; r < nr; ++r) {
        unitsScratch_[r] = toUnits(mode.usage[r]);
        if (unitsScratch_[r] > 0)
            nzScratch_.push_back(r);
    }
    *units = unitsScratch_.data();
    *nz = nzScratch_.data();
    *nnz = static_cast<int32_t>(nzScratch_.size());
}

void
Profile::modeSweepRow(const Mode &mode, const int32_t **nz,
                      const Units **limits, int32_t *nnz) const
{
    if (mode.id >= 0 &&
        static_cast<size_t>(mode.id) < modeNzOff_.size()) {
        *nz = nzRes_.data() + modeNzOff_[mode.id];
        *limits = nzLimit_.data() + modeNzOff_[mode.id];
        *nnz = modeNzLen_[mode.id];
        return;
    }
    // Hand-built mode: convert per query via the units scratch.
    const Units *units;
    modeRow(mode, &units, nz, nnz);
    limScratch_.clear();
    for (int32_t k = 0; k < *nnz; ++k) {
        const int r = (*nz)[k];
        limScratch_.push_back(capUnits_[r] + kCapacitySlack -
                              units[r]);
    }
    *limits = limScratch_.data();
}

size_t
Profile::heapBytes() const
{
    if (packed_) {
        return segStart_.capacity() * sizeof(Time) +
               segLevel_.capacity() * sizeof(Units) +
               ivStart_.capacity() * sizeof(Time) +
               ivEnd_.capacity() * sizeof(Time) +
               modeUnits_.capacity() * sizeof(Units) +
               nzRes_.capacity() * sizeof(int32_t) +
               nzLimit_.capacity() * sizeof(Units);
    }
    size_t bytes = 0;
    for (const std::vector<Segment> &segs : resources_)
        bytes += segs.capacity() * sizeof(Segment);
    for (const std::vector<Interval> &busy : groups_)
        bytes += busy.capacity() * sizeof(Interval);
    return bytes;
}

// ---------------------------------------------------------------
// Legacy (AoS) layout.
// ---------------------------------------------------------------

size_t
Profile::segmentAt(int r, Time step) const
{
    const std::vector<Segment> &segs = resources_[r];
    // Last segment whose start is <= step.
    auto it = std::upper_bound(
        segs.begin(), segs.end(), step,
        [](Time s, const Segment &seg) { return s < seg.start; });
    hilp_assert(it != segs.begin());
    return static_cast<size_t>(it - segs.begin()) - 1;
}

void
Profile::addUsage(int r, Time start, Time end, Units delta)
{
    if (delta == 0 || start >= end)
        return;
    std::vector<Segment> &segs = resources_[r];

    // Ensure a breakpoint at start.
    size_t i = segmentAt(r, start);
    if (segs[i].start != start) {
        segs.insert(segs.begin() + static_cast<ptrdiff_t>(i) + 1,
                    Segment{start, segs[i].level});
        ++i;
    }
    // Last segment starting before end.
    size_t j = i;
    while (j + 1 < segs.size() && segs[j + 1].start < end)
        ++j;
    // Ensure a breakpoint at end (the tail keeps the old level).
    Time j_end = j + 1 < segs.size() ? segs[j + 1].start : horizon_;
    if (j_end > end) {
        segs.insert(segs.begin() + static_cast<ptrdiff_t>(j) + 1,
                    Segment{end, segs[j].level});
    }
    for (size_t k = i; k <= j; ++k)
        segs[k].level += delta;

    // Restore canonical form at the two junctions. Interior
    // junctions cannot collapse: both sides moved by the same delta.
    if (j + 1 < segs.size() && segs[j + 1].level == segs[j].level)
        segs.erase(segs.begin() + static_cast<ptrdiff_t>(j) + 1);
    if (i > 0 && segs[i].level == segs[i - 1].level)
        segs.erase(segs.begin() + static_cast<ptrdiff_t>(i));
}

Time
Profile::groupBlock(int g, Time start, Time end) const
{
    const std::vector<Interval> &busy = groups_[g];
    // First busy interval still open at (or after) start.
    auto it = std::upper_bound(
        busy.begin(), busy.end(), start,
        [](Time s, const Interval &iv) { return s < iv.end; });
    if (it != busy.end() && it->start < end)
        return it->end;
    return -1;
}

Time
Profile::resourceBlock(int r, Units need, Time start, Time end) const
{
    if (need <= 0)
        return -1;
    const Units limit = capUnits_[r] + kCapacitySlack - need;
    const std::vector<Segment> &segs = resources_[r];
    for (size_t i = segmentAt(r, start);
         i < segs.size() && segs[i].start < end; ++i) {
        if (segs[i].level > limit)
            return i + 1 < segs.size() ? segs[i + 1].start : horizon_;
    }
    return -1;
}

bool
Profile::fitsLegacy(const Mode &mode, Time start) const
{
    Time end = start + mode.duration;
    if (mode.group != kNoGroup &&
        groupBlock(mode.group, start, end) >= 0)
        return false;
    for (int r = 0; r < model_.numResources(); ++r)
        if (resourceBlock(r, toUnits(mode.usage[r]), start, end) >= 0)
            return false;
    return true;
}

Time
Profile::earliestStartLegacy(const Mode &mode, Time est) const
{
    const int num_resources = model_.numResources();
    for (int r = 0; r < num_resources; ++r)
        unitsScratch_[r] = toUnits(mode.usage[r]);

    Time start = est;
    while (start + mode.duration <= horizon_) {
        Time end = start + mode.duration;
        // No window that contains any step of a blocking interval or
        // over-capacity segment can be feasible, so restart the scan
        // directly after the whole blocker - this is what makes the
        // query jump instead of stepping.
        Time bump = mode.group != kNoGroup
            ? groupBlock(mode.group, start, end) : -1;
        if (bump < 0) {
            for (int r = 0; r < num_resources && bump < 0; ++r)
                bump = resourceBlock(r, unitsScratch_[r], start, end);
        }
        if (bump < 0)
            return start;
        hilp_assert(bump > start);
        start = bump;
    }
    return -1;
}

void
Profile::placeLegacy(const Mode &mode, Time start)
{
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        std::vector<Interval> &busy = groups_[mode.group];
        auto it = std::lower_bound(
            busy.begin(), busy.end(), start,
            [](const Interval &iv, Time s) { return iv.start < s; });
        hilp_assert(it == busy.end() || it->start >= end);
        hilp_assert(it == busy.begin() || (it - 1)->end <= start);
        busy.insert(it, Interval{start, end});
    }
    for (int r = 0; r < model_.numResources(); ++r)
        addUsage(r, start, end, toUnits(mode.usage[r]));
}

void
Profile::removeLegacy(const Mode &mode, Time start)
{
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        std::vector<Interval> &busy = groups_[mode.group];
        auto it = std::lower_bound(
            busy.begin(), busy.end(), start,
            [](const Interval &iv, Time s) { return iv.start < s; });
        hilp_assert(it != busy.end() && it->start == start &&
                    it->end == end);
        busy.erase(it);
    }
    for (int r = 0; r < model_.numResources(); ++r)
        addUsage(r, start, end, -toUnits(mode.usage[r]));
}

// ---------------------------------------------------------------
// Packed (SoA slab) layout.
// ---------------------------------------------------------------

void
Profile::growResource(int r)
{
    // Rebuild the slab with this resource's region doubled. Rare:
    // amortized by the doubling, and the initial capacity already
    // covers a full schedule's worth of breakpoints.
    std::vector<int32_t> new_off(resOff_.size());
    int32_t total = 0;
    for (size_t k = 0; k < resCap_.size(); ++k) {
        new_off[k] = total;
        total += k == static_cast<size_t>(r) ? resCap_[k] * 2
                                             : resCap_[k];
    }
    std::vector<Time> new_starts(static_cast<size_t>(total), 0);
    std::vector<Units> new_levels(static_cast<size_t>(total), 0);
    for (size_t k = 0; k < resCap_.size(); ++k) {
        std::copy_n(segStart_.begin() + resOff_[k], resLen_[k],
                    new_starts.begin() + new_off[k]);
        std::copy_n(segLevel_.begin() + resOff_[k], resLen_[k],
                    new_levels.begin() + new_off[k]);
    }
    resCap_[r] *= 2;
    resOff_ = std::move(new_off);
    segStart_ = std::move(new_starts);
    segLevel_ = std::move(new_levels);
}

void
Profile::growGroup(int g)
{
    std::vector<int32_t> new_off(grpOff_.size());
    int32_t total = 0;
    for (size_t k = 0; k < grpCap_.size(); ++k) {
        new_off[k] = total;
        total += k == static_cast<size_t>(g) ? grpCap_[k] * 2
                                             : grpCap_[k];
    }
    std::vector<Time> new_starts(static_cast<size_t>(total), 0);
    std::vector<Time> new_ends(static_cast<size_t>(total), 0);
    for (size_t k = 0; k < grpCap_.size(); ++k) {
        std::copy_n(ivStart_.begin() + grpOff_[k], grpLen_[k],
                    new_starts.begin() + new_off[k]);
        std::copy_n(ivEnd_.begin() + grpOff_[k], grpLen_[k],
                    new_ends.begin() + new_off[k]);
    }
    grpCap_[g] *= 2;
    grpOff_ = std::move(new_off);
    ivStart_ = std::move(new_starts);
    ivEnd_ = std::move(new_ends);
}

Time
Profile::groupBlockPacked(int g, Time start, Time end) const
{
    const Time *ivs = ivStart_.data() + grpOff_[g];
    const Time *ive = ivEnd_.data() + grpOff_[g];
    const int32_t len = grpLen_[g];
    // First busy interval still open at (or after) start.
    int32_t i = gallopUpper(ive, len, start);
    if (i < len && ivs[i] < end)
        return ive[i];
    return -1;
}

Time
Profile::resourceBlockPacked(int r, Units need, Time start,
                             Time end) const
{
    const Units limit = capUnits_[r] + kCapacitySlack - need;
    const Time *starts = segStart_.data() + resOff_[r];
    const Units *levels = segLevel_.data() + resOff_[r];
    const int32_t len = resLen_[r];
    for (int32_t i = gallopLast(starts, len, start);
         i < len && starts[i] < end; ++i) {
        if (levels[i] > limit)
            return i + 1 < len ? starts[i + 1] : horizon_;
    }
    return -1;
}

void
Profile::addUsagePacked(int r, Time start, Time end, Units delta)
{
    if (delta == 0 || start >= end)
        return;
    // At most two segments get inserted below; reserving up front
    // keeps the region pointers stable for the whole operation.
    if (resLen_[r] + 2 > resCap_[r])
        growResource(r);
    Time *starts = segStart_.data() + resOff_[r];
    Units *levels = segLevel_.data() + resOff_[r];
    int32_t len = resLen_[r];

    auto insert_at = [&](int32_t pos, Time s, Units level) {
        std::memmove(starts + pos + 1, starts + pos,
                     static_cast<size_t>(len - pos) * sizeof(Time));
        std::memmove(levels + pos + 1, levels + pos,
                     static_cast<size_t>(len - pos) * sizeof(Units));
        starts[pos] = s;
        levels[pos] = level;
        ++len;
    };
    auto erase_at = [&](int32_t pos) {
        std::memmove(starts + pos, starts + pos + 1,
                     static_cast<size_t>(len - pos - 1) *
                         sizeof(Time));
        std::memmove(levels + pos, levels + pos + 1,
                     static_cast<size_t>(len - pos - 1) *
                         sizeof(Units));
        --len;
    };

    // Mirrors the legacy addUsage step for step (see above): ensure
    // breakpoints at start and end, shift the covered levels, then
    // restore canonical form at the two junctions.
    int32_t i = gallopLast(starts, len, start);
    if (starts[i] != start) {
        insert_at(i + 1, start, levels[i]);
        ++i;
    }
    int32_t j = i;
    while (j + 1 < len && starts[j + 1] < end)
        ++j;
    Time j_end = j + 1 < len ? starts[j + 1] : horizon_;
    if (j_end > end)
        insert_at(j + 1, end, levels[j]);
    for (int32_t k = i; k <= j; ++k)
        levels[k] += delta;

    if (j + 1 < len && levels[j + 1] == levels[j])
        erase_at(j + 1);
    if (i > 0 && levels[i] == levels[i - 1])
        erase_at(i);
    resLen_[r] = len;
}

// ---------------------------------------------------------------
// Public contract (dispatches on the layout).
// ---------------------------------------------------------------

bool
Profile::fits(const Mode &mode, Time start) const
{
    hilp_assert(start >= 0);
    if (start + mode.duration > horizon_)
        return false;
    if (mode.duration == 0)
        return true;
    if (!packed_)
        return fitsLegacy(mode, start);
    Time end = start + mode.duration;
    if (mode.group != kNoGroup &&
        groupBlockPacked(mode.group, start, end) >= 0)
        return false;
    const Units *units;
    const int32_t *nz;
    int32_t nnz;
    modeRow(mode, &units, &nz, &nnz);
    for (int32_t k = 0; k < nnz; ++k)
        if (resourceBlockPacked(nz[k], units[nz[k]], start, end) >= 0)
            return false;
    return true;
}

Time
Profile::earliestStart(const Mode &mode, Time est) const
{
    hilp_assert(est >= 0);
    if (mode.duration == 0)
        return est <= horizon_ ? est : -1;
    if (!packed_)
        return earliestStartLegacy(mode, est);

    const int32_t *nz;
    const Units *limits;
    int32_t nnz;
    modeSweepRow(mode, &nz, &limits, &nnz);

    const Time dur = mode.duration;
    Time start = est;
    if (start + dur > horizon_)
        return -1;

    // Monotone-cursor sweep. The candidate start only ever moves
    // forward, so each resource's containing segment (and the group's
    // first still-open interval) is located once at entry and then
    // advanced in-place; a bump never re-searches from the front the
    // way the legacy jump-scan does. The returned start is the least
    // feasible one - independent of blocker iteration order - which
    // keeps the two layouts bit-identical.
    const Time *gs = nullptr;
    const Time *ge = nullptr;
    int32_t glen = 0;
    int32_t gi = 0;
    if (mode.group != kNoGroup) {
        gs = ivStart_.data() + grpOff_[mode.group];
        ge = ivEnd_.data() + grpOff_[mode.group];
        glen = grpLen_[mode.group];
        gi = gallopUpper(ge, glen, start);
    }
    // A mode's non-zero resource count never exceeds the resource
    // count the scratch was sized for in the constructor.
    hilp_assert(static_cast<size_t>(nnz) <= sweepScratch_.size());
    int32_t ns = 0;
    for (int32_t k = 0; k < nnz; ++k) {
        const int r = nz[k];
        const Time *starts = segStart_.data() + resOff_[r];
        const Units *levels = segLevel_.data() + resOff_[r];
        const int32_t len = resLen_[r];
        const Units limit = limits[k];
        const int32_t cur = gallopLast(starts, len, start);
        // The candidate start only moves forward, so a resource
        // whose containing segment is already its last one can never
        // block any later window if that segment has room - the
        // common case for queries at the schedule frontier. Keep it
        // out of the sweep set entirely.
        if (cur == len - 1 && levels[cur] <= limit)
            continue;
        sweepScratch_[ns++] = {starts, levels, len, cur, limit};
    }

    while (true) {
        const Time end = start + dur;
        Time bump = -1;
        if (gi < glen) {
            while (gi < glen && ge[gi] <= start)
                ++gi;
            if (gi < glen && gs[gi] < end)
                bump = ge[gi];
        }
        if (bump < 0) {
            for (int32_t k = 0; k < ns; ++k) {
                SweepCursor &c = sweepScratch_[k];
                int32_t i = c.cur;
                while (i + 1 < c.len && c.starts[i + 1] <= start)
                    ++i;
                // Remember only the containing segment: the window
                // scan below may overrun segments a later (smaller)
                // bump still needs to inspect.
                c.cur = i;
                for (; i < c.len && c.starts[i] < end; ++i) {
                    if (c.levels[i] > c.limit) {
                        bump = i + 1 < c.len ? c.starts[i + 1]
                                             : horizon_;
                        break;
                    }
                }
                if (bump >= 0) {
                    // Adaptive ordering: the binding resource (the
                    // shared power cap, typically) tends to bump
                    // again, so front-load it and spare the other
                    // cursors. The returned start is unchanged -
                    // the sweep's fixpoint is blocker-order
                    // independent - so trees stay bit-identical.
                    if (k != 0)
                        std::swap(sweepScratch_[0], sweepScratch_[k]);
                    break;
                }
            }
        }
        if (bump < 0)
            return start;
        hilp_assert(bump > start);
        start = bump;
        if (start + dur > horizon_)
            return -1;
    }
}

void
Profile::place(const Mode &mode, Time start)
{
    hilp_assert(start >= 0 && start + mode.duration <= horizon_);
    if (mode.duration == 0)
        return;
    if (!packed_) {
        placeLegacy(mode, start);
        return;
    }
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        const int g = mode.group;
        if (grpLen_[g] + 1 > grpCap_[g])
            growGroup(g);
        Time *ivs = ivStart_.data() + grpOff_[g];
        Time *ive = ivEnd_.data() + grpOff_[g];
        int32_t len = grpLen_[g];
        // First interval starting at or after `start`.
        int32_t pos = gallopUpper(ivs, len, start - 1);
        hilp_assert(pos == len || ivs[pos] >= end);
        hilp_assert(pos == 0 || ive[pos - 1] <= start);
        std::memmove(ivs + pos + 1, ivs + pos,
                     static_cast<size_t>(len - pos) * sizeof(Time));
        std::memmove(ive + pos + 1, ive + pos,
                     static_cast<size_t>(len - pos) * sizeof(Time));
        ivs[pos] = start;
        ive[pos] = end;
        grpLen_[g] = len + 1;
    }
    const Units *units;
    const int32_t *nz;
    int32_t nnz;
    modeRow(mode, &units, &nz, &nnz);
    for (int32_t k = 0; k < nnz; ++k)
        addUsagePacked(nz[k], start, end, units[nz[k]]);
}

void
Profile::remove(const Mode &mode, Time start)
{
    hilp_assert(start >= 0 && start + mode.duration <= horizon_);
    if (mode.duration == 0)
        return;
    if (!packed_) {
        removeLegacy(mode, start);
        return;
    }
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        const int g = mode.group;
        Time *ivs = ivStart_.data() + grpOff_[g];
        Time *ive = ivEnd_.data() + grpOff_[g];
        int32_t len = grpLen_[g];
        int32_t pos = gallopUpper(ivs, len, start - 1);
        hilp_assert(pos < len && ivs[pos] == start &&
                    ive[pos] == end);
        std::memmove(ivs + pos, ivs + pos + 1,
                     static_cast<size_t>(len - pos - 1) *
                         sizeof(Time));
        std::memmove(ive + pos, ive + pos + 1,
                     static_cast<size_t>(len - pos - 1) *
                         sizeof(Time));
        grpLen_[g] = len - 1;
    }
    const Units *units;
    const int32_t *nz;
    int32_t nnz;
    modeRow(mode, &units, &nz, &nnz);
    for (int32_t k = 0; k < nnz; ++k)
        addUsagePacked(nz[k], start, end, -units[nz[k]]);
}

double
Profile::usage(int r, Time step) const
{
    return fromUnits(usageUnits(r, step));
}

Units
Profile::usageUnits(int r, Time step) const
{
    hilp_assert(step >= 0 && step < horizon_);
    if (!packed_)
        return resources_[r][segmentAt(r, step)].level;
    const Time *starts = segStart_.data() + resOff_[r];
    return segLevel_[resOff_[r] +
                     gallopLast(starts, resLen_[r], step)];
}

bool
Profile::groupBusy(int g, Time step) const
{
    hilp_assert(step >= 0 && step < horizon_);
    if (!packed_) {
        const std::vector<Interval> &busy = groups_[g];
        auto it = std::upper_bound(
            busy.begin(), busy.end(), step,
            [](Time s, const Interval &iv) { return s < iv.end; });
        return it != busy.end() && it->start <= step;
    }
    const Time *ivs = ivStart_.data() + grpOff_[g];
    const Time *ive = ivEnd_.data() + grpOff_[g];
    const int32_t len = grpLen_[g];
    int32_t i = gallopUpper(ive, len, step);
    return i < len && ivs[i] <= step;
}

} // namespace cp
} // namespace hilp
