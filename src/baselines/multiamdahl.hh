/**
 * @file
 * The MultiAmdahl (MA) baseline [Zidenberg et al., CAL 2012].
 *
 * MA assumes a fixed sequential phase order: at most one application
 * phase executes at any time (WLP = 1, the minimal-WLP extreme of
 * the paper's Figure 2). Each phase runs on its fastest compatible
 * unit whose standalone power and bandwidth demands fit the budgets,
 * and the workload execution time is simply the sum of phase times.
 * No discretization is needed; the result is exact in continuous
 * time.
 */

#ifndef HILP_BASELINES_MULTIAMDAHL_HH
#define HILP_BASELINES_MULTIAMDAHL_HH

#include "hilp/problem.hh"
#include "hilp/schedule.hh"

namespace hilp {
namespace baselines {

/** Outcome of a MultiAmdahl evaluation. */
struct MaResult
{
    bool ok = false;        //!< Every phase had a usable option.
    double makespanS = 0.0; //!< Sum of phase times.
    Schedule schedule;      //!< The sequential schedule (stepS = 0).

    /** MA's WLP is 1 by construction. */
    double averageWlp() const { return ok ? 1.0 : 0.0; }
};

/**
 * Evaluate the workload under MA semantics. Phases execute app by
 * app in dependency order; within each phase the fastest option that
 * respects the power/bandwidth budgets in isolation is chosen.
 */
MaResult evaluateMultiAmdahl(const ProblemSpec &spec);

} // namespace baselines
} // namespace hilp

#endif // HILP_BASELINES_MULTIAMDAHL_HH
