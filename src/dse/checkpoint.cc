#include "checkpoint.hh"

#include <cmath>

#include "support/hash.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {
namespace dse {

namespace {

/** Inverse of cp::toString(SolveStatus). */
bool
statusFromString(const std::string &text, cp::SolveStatus *out)
{
    static const cp::SolveStatus kAll[] = {
        cp::SolveStatus::Optimal,     cp::SolveStatus::NearOptimal,
        cp::SolveStatus::Feasible,    cp::SolveStatus::Infeasible,
        cp::SolveStatus::NoSolution,
    };
    for (cp::SolveStatus status : kAll) {
        if (text == cp::toString(status)) {
            *out = status;
            return true;
        }
    }
    return false;
}

/** 64-bit key rendered as a fixed-width hex string. JSON numbers are
 * doubles and cannot carry a uint64_t exactly, so keys travel as
 * strings. */
std::string
keyText(uint64_t key)
{
    return format("%016llx", static_cast<unsigned long long>(key));
}

bool
parseKeyText(const std::string &text, uint64_t *out)
{
    if (text.empty() || text.size() > 16)
        return false;
    uint64_t value = 0;
    for (char c : text) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | static_cast<uint64_t>(digit);
    }
    *out = value;
    return true;
}

/** The double for `name`, or fallback when absent/null (a non-finite
 * value is serialized as JSON null). */
double
numberOr(const Json &entry, const char *name, double fallback)
{
    const Json *value = entry.find(name);
    if (!value || !value->isNumber())
        return fallback;
    return value->numberValue();
}

int64_t
intOr(const Json &entry, const char *name, int64_t fallback)
{
    const Json *value = entry.find(name);
    if (!value || !value->isNumber())
        return fallback;
    return value->intValue();
}

bool
boolOr(const Json &entry, const char *name, bool fallback)
{
    const Json *value = entry.find(name);
    if (!value || !value->isBool())
        return fallback;
    return value->boolValue();
}

std::string
stringOr(const Json &entry, const char *name)
{
    const Json *value = entry.find(name);
    if (!value || !value->isString())
        return std::string();
    return value->stringValue();
}

/**
 * Decode one JSONL record into (key, point). Returns false on any
 * structural problem - most importantly the torn final line a SIGKILL
 * can leave behind.
 */
bool
parseRecord(const std::string &line, uint64_t *key, DsePoint *point)
{
    Json entry;
    if (!Json::parse(line, &entry) || !entry.isObject())
        return false;
    if (!parseKeyText(stringOr(entry, "key"), key))
        return false;

    *point = DsePoint{};
    if (!parseKeyText(stringOr(entry, "fingerprint"),
                      &point->fingerprint))
        point->fingerprint = 0;
    point->ok = boolOr(entry, "ok", false);
    if (!statusFromString(stringOr(entry, "status"), &point->status))
        point->status = cp::SolveStatus::NoSolution;
    point->makespanS = numberOr(entry, "makespan_s", 0.0);
    point->speedup = numberOr(entry, "speedup", 0.0);
    point->gap = numberOr(entry, "gap", 0.0);
    point->averageWlp = numberOr(entry, "avg_wlp", 0.0);
    point->note = stringOr(entry, "note");
    point->degraded = boolOr(entry, "degraded", false);
    point->nodes = intOr(entry, "nodes", 0);
    point->backtracks = intOr(entry, "backtracks", 0);
    point->solves = static_cast<int>(intOr(entry, "solves", 0));
    point->solveSeconds = numberOr(entry, "solve_s", 0.0);
    point->cacheHit = boolOr(entry, "cache_hit", false);
    point->warmStarted = boolOr(entry, "warm_start", false);
    point->pruned = boolOr(entry, "pruned", false);
    return true;
}

} // anonymous namespace

uint64_t
checkpointKey(uint64_t fingerprint, const std::string &config_name,
              ModelKind kind)
{
    Hasher hasher;
    hasher.u64(fingerprint);
    hasher.str(config_name);
    hasher.str(toString(kind));
    return hasher.digest();
}

SweepCheckpoint::~SweepCheckpoint()
{
    close();
}

void
SweepCheckpoint::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
SweepCheckpoint::open(const std::string &path, bool resume,
                      std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    hilp_assert(!file_);
    entries_.clear();
    bool torn_tail = false;

    if (resume) {
        // Load whatever a previous run managed to flush. A missing
        // file is a cold start, not an error; a torn final line (the
        // record a SIGKILL interrupted) is dropped with a warning.
        if (std::FILE *in = std::fopen(path.c_str(), "r")) {
            std::string line;
            int dropped = 0;
            char buffer[4096];
            bool at_eof = false;
            while (!at_eof) {
                size_t got = std::fread(buffer, 1, sizeof(buffer), in);
                at_eof = got < sizeof(buffer);
                for (size_t i = 0; i < got; ++i) {
                    if (buffer[i] != '\n') {
                        line += buffer[i];
                        continue;
                    }
                    uint64_t key;
                    DsePoint point;
                    if (!line.empty()) {
                        if (parseRecord(line, &key, &point))
                            entries_[key] = std::move(point);
                        else
                            ++dropped;
                    }
                    line.clear();
                }
            }
            // A record is only durable once its newline landed; any
            // trailing partial line is from an interrupted write.
            if (!line.empty()) {
                ++dropped;
                torn_tail = true;
            }
            std::fclose(in);
            if (dropped > 0)
                warn("checkpoint %s: dropped %d malformed record(s)",
                     path.c_str(), dropped);
        }
    }

    file_ = std::fopen(path.c_str(), resume ? "a" : "w");
    if (!file_) {
        if (error)
            *error = format("cannot open checkpoint '%s' for writing",
                            path.c_str());
        entries_.clear();
        return false;
    }
    // Seal a torn final line before appending, or the next record
    // would fuse with the partial one into a single corrupt line.
    if (torn_tail)
        std::fputc('\n', file_);
    return true;
}

size_t
SweepCheckpoint::loaded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

bool
SweepCheckpoint::lookup(uint64_t key, DsePoint *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    *out = it->second;
    out->resumed = true;
    return true;
}

void
SweepCheckpoint::record(uint64_t key, ModelKind kind,
                        const DsePoint &point)
{
    Json entry = Json::object();
    entry.set("key", Json::string(keyText(key)));
    entry.set("model", Json::string(toString(kind)));
    entry.set("config", Json::string(point.config.name()));
    entry.set("fingerprint",
              Json::string(keyText(point.fingerprint)));
    entry.set("ok", Json::boolean(point.ok));
    entry.set("status", Json::string(cp::toString(point.status)));
    entry.set("makespan_s", Json::number(point.makespanS));
    entry.set("speedup", Json::number(point.speedup));
    entry.set("gap", Json::number(point.gap));
    entry.set("avg_wlp", Json::number(point.averageWlp));
    entry.set("note", Json::string(point.note));
    entry.set("degraded", Json::boolean(point.degraded));
    entry.set("nodes", Json::number(point.nodes));
    entry.set("backtracks", Json::number(point.backtracks));
    entry.set("solves",
              Json::number(static_cast<int64_t>(point.solves)));
    entry.set("solve_s", Json::number(point.solveSeconds));
    entry.set("cache_hit", Json::boolean(point.cacheHit));
    entry.set("warm_start", Json::boolean(point.warmStarted));
    entry.set("pruned", Json::boolean(point.pruned));
    std::string line = entry.dump();
    line += '\n';

    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    std::fwrite(line.data(), 1, line.size(), file_);
    // One flush per completed point: a kill loses only in-flight
    // work, and a solve dwarfs the cost of the write.
    std::fflush(file_);
}

} // namespace dse
} // namespace hilp
