/**
 * @file
 * Parsing the paper's SoC configuration labels.
 *
 * The paper names SoCs "(c_i, g_j, d_k^l)": i CPU cores, j GPU SMs,
 * k DSAs with l PEs each. This module parses that notation back into
 * a SocConfig, which makes configuration labels usable on command
 * lines and in experiment scripts.
 */

#ifndef HILP_ARCH_PARSE_HH
#define HILP_ARCH_PARSE_HH

#include <string>
#include <vector>

#include "soc.hh"

namespace hilp {
namespace arch {

/** Outcome of parsing a configuration label. */
struct SocParseResult
{
    bool ok = false;
    std::string error;  //!< First problem found (empty when ok).
    SocConfig config;
};

/**
 * Parse a label like "(c4,g16,d2^16)" (whitespace tolerated, the
 * surrounding parentheses optional). The k DSAs are assigned the
 * first k entries of dsa_priority, exactly as the paper allocates
 * DSAs; parsing fails if k exceeds the priority list.
 */
SocParseResult parseSocName(const std::string &text,
                            const std::vector<int> &dsa_priority,
                            double dsa_advantage = 4.0);

} // namespace arch
} // namespace hilp

#endif // HILP_ARCH_PARSE_HH
