/**
 * @file
 * Shared plumbing for the experiment harnesses. Each bench binary
 * regenerates one table or figure of the paper: it prints the same
 * rows/series the paper reports (plus our measured values) and then
 * runs a few google-benchmark timings of the underlying solves.
 */

#ifndef HILP_BENCH_COMMON_HH
#define HILP_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "arch/design_space.hh"
#include "arch/soc.hh"
#include "dse/explore.hh"
#include "hilp/engine.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace bench {

/**
 * Parse and strip the harness's own observability flags before the
 * benchmark library sees argv. Every bench binary calls this first:
 *
 *   --trace-out=FILE    enable tracing; at exit, write the Chrome
 *                       trace-event JSON to FILE (open in Perfetto
 *                       at https://ui.perfetto.dev). The pid is
 *                       stamped into the name (x.json -> x.<pid>.json)
 *                       so concurrent processes never share a file.
 *   --metrics-out=FILE  at exit, write the metrics-registry snapshot
 *                       (counters/gauges/histograms) to FILE as JSON.
 *   --solver-threads=N  branch-and-bound worker threads for every
 *                       solve the harness runs (1 = serial, the
 *                       default; 0 = borrow from the thread budget).
 *   --deterministic-search
 *                       use the reproducible parallel search mode
 *                       instead of opportunistic work stealing.
 *   --checkpoint=FILE   append completed sweep points to FILE (JSONL)
 *                       as they finish, so an interrupted sweep can
 *                       be resumed.
 *   --resume            with --checkpoint: load FILE first and skip
 *                       points a previous run already completed.
 *   --point-timeout=S   whole-evaluation deadline per design point in
 *                       seconds; on expiry the point degrades to its
 *                       best incumbent (still with a certified gap)
 *                       instead of failing.
 *   --fail-fast         abort the sweep on the first point that
 *                       throws (the pre-fault-isolation behavior).
 *   --nogoods           record no-goods in the branch-and-bound
 *                       search (see cp/nogood.hh): revisited
 *                       placement sets prune against their learned
 *                       bound instead of re-expanding.
 *   --lns               replace the solver's priority hill climbing
 *                       with destroy/repair large-neighborhood
 *                       search (see cp/lns.hh) when tightening the
 *                       greedy incumbent.
 *   --layout=L          solver-core memory layout: 'packed' (the
 *                       default SoA slab + arena scratch) or
 *                       'legacy' (the AoS baseline). Both explore
 *                       bit-identical trees; solver_micro sweeps one
 *                       against the other.
 *   --connect=ADDR      route sweeps to a running hilpd daemon at
 *                       ADDR (unix:/path or tcp:host:port) instead
 *                       of evaluating in-process; see runSweep().
 *   --coordinator=ADDR  host a distributed-sweep coordinator at ADDR
 *                       (see dse/distribute.hh): every runSweep
 *                       sweep is sharded into similarity-chain work
 *                       units leased to workers, whose streamed
 *                       records merge into the same points the
 *                       in-process sweep computes. Takes precedence
 *                       over --connect.
 *   --worker            run as a distributed-sweep worker against
 *                       the daemon at --coordinator=ADDR: lease
 *                       units, evaluate, stream results, exit when
 *                       the coordinator retires. The harness exits
 *                       inside initHarness; no figure code runs.
 *   --spawn-workers=N   with --coordinator: fork+exec N workers of
 *                       this same binary ("--worker"); their pids
 *                       are announced on stderr ("spawned worker P")
 *                       and reaped at exit.
 *   --lease-timeout=S   with --coordinator: a lease not refreshed
 *                       within S seconds is re-issued (default 30).
 *   --fsync-checkpoint  fsync the --checkpoint file after every
 *                       record (the coordinator's merged ledger, or
 *                       an in-process sweep's checkpoint).
 *   --metrics-addr=ADDR serve this process's metrics registry live
 *                       over HTTP (GET /metrics Prometheus text,
 *                       /metrics.json, /healthz) while it runs -
 *                       the same endpoint hilpd --metrics-addr
 *                       exposes.
 *   --no-reuse          run every solve cold (disable warm-start
 *                       chains, the solve cache, and dominance
 *                       pruning) in runSweep sweeps.
 *   --max-configs=N     truncate runSweep design spaces to their
 *                       first N configurations (smoke runs / CI).
 *   --memo-bytes=N      byte cap (K/M/G suffixes accepted) for the
 *                       solve memo of in-process sweeps; 0 = the
 *                       historical unbounded cache.
 *   --version           print the build version (git describe +
 *                       build type) and exit.
 *
 * Both dumps run through atexit so they capture everything, including
 * the google-benchmark timing loops at the end of main.
 */
void initHarness(int *argc, char **argv);

/** The --solver-threads value (default 1 = serial search). */
int solverThreads();

/** True when --deterministic-search was passed. */
bool deterministicSearch();

/** The --point-timeout value in seconds (0 = no per-point deadline). */
double pointTimeoutS();

/** True when --fail-fast was passed. */
bool failFast();

/** True when --nogoods was passed. */
bool useNogoods();

/** True when --lns was passed. */
bool useLns();

/** False when --layout=legacy was passed (default: packed). */
bool packedLayout();

/** The --connect address ("" = evaluate in-process). */
const std::string &connectAddress();

/** True when --no-reuse was passed. */
bool noReuse();

/** The --max-configs value (0 = the full design space). */
size_t maxConfigs();

/**
 * The process-wide sweep checkpoint, opened lazily from --checkpoint
 * / --resume on first call (fatal if the file cannot be opened).
 * Null when no --checkpoint was given.
 */
dse::SweepCheckpoint *sweepCheckpoint();

/** Print a figure/table banner. */
void banner(const std::string &title, const std::string &description);

/** Print a section sub-header. */
void section(const std::string &title);

/**
 * Engine options for the validation experiments (Section V): the
 * paper's validation-mode resolution with a per-solve search budget.
 */
EngineOptions validationEngine(double solver_seconds = 8.0);

/**
 * DSE options for the exploration experiments (Section VI): the
 * paper's exploration-mode resolution with a tighter budget, since
 * hundreds of configurations are evaluated.
 */
dse::DseOptions explorationOptions(double solver_seconds = 1.0);

/** The Section VI design space (372 configs) for a DSA advantage. */
std::vector<arch::SocConfig> paperDesignSpace(double advantage = 4.0);

/**
 * Run one sweep through the evaluation service: against the
 * process-wide in-process EvalService by default, or a hilpd daemon
 * when --connect was given. Applies the harness's --no-reuse and
 * --checkpoint settings to `options` itself. `variant`, `copies`,
 * and `advantage` describe the workload and design space on the wire
 * (the daemon rebuilds both from names); `wl` and `configs` must
 * match them. Daemon failures are fatal - a sweep silently falling
 * back in-process would defeat the point of --connect runs.
 */
std::vector<dse::DsePoint> runSweep(
    const std::vector<arch::SocConfig> &configs,
    const workload::Workload &wl,
    const arch::Constraints &constraints, dse::ModelKind kind,
    dse::DseOptions options,
    workload::Variant variant = workload::Variant::Default,
    int copies = 1, double advantage = 4.0);

/**
 * Print a Pareto front as a table: config, area, speedup, WLP, gap,
 * accelerator mix.
 */
void printPareto(const std::string &title,
                 const std::vector<dse::DsePoint> &points);

/** Extract the Pareto-optimal points (min area, max speedup). */
std::vector<dse::DsePoint> paretoOf(
    const std::vector<dse::DsePoint> &points);

/** The highest-speedup point (among ok points); ok=false if none. */
dse::DsePoint bestOf(const std::vector<dse::DsePoint> &points);

} // namespace bench
} // namespace hilp

#endif // HILP_BENCH_COMMON_HH
