/** @file Tests for workload CSV import/export. */

#include <gtest/gtest.h>

#include "workload/io.hh"
#include "workload/rodinia.hh"
#include "workload/synthetic.hh"

namespace hilp {
namespace workload {
namespace {

TEST(WorkloadIo, RoundTripsRodinia)
{
    Workload original = makeWorkload(Variant::Default);
    ParseResult parsed = workloadFromCsv(workloadToCsv(original),
                                         original.name);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(parsed.workload.apps.size(), original.apps.size());
    for (size_t a = 0; a < original.apps.size(); ++a) {
        const Application &lhs = original.apps[a];
        const Application &rhs = parsed.workload.apps[a];
        EXPECT_EQ(lhs.name, rhs.name);
        ASSERT_EQ(lhs.phases.size(), rhs.phases.size());
        for (size_t p = 0; p < lhs.phases.size(); ++p) {
            EXPECT_EQ(lhs.phases[p].name, rhs.phases[p].name);
            EXPECT_EQ(lhs.phases[p].kind, rhs.phases[p].kind);
            EXPECT_DOUBLE_EQ(lhs.phases[p].cpuTime1,
                             rhs.phases[p].cpuTime1);
            EXPECT_DOUBLE_EQ(lhs.phases[p].gpuTime98,
                             rhs.phases[p].gpuTime98);
            EXPECT_DOUBLE_EQ(lhs.phases[p].gpuBwBase,
                             rhs.phases[p].gpuBwBase);
            EXPECT_DOUBLE_EQ(lhs.phases[p].timeLaw.a,
                             rhs.phases[p].timeLaw.a);
            EXPECT_DOUBLE_EQ(lhs.phases[p].timeLaw.b,
                             rhs.phases[p].timeLaw.b);
            EXPECT_DOUBLE_EQ(lhs.phases[p].bwLaw.b,
                             rhs.phases[p].bwLaw.b);
            EXPECT_DOUBLE_EQ(lhs.phases[p].freqGamma,
                             rhs.phases[p].freqGamma);
            EXPECT_EQ(lhs.phases[p].dsaTarget,
                      rhs.phases[p].dsaTarget);
            EXPECT_EQ(lhs.phases[p].gpuCompatible,
                      rhs.phases[p].gpuCompatible);
        }
    }
}

TEST(WorkloadIo, RoundTripsSynthetic)
{
    SyntheticOptions options;
    options.numApps = 7;
    options.seed = 5;
    Workload original = makeSyntheticWorkload(options);
    ParseResult parsed = workloadFromCsv(workloadToCsv(original));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.workload.numPhases(), original.numPhases());
    EXPECT_DOUBLE_EQ(sequentialCpuTimeS(parsed.workload),
                     sequentialCpuTimeS(original));
}

TEST(WorkloadIo, NamePropagates)
{
    Workload original = makeWorkload(Variant::Rodinia);
    ParseResult parsed =
        workloadFromCsv(workloadToCsv(original), "my-name");
    ASSERT_TRUE(parsed.ok);
    EXPECT_EQ(parsed.workload.name, "my-name");
}

TEST(WorkloadIo, RejectsMissingHeader)
{
    ParseResult parsed = workloadFromCsv("a,b,c\n");
    EXPECT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("header"), std::string::npos);
}

TEST(WorkloadIo, RejectsEmptyInput)
{
    ParseResult parsed = workloadFromCsv("");
    EXPECT_FALSE(parsed.ok);
}

TEST(WorkloadIo, RejectsWrongColumnCount)
{
    std::string csv = workloadToCsv(makeWorkload(Variant::Default));
    csv += "extra,row\n";
    ParseResult parsed = workloadFromCsv(csv);
    EXPECT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("columns"), std::string::npos);
}

TEST(WorkloadIo, RejectsUnknownKind)
{
    std::string csv = workloadToCsv(makeWorkload(Variant::Default));
    csv += "x,x.p,weird,1,0,0,0,1,0,1,0,1,-1\n";
    ParseResult parsed = workloadFromCsv(csv);
    EXPECT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("kind"), std::string::npos);
}

TEST(WorkloadIo, RejectsMalformedNumbers)
{
    std::string csv = workloadToCsv(makeWorkload(Variant::Default));
    csv += "x,x.p,compute,abc,1,1,1,1,1,1,1,1,-1\n";
    ParseResult parsed = workloadFromCsv(csv);
    EXPECT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("numeric"), std::string::npos);
}

TEST(WorkloadIo, SkipsCommentsAndBlankLines)
{
    std::string csv = "# a comment\n\n" +
                      workloadToCsv(makeWorkload(Variant::Default)) +
                      "\n# trailing\n";
    ParseResult parsed = workloadFromCsv(csv);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.workload.apps.size(), 10u);
}

TEST(WorkloadIo, ErrorsIncludeLineNumbers)
{
    std::string csv = workloadToCsv(makeWorkload(Variant::Default));
    csv += "bad\n";
    ParseResult parsed = workloadFromCsv(csv);
    ASSERT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("line 32"), std::string::npos)
        << parsed.error;
}

} // anonymous namespace
} // namespace workload
} // namespace hilp
