/**
 * @file
 * Standalone scrape client for the telemetry endpoint. Connects to a
 * hilpd --metrics-addr (or a bench --metrics-addr) listener, issues
 * one HTTP/1.0 GET, and checks the response: status 200, and for
 * /metrics that the body parses as Prometheus text exposition
 * (support/expo validator), for the JSON paths that the body parses
 * as JSON. The body is echoed to stdout so scripts can grep it for
 * expected samples. Exits 0 on a valid response; check.sh uses it as
 * the proof that what a real scraper sees is well-formed.
 *
 *   expo_check unix:/tmp/hilpd-metrics.sock /metrics
 *   expo_check tcp:127.0.0.1:9137 /healthz
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "support/expo.hh"
#include "support/json.hh"
#include "support/net.hh"
#include "support/str.hh"

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: %s <unix:PATH|tcp:HOST:PORT> </path>\n",
                     argv[0]);
        return 2;
    }
    std::string address = argv[1];
    std::string path = argv[2];

    std::string error;
    hilp::net::Socket socket = hilp::net::connectTo(address, &error);
    if (!socket.valid()) {
        std::fprintf(stderr, "expo_check: connect %s: %s\n",
                     address.c_str(), error.c_str());
        return 1;
    }

    std::string request = hilp::format(
        "GET %s HTTP/1.0\r\n\r\n", path.c_str());
    if (!socket.writeAll(request.data(), request.size())) {
        std::fprintf(stderr, "expo_check: write failed\n");
        return 1;
    }

    // Read to EOF (the server answers Connection: close).
    std::string response;
    char buffer[4096];
    for (;;) {
        ssize_t got = socket.read(buffer, sizeof(buffer));
        if (got <= 0)
            break;
        response.append(buffer, static_cast<size_t>(got));
    }

    // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\nbody"
    if (response.compare(0, 5, "HTTP/") != 0) {
        std::fprintf(stderr, "expo_check: not an HTTP response\n");
        return 1;
    }
    size_t space = response.find(' ');
    if (space == std::string::npos ||
        response.compare(space + 1, 3, "200") != 0) {
        size_t eol = response.find('\n');
        std::fprintf(stderr, "expo_check: non-200 status line: %s\n",
                     response.substr(0, eol).c_str());
        return 1;
    }
    size_t blank = response.find("\r\n\r\n");
    if (blank == std::string::npos) {
        std::fprintf(stderr, "expo_check: no header terminator\n");
        return 1;
    }
    std::string body = response.substr(blank + 4);

    if (path == "/metrics") {
        error = hilp::expo::validateExposition(body);
        if (!error.empty()) {
            std::fprintf(stderr,
                         "expo_check: invalid exposition: %s\n",
                         error.c_str());
            return 1;
        }
    } else {
        hilp::Json json;
        if (!hilp::Json::parse(body, &json, &error)) {
            std::fprintf(stderr, "expo_check: body is not JSON: %s\n",
                         error.c_str());
            return 1;
        }
    }

    std::fwrite(body.data(), 1, body.size(), stdout);
    std::fprintf(stderr, "expo_check: %s %s ok (%zu bytes)\n",
                 address.c_str(), path.c_str(), body.size());
    return 0;
}
