/**
 * @file
 * The daemon's flight recorder: a fixed-size, lock-sharded ring of
 * recent request summaries.
 *
 * Always on and cheap enough to stay that way: record() touches one
 * shard mutex (sharded by trace id, so concurrent handler threads
 * rarely collide) and copies a small POD-plus-strings summary into a
 * preallocated slot. When a request goes wrong - or an operator asks
 * "what was the daemon doing just now?" - recent() reconstructs the
 * admission-ordered tail without stopping the world, and the stats
 * op reports occupancy. The slow-request *trace* capture lives in
 * the daemon (it needs the tracer's context filter); the recorder is
 * the index that says which requests existed and how their time was
 * spent.
 */

#ifndef HILP_SERVICE_FLIGHT_RECORDER_HH
#define HILP_SERVICE_FLIGHT_RECORDER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hh"

namespace hilp {
namespace service {

/** One served request, as the flight recorder remembers it. */
struct RequestSummary
{
    uint64_t traceId = 0;
    std::string op;      //!< "eval", "sweep", ...
    std::string detail;  //!< First config label or similar.
    size_t configs = 0;  //!< Design points requested.
    size_t points = 0;   //!< Points streamed back.
    bool ok = false;
    bool slow = false;   //!< Exceeded the SLO threshold.
    std::string error;   //!< Failure reason when !ok.
    int64_t queueWaitUs = 0;
    int64_t solveUs = 0;
    int64_t serializeUs = 0;
    int64_t totalUs = 0;

    Json toJson() const;
};

class FlightRecorder
{
  public:
    /**
     * A recorder holding the last ~capacity requests, sharded across
     * `shards` independent rings (capacity is rounded up to a
     * multiple of the shard count).
     */
    explicit FlightRecorder(size_t capacity = 256, size_t shards = 8);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Remember one request, evicting the shard's oldest if full. */
    void record(const RequestSummary &summary);

    /**
     * The retained summaries, oldest first (ordered by trace id,
     * which admission assigns monotonically).
     */
    std::vector<RequestSummary> recent() const;

    size_t capacity() const { return capacity_; }
    /** Summaries currently retained. */
    size_t size() const;
    /** Total requests ever recorded (retained or evicted). */
    int64_t recorded() const;
    /** Retained requests marked slow. */
    int64_t slowCount() const;

    /** {capacity, occupancy, recorded, slow} for the stats op. */
    Json statsJson() const;

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::vector<RequestSummary> ring;
        size_t head = 0;   //!< Next slot to overwrite once full.
        size_t count = 0;  //!< Filled slots (<= ring.size()).
        int64_t recorded = 0;
    };

    size_t capacity_ = 0;
    std::vector<Shard> shards_;
};

} // namespace service
} // namespace hilp

#endif // HILP_SERVICE_FLIGHT_RECORDER_HH
