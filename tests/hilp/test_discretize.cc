/** @file Unit tests for time discretization. */

#include <gtest/gtest.h>

#include "hilp/discretize.hh"
#include "hilp/showcase.hh"

namespace hilp {
namespace {

TEST(Discretize, TwoAppExampleAtOneSecond)
{
    ProblemSpec spec = makeTwoAppExample();
    DiscretizedProblem problem = discretize(spec, 1.0, 64);
    EXPECT_EQ(problem.model.numTasks(), 6);
    EXPECT_EQ(problem.model.numGroups(), 2);
    EXPECT_EQ(problem.model.horizon(), 64);
    EXPECT_DOUBLE_EQ(problem.stepS, 1.0);
    // Unconstrained example: only the CPU pool resource exists.
    EXPECT_EQ(problem.model.numResources(), 1);
    EXPECT_EQ(problem.powerResource, -1);
    EXPECT_EQ(problem.bwResource, -1);
    EXPECT_EQ(problem.model.validate(), "");
}

TEST(Discretize, PowerBudgetAddsResource)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.powerBudgetW = 3.0;
    DiscretizedProblem problem = discretize(spec, 1.0, 64);
    ASSERT_GE(problem.powerResource, 0);
    EXPECT_DOUBLE_EQ(
        problem.model.capacity(problem.powerResource), 3.0);
}

TEST(Discretize, DurationsRoundUp)
{
    ProblemSpec spec = makeTwoAppExample();
    // m1 takes 8/6/5 s on CPU/GPU/DSA; at 2 s steps: 4/3/3.
    DiscretizedProblem problem = discretize(spec, 2.0, 64);
    int m1 = problem.taskOf[0][1];
    const cp::Task &task = problem.model.task(m1);
    ASSERT_EQ(task.modes.size(), 3u);
    EXPECT_EQ(task.modes[0].duration, 4);
    EXPECT_EQ(task.modes[1].duration, 3);
    EXPECT_EQ(task.modes[2].duration, 3);
}

TEST(Discretize, ExactMultiplesDoNotRoundUp)
{
    ProblemSpec spec = makeTwoAppExample();
    DiscretizedProblem problem = discretize(spec, 0.5, 128);
    int m1 = problem.taskOf[0][1];
    EXPECT_EQ(problem.model.task(m1).modes[0].duration, 16);
}

TEST(Discretize, ChainPrecedenceEdges)
{
    ProblemSpec spec = makeTwoAppExample();
    DiscretizedProblem problem = discretize(spec, 1.0, 64);
    int m0 = problem.taskOf[0][0];
    int m1 = problem.taskOf[0][1];
    int m2 = problem.taskOf[0][2];
    ASSERT_EQ(problem.model.successors(m0).size(), 1u);
    EXPECT_EQ(problem.model.successors(m0)[0], m1);
    EXPECT_EQ(problem.model.successors(m1)[0], m2);
    EXPECT_TRUE(problem.model.successors(m2).empty());
}

TEST(Discretize, DagDependenciesArePreserved)
{
    ProblemSpec spec = makeSdaProblem(SdaVariant::Baseline, 1);
    DiscretizedProblem problem = discretize(spec, 1.0, 64);
    // DF (phase 3) depends on DS1..DS3 (phases 0..2).
    int df = problem.taskOf[0][3];
    EXPECT_EQ(problem.model.predecessors(df).size(), 3u);
    // PP (phase 7) depends on C1..C3.
    int pp = problem.taskOf[0][7];
    EXPECT_EQ(problem.model.predecessors(pp).size(), 3u);
}

TEST(Discretize, IndependentPhasesHaveNoEdges)
{
    ProblemSpec spec = makeTwoAppExample();
    for (AppSpec &app : spec.apps)
        app.independentPhases = true;
    DiscretizedProblem problem = discretize(spec, 1.0, 64);
    for (int t = 0; t < problem.model.numTasks(); ++t)
        EXPECT_TRUE(problem.model.predecessors(t).empty());
}

TEST(Discretize, MappingTablesAreConsistent)
{
    ProblemSpec spec = makeTwoAppExample();
    DiscretizedProblem problem = discretize(spec, 1.0, 64);
    for (size_t a = 0; a < spec.apps.size(); ++a) {
        for (size_t p = 0; p < spec.apps[a].phases.size(); ++p) {
            int task = problem.taskOf[a][p];
            EXPECT_EQ(problem.phaseOf[task],
                      std::make_pair(static_cast<int>(a),
                                     static_cast<int>(p)));
            EXPECT_EQ(problem.optionOf[task].size(),
                      spec.apps[a].phases[p].options.size());
        }
    }
}

TEST(Discretize, CpuCoresMapToResourceUsage)
{
    ProblemSpec spec = makeTwoAppExample();
    DiscretizedProblem problem = discretize(spec, 1.0, 64);
    int m0 = problem.taskOf[0][0]; // setup: CPU only, 1 core.
    const cp::Mode &mode = problem.model.task(m0).modes[0];
    EXPECT_DOUBLE_EQ(mode.usage[problem.cpuResource], 1.0);
    EXPECT_EQ(mode.group, cp::kNoGroup);
    int m1 = problem.taskOf[0][1];
    const cp::Mode &gpu_mode = problem.model.task(m1).modes[1];
    EXPECT_DOUBLE_EQ(gpu_mode.usage[problem.cpuResource], 0.0);
    EXPECT_EQ(gpu_mode.group, 0);
}

TEST(Discretize, CoarserStepsShrinkDurations)
{
    ProblemSpec spec = makeTwoAppExample();
    DiscretizedProblem fine = discretize(spec, 1.0, 640);
    DiscretizedProblem coarse = discretize(spec, 10.0, 64);
    for (int t = 0; t < fine.model.numTasks(); ++t) {
        for (size_t m = 0; m < fine.model.task(t).modes.size(); ++m) {
            EXPECT_GE(fine.model.task(t).modes[m].duration,
                      coarse.model.task(t).modes[m].duration);
        }
    }
}

} // anonymous namespace
} // namespace hilp
