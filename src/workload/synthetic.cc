#include "synthetic.hh"

#include <cmath>

#include "scaling.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/str.hh"

namespace hilp {
namespace workload {

namespace {

/** Log-uniform sample in [lo, hi]. */
double
logUniform(Rng &rng, double lo, double hi)
{
    hilp_assert(lo > 0.0 && hi >= lo);
    return std::exp(rng.uniformDouble(std::log(lo), std::log(hi)));
}

} // anonymous namespace

Workload
makeSyntheticWorkload(const SyntheticOptions &options)
{
    hilp_assert(options.numApps >= 1);
    hilp_assert(options.minComputePhases >= 1);
    hilp_assert(options.maxComputePhases >= options.minComputePhases);

    Rng rng(options.seed);
    Workload workload;
    workload.name = format("synthetic-%llu",
        static_cast<unsigned long long>(options.seed));

    for (int a = 0; a < options.numApps; ++a) {
        Application app;
        app.name = format("syn%d", a);

        PhaseProfile setup;
        setup.name = format("syn%d.setup", a);
        setup.kind = PhaseKind::Sequential;
        setup.cpuTime1 = logUniform(rng, options.minSetupS,
                                    options.maxSetupS);
        app.phases.push_back(setup);

        int computes = static_cast<int>(rng.uniformInt(
            options.minComputePhases, options.maxComputePhases));
        bool dsa_targetable = rng.chance(options.dsaTargetFraction);
        for (int c = 0; c < computes; ++c) {
            PhaseProfile compute;
            compute.name = format("syn%d.compute%d", a, c);
            compute.kind = PhaseKind::Compute;
            compute.cpuTime1 = logUniform(rng, options.minComputeCpuS,
                                          options.maxComputeCpuS);
            compute.gpuCompatible = true;
            double speedup = logUniform(rng, options.minGpuSpeedup98,
                                        options.maxGpuSpeedup98);
            compute.gpuTime98 = compute.cpuTime1 / speedup;
            compute.gpuBwBase = logUniform(rng, options.minBw98,
                                         options.maxBw98);
            double exponent = rng.uniformDouble(-1.0, -0.5);
            compute.timeLaw = {std::pow(14.0, -exponent), exponent,
                               1.0};
            double bw_exp = rng.uniformDouble(0.5, 1.0);
            compute.bwLaw = {std::pow(14.0, -bw_exp), bw_exp, 1.0};
            compute.freqGamma = frequencyGamma(compute.gpuBwBase);
            compute.dsaTarget = dsa_targetable && c == 0 ? a : -1;
            app.phases.push_back(compute);
        }

        PhaseProfile teardown;
        teardown.name = format("syn%d.teardown", a);
        teardown.kind = PhaseKind::Sequential;
        teardown.cpuTime1 = logUniform(rng, options.minSetupS,
                                       options.maxSetupS);
        app.phases.push_back(teardown);

        workload.apps.push_back(std::move(app));
    }
    return workload;
}

} // namespace workload
} // namespace hilp
