/**
 * @file
 * Solver tests, including an exhaustive brute-force oracle that
 * independently enumerates every (mode, start) assignment of small
 * instances and validates them with checkSchedule - a completely
 * separate code path from the branch-and-bound search.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cp/model.hh"
#include "cp/solver.hh"
#include "support/random.hh"

namespace hilp {
namespace cp {
namespace {

/**
 * Brute force: try every combination of modes and start times in
 * [0, horizon), checking full feasibility with checkSchedule.
 * Returns -1 when no feasible schedule exists.
 */
Time
bruteForceOptimum(const Model &m)
{
    const int n = m.numTasks();
    ScheduleVec schedule;
    schedule.tasks.assign(n, Assignment{});
    Time best = -1;

    // Odometer over (mode, start) per task.
    std::vector<int> mode(n, 0);
    std::vector<Time> start(n, 0);
    for (;;) {
        for (int t = 0; t < n; ++t)
            schedule.tasks[t] = {mode[t], start[t]};
        bool in_horizon = true;
        for (int t = 0; t < n && in_horizon; ++t)
            in_horizon = start[t] + m.task(t).modes[mode[t]].duration <=
                         m.horizon();
        if (in_horizon && checkSchedule(m, schedule).empty()) {
            Time makespan = schedule.makespan(m);
            if (best < 0 || makespan < best)
                best = makespan;
        }
        // Advance the odometer.
        int t = 0;
        for (; t < n; ++t) {
            if (++start[t] < m.horizon())
                break;
            start[t] = 0;
            if (++mode[t] <
                static_cast<int>(m.task(t).modes.size()))
                break;
            mode[t] = 0;
        }
        if (t == n)
            break;
    }
    return best;
}

SolverOptions
exactOptions()
{
    SolverOptions options;
    options.targetGap = 0.0;
    options.maxSeconds = 20.0;
    return options;
}

TEST(Solver, ChainIsExact)
{
    Model m;
    for (Time d : {2, 3, 1}) {
        Task t;
        t.modes.push_back({kNoGroup, d, {}});
        m.addTask(t);
    }
    m.addPrecedence(0, 1);
    m.addPrecedence(1, 2);
    m.setHorizon(8);
    Result r = Solver(exactOptions()).solve(m);
    EXPECT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.makespan, 6);
    EXPECT_EQ(r.lowerBound, 6);
    EXPECT_DOUBLE_EQ(r.gap(), 0.0);
}

TEST(Solver, PicksBestModeCombination)
{
    // Two tasks, each CPU (slow) or device (fast); one shared device.
    Model m;
    int g = m.addGroup("G");
    for (int i = 0; i < 2; ++i) {
        Task t;
        t.modes.push_back({kNoGroup, 5, {}});
        t.modes.push_back({g, 2, {}});
        m.addTask(t);
    }
    m.setHorizon(20);
    Result r = Solver(exactOptions()).solve(m);
    EXPECT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.makespan, 4); // serialize both on the device.
}

TEST(Solver, InfeasibleWithinHorizonIsProven)
{
    Model m;
    Task t;
    t.modes.push_back({kNoGroup, 10, {}});
    m.addTask(t);
    m.setHorizon(5);
    Result r = Solver(exactOptions()).solve(m);
    EXPECT_EQ(r.status, SolveStatus::Infeasible);
    EXPECT_FALSE(r.hasSchedule());
}

TEST(Solver, ResourceInfeasibilityIsProven)
{
    Model m;
    m.addResource(1.0, "power");
    Task t;
    t.modes.push_back({kNoGroup, 2, {2.0}}); // needs 2.0 > cap 1.0.
    m.addTask(t);
    m.setHorizon(10);
    Result r = Solver(exactOptions()).solve(m);
    EXPECT_EQ(r.status, SolveStatus::Infeasible);
}

TEST(Solver, ZeroTaskModelIsTrivial)
{
    Model m;
    m.setHorizon(4);
    Result r = Solver(exactOptions()).solve(m);
    EXPECT_TRUE(r.hasSchedule());
    EXPECT_EQ(r.makespan, 0);
}

TEST(Solver, PowerConstraintForcesSequentialExecution)
{
    // Figure 3 in miniature: two devices whose combined power
    // exceeds the budget, so their tasks serialize.
    Model m;
    m.addResource(3.0, "power");
    int gpu = m.addGroup("GPU");
    int dsa = m.addGroup("DSA");
    Task a;
    a.modes.push_back({gpu, 3, {3.0}});
    m.addTask(a);
    Task b;
    b.modes.push_back({dsa, 5, {2.0}});
    m.addTask(b);
    m.setHorizon(20);
    Result r = Solver(exactOptions()).solve(m);
    EXPECT_EQ(r.status, SolveStatus::Optimal);
    EXPECT_EQ(r.makespan, 8); // 3 + 5, no overlap possible.
}

TEST(Solver, GapDefinitionMatchesPaper)
{
    Result r;
    r.makespan = 100;
    r.lowerBound = 90;
    EXPECT_DOUBLE_EQ(r.gap(), 0.10);
    r.makespan = 0;
    EXPECT_DOUBLE_EQ(r.gap(), 0.0);
}

TEST(Solver, StatusNames)
{
    EXPECT_STREQ(toString(SolveStatus::Optimal), "optimal");
    EXPECT_STREQ(toString(SolveStatus::NearOptimal), "near-optimal");
    EXPECT_STREQ(toString(SolveStatus::Feasible), "feasible");
    EXPECT_STREQ(toString(SolveStatus::Infeasible), "infeasible");
    EXPECT_STREQ(toString(SolveStatus::NoSolution), "no-solution");
}

TEST(Solver, SolveStatsArePopulated)
{
    Model m;
    int g = m.addGroup("G");
    for (int i = 0; i < 3; ++i) {
        Task t;
        t.modes.push_back({g, 2, {}});
        t.modes.push_back({kNoGroup, 3, {}});
        m.addTask(t);
    }
    m.setHorizon(12);
    Result r = Solver(exactOptions()).solve(m);
    EXPECT_TRUE(r.hasSchedule());
    EXPECT_GT(r.stats.greedyMakespan, 0);
    EXPECT_GE(r.stats.seconds, 0.0);
}

/** A moderately hard instance: three devices, power, precedence. */
Model
contendedModel(int tasks)
{
    Model m;
    m.addResource(4.0, "power");
    int g0 = m.addGroup("G0");
    int g1 = m.addGroup("G1");
    Rng rng(12345);
    for (int i = 0; i < tasks; ++i) {
        Task t;
        t.name = "t" + std::to_string(i);
        t.modes.push_back({kNoGroup,
                           static_cast<Time>(rng.uniformInt(3, 6)),
                           {1.0}});
        t.modes.push_back({rng.chance(0.5) ? g0 : g1,
                           static_cast<Time>(rng.uniformInt(1, 3)),
                           {2.0}});
        m.addTask(t);
        if (i > 0 && rng.chance(0.4))
            m.addPrecedence(static_cast<int>(rng.uniformInt(0, i - 1)),
                            i);
    }
    m.setHorizon(200);
    return m;
}

TEST(Solver, RepeatedSolvesAreDeterministic)
{
    Model m = contendedModel(10);
    SolverOptions options = exactOptions();
    Result a = Solver(options).solve(m);
    Result b = Solver(options).solve(m);
    ASSERT_TRUE(a.hasSchedule());
    ASSERT_TRUE(b.hasSchedule());
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.lowerBound, b.lowerBound);
    EXPECT_EQ(a.stats.nodes, b.stats.nodes);
    EXPECT_EQ(a.stats.backtracks, b.stats.backtracks);
    ASSERT_EQ(a.schedule.tasks.size(), b.schedule.tasks.size());
    for (size_t t = 0; t < a.schedule.tasks.size(); ++t) {
        EXPECT_EQ(a.schedule.tasks[t].mode, b.schedule.tasks[t].mode);
        EXPECT_EQ(a.schedule.tasks[t].start,
                  b.schedule.tasks[t].start);
    }
}

TEST(Solver, FeasibleHintIsAcceptedAndNeverWorsened)
{
    Model m = contendedModel(10);
    Result cold = Solver(exactOptions()).solve(m);
    ASSERT_TRUE(cold.hasSchedule());

    // Starve the solver so the hint has to carry the result.
    SolverOptions tight;
    tight.targetGap = 0.0;
    tight.maxNodes = 1;
    Result warm = Solver(tight).solve(m, &cold.schedule);
    ASSERT_TRUE(warm.hasSchedule());
    EXPECT_TRUE(warm.stats.hintAccepted);
    EXPECT_EQ(warm.stats.hintMakespan, cold.makespan);
    EXPECT_LE(warm.makespan, cold.makespan);
}

TEST(Solver, InvalidHintIsIgnored)
{
    Model m = contendedModel(6);
    // A hint that violates the model (all tasks overlap at start 0
    // on their device modes) must be rejected, not crash the solve.
    ScheduleVec bogus;
    bogus.tasks.assign(m.numTasks(), Assignment{1, 0});
    Result r = Solver(exactOptions()).solve(m, &bogus);
    ASSERT_TRUE(r.hasSchedule());
    EXPECT_FALSE(r.stats.hintAccepted);
    EXPECT_TRUE(checkSchedule(m, r.schedule).empty());
}

TEST(Solver, NullHintMatchesPlainSolve)
{
    Model m = contendedModel(8);
    Result plain = Solver(exactOptions()).solve(m);
    Result with_null = Solver(exactOptions()).solve(m, nullptr);
    ASSERT_TRUE(plain.hasSchedule());
    EXPECT_EQ(plain.makespan, with_null.makespan);
    EXPECT_EQ(plain.stats.nodes, with_null.stats.nodes);
}

/**
 * Randomized cross-check against the brute-force oracle. Instances
 * are kept tiny (3 tasks, horizon 6) so exhaustive enumeration is
 * affordable, but they cover groups, resources, multi-mode choice,
 * and precedence.
 */
class SolverOracle : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SolverOracle, MatchesBruteForce)
{
    Rng rng(GetParam());
    Model m;
    m.addResource(2.0, "res");
    int g = m.addGroup("G");
    const int n = 3;
    for (int i = 0; i < n; ++i) {
        Task t;
        t.name = "t" + std::to_string(i);
        int modes = 1 + static_cast<int>(rng.uniformInt(0, 1));
        for (int mo = 0; mo < modes; ++mo) {
            Mode mode;
            mode.group = rng.chance(0.5) ? g : kNoGroup;
            mode.duration = static_cast<Time>(rng.uniformInt(1, 3));
            mode.usage = {rng.chance(0.5) ? 1.0 : 2.0};
            t.modes.push_back(mode);
        }
        m.addTask(t);
    }
    if (rng.chance(0.7))
        m.addPrecedence(0, 1);
    if (rng.chance(0.4))
        m.addPrecedence(1, 2);
    m.setHorizon(6);

    Time oracle = bruteForceOptimum(m);
    Result r = Solver(exactOptions()).solve(m);
    if (oracle < 0) {
        EXPECT_EQ(r.status, SolveStatus::Infeasible);
    } else {
        ASSERT_TRUE(r.hasSchedule())
            << "oracle found makespan " << oracle;
        EXPECT_EQ(r.status, SolveStatus::Optimal);
        EXPECT_EQ(r.makespan, oracle);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SolverOracle,
                         ::testing::Range<uint64_t>(1, 31));

} // anonymous namespace
} // namespace cp
} // namespace hilp
