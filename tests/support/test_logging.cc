/** @file Unit tests for the logging layer. */

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace hilp {
namespace {

/** Restore the global log level after each test. */
class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = logLevel(); }
    void TearDown() override { setLogLevel(saved_); }

  private:
    LogLevel saved_ = LogLevel::Inform;
};

TEST_F(LoggingTest, DefaultLevelIsInform)
{
    setLogLevel(LogLevel::Inform);
    EXPECT_EQ(logLevel(), LogLevel::Inform);
}

TEST_F(LoggingTest, InformRespectsLevel)
{
    setLogLevel(LogLevel::Inform);
    ::testing::internal::CaptureStderr();
    inform("hello %d", 42);
    std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("info: hello 42"), std::string::npos);

    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    inform("suppressed");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, WarnRespectsLevel)
{
    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    warn("careful: %s", "x");
    std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("warn: careful: x"), std::string::npos);

    setLogLevel(LogLevel::Silent);
    ::testing::internal::CaptureStderr();
    warn("quiet");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, DebugOnlyAtDebugLevel)
{
    setLogLevel(LogLevel::Inform);
    ::testing::internal::CaptureStderr();
    debug("hidden");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Debug);
    ::testing::internal::CaptureStderr();
    debug("visible");
    EXPECT_NE(::testing::internal::GetCapturedStderr().find(
                  "debug: visible"),
              std::string::npos);
}

TEST_F(LoggingTest, ParseLogLevelAcceptsNamesAndNumbers)
{
    LogLevel level = LogLevel::Inform;
    EXPECT_TRUE(parseLogLevel("silent", &level));
    EXPECT_EQ(level, LogLevel::Silent);
    EXPECT_TRUE(parseLogLevel("0", &level));
    EXPECT_EQ(level, LogLevel::Silent);
    EXPECT_TRUE(parseLogLevel("warn", &level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("inform", &level));
    EXPECT_EQ(level, LogLevel::Inform);
    EXPECT_TRUE(parseLogLevel("info", &level));
    EXPECT_EQ(level, LogLevel::Inform);
    EXPECT_TRUE(parseLogLevel("debug", &level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("3", &level));
    EXPECT_EQ(level, LogLevel::Debug);
    // Case-insensitive, as environment variables tend to be typed.
    EXPECT_TRUE(parseLogLevel("DEBUG", &level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("Warn", &level));
    EXPECT_EQ(level, LogLevel::Warn);
}

TEST_F(LoggingTest, ParseLogLevelRejectsGarbage)
{
    LogLevel level = LogLevel::Inform;
    EXPECT_FALSE(parseLogLevel("", &level));
    EXPECT_FALSE(parseLogLevel("loud", &level));
    EXPECT_FALSE(parseLogLevel("4", &level));
    EXPECT_FALSE(parseLogLevel(nullptr, &level));
    EXPECT_EQ(level, LogLevel::Inform); // Untouched on failure.
}

TEST_F(LoggingTest, EmitWritesTheWholeLineAtOnce)
{
    setLogLevel(LogLevel::Inform);
    ::testing::internal::CaptureStderr();
    inform("one");
    inform("two");
    std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out, "info: one\ninfo: two\n");
}

TEST_F(LoggingTest, AssertMacroPassesOnTrue)
{
    hilp_assert(1 + 1 == 2);
    SUCCEED();
}

TEST(LoggingDeath, AssertMacroAbortsOnFalse)
{
    EXPECT_DEATH(hilp_assert(false), "assertion 'false' failed");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "panic: boom 7");
}

TEST(LoggingDeath, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad input %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad input x");
}

} // anonymous namespace
} // namespace hilp
