#include "scaling.hh"

#include <algorithm>
#include <cmath>

#include "arch/dvfs.hh"
#include "support/logging.hh"

namespace hilp {
namespace workload {

namespace {

/** Clock-derating factor (f_base / f)^gamma for execution time. */
double
clockFactor(const PhaseProfile &phase, int clock_mhz)
{
    hilp_assert(clock_mhz > 0);
    double ratio = static_cast<double>(arch::kBaseClockMhz) /
                   static_cast<double>(clock_mhz);
    return std::pow(ratio, phase.freqGamma);
}

} // anonymous namespace

double
acceleratorTimeS(const PhaseProfile &phase, int units, int clock_mhz)
{
    hilp_assert(phase.kind == PhaseKind::Compute);
    hilp_assert(phase.gpuCompatible);
    hilp_assert(units >= 1);
    double sm_scale = phase.timeLaw.scaleFrom(kProfileSms, units);
    return phase.gpuTime98 * sm_scale * clockFactor(phase, clock_mhz);
}

double
acceleratorBwGBs(const PhaseProfile &phase, int units, int clock_mhz)
{
    hilp_assert(phase.kind == PhaseKind::Compute);
    hilp_assert(phase.gpuCompatible);
    hilp_assert(units >= 1);
    double sm_scale = phase.bwLaw.scaleFrom(kBwBaseSms, units);
    // Same bytes, longer time at lower clocks: demand divides by the
    // clock derating factor.
    return phase.gpuBwBase * sm_scale / clockFactor(phase, clock_mhz);
}

double
cpuTimeS(const PhaseProfile &phase, int cores)
{
    hilp_assert(cores >= 1);
    if (phase.kind == PhaseKind::Sequential)
        return phase.cpuTime1;
    // Substitution (DESIGN.md): the kernel's CPU-core scaling uses
    // the same exponent as its SM scaling.
    return phase.cpuTime1 * std::pow(static_cast<double>(cores),
                                     phase.timeLaw.b);
}

double
cpuBwGBs(const PhaseProfile &phase, int cores)
{
    if (phase.kind == PhaseKind::Sequential || !phase.gpuCompatible)
        return 1.0;
    // Conserve the traffic observed on the full GPU.
    double bytes_gb = phase.gpuBwBase *
                      phase.bwLaw.scaleFrom(kBwBaseSms, kProfileSms) *
                      phase.gpuTime98;
    double time = cpuTimeS(phase, cores);
    if (time <= 0.0)
        return 1.0;
    return std::max(1.0, bytes_gb / time);
}

double
frequencyGamma(double gpu_bw98)
{
    return std::clamp(1.0 - gpu_bw98 / 250.0, 0.2, 1.0);
}

} // namespace workload
} // namespace hilp
