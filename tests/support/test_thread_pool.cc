/** @file Unit tests for the thread pool and the thread budget. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_pool.hh"

namespace hilp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItems)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForSingleItem)
{
    ThreadPool pool(2);
    std::atomic<int> hits{0};
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++hits;
    });
    EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolWorks)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> counter{0};
    pool.parallelFor(50, [&](size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultSizeIsPositive)
{
    ThreadPool pool;
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitWithNoWorkReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, SequentialParallelForBatches)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int round = 0; round < 5; ++round)
        pool.parallelFor(20, [&](size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForManyMoreItemsThanThreads)
{
    ThreadPool pool(2);
    std::atomic<long> sum{0};
    const size_t n = 10000;
    pool.parallelFor(n, [&](size_t i) { sum += static_cast<long>(i); });
    EXPECT_EQ(sum.load(), static_cast<long>(n * (n - 1) / 2));
}

TEST(ThreadPool, TaskExceptionRethrownFromWait)
{
    ThreadPool pool(4);
    pool.submit([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is cleared: the pool stays usable.
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsWithoutHanging)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.parallelFor(100, [&](size_t i) {
            if (i == 13)
                throw std::runtime_error("index 13");
            ++ran;
        });
        FAIL() << "exception did not propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()), "index 13");
    }
    // All indices finished or were abandoned; either way the pool
    // must have drained and still accept new work.
    pool.parallelFor(10, [&](size_t) { ++ran; });
    EXPECT_GE(ran.load(), 10);
}

TEST(ThreadPool, FirstOfManyExceptionsWins)
{
    ThreadPool pool(2);
    std::atomic<int> thrown{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&thrown] {
            ++thrown;
            throw std::runtime_error("boom");
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Every task ran to completion (none deadlocked the counter) and
    // a subsequent wait() has nothing left to report.
    EXPECT_EQ(thrown.load(), 20);
    pool.wait();
}

TEST(ThreadBudget, DefaultsToHardwareConcurrency)
{
    ThreadBudget budget;
    EXPECT_GE(budget.total(), 1);
    EXPECT_EQ(budget.available(), budget.total());
    EXPECT_GE(ThreadBudget::global().total(), 1);
}

TEST(ThreadBudget, TryAcquireGrantsUpToAvailable)
{
    ThreadBudget budget(3);
    EXPECT_EQ(budget.tryAcquire(2), 2);
    EXPECT_EQ(budget.available(), 1);
    // Non-blocking: asking for more than remains grants the rest.
    EXPECT_EQ(budget.tryAcquire(5), 1);
    EXPECT_EQ(budget.available(), 0);
    EXPECT_EQ(budget.tryAcquire(1), 0);
    budget.release(3);
    EXPECT_EQ(budget.available(), 3);
}

TEST(ThreadBudget, TryAcquireOfNothingIsFree)
{
    ThreadBudget budget(2);
    EXPECT_EQ(budget.tryAcquire(0), 0);
    EXPECT_EQ(budget.tryAcquire(-3), 0);
    EXPECT_EQ(budget.available(), 2);
}

TEST(ThreadBudget, LeaseReleasesOnDestruction)
{
    ThreadBudget budget(4);
    {
        ThreadBudget::Lease lease = budget.lease(3);
        EXPECT_EQ(lease.count(), 3);
        EXPECT_EQ(budget.available(), 1);
        // Moving transfers ownership without double-release.
        ThreadBudget::Lease moved = std::move(lease);
        EXPECT_EQ(moved.count(), 3);
        EXPECT_EQ(budget.available(), 1);
    }
    EXPECT_EQ(budget.available(), 4);
}

TEST(ThreadBudget, AcquireBlocksUntilReleased)
{
    ThreadBudget budget(1);
    budget.acquire(1);
    std::atomic<bool> acquired{false};
    std::thread waiter([&] {
        budget.acquire(1); // Blocks until the main thread releases.
        acquired.store(true);
        budget.release(1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(acquired.load());
    budget.release(1);
    waiter.join();
    EXPECT_TRUE(acquired.load());
    EXPECT_EQ(budget.available(), 1);
}

TEST(ThreadBudget, PoolWorkersRespectTheBudget)
{
    // Four workers sharing two slots: at most two tasks ever run
    // concurrently, but all of them complete.
    ThreadBudget budget(2);
    ThreadPool pool(4, &budget);
    std::atomic<int> running{0};
    std::atomic<int> peak{0};
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&] {
            int now = ++running;
            int seen = peak.load();
            while (now > seen && !peak.compare_exchange_weak(seen, now))
                ;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            --running;
            ++done;
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 64);
    EXPECT_LE(peak.load(), 2);
    // Idle workers returned their slots.
    EXPECT_EQ(budget.available(), 2);
}

TEST(ThreadBudget, IdlePoolLendsSlotsToBorrowers)
{
    // A budget-aware pool with no queued work holds no slots, so an
    // inner layer can borrow the full budget; once it releases, pool
    // tasks run again.
    ThreadBudget budget(2);
    ThreadPool pool(2, &budget);
    ThreadBudget::Lease lease = budget.lease(2);
    EXPECT_EQ(lease.count(), 2);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; }); // Parked until a slot frees up.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(ran.load(), 0);
    lease.reset();
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

} // anonymous namespace
} // namespace hilp
