/** @file Unit tests for the SoC architecture model. */

#include <gtest/gtest.h>

#include "arch/design_space.hh"
#include "arch/dvfs.hh"
#include "arch/soc.hh"

namespace hilp {
namespace arch {
namespace {

TEST(Dvfs, TableIiiHasElevenOperatingPoints)
{
    EXPECT_EQ(gpuOperatingPoints().size(), 11u);
    EXPECT_EQ(gpuOperatingPoints().front().clockMhz, 210);
    EXPECT_EQ(gpuOperatingPoints().back().clockMhz, 765);
}

TEST(Dvfs, OperatingPointsAreAscendingInClockAndPower)
{
    const auto &points = gpuOperatingPoints();
    for (size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].clockMhz, points[i - 1].clockMhz);
        EXPECT_GT(points[i].allSmsPowerW, points[i - 1].allSmsPowerW);
    }
}

TEST(Dvfs, PerSmPowerMatchesTableIii)
{
    // Table III's per-SM column: 77.2 W / 128 SMs = 0.6 W.
    EXPECT_NEAR(gpuOperatingPoint(210).perSmPowerW(), 0.6, 0.05);
    EXPECT_NEAR(gpuOperatingPoint(765).perSmPowerW(), 1.4, 0.05);
}

TEST(Dvfs, DarkSiliconAnecdoteFromThePaper)
{
    // Section V: a 50 W budget caps a 64-SM GPU at 300 MHz while a
    // 32-SM GPU can use the full frequency range.
    EXPECT_LE(gpuPowerW(64, 300), 50.0);
    EXPECT_GT(gpuPowerW(64, 360), 50.0);
    EXPECT_LE(gpuPowerW(32, 765), 50.0);
}

TEST(Dvfs, SixteenSmGpuPowerRange)
{
    // Section VI: "our smallest GPU (16 SMs) consumes from ~10 W to
    // ~24 W depending on the selected operating point".
    EXPECT_NEAR(gpuPowerW(16, 210), 9.65, 0.5);
    EXPECT_NEAR(gpuPowerW(16, 765), 23.2, 1.5);
}

TEST(Dvfs, DsaPowerEqualsPerPeSmPower)
{
    // A PE draws one SM's power regardless of the advantage.
    EXPECT_DOUBLE_EQ(dsaPowerW(16, 765), gpuPowerW(16, 765));
}

TEST(Dvfs, GpuPowerScalesLinearlyWithSms)
{
    double p32 = gpuPowerW(32, 480);
    double p64 = gpuPowerW(64, 480);
    EXPECT_NEAR(p64, 2.0 * p32, 1e-9);
}

TEST(Soc, AreaOfHeadlineSocsMatchesPaper)
{
    // Figure 7: MA's (c1,g64,d0^0) is 432.6 mm2, Gables'
    // (c4,g4,d3^4) is 170.4 mm2, HILP's (c4,g16,d2^16) is
    // 378.4 mm2, and (c4,g64,d0^0) is 482.4 mm2.
    SocConfig ma;
    ma.cpuCores = 1;
    ma.gpuSms = 64;
    EXPECT_NEAR(ma.areaMm2(), 432.6, 0.05);

    SocConfig gables;
    gables.cpuCores = 4;
    gables.gpuSms = 4;
    gables.dsas = {{4, 0}, {4, 1}, {4, 2}};
    EXPECT_NEAR(gables.areaMm2(), 170.4, 0.05);

    SocConfig hilp;
    hilp.cpuCores = 4;
    hilp.gpuSms = 16;
    hilp.dsas = {{16, 0}, {16, 1}};
    EXPECT_NEAR(hilp.areaMm2(), 378.4, 0.05);

    SocConfig big_gpu;
    big_gpu.cpuCores = 4;
    big_gpu.gpuSms = 64;
    EXPECT_NEAR(big_gpu.areaMm2(), 482.4, 0.05);
}

TEST(Soc, HomogeneousSocArea)
{
    SocConfig c;
    c.cpuCores = 1;
    EXPECT_NEAR(c.areaMm2(), 16.6, 1e-9);
}

TEST(Soc, NameFormat)
{
    SocConfig c;
    c.cpuCores = 4;
    c.gpuSms = 16;
    c.dsas = {{16, 5}, {16, 3}};
    EXPECT_EQ(c.name(), "(c4,g16,d2^16)");
    SocConfig plain;
    plain.cpuCores = 2;
    EXPECT_EQ(plain.name(), "(c2,g0,d0^0)");
}

TEST(Soc, Validity)
{
    SocConfig good;
    good.cpuCores = 1;
    EXPECT_TRUE(good.valid());
    SocConfig no_cpu;
    no_cpu.cpuCores = 0;
    EXPECT_FALSE(no_cpu.valid());
    SocConfig bad_dsa;
    bad_dsa.cpuCores = 1;
    bad_dsa.dsas = {{0, 0}};
    EXPECT_FALSE(bad_dsa.valid());
}

TEST(Memory, DefaultSpecMatchesPaper)
{
    MemorySpec memory;
    EXPECT_DOUBLE_EQ(memory.bandwidthGBs, 800.0);
    EXPECT_DOUBLE_EQ(memory.pjPerBit, 7.0);
    // 7 pJ/bit * 8e9 bit/GB = 0.056 W per GB/s.
    EXPECT_NEAR(memory.wattsPerGBs(), 0.056, 1e-9);
}

TEST(Constraints, DefaultPowerBudget)
{
    Constraints c;
    EXPECT_DOUBLE_EQ(c.powerBudgetW, 600.0);
}

TEST(DesignSpace, PaperSpaceHas372Configs)
{
    DesignSpace space;
    std::vector<int> priority = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto configs = enumerateDesignSpace(space, priority);
    EXPECT_EQ(configs.size(), 372u);
}

TEST(DesignSpace, DsaAllocationFollowsPriority)
{
    DesignSpace space;
    space.cpuOptions = {1};
    space.gpuOptions = {0};
    space.maxDsas = 3;
    space.peOptions = {4};
    std::vector<int> priority = {7, 2, 5};
    auto configs = enumerateDesignSpace(space, priority);
    // 1 zero-DSA config + 3 DSA counts.
    ASSERT_EQ(configs.size(), 4u);
    EXPECT_TRUE(configs[0].dsas.empty());
    ASSERT_EQ(configs[1].dsas.size(), 1u);
    EXPECT_EQ(configs[1].dsas[0].target, 7);
    ASSERT_EQ(configs[3].dsas.size(), 3u);
    EXPECT_EQ(configs[3].dsas[1].target, 2);
    EXPECT_EQ(configs[3].dsas[2].target, 5);
}

TEST(DesignSpace, AllConfigsValid)
{
    DesignSpace space;
    std::vector<int> priority = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    for (const SocConfig &config :
         enumerateDesignSpace(space, priority))
        EXPECT_TRUE(config.valid()) << config.name();
}

TEST(DesignSpace, UniformPeCountPerConfig)
{
    DesignSpace space;
    std::vector<int> priority = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    for (const SocConfig &config :
         enumerateDesignSpace(space, priority)) {
        for (const DsaSpec &dsa : config.dsas)
            EXPECT_EQ(dsa.pes, config.dsas.front().pes);
    }
}

} // anonymous namespace
} // namespace arch
} // namespace hilp
