#include "report.hh"

#include <algorithm>
#include <cmath>

#include "hilp/problem.hh"
#include "support/metrics.hh"
#include "support/str.hh"
#include "support/version.hh"

namespace hilp {
namespace dse {

namespace {

/** Keep free-form notes from breaking the CSV row structure. */
std::string
csvSafe(std::string text)
{
    std::replace(text.begin(), text.end(), ',', ';');
    std::replace(text.begin(), text.end(), '\n', ' ');
    return text;
}

/**
 * A numeric CSV cell. Result-derived fields can be non-finite (an
 * infeasible point's gap is inf; a degraded fallback can report nan
 * WLP); printf would render those as "inf"/"nan", which most CSV
 * consumers choke on. An empty cell is the CSV idiom for "no value".
 */
std::string
csvNum(double value, int precision)
{
    if (!std::isfinite(value))
        return std::string();
    return format("%.*f", precision, value);
}

/** A point's propagation-engine counters summed over propagators. */
struct PropTotals
{
    int64_t invocations = 0;
    int64_t prunings = 0;
    double seconds = 0.0;
};

PropTotals
propTotals(const DsePoint &point)
{
    PropTotals totals;
    for (const cp::PropagatorStats &stats : point.propagators) {
        totals.invocations += stats.invocations;
        totals.prunings += stats.prunings;
        totals.seconds += stats.seconds;
    }
    return totals;
}

} // anonymous namespace

std::string
pointsToCsv(const std::vector<DsePoint> &points)
{
    std::string out =
        "config,cpus,gpu_sms,dsas,pes,area_mm2,ok,makespan_s,"
        "speedup,avg_wlp,gap,mix,status,nodes,backtracks,solves,"
        "solve_s,cache_hit,warm_start,pruned,degraded,errored,"
        "resumed,propagations,prunings,prop_s,note\n";
    for (const DsePoint &point : points) {
        int pes = point.config.dsas.empty()
            ? 0 : point.config.dsas.front().pes;
        PropTotals props = propTotals(point);
        out += format("%s,%d,%d,%zu,%d,%.3f,%d,%s,%s,%s,%s,"
                      "%s,%s,%lld,%lld,%d,%s,%d,%d,%d,%d,%d,%d,"
                      "%lld,%lld,%.3f,%s\n",
                      point.config.name().c_str(),
                      point.config.cpuCores, point.config.gpuSms,
                      point.config.dsas.size(), pes, point.areaMm2,
                      point.ok ? 1 : 0,
                      csvNum(point.makespanS, 6).c_str(),
                      csvNum(point.speedup, 6).c_str(),
                      csvNum(point.averageWlp, 6).c_str(),
                      csvNum(point.gap, 6).c_str(),
                      toString(point.mix), cp::toString(point.status),
                      static_cast<long long>(point.nodes),
                      static_cast<long long>(point.backtracks),
                      point.solves,
                      csvNum(point.solveSeconds, 3).c_str(),
                      point.cacheHit ? 1 : 0,
                      point.warmStarted ? 1 : 0, point.pruned ? 1 : 0,
                      point.degraded ? 1 : 0, point.errored ? 1 : 0,
                      point.resumed ? 1 : 0,
                      static_cast<long long>(props.invocations),
                      static_cast<long long>(props.prunings),
                      props.seconds,
                      csvSafe(point.note).c_str());
    }
    return out;
}

Json
pointsToJson(const std::vector<DsePoint> &points)
{
    Json array = Json::array();
    for (const DsePoint &point : points) {
        Json entry = Json::object();
        entry.set("config", Json::string(point.config.name()));
        entry.set("cpus", Json::number(
            static_cast<int64_t>(point.config.cpuCores)));
        entry.set("gpu_sms", Json::number(
            static_cast<int64_t>(point.config.gpuSms)));
        entry.set("dsas", Json::number(
            static_cast<int64_t>(point.config.dsas.size())));
        entry.set("area_mm2", Json::number(point.areaMm2));
        entry.set("ok", Json::boolean(point.ok));
        entry.set("makespan_s", Json::number(point.makespanS));
        entry.set("speedup", Json::number(point.speedup));
        entry.set("avg_wlp", Json::number(point.averageWlp));
        entry.set("gap", Json::number(point.gap));
        entry.set("mix", Json::string(toString(point.mix)));
        entry.set("status", Json::string(cp::toString(point.status)));
        entry.set("nodes", Json::number(point.nodes));
        entry.set("backtracks", Json::number(point.backtracks));
        entry.set("solves", Json::number(
            static_cast<int64_t>(point.solves)));
        entry.set("solve_s", Json::number(point.solveSeconds));
        entry.set("cache_hit", Json::boolean(point.cacheHit));
        entry.set("warm_start", Json::boolean(point.warmStarted));
        entry.set("pruned", Json::boolean(point.pruned));
        entry.set("degraded", Json::boolean(point.degraded));
        entry.set("errored", Json::boolean(point.errored));
        entry.set("resumed", Json::boolean(point.resumed));
        Json propagators = Json::array();
        for (const cp::PropagatorStats &stats : point.propagators) {
            Json prop = Json::object();
            prop.set("name", Json::string(stats.name));
            prop.set("invocations", Json::number(stats.invocations));
            prop.set("prunings", Json::number(stats.prunings));
            prop.set("seconds", Json::number(stats.seconds));
            propagators.append(std::move(prop));
        }
        entry.set("propagators", std::move(propagators));
        entry.set("note", Json::string(point.note));
        array.append(std::move(entry));
    }
    return array;
}

SweepSummary
summarizeSweep(const std::vector<DsePoint> &points)
{
    SweepSummary summary;
    summary.points = static_cast<int>(points.size());
    for (const DsePoint &point : points) {
        if (point.ok)
            ++summary.ok;
        else if (point.errored)
            ++summary.errored; // A fault, not a verdict on the spec.
        else if (point.status == cp::SolveStatus::NoSolution &&
                 point.solves == 0 && !point.cacheHit)
            ++summary.infeasible;
        else
            ++summary.noSolution;
        if (point.cacheHit)
            ++summary.cacheHits;
        if (point.warmStarted)
            ++summary.warmStarted;
        if (point.pruned)
            ++summary.pruned;
        if (point.degraded)
            ++summary.degraded;
        if (point.resumed)
            ++summary.resumed;
        summary.solves += point.solves;
        summary.nodes += point.nodes;
        summary.backtracks += point.backtracks;
        summary.solveSeconds += point.solveSeconds;
        cp::mergePropagatorStats(summary.propagators,
                                 point.propagators);
    }
    return summary;
}

std::string
toString(const SweepSummary &summary)
{
    std::string out =
        format("%d points: %d ok, %d infeasible, %d unsolved | "
               "%d solves, %lld nodes, %lld backtracks, %.2fs | "
               "%d cache hits, %d warm starts, %d pruned",
               summary.points, summary.ok, summary.infeasible,
               summary.noSolution, summary.solves,
               static_cast<long long>(summary.nodes),
               static_cast<long long>(summary.backtracks),
               summary.solveSeconds, summary.cacheHits,
               summary.warmStarted, summary.pruned);
    // Robustness outcomes only appear when something actually
    // happened - the common all-clean sweep keeps the short line.
    if (summary.degraded || summary.errored || summary.resumed)
        out += format(" | %d degraded, %d errored, %d resumed",
                      summary.degraded, summary.errored,
                      summary.resumed);
    if (!summary.propagators.empty()) {
        out += " | propagation:";
        for (const cp::PropagatorStats &stats : summary.propagators) {
            out += format(" %s %lld/%lld", stats.name.c_str(),
                          static_cast<long long>(stats.invocations),
                          static_cast<long long>(stats.prunings));
        }
    }
    return out;
}

Json
toJson(const SweepSummary &summary)
{
    Json out = Json::object();
    out.set("points", Json::number(
        static_cast<int64_t>(summary.points)));
    out.set("ok", Json::number(static_cast<int64_t>(summary.ok)));
    out.set("infeasible", Json::number(
        static_cast<int64_t>(summary.infeasible)));
    out.set("no_solution", Json::number(
        static_cast<int64_t>(summary.noSolution)));
    out.set("cache_hits", Json::number(
        static_cast<int64_t>(summary.cacheHits)));
    out.set("warm_started", Json::number(
        static_cast<int64_t>(summary.warmStarted)));
    out.set("pruned", Json::number(
        static_cast<int64_t>(summary.pruned)));
    out.set("degraded", Json::number(
        static_cast<int64_t>(summary.degraded)));
    out.set("errored", Json::number(
        static_cast<int64_t>(summary.errored)));
    out.set("resumed", Json::number(
        static_cast<int64_t>(summary.resumed)));
    out.set("solves", Json::number(
        static_cast<int64_t>(summary.solves)));
    out.set("nodes", Json::number(summary.nodes));
    out.set("backtracks", Json::number(summary.backtracks));
    out.set("solve_s", Json::number(summary.solveSeconds));
    Json propagators = Json::array();
    for (const cp::PropagatorStats &stats : summary.propagators) {
        Json prop = Json::object();
        prop.set("name", Json::string(stats.name));
        prop.set("invocations", Json::number(stats.invocations));
        prop.set("prunings", Json::number(stats.prunings));
        prop.set("seconds", Json::number(stats.seconds));
        propagators.append(std::move(prop));
    }
    out.set("propagators", std::move(propagators));
    return out;
}

Json
sweepReportJson(const std::vector<DsePoint> &points)
{
    Json report = Json::object();
    report.set("version", versionJson());
    report.set("points", pointsToJson(points));
    report.set("summary", toJson(summarizeSweep(points)));
    report.set("metrics", metrics::snapshotJson());
    return report;
}

OffloadAnalysis
analyzeOffload(const Schedule &schedule)
{
    OffloadAnalysis analysis;
    for (const ScheduledPhase &phase : schedule.phases) {
        bool is_gpu = phase.unitLabel.rfind("GPU", 0) == 0;
        bool is_dsa = phase.unitLabel.rfind("DSA", 0) == 0;
        bool is_cpu_compute = phase.device == kCpuPool &&
            phase.unitLabel.rfind("CPUx", 0) == 0;
        if (is_gpu)
            analysis.gpuBusyS += phase.durationS;
        else if (is_dsa)
            analysis.dsaBusyS += phase.durationS;
        else if (is_cpu_compute)
            analysis.cpuComputeS += phase.durationS;
    }
    double accelerated = analysis.gpuBusyS + analysis.dsaBusyS;
    if (accelerated > 0.0)
        analysis.dsaShare = analysis.dsaBusyS / accelerated;
    return analysis;
}

} // namespace dse
} // namespace hilp
