#include "builder.hh"

#include <algorithm>
#include <cmath>

#include "arch/dvfs.hh"
#include "support/logging.hh"
#include "support/str.hh"
#include "workload/scaling.hh"

namespace hilp {

namespace {

using workload::PhaseKind;
using workload::PhaseProfile;

/** The clock list to expose (defaults to all Table III points). */
std::vector<int>
clockList(const BuildOptions &options)
{
    if (!options.clocksMhz.empty())
        return options.clocksMhz;
    std::vector<int> clocks;
    for (const auto &point : arch::gpuOperatingPoints())
        clocks.push_back(point.clockMhz);
    return clocks;
}

/** CPU core counts offered to compute phases. */
std::vector<int>
coreList(const BuildOptions &options, int cpu_cores)
{
    std::vector<int> cores;
    if (!options.cpuCoreOptions.empty()) {
        for (int c : options.cpuCoreOptions)
            if (c >= 1 && c <= cpu_cores)
                cores.push_back(c);
    } else {
        for (int c = 1; c < cpu_cores; c *= 2)
            cores.push_back(c);
        cores.push_back(cpu_cores);
    }
    if (cores.empty())
        cores.push_back(cpu_cores);
    return cores;
}

/**
 * True when option a dominates option b on the same device: at least
 * as fast and at most as demanding in every dimension that can still
 * bind.
 */
bool
dominates(const UnitOption &a, const UnitOption &b, bool power_binds,
          bool bw_binds)
{
    if (a.device != b.device)
        return false;
    if (a.timeS > b.timeS)
        return false;
    if (a.cpuCores > b.cpuCores)
        return false;
    if (power_binds && a.powerW > b.powerW)
        return false;
    if (bw_binds && a.bwGBs > b.bwGBs)
        return false;
    return true;
}

/** Remove options dominated by another option of the same phase. */
void
pruneDominated(PhaseSpec &phase, bool power_binds, bool bw_binds)
{
    std::vector<UnitOption> kept;
    for (size_t i = 0; i < phase.options.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < phase.options.size() && !dominated;
             ++j) {
            if (i == j)
                continue;
            if (!dominates(phase.options[j], phase.options[i],
                           power_binds, bw_binds))
                continue;
            // Symmetric (equal) options: keep only the first.
            if (dominates(phase.options[i], phase.options[j],
                          power_binds, bw_binds) && i < j)
                continue;
            dominated = true;
        }
        if (!dominated)
            kept.push_back(phase.options[i]);
    }
    // A phase whose options were all filtered out by the budgets is
    // left empty here; ProblemSpec::validate reports it to the user.
    phase.options = std::move(kept);
}

} // anonymous namespace

ProblemSpec
buildProblem(const workload::Workload &workload,
             const arch::SocConfig &soc,
             const arch::Constraints &constraints,
             const BuildOptions &options)
{
    if (!soc.valid())
        fatal("invalid SoC configuration %s", soc.name().c_str());

    ProblemSpec spec;
    spec.name = format("%s on %s", workload.name.c_str(),
                       soc.name().c_str());
    spec.cpuCores = soc.cpuCores;
    spec.powerBudgetW = constraints.powerBudgetW;
    spec.bandwidthGBs = constraints.memory.bandwidthGBs;
    for (const arch::CacheLevel &level : constraints.cacheLevels)
        spec.extraResources.push_back(
            {level.name, level.bandwidthGBs});

    // Note: memory access energy (MemorySpec::wattsPerGBs) is NOT
    // charged against p_max. The paper's power constraint covers the
    // compute units only - its dark-silicon arithmetic (a 50 W budget
    // admits a 64-SM GPU at exactly 300 MHz) leaves no room for a
    // memory term.
    const std::vector<int> clocks = clockList(options);
    const std::vector<int> cores = coreList(options, soc.cpuCores);

    // Device table: GPU first (if present), then the DSAs.
    int gpu_device = -1;
    if (soc.gpuSms > 0) {
        gpu_device = static_cast<int>(spec.deviceNames.size());
        spec.deviceNames.push_back(format("GPU%d", soc.gpuSms));
    }
    std::vector<int> dsa_devices;
    for (size_t d = 0; d < soc.dsas.size(); ++d) {
        dsa_devices.push_back(static_cast<int>(spec.deviceNames.size()));
        spec.deviceNames.push_back(
            format("DSA%zu[t%d]", d, soc.dsas[d].target));
    }

    for (const workload::Application &app : workload.apps) {
        AppSpec app_spec;
        app_spec.name = app.name;
        app_spec.deps = app.deps;
        for (const PhaseProfile &phase : app.phases) {
            PhaseSpec phase_spec;
            phase_spec.name = phase.name;

            if (phase.kind == PhaseKind::Sequential) {
                UnitOption option;
                option.label = "CPU";
                option.device = kCpuPool;
                option.timeS = workload::cpuTimeS(phase, 1);
                option.bwGBs = options.sequentialBwGBs;
                option.powerW = arch::kCpuCorePowerW;
                option.cpuCores = 1.0;
                phase_spec.options.push_back(option);
            } else {
                // CPU executions at the offered core counts.
                for (int c : cores) {
                    UnitOption option;
                    option.label = format("CPUx%d", c);
                    option.device = kCpuPool;
                    option.timeS = workload::cpuTimeS(phase, c);
                    option.bwGBs = workload::cpuBwGBs(phase, c);
                    option.powerW = arch::kCpuCorePowerW * c;
                    option.cpuCores = c;
                    phase_spec.options.push_back(option);
                }
                // GPU executions at every operating point.
                if (gpu_device >= 0 && phase.gpuCompatible) {
                    for (int clock : clocks) {
                        UnitOption option;
                        option.label = format("GPU@%d", clock);
                        option.device = gpu_device;
                        option.timeS = workload::acceleratorTimeS(
                            phase, soc.gpuSms, clock);
                        option.bwGBs = workload::acceleratorBwGBs(
                            phase, soc.gpuSms, clock);
                        option.powerW =
                            arch::gpuPowerW(soc.gpuSms, clock);
                        option.cpuCores = 0.0;
                        phase_spec.options.push_back(option);
                    }
                }
                // The phase's DSA, if this SoC provides one.
                for (size_t d = 0; d < soc.dsas.size(); ++d) {
                    const arch::DsaSpec &dsa = soc.dsas[d];
                    if (dsa.target != phase.dsaTarget ||
                        phase.dsaTarget < 0 || !phase.gpuCompatible)
                        continue;
                    // A PE performs like `advantage` SMs but draws
                    // the power of one SM (see arch::DsaSpec).
                    int effective_sms = std::max(1,
                        static_cast<int>(std::lround(
                            dsa.pes * soc.dsaAdvantage)));
                    for (int clock : clocks) {
                        UnitOption option;
                        option.label = format("DSA%zu@%d", d, clock);
                        option.device = dsa_devices[d];
                        option.timeS = workload::acceleratorTimeS(
                            phase, effective_sms, clock);
                        option.bwGBs = workload::acceleratorBwGBs(
                            phase, effective_sms, clock);
                        option.powerW =
                            arch::dsaPowerW(dsa.pes, clock);
                        option.cpuCores = 0.0;
                        phase_spec.options.push_back(option);
                    }
                }
            }

            // Cache-level traffic scales with the option's DRAM
            // bandwidth (Section VII memory-hierarchy extension).
            if (!constraints.cacheLevels.empty()) {
                for (UnitOption &option : phase_spec.options) {
                    option.extraUsage.clear();
                    for (const arch::CacheLevel &level :
                         constraints.cacheLevels) {
                        option.extraUsage.push_back(
                            option.bwGBs *
                            level.trafficAmplification);
                    }
                }
            }

            // Options that bust a budget outright can never run.
            std::erase_if(phase_spec.options,
                          [&](const UnitOption &option) {
                if (option.powerW > spec.powerBudgetW ||
                    option.bwGBs > spec.bandwidthGBs ||
                    option.cpuCores > spec.cpuCores)
                    return true;
                for (size_t r = 0; r < option.extraUsage.size(); ++r)
                    if (option.extraUsage[r] >
                        spec.extraResources[r].capacity)
                        return true;
                return false;
            });

            app_spec.phases.push_back(std::move(phase_spec));
        }
        spec.apps.push_back(std::move(app_spec));
    }

    if (options.pruneDominated) {
        // Can the budgets ever bind? Conservative worst case: every
        // device draws its maximum option simultaneously.
        double worst_power = soc.cpuCores * arch::kCpuCorePowerW;
        double worst_bw = 0.0;
        std::vector<double> device_power(spec.deviceNames.size(), 0.0);
        // Bandwidth worst case: every device plus each CPU core
        // streaming the most demanding option at once.
        std::vector<double> device_bw(spec.deviceNames.size() + 1,
                                      0.0);
        for (const AppSpec &app : spec.apps) {
            for (const PhaseSpec &phase : app.phases) {
                for (const UnitOption &option : phase.options) {
                    if (option.device != kCpuPool) {
                        device_power[option.device] = std::max(
                            device_power[option.device],
                            option.powerW);
                    }
                    // CPU-pool options compete for the same cores,
                    // so their concurrent worst case is bounded by
                    // the pool size times the worst per-core demand.
                    size_t slot = option.device == kCpuPool
                        ? spec.deviceNames.size()
                        : static_cast<size_t>(option.device);
                    double demand = option.device == kCpuPool
                        ? option.bwGBs / std::max(1.0, option.cpuCores)
                        : option.bwGBs;
                    device_bw[slot] = std::max(device_bw[slot],
                                               demand);
                }
            }
        }
        for (double p : device_power)
            worst_power += p;
        for (size_t slot = 0; slot < device_bw.size(); ++slot) {
            double multiplier =
                slot == spec.deviceNames.size() ? soc.cpuCores : 1.0;
            worst_bw += device_bw[slot] * multiplier;
        }

        bool power_binds = worst_power > spec.powerBudgetW;
        // Cache-level demands scale with DRAM bandwidth, so keeping
        // the bandwidth dimension in the dominance check keeps the
        // pruning sound whenever cache levels are modeled.
        bool bw_binds = worst_bw > spec.bandwidthGBs ||
                        !constraints.cacheLevels.empty();
        for (AppSpec &app : spec.apps)
            for (PhaseSpec &phase : app.phases)
                pruneDominated(phase, power_binds, bw_binds);
    }

    return spec;
}

} // namespace hilp
