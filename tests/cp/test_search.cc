/** @file Unit tests for the branch-and-bound search. */

#include <gtest/gtest.h>

#include "cp/list_scheduler.hh"
#include "cp/model.hh"
#include "cp/search.hh"

namespace hilp {
namespace cp {
namespace {

Model
twoDeviceModel()
{
    // Four tasks, each 2 steps on either of two devices: optimum 4.
    Model m;
    int g1 = m.addGroup("A");
    int g2 = m.addGroup("B");
    for (int i = 0; i < 4; ++i) {
        Task t;
        t.modes.push_back({g1, 2, {}});
        t.modes.push_back({g2, 2, {}});
        m.addTask(t);
    }
    m.setHorizon(20);
    return m;
}

TEST(Search, FindsOptimumWithoutWarmStart)
{
    Model m = twoDeviceModel();
    SearchLimits limits;
    SearchResult r = branchAndBound(m, nullptr, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.bestMakespan, 4);
    EXPECT_EQ(checkSchedule(m, r.best), "");
}

TEST(Search, WarmStartOnlyImproves)
{
    Model m = twoDeviceModel();
    // A deliberately bad but feasible warm start: everything on A.
    ScheduleVec warm;
    warm.tasks = {{0, 0}, {0, 2}, {0, 4}, {0, 6}};
    ASSERT_EQ(checkSchedule(m, warm), "");
    SearchLimits limits;
    SearchResult r = branchAndBound(m, &warm, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_EQ(r.bestMakespan, 4);
    EXPECT_GE(r.solutions, 1);
}

TEST(Search, OptimalWarmStartIsKept)
{
    Model m = twoDeviceModel();
    ScheduleVec warm;
    warm.tasks = {{0, 0}, {1, 0}, {0, 2}, {1, 2}};
    ASSERT_EQ(checkSchedule(m, warm), "");
    SearchLimits limits;
    SearchResult r = branchAndBound(m, &warm, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.bestMakespan, 4);
    // No strictly better schedule exists, so no new incumbents.
    EXPECT_EQ(r.solutions, 0);
}

TEST(Search, NodeLimitStopsSearch)
{
    Model m = twoDeviceModel();
    SearchLimits limits;
    limits.maxNodes = 1;
    SearchResult r = branchAndBound(m, nullptr, limits);
    EXPECT_FALSE(r.exhausted);
    EXPECT_LE(r.nodes, 2);
}

TEST(Search, TargetGapStopsEarly)
{
    Model m = twoDeviceModel();
    ScheduleVec warm;
    warm.tasks = {{0, 0}, {1, 0}, {0, 2}, {1, 2}};
    SearchLimits limits;
    limits.targetGap = 0.5;
    limits.lowerBound = 3; // gap (4-3)/4 = 0.25 <= 0.5.
    SearchResult r = branchAndBound(m, &warm, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_FALSE(r.exhausted); // stopped by the gap, not exhaustion.
    EXPECT_EQ(r.nodes, 0);
}

TEST(Search, ProvesInfeasibilityByExhaustion)
{
    Model m;
    int g = m.addGroup("G");
    for (int i = 0; i < 3; ++i) {
        Task t;
        t.modes.push_back({g, 3, {}});
        m.addTask(t);
    }
    m.setHorizon(8); // needs 9 steps on one device.
    SearchLimits limits;
    SearchResult r = branchAndBound(m, nullptr, limits);
    EXPECT_FALSE(r.foundSolution);
    EXPECT_TRUE(r.exhausted);
}

TEST(Search, PrecedenceAcrossDevicesHandled)
{
    // a (dev A, 3) -> b (dev B, 2); independent c (dev B, 4).
    // Optimum: c at 0 on B, a at 0 on A, b at 4 -> makespan 6.
    // (b at 3 would collide with c; b after c is 6.)
    Model m;
    int g1 = m.addGroup("A");
    int g2 = m.addGroup("B");
    Task a;
    a.modes.push_back({g1, 3, {}});
    m.addTask(a);
    Task b;
    b.modes.push_back({g2, 2, {}});
    m.addTask(b);
    Task c;
    c.modes.push_back({g2, 4, {}});
    m.addTask(c);
    m.addPrecedence(0, 1);
    m.setHorizon(20);
    SearchLimits limits;
    SearchResult r = branchAndBound(m, nullptr, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.bestMakespan, 6);
}

TEST(Search, CumulativeResourcePacking)
{
    // Capacity 2, four unit-usage tasks of 3 steps: two at a time,
    // optimum 6.
    Model m;
    m.addResource(2.0, "r");
    for (int i = 0; i < 4; ++i) {
        Task t;
        t.modes.push_back({kNoGroup, 3, {1.0}});
        m.addTask(t);
    }
    m.setHorizon(20);
    SearchLimits limits;
    SearchResult r = branchAndBound(m, nullptr, limits);
    ASSERT_TRUE(r.foundSolution);
    EXPECT_EQ(r.bestMakespan, 6);
    EXPECT_EQ(checkSchedule(m, r.best), "");
}

} // anonymous namespace
} // namespace cp
} // namespace hilp
