/**
 * @file
 * Lowering (workload, SoC, constraints) into a ProblemSpec.
 *
 * This is where the paper's input matrices are populated: for every
 * phase, the builder emits one UnitOption per compatible core
 * cluster and operating point, using the Table II scaling model for
 * performance/bandwidth and the Table III DVFS model for power. DSAs
 * are matched to compute phases through their target identifiers.
 *
 * Two model-size reductions keep the solver fast without changing
 * the optimum:
 *  - Options whose power or bandwidth exceeds the budget outright
 *    can never be scheduled and are dropped.
 *  - When a budget provably can never bind (the sum of worst-case
 *    concurrent demands fits), that dimension is ignored and
 *    dominated operating points (slower, same or higher demand) are
 *    pruned - under no power constraint only the highest clock
 *    survives, which is exactly the paper's DVFS semantics.
 */

#ifndef HILP_HILP_BUILDER_HH
#define HILP_HILP_BUILDER_HH

#include <vector>

#include "arch/soc.hh"
#include "problem.hh"
#include "workload/workload.hh"

namespace hilp {

/** Knobs for problem construction. */
struct BuildOptions
{
    /**
     * GPU/DSA clocks to expose as operating points; empty means all
     * Table III points.
     */
    std::vector<int> clocksMhz;
    /** Apply the dominance pruning described above. */
    bool pruneDominated = true;
    /** Nominal bandwidth of sequential (setup/teardown) phases. */
    double sequentialBwGBs = 1.0;
    /**
     * CPU core counts offered to compute phases (capped at the SoC's
     * core count); empty means powers of two up to the core count.
     */
    std::vector<int> cpuCoreOptions;
};

/**
 * Build the scheduling problem for running the workload on the SoC
 * under the constraints.
 */
ProblemSpec buildProblem(const workload::Workload &workload,
                         const arch::SocConfig &soc,
                         const arch::Constraints &constraints,
                         const BuildOptions &options = {});

} // namespace hilp

#endif // HILP_HILP_BUILDER_HH
