/** @file Distributed-sweep worker loop. See worker.hh. */

#include "worker.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "dse/checkpoint.hh"
#include "protocol.hh"
#include "support/logging.hh"
#include "support/net.hh"
#include "support/str.hh"

namespace hilp {
namespace service {

namespace {

std::string
typeOf(const Json &json)
{
    if (!json.isObject())
        return "";
    const Json *type = json.find("type");
    return type && type->isString() ? type->stringValue() : "";
}

int64_t
intOr(const Json &object, const char *key, int64_t fallback)
{
    const Json *value = object.find(key);
    return value && value->isNumber() ? value->intValue() : fallback;
}

void
sleepFor(double seconds)
{
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
}

/**
 * One request/response exchange on the shared control channel. The
 * channel mutex serializes whole exchanges: the sweep's point
 * callbacks submit from worker threads while the main thread is
 * blocked inside sweep(), so each exchange must be atomic. Unknown
 * response types are skipped (forward compatibility); *typed keeps
 * the last recognized payload line before the done line.
 */
bool
exchange(net::LineChannel &channel, std::mutex &mutex,
         const std::string &request, Json *typed, bool *done_ok,
         std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (!channel.writeLine(request)) {
        if (error)
            *error = "control connection write failed";
        return false;
    }
    std::string line;
    while (channel.readLine(&line)) {
        Json json;
        std::string parse_error;
        if (!Json::parse(line, &json, &parse_error))
            continue;
        if (typeOf(json) == "done") {
            const Json *ok = json.find("ok");
            if (done_ok)
                *done_ok = ok && ok->isBool() && ok->boolValue();
            return true;
        }
        if (typed)
            *typed = std::move(json);
    }
    if (error)
        *error = "control connection closed";
    return false;
}

/**
 * Heartbeat state shared with the keep-alive thread. Heartbeats ride
 * their own connection: the control channel carries request/response
 * exchanges from multiple sweep threads, and interleaving a timer-
 * driven exchange into it would corrupt the pairing.
 */
struct HeartbeatState
{
    std::mutex mutex;
    std::condition_variable cv;
    uint64_t leaseId = 0;
    double intervalS = 1.0;
    bool stop = false;
};

void
heartbeatLoop(const std::string &address, const std::string &id,
              HeartbeatState *state)
{
    net::LineChannel channel{net::Socket()};
    for (;;) {
        uint64_t lease = 0;
        {
            std::unique_lock<std::mutex> lock(state->mutex);
            state->cv.wait_for(
                lock,
                std::chrono::duration<double>(state->intervalS),
                [&] { return state->stop; });
            if (state->stop)
                return;
            lease = state->leaseId;
        }
        if (lease == 0)
            continue; // Between leases; nothing to keep alive.
        if (!channel.valid()) {
            std::string connect_error;
            net::Socket socket =
                net::connectTo(address, &connect_error);
            if (!socket.valid())
                continue; // Retry next tick.
            channel = net::LineChannel(std::move(socket));
        }
        protocol::Request request;
        request.op = protocol::Op::Heartbeat;
        request.worker = id;
        request.leaseId = lease;
        if (!channel.writeLine(protocol::encodeRequest(request))) {
            channel = net::LineChannel(net::Socket());
            continue;
        }
        std::string line;
        bool done = false;
        while (channel.readLine(&line)) {
            Json json;
            std::string parse_error;
            if (Json::parse(line, &json, &parse_error) &&
                typeOf(json) == "done") {
                done = true;
                break;
            }
        }
        if (!done)
            channel = net::LineChannel(net::Socket());
    }
}

} // anonymous namespace

bool
runWorker(const std::string &address, const WorkerOptions &options,
          std::string *error)
{
    // The coordinator daemon may still be binding when a spawned
    // worker starts; retry the initial connect for a bounded window.
    net::Socket socket;
    std::string connect_error;
    const auto give_up = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options.connectRetryS));
    for (;;) {
        socket = net::connectTo(address, &connect_error);
        if (socket.valid())
            break;
        if (std::chrono::steady_clock::now() >= give_up) {
            if (error)
                *error = format("cannot reach coordinator %s: %s",
                                address.c_str(),
                                connect_error.c_str());
            return false;
        }
        sleepFor(0.1);
    }
    net::LineChannel channel(std::move(socket));
    std::mutex channelMutex;

    std::unique_ptr<EvalService> local;
    EvalService *service = options.service;
    if (!service) {
        local.reset(new EvalService());
        service = local.get();
    }

    HeartbeatState heartbeatState;
    std::thread heartbeat(heartbeatLoop, address, options.id,
                          &heartbeatState);

    bool ok = true;
    std::string failure;
    size_t units = 0;
    while (ok) {
        protocol::Request poll;
        poll.op = protocol::Op::Lease;
        poll.worker = options.id;
        Json response;
        bool done_ok = false;
        if (!exchange(channel, channelMutex,
                      protocol::encodeRequest(poll), &response,
                      &done_ok, &failure)) {
            ok = false;
            break;
        }
        const std::string type = typeOf(response);
        if (type == "wait" || !done_ok) {
            sleepFor(options.pollIntervalS);
            continue;
        }
        if (type == "complete")
            break;
        if (type != "lease") {
            failure = format("unexpected lease response \"%s\"",
                             type.c_str());
            ok = false;
            break;
        }

        // Rebuild the unit's sweep request from the grant alone.
        const uint64_t leaseId =
            static_cast<uint64_t>(intOr(response, "lease", 0));
        const Json *params = response.find("params");
        const Json *names = response.find("configs");
        protocol::Request unit;
        if (leaseId == 0 || !params || !names || !names->isArray() ||
            !protocol::parseSweepParams(*params, &unit, &failure)) {
            if (failure.empty())
                failure = "malformed lease grant";
            ok = false;
            break;
        }
        for (size_t i = 0; i < names->size(); ++i)
            if (names->at(i).isString())
                unit.configNames.push_back(
                    names->at(i).stringValue());
        std::vector<arch::SocConfig> configs;
        if (!protocol::resolveConfigs(unit, &configs, &failure)) {
            ok = false;
            break;
        }
        inform("worker %s: leased unit (lease %llu, %zu configs)",
               options.id.c_str(),
               static_cast<unsigned long long>(leaseId),
               configs.size());

        {
            std::lock_guard<std::mutex> lock(heartbeatState.mutex);
            heartbeatState.leaseId = leaseId;
            const Json *window = response.find("expires_s");
            const double expires = window && window->isNumber()
                                       ? window->numberValue()
                                       : 30.0;
            heartbeatState.intervalS = std::max(0.05, expires / 3.0);
        }

        // Evaluate the unit exactly as the in-process sweep would -
        // the unit is one whole similarity chain, so the local sweep
        // rebuilds the same warm-start order.
        SweepRequest sweep;
        sweep.configs = std::move(configs);
        sweep.workload =
            workload::makeWorkload(unit.variant, unit.copies);
        sweep.constraints = unit.constraints;
        sweep.kind = unit.kind;
        sweep.options = unit.options;
        const dse::ModelKind kind = unit.kind;
        std::atomic<bool> submitFailed{false};
        sweep.onPoint = [&](const dse::DsePoint &point,
                            const Schedule *schedule) {
            if (submitFailed.load(std::memory_order_relaxed))
                return;
            protocol::Request submit;
            submit.op = protocol::Op::Submit;
            submit.worker = options.id;
            submit.leaseId = leaseId;
            submit.records.push_back(dse::pointRecordJson(
                dse::checkpointKey(point.fingerprint,
                                   point.config.name(), kind),
                kind, point, schedule));
            std::string submit_error;
            if (!exchange(channel, channelMutex,
                          protocol::encodeRequest(submit), nullptr,
                          nullptr, &submit_error))
                submitFailed.store(true,
                                   std::memory_order_relaxed);
        };
        service->sweep(sweep);

        {
            std::lock_guard<std::mutex> lock(heartbeatState.mutex);
            heartbeatState.leaseId = 0;
        }
        if (submitFailed.load()) {
            failure = "control connection died mid-unit";
            ok = false;
            break;
        }

        // Close out the lease; an empty submit carries the flag.
        protocol::Request finish;
        finish.op = protocol::Op::Submit;
        finish.worker = options.id;
        finish.leaseId = leaseId;
        finish.complete = true;
        if (!exchange(channel, channelMutex,
                      protocol::encodeRequest(finish), nullptr,
                      nullptr, &failure)) {
            ok = false;
            break;
        }
        ++units;
    }

    {
        std::lock_guard<std::mutex> lock(heartbeatState.mutex);
        heartbeatState.stop = true;
    }
    heartbeatState.cv.notify_all();
    heartbeat.join();

    if (ok)
        inform("worker %s: run complete (%zu units evaluated)",
               options.id.c_str(), units);
    else if (error)
        *error = failure;
    return ok;
}

} // namespace service
} // namespace hilp
