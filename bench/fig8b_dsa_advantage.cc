/**
 * @file
 * Figure 8b: the effect of the DSA efficiency advantage (2x/4x/8x)
 * on the Default-workload Pareto front (HILP, 600 W). Expected
 * shape (paper): a larger advantage does not change the shape of the
 * speedup-vs-area curve but shifts it to higher performance; the
 * Pareto optimum moves from a GPU-only SoC at 2x to mixed SoCs at
 * 4x and 8x ("workload coverage is king").
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

void
emitFigure()
{
    bench::banner(
        "Figure 8b - DSA efficiency advantage (2x/4x/8x)",
        "HILP Pareto fronts at 600 W. Paper: best points are\n"
        "(c4,g64,d0^0) at 2x and (c4,g16,d2^16) at 4x and 8x; the\n"
        "8x front sits above the 4x front because the DSAs are\n"
        "faster.");

    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::Constraints constraints;
    dse::DseOptions options = bench::explorationOptions(1.0);

    for (double advantage : {2.0, 4.0, 8.0}) {
        auto configs = bench::paperDesignSpace(advantage);
        auto points = bench::runSweep(
            configs, wl, constraints, dse::ModelKind::Hilp, options,
            workload::Variant::Default, 1, advantage);
        auto front = bench::paretoOf(points);
        bench::printPareto(
            "HILP Pareto front at " +
                std::to_string(static_cast<int>(advantage)) +
                "x DSA advantage", front);
        dse::DsePoint best = bench::bestOf(front);
        std::printf("\nbest at %1.0fx: %s  speedup %.1f  area %.1f "
                    "mm2\n", advantage, best.config.name().c_str(),
                    best.speedup, best.areaMm2);
    }
}

void
BM_EvaluateHighAdvantagePoint(benchmark::State &state)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    auto priority = workload::dsaPriorityOrder();
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 16;
    soc.dsas = {{16, priority[0]}, {16, priority[1]}};
    soc.dsaAdvantage = 8.0;
    dse::DseOptions options = bench::explorationOptions(1.0);
    for (auto _ : state) {
        dse::DsePoint point =
            dse::evaluatePoint(soc, wl, arch::Constraints{},
                               dse::ModelKind::Hilp, options);
        benchmark::DoNotOptimize(point.speedup);
    }
}
BENCHMARK(BM_EvaluateHighAdvantagePoint)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
