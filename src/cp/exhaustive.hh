/**
 * @file
 * An exhaustive reference solver.
 *
 * Enumerates every (mode, start) assignment of a small model and
 * validates complete candidates with checkSchedule - a code path
 * entirely independent of the branch-and-bound search, usable as a
 * ground-truth oracle when validating models, custom constraints, or
 * the main solver itself. Cost is O((modes * horizon)^tasks); keep
 * instances tiny (the estimator below guards against blowups).
 */

#ifndef HILP_CP_EXHAUSTIVE_HH
#define HILP_CP_EXHAUSTIVE_HH

#include <cstdint>

#include "model.hh"

namespace hilp {
namespace cp {

/** Outcome of exhaustive enumeration. */
struct ExhaustiveResult
{
    /** True when the full space fit within the candidate budget. */
    bool complete = false;
    /** True when a feasible schedule exists (valid when complete). */
    bool feasible = false;
    Time optimum = -1;       //!< Optimal makespan (-1 when none).
    ScheduleVec best;        //!< One optimal schedule.
    uint64_t candidates = 0; //!< Assignments enumerated.
};

/**
 * Number of candidate assignments enumeration would visit; saturates
 * at UINT64_MAX on overflow.
 */
uint64_t exhaustiveSpaceSize(const Model &model);

/**
 * Enumerate the model's full assignment space, up to max_candidates
 * (the search aborts with complete == false beyond it). Prunes
 * nothing except per-task horizon fit, so the result is a true
 * oracle for any constraint checkSchedule enforces.
 */
ExhaustiveResult solveExhaustively(
    const Model &model, uint64_t max_candidates = 50'000'000);

} // namespace cp
} // namespace hilp

#endif // HILP_CP_EXHAUSTIVE_HH
