/**
 * @file
 * GPU DVFS operating points and the accelerator power model.
 *
 * This is Table III of the paper: worst-case A100 power consumption
 * measured with gpu-burn at every available core clock frequency.
 * The paper derives per-SM power by dividing the measured total by
 * the GA100's 128 SMs (the table's own per-SM column), and HILP's
 * idealized DVFS lets the solver pick the operating point per phase.
 *
 * DSAs use the same curves scaled down by their efficiency advantage
 * (Section IV: "the DSAs hence use the same performance and bandwidth
 * curves as the GPU but only a quarter of the power and area").
 */

#ifndef HILP_ARCH_DVFS_HH
#define HILP_ARCH_DVFS_HH

#include <vector>

namespace hilp {
namespace arch {

/** One row of Table III: a GPU clock and its measured power. */
struct GpuOperatingPoint
{
    int clockMhz = 0;        //!< Core clock frequency.
    double allSmsPowerW = 0; //!< Measured worst-case power, all SMs.

    /** Per-SM power: measured total divided by the GA100's 128 SMs. */
    double perSmPowerW() const { return allSmsPowerW / 128.0; }
};

/** The number of SMs in the full GA100 die (the per-SM divisor). */
inline constexpr int kGa100Sms = 128;

/** Baseline GPU clock used for the Table II profiles. */
inline constexpr int kBaseClockMhz = 765;

/** The full Table III operating-point list, ascending clock. */
const std::vector<GpuOperatingPoint> &gpuOperatingPoints();

/** The operating point for a given clock; fatal() on unknown clocks. */
const GpuOperatingPoint &gpuOperatingPoint(int clock_mhz);

/**
 * GPU power at a clock and SM count: sms * perSmPower(clock).
 * Reproduces the paper's dark-silicon behaviour (a 50 W budget caps
 * a 64-SM GPU at 300 MHz).
 */
double gpuPowerW(int sms, int clock_mhz);

/**
 * DSA power: a PE draws the power of one GPU SM (while performing
 * like `advantage` SMs), so an equal-performance DSA consumes
 * 1/advantage of the GPU's power, per Section IV.
 */
double dsaPowerW(int pes, int clock_mhz);

/** Per-core CPU power: 225 W TDP over 32 cores (Section IV). */
inline constexpr double kCpuCorePowerW = 7.0;

} // namespace arch
} // namespace hilp

#endif // HILP_ARCH_DVFS_HH
