/** @file Unit tests for the accelerator/CPU scaling model. */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/dvfs.hh"
#include "workload/rodinia.hh"
#include "workload/scaling.hh"

namespace hilp {
namespace workload {
namespace {

PhaseProfile
hsCompute()
{
    return makeRodiniaApp(rodiniaIndex("HS"), 1.0).phases[1];
}

TEST(Scaling, FullGpuAtBaseClockReproducesTableIi)
{
    PhaseProfile hs = hsCompute();
    EXPECT_NEAR(acceleratorTimeS(hs, kProfileSms,
                                 arch::kBaseClockMhz),
                20.5, 1e-9);
}

TEST(Scaling, HsScalesInverselyWithSms)
{
    // HS has b = -1.00: half the SMs, double the time.
    PhaseProfile hs = hsCompute();
    double t64 = acceleratorTimeS(hs, 64, arch::kBaseClockMhz);
    double t32 = acceleratorTimeS(hs, 32, arch::kBaseClockMhz);
    EXPECT_NEAR(t32, 2.0 * t64, 1e-6);
    // And the paper-checked value: 20.5 * 98/64 = 31.4 s.
    EXPECT_NEAR(t64, 31.4, 0.1);
}

TEST(Scaling, TimeIsMonotoneInUnits)
{
    PhaseProfile hs = hsCompute();
    double prev = 1e300;
    for (int units : {4, 8, 16, 32, 64, 98, 128}) {
        double t = acceleratorTimeS(hs, units, arch::kBaseClockMhz);
        EXPECT_LT(t, prev);
        prev = t;
    }
}

TEST(Scaling, TimeIsMonotoneInClock)
{
    PhaseProfile hs = hsCompute();
    double prev = 1e300;
    for (const auto &point : arch::gpuOperatingPoints()) {
        double t = acceleratorTimeS(hs, 64, point.clockMhz);
        EXPECT_LT(t, prev);
        prev = t;
    }
}

TEST(Scaling, BandwidthReferencePoint)
{
    PhaseProfile hs = hsCompute();
    EXPECT_NEAR(acceleratorBwGBs(hs, kBwBaseSms,
                                 arch::kBaseClockMhz),
                40.4, 1e-9);
}

TEST(Scaling, BandwidthGrowsWithSms)
{
    PhaseProfile hs = hsCompute();
    double bw16 = acceleratorBwGBs(hs, 16, arch::kBaseClockMhz);
    double bw64 = acceleratorBwGBs(hs, 64, arch::kBaseClockMhz);
    EXPECT_GT(bw64, bw16);
    // HS's bandwidth law has b = 1.00: 4x the SMs, 4x the demand.
    EXPECT_NEAR(bw64, 4.0 * bw16, 1e-6);
}

TEST(Scaling, BandwidthDropsAtLowerClocks)
{
    PhaseProfile hs = hsCompute();
    double bw_hi = acceleratorBwGBs(hs, 64, 765);
    double bw_lo = acceleratorBwGBs(hs, 64, 300);
    EXPECT_LT(bw_lo, bw_hi);
}

TEST(Scaling, BytesConservedAcrossClocks)
{
    // time * bandwidth (the data moved) must be clock-invariant.
    PhaseProfile hs = hsCompute();
    double bytes_hi = acceleratorTimeS(hs, 64, 765) *
                      acceleratorBwGBs(hs, 64, 765);
    double bytes_lo = acceleratorTimeS(hs, 64, 210) *
                      acceleratorBwGBs(hs, 64, 210);
    EXPECT_NEAR(bytes_hi, bytes_lo, 1e-6 * bytes_hi);
}

TEST(Scaling, SequentialPhaseIgnoresCoreCount)
{
    PhaseProfile setup =
        makeRodiniaApp(rodiniaIndex("HS"), 1.0).phases[0];
    EXPECT_DOUBLE_EQ(cpuTimeS(setup, 1), cpuTimeS(setup, 32));
}

TEST(Scaling, CpuComputeScalesWithCores)
{
    // HS: b = -1 -> perfect scaling on the CPU substitution.
    PhaseProfile hs = hsCompute();
    EXPECT_NEAR(cpuTimeS(hs, 1), 395.9, 1e-9);
    EXPECT_NEAR(cpuTimeS(hs, 4), 395.9 / 4.0, 1e-6);
}

TEST(Scaling, CpuComputeSublinearForWeakScalers)
{
    // HW: b = -0.52 -> 4 cores give ~2x.
    PhaseProfile hw =
        makeRodiniaApp(rodiniaIndex("HW"), 1.0).phases[1];
    double t1 = cpuTimeS(hw, 1);
    double t4 = cpuTimeS(hw, 4);
    EXPECT_NEAR(t1 / t4, std::pow(4.0, 0.52), 1e-6);
}

TEST(Scaling, SequentialBandwidthIsNominal)
{
    PhaseProfile setup =
        makeRodiniaApp(rodiniaIndex("BFS"), 1.0).phases[0];
    EXPECT_DOUBLE_EQ(cpuBwGBs(setup, 1), 1.0);
}

TEST(Scaling, CpuComputeBandwidthConservesTraffic)
{
    PhaseProfile hs = hsCompute();
    double bytes = acceleratorTimeS(hs, kProfileSms, 765) *
                   acceleratorBwGBs(hs, kProfileSms, 765);
    double bw4 = cpuBwGBs(hs, 4);
    EXPECT_NEAR(bw4 * cpuTimeS(hs, 4), bytes, 1e-6 * bytes);
}

TEST(Scaling, FrequencyGammaClamps)
{
    EXPECT_DOUBLE_EQ(frequencyGamma(0.0), 1.0);
    EXPECT_DOUBLE_EQ(frequencyGamma(1000.0), 0.2);
    EXPECT_NEAR(frequencyGamma(125.0), 0.5, 1e-12);
}

TEST(Scaling, ComputeBoundKernelsAreClockSensitive)
{
    // Section V: HW is more sensitive to clock than SM count.
    PhaseProfile hw =
        makeRodiniaApp(rodiniaIndex("HW"), 1.0).phases[1];
    PhaseProfile nn =
        makeRodiniaApp(rodiniaIndex("NN"), 1.0).phases[1];
    EXPECT_GT(hw.freqGamma, 0.9);
    EXPECT_LT(nn.freqGamma, 0.3);

    // Halving HW's clock nearly doubles its time; halving its SMs
    // costs much less (b = -0.52).
    double clock_penalty = acceleratorTimeS(hw, 64, 360) /
                           acceleratorTimeS(hw, 64, 765);
    double sm_penalty = acceleratorTimeS(hw, 32, 765) /
                        acceleratorTimeS(hw, 64, 765);
    EXPECT_GT(clock_penalty, sm_penalty);
}

TEST(Scaling, WorksForPeCountsBeyondTheProfileRange)
{
    // DSAs with the 4x advantage evaluate the curves at up to
    // 16 * 4 * 2 = 128 "SMs"; the power law must extrapolate.
    PhaseProfile hs = hsCompute();
    double t128 = acceleratorTimeS(hs, 128, 765);
    EXPECT_GT(t128, 0.0);
    EXPECT_LT(t128, acceleratorTimeS(hs, 98, 765));
}

} // anonymous namespace
} // namespace workload
} // namespace hilp
