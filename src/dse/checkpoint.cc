#include "checkpoint.hh"

#include <cmath>

#include <unistd.h>

#include "support/hash.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/str.hh"

namespace hilp {
namespace dse {

namespace {

/** Inverse of cp::toString(SolveStatus). */
bool
statusFromString(const std::string &text, cp::SolveStatus *out)
{
    static const cp::SolveStatus kAll[] = {
        cp::SolveStatus::Optimal,     cp::SolveStatus::NearOptimal,
        cp::SolveStatus::Feasible,    cp::SolveStatus::Infeasible,
        cp::SolveStatus::NoSolution,
    };
    for (cp::SolveStatus status : kAll) {
        if (text == cp::toString(status)) {
            *out = status;
            return true;
        }
    }
    return false;
}

/** 64-bit key rendered as a fixed-width hex string. JSON numbers are
 * doubles and cannot carry a uint64_t exactly, so keys travel as
 * strings. */
std::string
keyText(uint64_t key)
{
    return format("%016llx", static_cast<unsigned long long>(key));
}

bool
parseKeyText(const std::string &text, uint64_t *out)
{
    if (text.empty() || text.size() > 16)
        return false;
    uint64_t value = 0;
    for (char c : text) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | static_cast<uint64_t>(digit);
    }
    *out = value;
    return true;
}

/** The double for `name`, or fallback when absent/null (a non-finite
 * value is serialized as JSON null). */
double
numberOr(const Json &entry, const char *name, double fallback)
{
    const Json *value = entry.find(name);
    if (!value || !value->isNumber())
        return fallback;
    return value->numberValue();
}

int64_t
intOr(const Json &entry, const char *name, int64_t fallback)
{
    const Json *value = entry.find(name);
    if (!value || !value->isNumber())
        return fallback;
    return value->intValue();
}

bool
boolOr(const Json &entry, const char *name, bool fallback)
{
    const Json *value = entry.find(name);
    if (!value || !value->isBool())
        return fallback;
    return value->boolValue();
}

std::string
stringOr(const Json &entry, const char *name)
{
    const Json *value = entry.find(name);
    if (!value || !value->isString())
        return std::string();
    return value->stringValue();
}

/**
 * Serialize a schedule compactly: scalars plus one fixed-layout
 * array per phase (field order matters; see parseSchedule).
 */
Json
scheduleJson(const Schedule &schedule)
{
    Json out = Json::object();
    out.set("step_s", Json::number(schedule.stepS));
    out.set("cpu_cores", Json::number(schedule.cpuCores));
    Json devices = Json::array();
    for (const std::string &name : schedule.deviceNames)
        devices.append(Json::string(name));
    out.set("devices", std::move(devices));
    Json phases = Json::array();
    for (const ScheduledPhase &phase : schedule.phases) {
        Json row = Json::array();
        row.append(Json::number(static_cast<int64_t>(phase.app)));
        row.append(Json::number(static_cast<int64_t>(phase.phase)));
        row.append(Json::string(phase.name));
        row.append(Json::number(static_cast<int64_t>(phase.option)));
        row.append(Json::string(phase.unitLabel));
        row.append(Json::number(static_cast<int64_t>(phase.device)));
        row.append(
            Json::number(static_cast<int64_t>(phase.startStep)));
        row.append(
            Json::number(static_cast<int64_t>(phase.durationSteps)));
        row.append(Json::number(phase.startS));
        row.append(Json::number(phase.durationS));
        row.append(Json::number(phase.powerW));
        row.append(Json::number(phase.bwGBs));
        row.append(Json::number(phase.cpuCores));
        phases.append(std::move(row));
    }
    out.set("phases", std::move(phases));
    return out;
}

/** Inverse of scheduleJson; false on any structural mismatch. */
bool
parseSchedule(const Json &entry, Schedule *out)
{
    if (!entry.isObject())
        return false;
    *out = Schedule{};
    out->stepS = numberOr(entry, "step_s", 0.0);
    out->cpuCores = numberOr(entry, "cpu_cores", 0.0);
    const Json *devices = entry.find("devices");
    if (devices && devices->isArray()) {
        for (size_t i = 0; i < devices->size(); ++i) {
            if (!devices->at(i).isString())
                return false;
            out->deviceNames.push_back(devices->at(i).stringValue());
        }
    }
    const Json *phases = entry.find("phases");
    if (!phases || !phases->isArray())
        return false;
    for (size_t i = 0; i < phases->size(); ++i) {
        const Json &row = phases->at(i);
        if (!row.isArray() || row.size() != 13)
            return false;
        for (size_t f = 0; f < row.size(); ++f)
            if (f != 2 && f != 4 && !row.at(f).isNumber())
                return false;
        if (!row.at(2).isString() || !row.at(4).isString())
            return false;
        ScheduledPhase phase;
        phase.app = static_cast<int>(row.at(0).intValue());
        phase.phase = static_cast<int>(row.at(1).intValue());
        phase.name = row.at(2).stringValue();
        phase.option = static_cast<int>(row.at(3).intValue());
        phase.unitLabel = row.at(4).stringValue();
        phase.device = static_cast<int>(row.at(5).intValue());
        phase.startStep = static_cast<cp::Time>(row.at(6).intValue());
        phase.durationSteps =
            static_cast<cp::Time>(row.at(7).intValue());
        phase.startS = row.at(8).numberValue();
        phase.durationS = row.at(9).numberValue();
        phase.powerW = row.at(10).numberValue();
        phase.bwGBs = row.at(11).numberValue();
        phase.cpuCores = row.at(12).numberValue();
        out->phases.push_back(std::move(phase));
    }
    return true;
}

} // anonymous namespace

bool
parsePointRecord(const std::string &line, uint64_t *key,
                 DsePoint *point, Schedule *schedule,
                 bool *has_schedule, std::string *config_name)
{
    Json entry;
    if (!Json::parse(line, &entry) || !entry.isObject())
        return false;
    if (!parseKeyText(stringOr(entry, "key"), key))
        return false;
    if (config_name)
        *config_name = stringOr(entry, "config");

    // The schedule is optional (older records and the analytic
    // models have none); a malformed one degrades to "no schedule"
    // rather than dropping the whole record.
    *has_schedule = false;
    if (const Json *sched = entry.find("schedule")) {
        Schedule discard;
        *has_schedule =
            parseSchedule(*sched, schedule ? schedule : &discard);
    }

    *point = DsePoint{};
    if (!parseKeyText(stringOr(entry, "fingerprint"),
                      &point->fingerprint))
        point->fingerprint = 0;
    point->ok = boolOr(entry, "ok", false);
    if (!statusFromString(stringOr(entry, "status"), &point->status))
        point->status = cp::SolveStatus::NoSolution;
    point->makespanS = numberOr(entry, "makespan_s", 0.0);
    point->speedup = numberOr(entry, "speedup", 0.0);
    point->gap = numberOr(entry, "gap", 0.0);
    point->averageWlp = numberOr(entry, "avg_wlp", 0.0);
    point->note = stringOr(entry, "note");
    point->degraded = boolOr(entry, "degraded", false);
    point->nodes = intOr(entry, "nodes", 0);
    point->backtracks = intOr(entry, "backtracks", 0);
    point->solves = static_cast<int>(intOr(entry, "solves", 0));
    point->solveSeconds = numberOr(entry, "solve_s", 0.0);
    point->cacheHit = boolOr(entry, "cache_hit", false);
    point->warmStarted = boolOr(entry, "warm_start", false);
    point->pruned = boolOr(entry, "pruned", false);
    point->traceId =
        static_cast<uint64_t>(intOr(entry, "trace_id", 0));
    return true;
}

Json
pointRecordJson(uint64_t key, ModelKind kind, const DsePoint &point,
                const Schedule *schedule)
{
    Json entry = Json::object();
    entry.set("key", Json::string(keyText(key)));
    entry.set("model", Json::string(toString(kind)));
    entry.set("config", Json::string(point.config.name()));
    entry.set("fingerprint",
              Json::string(keyText(point.fingerprint)));
    entry.set("ok", Json::boolean(point.ok));
    entry.set("status", Json::string(cp::toString(point.status)));
    entry.set("makespan_s", Json::number(point.makespanS));
    entry.set("speedup", Json::number(point.speedup));
    entry.set("gap", Json::number(point.gap));
    entry.set("avg_wlp", Json::number(point.averageWlp));
    entry.set("note", Json::string(point.note));
    entry.set("degraded", Json::boolean(point.degraded));
    entry.set("nodes", Json::number(point.nodes));
    entry.set("backtracks", Json::number(point.backtracks));
    entry.set("solves",
              Json::number(static_cast<int64_t>(point.solves)));
    entry.set("solve_s", Json::number(point.solveSeconds));
    entry.set("cache_hit", Json::boolean(point.cacheHit));
    entry.set("warm_start", Json::boolean(point.warmStarted));
    entry.set("pruned", Json::boolean(point.pruned));
    if (point.traceId != 0)
        entry.set("trace_id",
                  Json::number(static_cast<int64_t>(point.traceId)));
    if (schedule)
        entry.set("schedule", scheduleJson(*schedule));
    return entry;
}

uint64_t
checkpointKey(uint64_t fingerprint, const std::string &config_name,
              ModelKind kind)
{
    Hasher hasher;
    hasher.u64(fingerprint);
    hasher.str(config_name);
    hasher.str(toString(kind));
    return hasher.digest();
}

SweepCheckpoint::~SweepCheckpoint()
{
    close();
}

void
SweepCheckpoint::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
SweepCheckpoint::open(const std::string &path, bool resume,
                      std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    hilp_assert(!file_);
    entries_.clear();
    schedules_.clear();
    dropped_ = 0;
    bool torn_tail = false;

    if (resume) {
        // Load whatever a previous run managed to flush. A missing
        // file is a cold start, not an error; malformed records -
        // the torn final line a SIGKILL leaves, or damaged interior
        // lines in a merged ledger - are skipped and counted, never
        // fatal.
        if (std::FILE *in = std::fopen(path.c_str(), "r")) {
            std::string line;
            size_t dropped = 0;
            char buffer[4096];
            bool at_eof = false;
            while (!at_eof) {
                size_t got = std::fread(buffer, 1, sizeof(buffer), in);
                at_eof = got < sizeof(buffer);
                for (size_t i = 0; i < got; ++i) {
                    if (buffer[i] != '\n') {
                        line += buffer[i];
                        continue;
                    }
                    uint64_t key;
                    DsePoint point;
                    Schedule schedule;
                    bool has_schedule = false;
                    if (!line.empty()) {
                        if (parsePointRecord(line, &key, &point,
                                             &schedule,
                                             &has_schedule)) {
                            entries_[key] = std::move(point);
                            if (has_schedule)
                                schedules_[key] =
                                    std::move(schedule);
                        } else {
                            ++dropped;
                        }
                    }
                    line.clear();
                }
            }
            // A record is only durable once its newline landed; any
            // trailing partial line is from an interrupted write.
            if (!line.empty()) {
                ++dropped;
                torn_tail = true;
            }
            std::fclose(in);
            dropped_ = dropped;
            if (dropped > 0)
                warn("checkpoint %s: dropped %zu malformed record(s)",
                     path.c_str(), dropped);
        }
    }

    file_ = std::fopen(path.c_str(), resume ? "a" : "w");
    if (!file_) {
        if (error)
            *error = format("cannot open checkpoint '%s' for writing",
                            path.c_str());
        entries_.clear();
        schedules_.clear();
        return false;
    }
    // Seal a torn final line before appending, or the next record
    // would fuse with the partial one into a single corrupt line.
    if (torn_tail)
        std::fputc('\n', file_);
    return true;
}

size_t
SweepCheckpoint::loaded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

size_t
SweepCheckpoint::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

void
SweepCheckpoint::setFsync(bool on)
{
    std::lock_guard<std::mutex> lock(mutex_);
    fsync_ = on;
}

bool
SweepCheckpoint::lookup(uint64_t key, DsePoint *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    *out = it->second;
    out->resumed = true;
    return true;
}

bool
SweepCheckpoint::lookupSchedule(uint64_t key, Schedule *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = schedules_.find(key);
    if (it == schedules_.end())
        return false;
    *out = it->second;
    return true;
}

void
SweepCheckpoint::record(uint64_t key, ModelKind kind,
                        const DsePoint &point,
                        const Schedule *schedule)
{
    std::string line =
        pointRecordJson(key, kind, point, schedule).dump();
    line += '\n';

    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    std::fwrite(line.data(), 1, line.size(), file_);
    // One flush per completed point: a kill loses only in-flight
    // work, and a solve dwarfs the cost of the write.
    std::fflush(file_);
    // With fsync on, the record also survives a host crash - the
    // durability an acknowledged coordinator submit promises.
    if (fsync_)
        ::fsync(fileno(file_));
}

} // namespace dse
} // namespace hilp
