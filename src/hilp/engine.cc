#include "engine.hh"

#include <cmath>

#include "support/logging.hh"

namespace hilp {

EngineOptions
EngineOptions::validationMode()
{
    EngineOptions options;
    options.initialStepS = 2.0;
    options.horizonSteps = 1000;
    options.refineThreshold = 200;
    return options;
}

EngineOptions
EngineOptions::explorationMode()
{
    EngineOptions options;
    options.initialStepS = 10.0;
    options.horizonSteps = 200;
    options.refineThreshold = 40;
    return options;
}

Schedule
liftSchedule(const ProblemSpec &spec, const DiscretizedProblem &problem,
             const cp::ScheduleVec &solution)
{
    Schedule schedule;
    schedule.stepS = problem.stepS;
    schedule.deviceNames = spec.deviceNames;
    schedule.cpuCores = spec.cpuCores;
    for (int task = 0; task < problem.model.numTasks(); ++task) {
        const cp::Assignment &assignment = solution.tasks[task];
        hilp_assert(assignment.scheduled());
        auto [app, phase_idx] = problem.phaseOf[task];
        int option_idx = problem.optionOf[task][assignment.mode];
        const PhaseSpec &phase = spec.apps[app].phases[phase_idx];
        const UnitOption &option = phase.options[option_idx];

        ScheduledPhase placed;
        placed.app = app;
        placed.phase = phase_idx;
        placed.name = phase.name;
        placed.option = option_idx;
        placed.unitLabel = option.label;
        placed.device = option.device;
        placed.startStep = assignment.start;
        placed.durationSteps =
            problem.model.task(task).modes[assignment.mode].duration;
        placed.startS = assignment.start * problem.stepS;
        placed.durationS = placed.durationSteps * problem.stepS;
        placed.powerW = option.powerW;
        placed.bwGBs = option.bwGBs;
        placed.cpuCores = option.cpuCores;
        schedule.phases.push_back(std::move(placed));
    }
    return schedule;
}

namespace {

/** Solve once at a fixed resolution and fill an EvalResult. */
EvalResult
solveAtResolution(const ProblemSpec &spec, double step_s,
                  const EngineOptions &options)
{
    DiscretizedProblem problem =
        discretize(spec, step_s, options.horizonSteps);

    cp::SolverOptions solver_options = options.solver;
    cp::Result result;
    for (int attempt = 0; ; ++attempt) {
        cp::Solver solver(solver_options);
        cp::Result candidate = solver.solve(problem.model);
        if (attempt == 0 ||
            (candidate.hasSchedule() &&
             (!result.hasSchedule() ||
              candidate.makespan < result.makespan))) {
            // Keep the better schedule; bounds only ever tighten.
            cp::Time best_lb = std::max(result.lowerBound,
                                        candidate.lowerBound);
            result = std::move(candidate);
            result.lowerBound = std::max(result.lowerBound, best_lb);
        } else {
            result.lowerBound = std::max(result.lowerBound,
                                         candidate.lowerBound);
        }
        bool needs_more = result.hasSchedule() &&
            result.gap() > options.solver.targetGap;
        if (!needs_more || attempt >= options.escalations)
            break;
        // The paper reruns experiments that miss the bound with
        // more resources; do the same with multiplied budgets.
        solver_options.maxSeconds *= options.escalationFactor;
        solver_options.maxNodes = static_cast<int64_t>(
            solver_options.maxNodes * options.escalationFactor);
        solver_options.lnsIterations = static_cast<int>(
            solver_options.lnsIterations * options.escalationFactor);
        solver_options.seed += 7919; // Diversify the heuristics.
    }

    EvalResult eval;
    eval.status = result.status;
    eval.stepS = step_s;
    eval.stats = result.stats;
    if (!result.hasSchedule())
        return eval;
    eval.ok = true;
    eval.makespanS = result.makespan * step_s;
    eval.lowerBoundS = result.lowerBound * step_s;
    eval.gap = result.gap();
    eval.schedule = liftSchedule(spec, problem, result.schedule);
    eval.averageWlp = eval.schedule.averageWlp();
    return eval;
}

} // anonymous namespace

EvalResult
evaluate(const ProblemSpec &spec, const EngineOptions &options)
{
    std::string issue = spec.validate();
    if (!issue.empty())
        fatal("invalid problem spec '%s': %s", spec.name.c_str(),
              issue.c_str());
    hilp_assert(options.initialStepS > 0.0);
    hilp_assert(options.refineFactor > 1.0);

    // Find a resolution at which a schedule exists, coarsening when
    // the initial horizon is too tight.
    double step = options.initialStepS;
    EvalResult best = solveAtResolution(spec, step, options);
    int coarsenings = 0;
    while (!best.ok && coarsenings < options.maxCoarsenings) {
        step *= options.refineFactor;
        ++coarsenings;
        best = solveAtResolution(spec, step, options);
        best.refinements = -coarsenings;
    }
    if (!best.ok)
        return best;

    // Refine while the makespan under-uses the horizon (Sec. III-D).
    int refinements = 0;
    while (refinements < options.maxRefinements) {
        cp::Time makespan_steps = static_cast<cp::Time>(
            std::llround(best.makespanS / step));
        if (makespan_steps >= options.refineThreshold)
            break;
        double finer = step / options.refineFactor;
        EvalResult candidate = solveAtResolution(spec, finer, options);
        if (!candidate.ok)
            break; // Finer resolution no longer fits the horizon.
        step = finer;
        ++refinements;
        candidate.refinements = refinements - coarsenings;
        best = std::move(candidate);
    }
    return best;
}

} // namespace hilp
