/** @file Tests for the exhaustive reference solver, including a
 * randomized cross-check of the main solver with start lags. */

#include <gtest/gtest.h>

#include "cp/exhaustive.hh"
#include "cp/solver.hh"
#include "support/random.hh"

namespace hilp {
namespace cp {
namespace {

TEST(Exhaustive, EmptyModelIsTriviallyOptimal)
{
    Model m;
    m.setHorizon(4);
    ExhaustiveResult r = solveExhaustively(m);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.optimum, 0);
}

TEST(Exhaustive, SpaceSizeIsProductOfModeTimesHorizon)
{
    Model m;
    Task a;
    a.modes.push_back({kNoGroup, 1, {}});
    a.modes.push_back({kNoGroup, 2, {}});
    m.addTask(a);
    Task b;
    b.modes.push_back({kNoGroup, 1, {}});
    m.addTask(b);
    m.setHorizon(5);
    EXPECT_EQ(exhaustiveSpaceSize(m), 2u * 5u * 1u * 5u);
}

TEST(Exhaustive, FindsChainOptimum)
{
    Model m;
    for (Time d : {2, 3}) {
        Task t;
        t.modes.push_back({kNoGroup, d, {}});
        m.addTask(t);
    }
    m.addPrecedence(0, 1);
    m.setHorizon(8);
    ExhaustiveResult r = solveExhaustively(m);
    ASSERT_TRUE(r.complete);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.optimum, 5);
    EXPECT_EQ(checkSchedule(m, r.best), "");
}

TEST(Exhaustive, DetectsInfeasibility)
{
    Model m;
    Task t;
    t.modes.push_back({kNoGroup, 9, {}});
    m.addTask(t);
    m.setHorizon(5);
    ExhaustiveResult r = solveExhaustively(m);
    EXPECT_TRUE(r.complete);
    EXPECT_FALSE(r.feasible);
    EXPECT_EQ(r.optimum, -1);
}

TEST(Exhaustive, CandidateBudgetAborts)
{
    Model m;
    for (int i = 0; i < 3; ++i) {
        Task t;
        t.modes.push_back({kNoGroup, 1, {}});
        m.addTask(t);
    }
    m.setHorizon(10);
    ExhaustiveResult r = solveExhaustively(m, 10);
    EXPECT_FALSE(r.complete);
    EXPECT_LE(r.candidates, 11u);
}

/**
 * Randomized oracle check including start lags: the main solver's
 * proven optimum must match exhaustive enumeration on tiny models
 * that mix groups, resources, precedence, and initiation intervals.
 */
class ExhaustiveOracle : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ExhaustiveOracle, SolverMatches)
{
    Rng rng(GetParam() * 977);
    Model m;
    m.addResource(2.0, "res");
    int g = m.addGroup("G");
    const int n = 3;
    for (int i = 0; i < n; ++i) {
        Task t;
        int modes = 1 + static_cast<int>(rng.uniformInt(0, 1));
        for (int mo = 0; mo < modes; ++mo) {
            Mode mode;
            mode.group = rng.chance(0.4) ? g : kNoGroup;
            mode.duration = static_cast<Time>(rng.uniformInt(1, 3));
            mode.usage = {rng.chance(0.5) ? 1.0 : 2.0};
            t.modes.push_back(mode);
        }
        m.addTask(t);
    }
    if (rng.chance(0.5))
        m.addPrecedence(0, 1);
    if (rng.chance(0.5))
        m.addStartLag(0, 2,
                      static_cast<Time>(rng.uniformInt(0, 4)));
    m.setHorizon(6);

    ExhaustiveResult oracle = solveExhaustively(m);
    ASSERT_TRUE(oracle.complete);

    SolverOptions options;
    options.targetGap = 0.0;
    options.maxSeconds = 20.0;
    Result solved = Solver(options).solve(m);
    if (!oracle.feasible) {
        EXPECT_EQ(solved.status, SolveStatus::Infeasible);
    } else {
        ASSERT_TRUE(solved.hasSchedule());
        EXPECT_EQ(solved.status, SolveStatus::Optimal);
        EXPECT_EQ(solved.makespan, oracle.optimum);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ExhaustiveOracle,
                         ::testing::Range<uint64_t>(1, 25));

} // anonymous namespace
} // namespace cp
} // namespace hilp
