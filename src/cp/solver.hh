/**
 * @file
 * The solver facade: greedy warm start, lower bounds, and
 * branch-and-bound behind one call, with the optimality-gap
 * accounting HILP's methodology depends on.
 */

#ifndef HILP_CP_SOLVER_HH
#define HILP_CP_SOLVER_HH

#include <chrono>
#include <cstdint>
#include <vector>

#include "bounds.hh"
#include "model.hh"
#include "propagate.hh"

namespace hilp {
namespace cp {

/** Final status of a solve. */
enum class SolveStatus {
    /** Proven optimal (search exhausted or bound met). */
    Optimal,
    /** Gap at or below the target (the paper's "near-optimal"). */
    NearOptimal,
    /** A schedule exists but its gap exceeds the target. */
    Feasible,
    /** Proven: no schedule exists within the horizon. */
    Infeasible,
    /** Limits hit before any schedule was found. */
    NoSolution,
};

/** Human-readable name for a SolveStatus. */
const char *toString(SolveStatus status);

/** Solve effort and stopping configuration. */
struct SolverOptions
{
    /** Branch-and-bound node budget. */
    int64_t maxNodes = 500000;
    /** Wall-clock budget for the search phase, in seconds. */
    double maxSeconds = 5.0;
    /**
     * Absolute monotonic cut-off for the whole solve, shared by
     * every solve of one outer evaluation (see EngineOptions::
     * pointTimeoutS). On expiry the solve returns its incumbent and
     * certified bound instead of running to its per-solve budgets.
     * time_point::max() (the default) disables it.
     */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /**
     * Stop once (makespan - lower bound) / makespan falls to this
     * value. 0.10 is the paper's near-optimality definition; set 0
     * to always search for a proven optimum.
     */
    double targetGap = 0.10;
    /** Compute the LP-relaxation lower bound (tighter, costs an LP). */
    bool useLpBound = true;
    /** Random restarts for the greedy warm start. */
    int greedyRestarts = 8;
    /**
     * Incumbent-improvement iterations before the search: priority
     * hill-climbing by default, destroy/repair LNS when `lns` is
     * set (see lns.hh).
     */
    int lnsIterations = 400;
    /** Seed for the greedy restarts. */
    uint64_t seed = 1;
    /**
     * Diversification salt mixed into `seed` for every stochastic
     * heuristic (greedy restarts, hill climbing, LNS destroy moves).
     * 0 (the default) reproduces the historical unsalted seeding bit
     * for bit. The engine salts it with the problem fingerprint so
     * different instances sharing a seed explore different heuristic
     * trajectories, and the sweep's fault-isolation retry salts it
     * with the attempt index so a retried point never replays the
     * exact destroy sequence that preceded the failure. The salt
     * only diversifies heuristics: bounds, statuses, and gap
     * certificates are unaffected.
     */
    uint64_t seedSalt = 0;
    /**
     * Plug the optional energetic-reasoning propagator into the
     * search's propagation engine. Off by default (it changes the
     * explored tree, so results stay reproducible across versions).
     */
    bool energeticReasoning = false;
    /**
     * Branch-and-bound worker threads. 1 (the default) keeps the
     * historical serial search, bit for bit. Larger values run the
     * work-stealing parallel search. 0 sizes the crew from the
     * process-wide ThreadBudget: the solve borrows whatever slots
     * are currently free (degrading gracefully to serial when a DSE
     * sweep is using the machine) and returns them afterwards.
     */
    int threads = 1;
    /**
     * Use the deterministic parallel search (static frontier
     * partition, private incumbents, reproducible merge) instead of
     * the opportunistic work-stealing one. Only meaningful when
     * threads != 1.
     */
    bool deterministicSearch = false;
    /**
     * Frontier split depth for the parallel search; 0 picks a
     * default (see SearchLimits::splitDepth).
     */
    int splitDepth = 0;
    /**
     * No-good recording in the branch-and-bound (see nogood.hh).
     * Preserves every status and optimality guarantee but changes
     * node counts, so it is opt-in.
     */
    bool useNogoods = false;
    /** Entry budget for the no-good store (rounded up to 2^k). */
    size_t nogoodCapacity = 1 << 16;
    /**
     * Solver-core memory layout (see SearchLimits::packedLayout).
     * Both settings explore bit-identical trees; false selects the
     * legacy layout, kept as the measured baseline.
     */
    bool packedLayout = true;
    /**
     * Replace the pre-search hill climb with destroy/repair LNS
     * around the greedy incumbent (see lns.hh): stronger incumbents
     * on instances the exact search cannot close, at the same
     * monotone never-worse guarantee.
     */
    bool lns = false;
    /** Node budget for each bounded B&B polish inside the LNS. */
    int64_t lnsPolishNodes = 2000;
};

/** Effort accounting for a solve. */
struct SolveStats
{
    Time greedyMakespan = 0;  //!< Warm-start makespan (0 if none).
    LowerBounds bounds;       //!< The certified lower bounds.
    int64_t nodes = 0;        //!< Branch-and-bound nodes explored.
    int64_t backtracks = 0;
    int64_t solutions = 0;    //!< Incumbent improvements found.
    bool exhausted = false;   //!< Search tree fully explored.
    double seconds = 0.0;     //!< Total solve wall-clock time.
    /** An external hint schedule was feasible and seeded the search. */
    bool hintAccepted = false;
    /** Makespan of the accepted hint (0 when none). */
    Time hintMakespan = 0;
    /** Worker threads the branch-and-bound actually ran with. */
    int searchThreads = 1;
    /** Parallel search: successful steal operations. */
    int64_t steals = 0;
    /** Parallel search: subproblems published for stealing. */
    int64_t subproblems = 0;
    /** Nodes pruned by a recorded no-good (0 when disabled). */
    int64_t nogoodHits = 0;
    /** No-goods recorded into the store (0 when disabled). */
    int64_t nogoodsRecorded = 0;
    /** Scratch heap growth during the tree walk, in bytes. */
    int64_t scratchBytes = 0;
    /** Peak live bytes across the search arenas. */
    int64_t arenaHighWater = 0;
    /** Arena rewinds performed by the search. */
    int64_t arenaRewinds = 0;
    /** LNS destroy/repair iterations run (0 unless `lns` is on). */
    int64_t lnsIterationsRun = 0;
    /** LNS iterations that strictly improved the incumbent. */
    int64_t lnsImprovements = 0;
    /**
     * Order-sensitive digest of the LNS destroy decisions (operator
     * and freed set per iteration); 0 unless `lns` ran. Two solves
     * replay the same destroy trajectory iff their digests match,
     * which is what the retry-seeding regression test asserts.
     */
    uint64_t lnsTrajectoryDigest = 0;
    /** Per-propagator telemetry from the propagation engine. */
    std::vector<PropagatorStats> propagators;
};

/** A complete solve outcome. */
struct Result
{
    SolveStatus status = SolveStatus::NoSolution;
    ScheduleVec schedule;
    Time makespan = 0;
    /** Certified lower bound on the optimal makespan. */
    Time lowerBound = 0;
    SolveStats stats;

    /** True when a schedule was produced. */
    bool
    hasSchedule() const
    {
        return status == SolveStatus::Optimal ||
               status == SolveStatus::NearOptimal ||
               status == SolveStatus::Feasible;
    }

    /** Relative optimality gap (UB - LB) / UB; 0 for UB == 0. */
    double gap() const;
};

/**
 * The solver: validates the model, builds a greedy incumbent,
 * certifies lower bounds, and runs branch-and-bound. The returned
 * schedule is always re-verified against every model constraint
 * before being handed back (a violation is a solver bug and panics).
 */
class Solver
{
  public:
    Solver() = default;
    explicit Solver(SolverOptions options) : options_(options) {}

    /**
     * Solve the model. Invalid models (see Model::validate) are a
     * user error and terminate via fatal(). Infeasibility is always
     * relative to the model's horizon.
     *
     * `hint` optionally carries an externally produced schedule (for
     * example one transferred from a neighboring DSE configuration).
     * A feasible hint tightens the branch-and-bound's starting upper
     * bound, so the returned makespan is never worse than the hint's;
     * an infeasible or null hint is ignored.
     */
    Result solve(const Model &model,
                 const ScheduleVec *hint = nullptr) const;

    const SolverOptions &options() const { return options_; }

  private:
    SolverOptions options_;
};

} // namespace cp
} // namespace hilp

#endif // HILP_CP_SOLVER_HH
