/**
 * @file
 * hilpd's connection handling: the daemon loop that accepts stream
 * connections and speaks the NDJSON protocol (protocol.hh) against a
 * shared EvalService.
 *
 * Every connection gets its own handler thread; eval and sweep
 * requests go through the service's admission-controlled job queue
 * (so a flooded daemon rejects with a reason instead of queueing
 * unboundedly), while stats and shutdown are answered inline. The
 * per-connection handler is exposed directly (serveConnection) so
 * tests can drive the full protocol over a socketpair without
 * binding anything.
 */

#ifndef HILP_SERVICE_DAEMON_HH
#define HILP_SERVICE_DAEMON_HH

#include <atomic>

#include "eval_service.hh"
#include "support/net.hh"

namespace hilp {
namespace service {

/** Telemetry knobs for the daemon's request handling. */
struct DaemonOptions
{
    /**
     * Slow-request SLO in milliseconds; a request whose total
     * (admission to done) exceeds it is marked slow in the flight
     * recorder and, when tracing is recording, gets its span tree
     * dumped as a Chrome-trace file. 0 disables the capture.
     */
    double sloMs = 0.0;
    /** Directory the slow-request trace dumps land in. */
    std::string dumpDir = ".";
};

class Daemon
{
  public:
    explicit Daemon(EvalService &service,
                    const DaemonOptions &options = {})
        : service_(service), options_(options)
    {}

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Serve one established connection until the peer disconnects or
     * sends a shutdown request. Returns true when the connection
     * requested daemon shutdown (the stop flag is then already set).
     * Thread-safe: the daemon runs one handler per connection.
     */
    bool serveConnection(net::Socket socket);

    /**
     * Accept-and-serve loop: one handler thread per connection,
     * until stop() is called or a connection requests shutdown. The
     * listener is closed (and its unix socket path unlinked) before
     * returning; in-flight requests finish first.
     */
    void run(net::Listener &listener);

    /**
     * Request the accept loop to exit. Callable from any thread and
     * from signal handlers' deferred context (it only flips an atomic
     * and shuts down the listening socket).
     */
    void stop();

    bool stopping() const { return stop_.load(); }

  private:
    void finishRequest(RequestSummary &summary, bool ok,
                       const std::string &error, size_t points,
                       int64_t queue_wait_us, int64_t solve_us,
                       int64_t serialize_us, int64_t total_us);

    EvalService &service_;
    const DaemonOptions options_;
    std::atomic<bool> stop_{false};
    std::atomic<int> listenerFd_{-1};
};

} // namespace service
} // namespace hilp

#endif // HILP_SERVICE_DAEMON_HH
