/**
 * @file
 * The distributed-sweep coordinator: lease-based sharding of one
 * design-space sweep over many worker processes, merging their
 * streamed results over the checkpoint ledger.
 *
 * The unit of work is a similarity chain (see similarityChains): the
 * same neighborhoods the in-process sweep warm-starts along, handed
 * out whole so the warm-start chains survive the split - a worker
 * evaluates its chain exactly as the single-process sweep would,
 * which is what makes the merged result equal to the single-process
 * one. Each grant carries a lease with an expiry; workers keep a
 * lease alive by heartbeating (or just by submitting points) and a
 * lease that expires - a SIGKILLed or wedged worker - sends its unit
 * back to the queue for re-issue to the next worker that asks.
 *
 * Merging is idempotent: records are keyed by checkpointKey
 * (fingerprint x config x model), a key seen twice is dropped as a
 * duplicate, and the first-seen record wins. That makes every fault
 * path safe: a zombie worker finishing a re-issued unit, a worker
 * resubmitting after a lost ack, and the replacement worker
 * re-evaluating a dead worker's chain all collapse into no-ops -
 * deterministic evaluation means the colliding records agree anyway.
 *
 * The class is transport-agnostic (plain method calls); the daemon
 * layer (service/daemon.cc) exposes it over the NDJSON protocol's
 * lease/submit/heartbeat/drain ops, and bench --coordinator hosts it.
 */

#ifndef HILP_DSE_DISTRIBUTE_HH
#define HILP_DSE_DISTRIBUTE_HH

#include <cstdint>
#include <chrono>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "arch/soc.hh"
#include "explore.hh"

namespace hilp {
namespace dse {

class SweepCheckpoint;

/** Coordinator policy knobs. */
struct CoordinatorOptions
{
    /**
     * A lease not refreshed (heartbeat or submit) within this window
     * is considered dead at the next reap and its unit re-issued.
     */
    double leaseTimeoutS = 30.0;
    /**
     * Optional merged ledger: every first-seen, non-errored record a
     * worker submits is appended (checkpoint format, so the ledger
     * doubles as a --resume file). Not owned. The caller decides its
     * durability (see SweepCheckpoint::setFsync).
     */
    SweepCheckpoint *ledger = nullptr;
};

/** One granted work unit. */
struct LeaseGrant
{
    uint64_t leaseId = 0;
    size_t unit = 0;
    /** Expiry window the worker should heartbeat within. */
    double expiresS = 0.0;
    /** Names of the unit's configs, in evaluation (chain) order. */
    std::vector<std::string> configNames;
};

/** Outcome of a lease request. */
enum class LeaseOutcome {
    Granted, //!< *grant carries a unit.
    Wait,    //!< Nothing to hand out right now; poll again.
};

/** A progress snapshot (see Coordinator::progress). */
struct CoordinatorProgress
{
    size_t units = 0;
    size_t unitsDone = 0;
    size_t leasesActive = 0;
    size_t pointsMerged = 0;
    size_t duplicates = 0;
    size_t reissued = 0;
    bool finished = false;
};

/**
 * The lease table and merge state of one distributed sweep. All
 * methods are thread-safe: daemon connection handlers call them
 * concurrently.
 */
class Coordinator
{
  public:
    Coordinator(std::vector<arch::SocConfig> configs, ModelKind kind,
                CoordinatorOptions options = {});

    /**
     * Hand out the next pending unit (reaping expired leases first).
     * Wait means every unit is leased or done - the worker should
     * poll again; re-issue after a worker death surfaces this way.
     */
    LeaseOutcome lease(const std::string &worker, LeaseGrant *grant);

    /**
     * Refresh a lease's expiry. False when the lease is unknown -
     * already expired and re-issued, or completed; the worker may
     * keep evaluating (its submits still merge idempotently) but
     * should expect a peer to be redoing the unit.
     */
    bool heartbeat(const std::string &worker, uint64_t lease_id);

    /**
     * Merge one checkpoint-format record line streamed by a worker.
     * Returns false only when the line does not parse (counted and
     * reported via *error); a duplicate key is success - dropped,
     * first record wins, *duplicate set. A valid lease_id also
     * refreshes the lease (a streaming worker proves liveness by its
     * results).
     */
    bool submitRecord(const std::string &worker, uint64_t lease_id,
                      const std::string &record_line,
                      std::string *error, bool *duplicate = nullptr);

    /**
     * Mark a lease's unit done and release the lease (plus any
     * re-issued sibling lease on the same unit). False when the
     * lease is unknown; the unit then stays with its current holder.
     */
    bool completeLease(const std::string &worker, uint64_t lease_id);

    /**
     * Return expired leases' units to the pending queue. Called
     * internally by lease(); hosts may also call it periodically so
     * a death is noticed even while no worker is asking for work.
     * Returns the number of leases reaped.
     */
    size_t reapExpired();

    /** All units completed. */
    bool finished() const;

    CoordinatorProgress progress() const;

    /**
     * The merged points, in configuration order, with structural
     * fields (config, area, mix) restored from the local configs.
     * Configs whose records never arrived (only possible before
     * finished()) come back as default ok == false points.
     */
    std::vector<DsePoint> takePoints();

    const std::vector<arch::SocConfig> &configs() const
    {
        return configs_;
    }
    ModelKind kind() const { return kind_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Lease
    {
        size_t unit = 0;
        std::string worker;
        Clock::time_point expiry;
    };

    enum class UnitState { Pending, Leased, Done };

    size_t reapLocked();
    Clock::time_point expiryFromNow() const;

    const std::vector<arch::SocConfig> configs_;
    const ModelKind kind_;
    const CoordinatorOptions options_;

    mutable std::mutex mutex_;
    std::vector<std::vector<size_t>> units_;
    std::vector<UnitState> unitState_;
    /** True once a unit has been reaped at least once. */
    std::vector<char> unitReissued_;
    std::deque<size_t> pending_;
    size_t unitsDone_ = 0;
    std::unordered_map<uint64_t, Lease> leases_;
    uint64_t nextLeaseId_ = 1;

    /** Merge state: first-seen record per checkpoint key wins. */
    std::unordered_set<uint64_t> seen_;
    std::unordered_map<std::string, std::deque<size_t>> byName_;
    std::vector<DsePoint> merged_;
    std::vector<char> have_;
    size_t pointsMerged_ = 0;
    size_t duplicates_ = 0;
    size_t reissued_ = 0;
};

} // namespace dse
} // namespace hilp

#endif // HILP_DSE_DISTRIBUTE_HH
