/**
 * @file
 * Example: exploring an SoC design space with HILP.
 *
 * Sweeps a small slice of the paper's Section VI design space for
 * the Default Rodinia workload, extracts the area/performance Pareto
 * front, and contrasts it with what the MultiAmdahl and Gables
 * extremes would have recommended - the paper's core use case.
 *
 * Run: ./build/examples/design_space_exploration
 */

#include <cstdio>

#include "arch/design_space.hh"
#include "dse/explore.hh"
#include "dse/pareto.hh"
#include "support/table.hh"
#include "workload/rodinia.hh"

using namespace hilp;

namespace {

/** A trimmed design space that explores in seconds, not minutes. */
std::vector<arch::SocConfig>
smallDesignSpace()
{
    arch::DesignSpace space;
    space.cpuOptions = {1, 2, 4};
    space.gpuOptions = {0, 16, 64};
    space.maxDsas = 2;
    space.peOptions = {16};
    return arch::enumerateDesignSpace(
        space, workload::dsaPriorityOrder());
}

void
report(dse::ModelKind kind, const std::vector<dse::DsePoint> &points)
{
    // Pareto front: minimize area, maximize speedup.
    std::vector<double> cost;
    std::vector<double> value;
    std::vector<size_t> index;
    for (size_t i = 0; i < points.size(); ++i) {
        if (!points[i].ok)
            continue;
        cost.push_back(points[i].areaMm2);
        value.push_back(points[i].speedup);
        index.push_back(i);
    }

    std::printf("\n%s Pareto front:\n", dse::toString(kind));
    Table table({"config", "area (mm2)", "speedup", "avg WLP"});
    table.setAlign(0, Table::Align::Left);
    for (size_t f : dse::paretoFront(cost, value)) {
        const dse::DsePoint &point = points[index[f]];
        table.addRow(RowBuilder()
                         .cell(point.config.name())
                         .cell(point.areaMm2, 1)
                         .cell(point.speedup, 2)
                         .cell(point.averageWlp, 2)
                         .take());
    }
    table.print();
}

} // anonymous namespace

int
main()
{
    // The workload: ten Rodinia applications, each with dependent
    // setup -> compute -> teardown phases (Default variant).
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::Constraints constraints; // 600 W, 800 GB/s HBM3.

    auto configs = smallDesignSpace();
    std::printf("exploring %zu SoC configurations for the %s "
                "workload...\n", configs.size(), wl.name.c_str());

    dse::DseOptions options;
    options.engine = EngineOptions::explorationMode();
    options.engine.solver.maxSeconds = 1.0;

    for (auto kind : {dse::ModelKind::MultiAmdahl,
                      dse::ModelKind::Hilp, dse::ModelKind::Gables}) {
        auto points = dse::exploreSpace(configs, wl, constraints,
                                        kind, options);
        report(kind, points);
    }

    std::printf("\nNote how MA's front gravitates to big-GPU SoCs,\n"
                "Gables inflates speedups, and HILP recommends\n"
                "workload-matched mixes (Section VI of the paper).\n");
    return 0;
}
