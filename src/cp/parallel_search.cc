#include "parallel_search.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "bounds.hh"
#include "nogood.hh"
#include "profile.hh"
#include "propagate.hh"
#include "support/arena.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/str.hh"
#include "support/trace.hh"

namespace hilp {
namespace cp {

namespace {

using Clock = std::chrono::steady_clock;

/** Sentinel "no bound known" value (empty aggregator). */
constexpr Time kInfTime = std::numeric_limits<Time>::max();

/** Default frontier split depth when SearchLimits::splitDepth is 0. */
constexpr int kAutoSplitDepth = 4;

/**
 * Local nodes between checks of the shared node/time budgets. The
 * global node counter advances in these increments, so parallel
 * searches may overshoot maxNodes by up to threads * kBudgetBatch
 * nodes (limits are exact on the serial path only).
 */
constexpr int64_t kBudgetBatch = 64;

/** One trace instant per this many local nodes (power of two). */
constexpr int64_t kNodeTraceSample = 8192;

/** Starved-worker polls before parking on the condition variable. */
constexpr int kIdleSpinIters = 64;

/** Parked-wait backoff bounds (exponential doubling between). */
constexpr int64_t kIdleSleepMinUs = 64;
constexpr int64_t kIdleSleepMaxUs = 1024;

/** One branching decision on the path from the root. */
struct Decision
{
    int task;
    int mode;
    Time start;
};

/**
 * A subtree of the search, identified by its decision prefix, plus a
 * certified lower bound on the makespan of every schedule inside it.
 */
struct Subproblem
{
    std::vector<Decision> prefix;
    Time bound = 0;
};

/**
 * The globally best schedule. The makespan is a lock-free atomic so
 * every pruning test is one acquire load; the schedule itself is
 * published under a mutex by whichever worker wins the CAS, so the
 * stored schedule always matches the lowest makespan published so
 * far.
 */
class SharedIncumbent
{
  public:
    SharedIncumbent(Time initial_ub, const ScheduleVec *warm)
        : ub_(initial_ub)
    {
        if (warm) {
            best_ = *warm;
            warmStarted_ = true;
        }
    }

    Time ub() const { return ub_.load(std::memory_order_acquire); }

    bool
    found() const
    {
        return warmStarted_ ||
               improvements_.load(std::memory_order_acquire) > 0;
    }

    int64_t
    improvements() const
    {
        return improvements_.load(std::memory_order_acquire);
    }

    /**
     * Install a strictly better incumbent. Returns false when a
     * concurrent offer is at least as good.
     */
    bool
    offer(Time makespan, const std::vector<Assignment> &assign)
    {
        Time cur = ub_.load(std::memory_order_relaxed);
        while (makespan < cur) {
            if (!ub_.compare_exchange_weak(cur, makespan,
                                           std::memory_order_acq_rel))
                continue;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                // Two winning CAS-es can publish out of order; keep
                // the schedule matching the lowest makespan.
                if (!published_ || makespan < publishedMakespan_) {
                    best_.tasks = assign;
                    publishedMakespan_ = makespan;
                    published_ = true;
                }
            }
            improvements_.fetch_add(1, std::memory_order_acq_rel);
            return true;
        }
        return false;
    }

    /** The best schedule. Only call after the workers have joined. */
    const ScheduleVec &best() const { return best_; }

  private:
    std::atomic<Time> ub_;
    std::atomic<int64_t> improvements_{0};
    std::mutex mutex_;
    ScheduleVec best_;
    Time publishedMakespan_ = 0;
    bool published_ = false;
    bool warmStarted_ = false;
};

/**
 * Multiset of the lower bounds of every queued or in-flight
 * subproblem. Its minimum is a certified lower bound on anything the
 * remaining search can still find, so
 * max(externalLB, min(incumbent, min())) is a sound global lower
 * bound for the targetGap stop — typically much tighter than the
 * external bound alone once the easy subtrees finish. Operations are
 * per-subproblem (coarse), so the mutex sees little contention.
 */
class BoundAggregator
{
  public:
    void
    add(Time bound)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bounds_.insert(bound);
    }

    void
    remove(Time bound)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = bounds_.find(bound);
        hilp_assert(it != bounds_.end());
        bounds_.erase(it);
    }

    /** Smallest registered bound, or kInfTime when none remain. */
    Time
    min() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return bounds_.empty() ? kInfTime : *bounds_.begin();
    }

  private:
    mutable std::mutex mutex_;
    std::multiset<Time> bounds_;
};

/**
 * A per-worker deque with the Chase–Lev ownership discipline: the
 * owner pushes and pops at the bottom (depth-first order), thieves
 * take half from the top — the shallowest prefixes, i.e. the largest
 * subtrees. Guarded by a mutex: subproblems are coarse (a worker
 * touches the deque once per subtree, not per node), so lock traffic
 * is negligible next to the search itself.
 */
class WorkDeque
{
  public:
    void
    push(Subproblem &&sub)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(sub));
    }

    bool
    pop(Subproblem *out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        *out = std::move(queue_.back());
        queue_.pop_back();
        return true;
    }

    /** Move the top half (at least one) of the deque into *out. */
    size_t
    steal(std::vector<Subproblem> *out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        size_t take = (queue_.size() + 1) / 2;
        for (size_t i = 0; i < take; ++i) {
            out->push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        return take;
    }

  private:
    std::mutex mutex_;
    std::deque<Subproblem> queue_;
};

/** Everything the workers share. */
struct Shared
{
    const Model &model;
    const SearchLimits &limits;
    CriticalPathData cp;
    SharedIncumbent incumbent;
    BoundAggregator aggregator;
    std::vector<WorkDeque> deques;
    Clock::time_point startTime;
    int threads;
    int splitDepth;
    /**
     * Spill children once `pending` (queued + in-flight) drops below
     * this. With some worker idle, in-flight == threads - idle, so
     * the condition fires when fewer subproblems queue than workers
     * starve.
     */
    int64_t lowWater;

    /**
     * Subproblems queued on any deque *or* claimed and still being
     * processed. A claimed subproblem stays counted until process()
     * returns, so once this counter reads 0 no unexplored work can
     * exist anywhere: new subproblems are only published from inside
     * process() (whose own subproblem is still counted), which makes
     * 0 an absorbing state and a single acquire load of it a sound
     * termination test — no multi-variable snapshot needed.
     */
    std::atomic<int64_t> pending{0};
    /**
     * Workers currently looking for work. Drives the spill
     * heuristic only; termination rests on `pending` alone.
     */
    std::atomic<int> idle{0};
    /** The target gap was reached; everyone unwinds. */
    std::atomic<bool> gapStop{false};
    /** A node or wall-clock budget was hit; everyone unwinds. */
    std::atomic<bool> limitHit{false};
    /** All subproblems are done and every worker is idle. */
    std::atomic<bool> allDone{false};
    /** Batched global node count for budget checks. */
    std::atomic<int64_t> nodesApprox{0};

    /**
     * No-good store shared by the opportunistic workers (a recorded
     * bound is valid for every worker: it is certified either by
     * propagation or against the shared incumbent, which only
     * decreases — see nogood.hh). Null when disabled and in
     * deterministic mode, where workers keep private stores so their
     * node counts stay reproducible.
     */
    std::unique_ptr<NogoodStore> nogoods;

    /** Parking lot for starving workers (see Worker::waitForWork). */
    std::mutex waitMutex;
    std::condition_variable waitCv;

    /**
     * Wake parked workers: new work was published or a stop flag was
     * set. The empty critical section serializes with a waiter
     * between its predicate check and its wait, so a notification
     * cannot fall into that gap; the timed wait bounds the cost of
     * any race this cheap handshake still leaves.
     */
    void
    wake()
    {
        { std::lock_guard<std::mutex> lock(waitMutex); }
        waitCv.notify_all();
    }

    Shared(const Model &model_in, const SearchLimits &limits_in,
           Time initial_ub, const ScheduleVec *warm, int threads_in)
        : model(model_in),
          limits(limits_in),
          cp(criticalPathData(model_in)),
          incumbent(initial_ub, warm),
          deques(static_cast<size_t>(threads_in)),
          startTime(Clock::now()),
          threads(threads_in),
          splitDepth(limits_in.splitDepth > 0 ? limits_in.splitDepth
                                              : kAutoSplitDepth),
          lowWater(threads_in)
    {
        if (limits_in.useNogoods && !limits_in.deterministic)
            nogoods.reset(new NogoodStore(limits_in.nogoodCapacity));
    }

    double
    elapsedS() const
    {
        return std::chrono::duration<double>(Clock::now() - startTime)
            .count();
    }
};

/**
 * One worker: a private propagation engine plus the serial searcher's
 * branching state, driven either by the shared deques (opportunistic
 * mode) or by a statically assigned slice of the frontier
 * (deterministic mode). The branching rules — eligible tasks sorted
 * longest tail first, options sorted by completion, the
 * completion-plus-tail prune — replicate Searcher::dfs exactly, so
 * the union of the subtrees covers the same schedule space and the
 * returned optima match the serial search (the differential test in
 * tests/cp/test_parallel_search.cc holds this).
 */
class Worker
{
  public:
    Worker(Shared &shared, int id, bool deterministic)
        : shared_(shared),
          model_(shared.model),
          limits_(shared.limits),
          id_(id),
          deterministic_(deterministic),
          packed_(shared.limits.packedLayout),
          n_(shared.model.numTasks()),
          engine_(shared.model, shared.limits.packedLayout)
    {
        engine_.add(makeTimetablePropagator(model_));
        engine_.add(makeDisjunctivePropagator(model_));
        engine_.add(makePrecedencePropagator(model_));
        if (limits_.energeticReasoning)
            engine_.add(makeEnergeticPropagator(model_));

        assign_.assign(n_, Assignment{});
        end_.assign(n_, 0);
        est_.assign(n_, 0);
        remainingPreds_.assign(n_, 0);
        for (int t = 0; t < n_; ++t) {
            remainingPreds_[t] =
                static_cast<int>(model_.predecessors(t).size()) +
                static_cast<int>(model_.lagPredecessors(t).size());
        }
        eligiblePos_.assign(n_, -1);
        for (int t = 0; t < n_; ++t)
            if (remainingPreds_[t] == 0)
                addEligible(t);

        privUb_ = shared.incumbent.ub();
        privFound_ = shared.incumbent.found();
        nodeBudget_ = limits_.maxNodes;

        if (shared.nogoods) {
            nogoods_ = shared.nogoods.get();
        } else if (limits_.useNogoods && deterministic) {
            // Deterministic mode: a private store keeps this
            // worker's pruning a function of its own slice only.
            privateNogoods_.reset(
                new NogoodStore(limits_.nogoodCapacity));
            nogoods_ = privateNogoods_.get();
        }

        // Per-worker scratch pools, sized once here (when the crew
        // is built at the frontier split) so no node allocates.
        if (!packed_) {
            size_t max_modes = 1;
            for (int t = 0; t < n_; ++t)
                max_modes = std::max(max_modes,
                                     model_.task(t).modes.size());
            frames_.resize(static_cast<size_t>(n_) + 1);
            for (Frame &frame : frames_) {
                frame.tasks.reserve(static_cast<size_t>(n_));
                frame.options.reserve(max_modes);
            }
        }
        scratchBaseline_ = scratchHeapBytes();
    }

    // -- Telemetry, read by the driver after the join. ------------
    int64_t nodes() const { return nodes_; }
    int64_t backtracks() const { return backtracks_; }
    int64_t solutions() const { return solutions_; }
    int64_t steals() const { return steals_; }
    int64_t published() const { return published_; }
    int64_t nogoodHits() const { return nogoodHits_; }
    int64_t nogoodsRecorded() const { return nogoodsRecorded_; }
    std::vector<PropagatorStats> propagators() const
    { return engine_.stats(); }

    /** Scratch heap growth since construction (steady state: 0). */
    int64_t scratchBytes() const
    { return scratchHeapBytes() - scratchBaseline_; }

    int64_t arenaHighWater() const
    {
        return static_cast<int64_t>(
            nodeArena_.highWater() +
            engine_.stateArena().highWater());
    }

    int64_t arenaRewinds() const
    {
        return nodeArena_.rewinds() +
               engine_.stateArena().rewinds();
    }

    int64_t arenaHeapBytes() const
    {
        return static_cast<int64_t>(
            nodeArena_.heapBytes() +
            engine_.stateArena().heapBytes());
    }

    // -- Deterministic-mode private incumbent. --------------------
    bool privateFound() const { return privFound_; }
    Time privateUb() const { return privUb_; }
    const ScheduleVec &privateBest() const { return privBest_; }
    ptrdiff_t privateBestSub() const { return privBestSub_; }
    bool stoppedOnGap() const { return localStop_; }
    bool stoppedOnLimit() const { return localLimit_; }

    /** Seed the private incumbent (deterministic worker startup). */
    void
    seedPrivate(Time ub, bool found)
    {
        privUb_ = ub;
        privFound_ = found;
    }

    /** Cap this worker's node count (deterministic budgeting). */
    void setNodeBudget(int64_t budget) { nodeBudget_ = budget; }

    /**
     * Serially enumerate the frontier at exactly `depth`: run the
     * search from the root, but capture every surviving node with
     * `depth` placements as a subproblem instead of descending into
     * it. Complete schedules above the frontier become (private)
     * incumbents. Returns with the worker back at the root state.
     */
    void
    generateFrontier(int depth, std::vector<Subproblem> *out)
    {
        collect_ = out;
        collectDepth_ = depth;
        dfs(0, std::max<Time>(0, limits_.lowerBound));
        collect_ = nullptr;
    }

    /** Opportunistic mode: pop, steal, search, spill, repeat. */
    void
    runOpportunistic()
    {
        trace::Span span("cp.search.worker",
                         trace::Arg::intArg("worker", id_));
        while (!abortRequested()) {
            Subproblem sub;
            if (shared_.deques[id_].pop(&sub)) {
                process(sub);
                continue;
            }
            if (trySteal(&sub)) {
                process(sub);
                continue;
            }
            if (!waitForWork(&sub))
                break;
            process(sub);
        }
        finishBudget();
        span.arg(trace::Arg::intArg("nodes", nodes_));
        span.arg(trace::Arg::intArg("steals", steals_));
    }

    /**
     * Deterministic mode: process frontier[i] for every
     * i == id (mod threads), in index order, against the private
     * incumbent only.
     */
    void
    runDeterministic(const std::vector<Subproblem> &frontier)
    {
        trace::Span span("cp.search.worker",
                         trace::Arg::intArg("worker", id_));
        for (size_t i = static_cast<size_t>(id_);
             i < frontier.size();
             i += static_cast<size_t>(shared_.threads)) {
            if (localStop_ || localLimit_)
                break;
            // Poll the wall-clock budgets between subproblems too:
            // nodeAdmission only checks every kBudgetBatch nodes
            // *inside* a subtree, so a frontier of cheap subproblems
            // could otherwise coast past the deadline.
            if (Clock::now() >= limits_.deadline ||
                shared_.elapsedS() >= limits_.maxSeconds) {
                localLimit_ = true;
                shared_.limitHit.store(true,
                                       std::memory_order_relaxed);
                break;
            }
            curSub_ = static_cast<ptrdiff_t>(i);
            process(frontier[i]);
        }
        span.arg(trace::Arg::intArg("nodes", nodes_));
    }

  private:
    void
    addEligible(int t)
    {
        eligiblePos_[t] = static_cast<int>(eligible_.size());
        eligible_.push_back(t);
    }

    void
    removeEligible(int t)
    {
        int pos = eligiblePos_[t];
        hilp_assert(pos >= 0 && eligible_[pos] == t);
        int last = eligible_.back();
        eligible_[pos] = last;
        eligiblePos_[last] = pos;
        eligible_.pop_back();
        eligiblePos_[t] = -1;
    }

    /** Commit one decision (mirrors the serial searcher's apply). */
    Time
    apply(const Decision &d)
    {
        const Mode &mode = model_.task(d.task).modes[
            static_cast<size_t>(d.mode)];
        engine_.place(d.task, mode, d.start);
        assign_[d.task] = {d.mode, d.start};
        end_[d.task] = d.start + mode.duration;
        hash_ ^= nogoodCode(d.task, d.mode, d.start);
        ++scheduled_;
        removeEligible(d.task);
        for (int s : model_.successors(d.task))
            if (--remainingPreds_[s] == 0)
                addEligible(s);
        path_.push_back(d);
        return end_[d.task];
    }

    void
    undo()
    {
        hilp_assert(!path_.empty());
        const Decision &d = path_.back();
        int t = d.task;
        hash_ ^= nogoodCode(d.task, d.mode, d.start);
        path_.pop_back();
        for (int s : model_.successors(t))
            if (remainingPreds_[s]++ == 0)
                removeEligible(s);
        addEligible(t);
        --scheduled_;
        assign_[t] = Assignment{};
        end_[t] = 0;
        engine_.undo();
    }

    /** The upper bound this worker prunes against right now. */
    Time
    currentUb() const
    {
        if (deterministic_ || collect_)
            return privUb_;
        return shared_.incumbent.ub();
    }

    bool
    abortRequested() const
    {
        if (deterministic_ || collect_)
            return localStop_ || localLimit_;
        return shared_.gapStop.load(std::memory_order_relaxed) ||
               shared_.limitHit.load(std::memory_order_relaxed) ||
               shared_.allDone.load(std::memory_order_relaxed);
    }

    /**
     * Per-node accounting: counts the node and periodically checks
     * the node and wall-clock budgets. Returns true when the search
     * must unwind.
     */
    bool
    nodeAdmission()
    {
        ++nodes_;
        if (trace::enabled() &&
            (nodes_ & (kNodeTraceSample - 1)) == 0)
            trace::instant("cp.nodes",
                           trace::Arg::intArg("nodes", nodes_));
        if ((nodes_ & (kBudgetBatch - 1)) == 0) {
            if (deterministic_ || collect_) {
                if (nodes_ >= nodeBudget_) {
                    localLimit_ = true;
                    shared_.limitHit.store(
                        true, std::memory_order_relaxed);
                }
            } else {
                int64_t global = shared_.nodesApprox.fetch_add(
                    kBudgetBatch, std::memory_order_relaxed) +
                    kBudgetBatch;
                if (global >= limits_.maxNodes) {
                    shared_.limitHit.store(
                        true, std::memory_order_relaxed);
                    shared_.wake();
                }
            }
            if (shared_.elapsedS() >= limits_.maxSeconds ||
                Clock::now() >= limits_.deadline) {
                shared_.limitHit.store(true,
                                       std::memory_order_relaxed);
                if (deterministic_ || collect_)
                    localLimit_ = true;
                else
                    shared_.wake();
            }
        }
        return abortRequested();
    }

    /** Flush the node-count remainder of the last batch. */
    void
    finishBudget()
    {
        if (!deterministic_)
            shared_.nodesApprox.fetch_add(
                nodes_ & (kBudgetBatch - 1),
                std::memory_order_relaxed);
    }

    /** A complete schedule: offer it as the new incumbent. */
    void
    offer(Time makespan)
    {
        if (deterministic_ || collect_) {
            if (!privFound_ || makespan < privUb_) {
                privUb_ = makespan;
                privFound_ = true;
                privBest_.tasks = assign_;
                privBestSub_ = curSub_;
                ++solutions_;
                if (privateGapReached())
                    localStop_ = true;
            }
            return;
        }
        if (shared_.incumbent.offer(makespan, assign_)) {
            ++solutions_;
            if (trace::enabled()) {
                double gap = makespan > 0
                    ? static_cast<double>(makespan -
                                          limits_.lowerBound) /
                      static_cast<double>(makespan)
                    : 0.0;
                trace::instant("cp.incumbent",
                               trace::Arg::intArg("makespan",
                                                  makespan),
                               trace::Arg::numArg("gap", gap));
            }
            sharedGapCheck();
        }
    }

    /** Serial gapReached() against the external bound only. */
    bool
    privateGapReached() const
    {
        if (!privFound_ || limits_.targetGap <= 0.0)
            return false;
        if (privUb_ <= 0)
            return true;
        double gap =
            static_cast<double>(privUb_ - limits_.lowerBound) /
            static_cast<double>(privUb_);
        return gap <= limits_.targetGap;
    }

    /**
     * Opportunistic targetGap stop against the aggregated global
     * lower bound: the optimum is at least
     * min(incumbent, min over remaining subtree bounds), and at
     * least the external bound.
     */
    void
    sharedGapCheck()
    {
        if (limits_.targetGap <= 0.0 ||
            !shared_.incumbent.found())
            return;
        Time ub = shared_.incumbent.ub();
        if (ub <= 0) {
            shared_.gapStop.store(true, std::memory_order_relaxed);
            shared_.wake();
            return;
        }
        Time remaining = shared_.aggregator.min();
        if (remaining == kInfTime)
            return; // Everything explored; exhaustion handles it.
        Time lb = std::max(limits_.lowerBound,
                           std::min(ub, remaining));
        double gap = static_cast<double>(ub - lb) /
                     static_cast<double>(ub);
        if (gap <= limits_.targetGap) {
            shared_.gapStop.store(true, std::memory_order_relaxed);
            shared_.wake();
        }
    }

    /**
     * Spill policy: publish children as stealable subproblems above
     * the split depth, and anywhere while workers are starving.
     */
    bool
    shouldSpill() const
    {
        if (deterministic_ || collect_)
            return false;
        if (scheduled_ < shared_.splitDepth)
            return true;
        return shared_.idle.load(std::memory_order_relaxed) > 0 &&
               shared_.pending.load(std::memory_order_relaxed) <
                   shared_.lowWater;
    }

    /** Publish one child of the current node onto the own deque. */
    void
    publish(const Decision &d, Time bound)
    {
        Subproblem sub;
        sub.prefix.reserve(path_.size() + 1);
        sub.prefix = path_;
        sub.prefix.push_back(d);
        sub.bound = bound;
        shared_.aggregator.add(bound);
        shared_.pending.fetch_add(1, std::memory_order_relaxed);
        shared_.deques[id_].push(std::move(sub));
        ++published_;
        if (shared_.idle.load(std::memory_order_relaxed) > 0)
            shared_.wake();
    }

    /**
     * The search recursion. Branching replicates Searcher::dfs; the
     * only structural additions are the frontier capture (collect_),
     * the spill path, and the shared upper bound.
     */
    void
    dfs(Time makespan, Time inherited_bound)
    {
        if (collect_ && scheduled_ == collectDepth_ &&
            scheduled_ < n_) {
            collect_->push_back(
                Subproblem{path_, inherited_bound});
            return;
        }
        if (nodeAdmission())
            return;
        if (scheduled_ == n_) {
            offer(makespan);
            return;
        }
        // A recorded no-good proves every completion of this
        // placement set is >= its bound; prune when that cannot beat
        // the incumbent this worker sees right now.
        if (nogoods_ && scheduled_ > 0) {
            Time known = nogoods_->lookup(hash_);
            if (known != NogoodStore::kNoBound &&
                known >= currentUb()) {
                ++nogoodHits_;
                return;
            }
        }
        Time ub = currentUb();
        PropagationContext ctx{model_, shared_.cp, assign_, end_,
                               makespan, limits_.lowerBound, ub,
                               est_};
        Time node_bound = engine_.fixpoint(ctx);
        if (node_bound >= ub) {
            // Certified by propagation alone. Skipped during
            // frontier capture only to keep generation free of
            // store-order effects.
            if (nogoods_ && scheduled_ > 0 && !collect_) {
                nogoods_->record(hash_, node_bound, scheduled_);
                ++nogoodsRecorded_;
            }
            return;
        }

        // Branch scratch mirrors the serial searcher: arena scratch
        // released wholesale on unwind (packed) or this depth's
        // preallocated frame (legacy) — no per-node allocations.
        const size_t num_branch = eligible_.size();
        support::Arena::Scope scope(packed_ ? &nodeArena_ : nullptr);
        Frame *frame = packed_ ? nullptr : &frames_[scheduled_];
        int *branch_tasks;
        if (packed_) {
            branch_tasks = nodeArena_.allocArray<int>(num_branch);
        } else {
            frame->tasks.resize(num_branch);
            branch_tasks = frame->tasks.data();
        }
        std::copy(eligible_.begin(), eligible_.end(), branch_tasks);
        std::sort(branch_tasks, branch_tasks + num_branch,
                  [this](int a, int b) {
                      if (shared_.cp.tail[a] != shared_.cp.tail[b])
                          return shared_.cp.tail[a] >
                                 shared_.cp.tail[b];
                      return a < b;
                  });

        bool spill = shouldSpill();
        const Profile &profile = engine_.profile();
        for (size_t bi = 0; bi < num_branch; ++bi) {
            int t = branch_tasks[bi];
            Time est = 0;
            for (int p : model_.predecessors(t))
                est = std::max(est, end_[p]);
            for (const Model::LagEdge &edge :
                 model_.lagPredecessors(t))
                est = std::max(est, assign_[edge.other].start +
                                    edge.lag);

            const Task &task = model_.task(t);
            Option *options;
            if (packed_) {
                options = nodeArena_.allocArray<Option>(
                    task.modes.size());
            } else {
                frame->options.resize(task.modes.size());
                options = frame->options.data();
            }
            size_t num_options = 0;
            Time tail_after =
                shared_.cp.tail[t] - model_.minDuration(t);
            ub = currentUb();
            for (size_t m = 0; m < task.modes.size(); ++m) {
                const Mode &mode = task.modes[m];
                Time start = profile.earliestStart(mode, est);
                if (start < 0)
                    continue;
                Time complete = start + mode.duration;
                if (complete + tail_after >= ub)
                    continue; // Cannot beat the incumbent.
                options[num_options++] =
                    {static_cast<int>(m), start, complete};
            }
            std::sort(options, options + num_options,
                      [](const Option &a, const Option &b) {
                          return a.complete < b.complete;
                      });

            for (size_t oi = 0; oi < num_options; ++oi) {
                const Option &opt = options[oi];
                Decision d{t, opt.mode, opt.start};
                Time child_bound = std::max(
                    node_bound,
                    static_cast<Time>(opt.complete + tail_after));
                if (spill) {
                    publish(d, child_bound);
                    continue;
                }
                apply(d);
                dfs(std::max(makespan, opt.complete), child_bound);
                undo();
                if (abortRequested())
                    return;
                // Re-check the prune: the incumbent may have
                // improved (here or on another worker).
                if (opt.complete + tail_after >= currentUb())
                    break; // Options are completion-sorted.
            }
        }
        // Record only when this node's subtree was really explored:
        // not when children were spilled for stealing or captured
        // into a frontier, and not on a budget/gap unwind (those
        // return early above). The bound is the incumbent at *this*
        // moment; it only decreases afterwards, so the no-good stays
        // valid for every other worker too.
        if (nogoods_ && scheduled_ > 0 && !spill && !collect_) {
            nogoods_->record(hash_, currentUb(), scheduled_);
            ++nogoodsRecorded_;
        }
        ++backtracks_;
    }

    /** Replay a subproblem's prefix, search it, and unwind. */
    void
    process(const Subproblem &sub)
    {
        // `sub.bound >= currentUb()` means the subtree is already
        // pruned by a better incumbent; otherwise search it.
        if (sub.bound < currentUb()) {
            Time makespan = 0;
            for (const Decision &d : sub.prefix)
                makespan = std::max(makespan, apply(d));
            dfs(makespan, sub.bound);
            for (size_t i = 0; i < sub.prefix.size(); ++i)
                undo();
        }
        if (!deterministic_) {
            shared_.aggregator.remove(sub.bound);
            // Only now does the subproblem leave the in-flight set:
            // any children it spilled are already counted, so
            // `pending` can never read 0 while work is unexplored.
            shared_.pending.fetch_sub(1, std::memory_order_acq_rel);
            sharedGapCheck();
        }
    }

    /**
     * Take the top half of some victim's deque: the extra
     * subproblems queue locally, the first (shallowest, so largest)
     * is returned for immediate processing.
     */
    bool
    trySteal(Subproblem *out)
    {
        for (int i = 1; i < shared_.threads; ++i) {
            int victim = (id_ + i) % shared_.threads;
            std::vector<Subproblem> stolen;
            if (shared_.deques[victim].steal(&stolen) == 0)
                continue;
            ++steals_;
            *out = std::move(stolen.front());
            for (size_t k = stolen.size(); k > 1; --k)
                shared_.deques[id_].push(
                    std::move(stolen[k - 1]));
            return true;
        }
        return false;
    }

    /**
     * Nothing to do right now: advertise idleness (spill heuristic)
     * and wait until work appears or the tree is exhausted.
     * `pending` counts claimed subproblems until their process()
     * returns, so a single load of 0 proves completion — there is no
     * idle-count handshake for a claim to race against. Waiting
     * spins briefly, then parks on the shared condition variable
     * with an exponentially growing timed wait (work can be
     * in-flight on other workers with nothing stealable for long
     * stretches, and burning a core on yield() would hold a
     * ThreadBudget slot the sweep pool could use).
     */
    bool
    waitForWork(Subproblem *out)
    {
        shared_.idle.fetch_add(1, std::memory_order_acq_rel);
        bool got = false;
        int spins = 0;
        int64_t sleep_us = kIdleSleepMinUs;
        while (!abortRequested()) {
            if (shared_.pending.load(std::memory_order_acquire) ==
                0) {
                shared_.allDone.store(true,
                                      std::memory_order_release);
                shared_.wake();
                break;
            }
            // Poll the wall-clock budgets while starving: a parked
            // worker otherwise only learns of the deadline from a
            // busy worker's nodeAdmission, and when every busy
            // worker is deep inside a slow propagation fixpoint the
            // cut can arrive arbitrarily late.
            if (Clock::now() >= limits_.deadline ||
                shared_.elapsedS() >= limits_.maxSeconds) {
                shared_.limitHit.store(true,
                                       std::memory_order_relaxed);
                shared_.wake();
                break;
            }
            if (shared_.deques[id_].pop(out) || trySteal(out)) {
                got = true;
                break;
            }
            if (++spins <= kIdleSpinIters) {
                std::this_thread::yield();
                continue;
            }
            std::unique_lock<std::mutex> lock(shared_.waitMutex);
            if (!abortRequested() &&
                shared_.pending.load(std::memory_order_acquire) > 0)
                shared_.waitCv.wait_for(
                    lock, std::chrono::microseconds(sleep_us));
            sleep_us = std::min(sleep_us * 2, kIdleSleepMaxUs);
        }
        shared_.idle.fetch_sub(1, std::memory_order_acq_rel);
        return got;
    }

    /** One feasible (mode, start) branch choice for a task. */
    struct Option
    {
        int mode;
        Time start;
        Time complete;
    };

    /** Legacy-layout per-depth scratch (preallocated in the ctor). */
    struct Frame
    {
        std::vector<int> tasks;
        std::vector<Option> options;
    };

    /** Heap bytes currently committed to this worker's scratch. */
    int64_t
    scratchHeapBytes() const
    {
        size_t bytes = nodeArena_.heapBytes() +
                       engine_.stateArena().heapBytes() +
                       engine_.profile().heapBytes();
        for (const Frame &frame : frames_) {
            bytes += frame.tasks.capacity() * sizeof(int);
            bytes += frame.options.capacity() * sizeof(Option);
        }
        return static_cast<int64_t>(bytes);
    }

    Shared &shared_;
    const Model &model_;
    const SearchLimits &limits_;
    const int id_;
    const bool deterministic_;
    const bool packed_;
    const int n_;

    PropagationEngine engine_;
    /** Packed-layout per-node scratch (one Scope per dfs call). */
    support::Arena nodeArena_;
    std::vector<Frame> frames_;
    int64_t scratchBaseline_ = 0;
    std::vector<Assignment> assign_;
    std::vector<Time> end_;
    std::vector<Time> est_;
    std::vector<int> remainingPreds_;
    std::vector<int> eligible_;
    std::vector<int> eligiblePos_;
    std::vector<Decision> path_;
    int scheduled_ = 0;

    // Frontier capture (deterministic generation).
    std::vector<Subproblem> *collect_ = nullptr;
    int collectDepth_ = 0;

    /** Zobrist key of the current placement set (see nogood.hh). */
    uint64_t hash_ = 0;
    /** Shared or private store; null when no-goods are disabled. */
    NogoodStore *nogoods_ = nullptr;
    std::unique_ptr<NogoodStore> privateNogoods_;
    int64_t nogoodHits_ = 0;
    int64_t nogoodsRecorded_ = 0;

    // Private incumbent (deterministic mode and generation).
    Time privUb_ = 0;
    bool privFound_ = false;
    ScheduleVec privBest_;
    ptrdiff_t privBestSub_ = -1;
    ptrdiff_t curSub_ = -1;
    bool localStop_ = false;
    bool localLimit_ = false;
    int64_t nodeBudget_ = 0;

    int64_t nodes_ = 0;
    int64_t backtracks_ = 0;
    int64_t solutions_ = 0;
    int64_t steals_ = 0;
    int64_t published_ = 0;
};

/** Fold one worker's counters into the result. */
void
mergeWorker(SearchResult &result, const Worker &worker,
            int64_t *arena_heap)
{
    result.nodes += worker.nodes();
    result.backtracks += worker.backtracks();
    result.solutions += worker.solutions();
    result.steals += worker.steals();
    result.subproblems += worker.published();
    result.nogoodHits += worker.nogoodHits();
    result.nogoodsRecorded += worker.nogoodsRecorded();
    result.scratchBytes += worker.scratchBytes();
    result.arenaHighWater += worker.arenaHighWater();
    result.arenaRewinds += worker.arenaRewinds();
    *arena_heap += worker.arenaHeapBytes();
    mergePropagatorStats(result.propagators, worker.propagators());
}

/** Per-search metrics flush (mirrors the serial searcher's). */
void
flushMetrics(const SearchResult &result, bool use_nogoods,
             int64_t arena_heap)
{
    metrics::counter("cp.search.nodes").add(result.nodes);
    metrics::counter("cp.search.backtracks").add(result.backtracks);
    metrics::counter("cp.search.solutions").add(result.solutions);
    metrics::counter("cp.par.searches").add(1);
    metrics::counter("cp.par.steals").add(result.steals);
    metrics::counter("cp.par.subproblems").add(result.subproblems);
    if (use_nogoods) {
        metrics::counter("cp.nogood.hits").add(result.nogoodHits);
        metrics::counter("cp.nogood.recorded")
            .add(result.nogoodsRecorded);
    }
    int64_t invocations = 0;
    int64_t prunings = 0;
    for (const PropagatorStats &stats : result.propagators) {
        invocations += stats.invocations;
        prunings += stats.prunings;
    }
    metrics::counter("cp.propagations").add(invocations);
    metrics::counter("cp.prunings").add(prunings);
    metrics::gauge("hilp.arena.bytes")
        .set(static_cast<double>(arena_heap));
    metrics::gauge("hilp.arena.highwater")
        .set(static_cast<double>(result.arenaHighWater));
    metrics::counter("hilp.arena.rewinds").add(result.arenaRewinds);
}

/** True when the warm start already satisfies the target gap. */
bool
initialGapReached(Time ub, const SearchLimits &limits)
{
    if (limits.targetGap <= 0.0)
        return false;
    if (ub <= 0)
        return true;
    double gap = static_cast<double>(ub - limits.lowerBound) /
                 static_cast<double>(ub);
    return gap <= limits.targetGap;
}

/**
 * Deterministic frontier: iterative deepening until the frontier is
 * wide enough to keep the crew busy (or the tree stops widening).
 * An explicit SearchLimits::splitDepth pins the depth instead.
 */
std::vector<Subproblem>
buildFrontier(Worker &generator, const SearchLimits &limits,
              int threads, int num_tasks)
{
    std::vector<Subproblem> frontier;
    if (limits.splitDepth > 0) {
        generator.generateFrontier(
            std::min(limits.splitDepth, num_tasks), &frontier);
        return frontier;
    }
    size_t target = static_cast<size_t>(threads) * 4;
    for (int depth = 1; depth <= num_tasks; ++depth) {
        std::vector<Subproblem> candidate;
        generator.generateFrontier(depth, &candidate);
        if (generator.stoppedOnLimit() || generator.stoppedOnGap())
            return candidate;
        bool grew = candidate.size() > frontier.size();
        frontier = std::move(candidate);
        if (frontier.size() >= target || frontier.empty())
            break;
        if (depth > 1 && !grew)
            break; // The tree is not widening; stop deepening.
    }
    return frontier;
}

SearchResult
runDeterministic(const Model &model, const SearchLimits &limits,
                 Shared &shared, SearchResult result,
                 int64_t *arena_heap)
{
    int threads = shared.threads;
    Worker generator(shared, 0, /*deterministic=*/true);
    std::vector<Subproblem> frontier =
        buildFrontier(generator, limits, threads, model.numTasks());

    // The generation pass may have solved the whole tree (all
    // leaves shallower than the frontier, or everything pruned).
    bool generation_done = frontier.empty() ||
        generator.stoppedOnLimit() || generator.stoppedOnGap();
    if (!generation_done) {
        // Register the frontier for telemetry parity.
        result.subproblems +=
            static_cast<int64_t>(frontier.size());

        std::vector<std::unique_ptr<Worker>> workers;
        workers.reserve(static_cast<size_t>(threads) - 1);
        for (int w = 1; w < threads; ++w) {
            workers.push_back(std::make_unique<Worker>(
                shared, w, /*deterministic=*/true));
            workers.back()->seedPrivate(generator.privateUb(),
                                        generator.privateFound());
        }
        // Reproducible budgeting: every worker gets an equal slice
        // of the node budget, the generator keeps what it already
        // spent plus its slice.
        int64_t slice =
            std::max<int64_t>(1, limits.maxNodes / threads);
        generator.setNodeBudget(generator.nodes() + slice);
        for (auto &worker : workers)
            worker->setNodeBudget(slice);

        std::vector<std::thread> crew;
        crew.reserve(workers.size());
        for (size_t w = 0; w < workers.size(); ++w) {
            Worker *worker = workers[w].get();
            crew.emplace_back([worker, &frontier, w] {
                trace::setThreadName(
                    format("cp-worker-%zu", w + 1));
                worker->runDeterministic(frontier);
            });
        }
        generator.runDeterministic(frontier);
        for (std::thread &thread : crew)
            thread.join();

        // Deterministic merge: best makespan, ties to the earliest
        // frontier index (the generator's pre-frontier finds count
        // as index -1).
        const Worker *winner = &generator;
        for (const auto &worker : workers) {
            if (!worker->privateFound())
                continue;
            if (!winner->privateFound() ||
                worker->privateUb() < winner->privateUb() ||
                (worker->privateUb() == winner->privateUb() &&
                 worker->privateBestSub() <
                     winner->privateBestSub()))
                winner = worker.get();
        }
        bool limit = generator.stoppedOnLimit();
        bool gap_stop = generator.stoppedOnGap();
        for (const auto &worker : workers) {
            limit = limit || worker->stoppedOnLimit();
            gap_stop = gap_stop || worker->stoppedOnGap();
            mergeWorker(result, *worker, arena_heap);
        }
        // The winner's view already includes the warm start; only
        // a strict improvement over it carries a schedule.
        if (winner->privateFound() &&
            (!result.foundSolution ||
             winner->privateUb() < result.bestMakespan)) {
            result.foundSolution = true;
            result.bestMakespan = winner->privateUb();
            result.best = winner->privateBest();
        }
        mergeWorker(result, generator, arena_heap);
        result.exhausted = !limit && !gap_stop;
        return result;
    }

    // Generation alone finished the search.
    mergeWorker(result, generator, arena_heap);
    if (generator.privateFound() &&
        (!result.foundSolution ||
         generator.privateUb() < result.bestMakespan)) {
        result.foundSolution = true;
        result.bestMakespan = generator.privateUb();
        result.best = generator.privateBest();
    }
    result.exhausted = !generator.stoppedOnLimit() &&
                       !generator.stoppedOnGap();
    return result;
}

SearchResult
runOpportunistic(const SearchLimits &limits, Shared &shared,
                 SearchResult result, int64_t *arena_heap)
{
    int threads = shared.threads;
    Subproblem root;
    root.bound = std::max<Time>(0, limits.lowerBound);
    shared.aggregator.add(root.bound);
    shared.pending.store(1, std::memory_order_relaxed);
    shared.deques[0].push(std::move(root));

    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int w = 0; w < threads; ++w)
        workers.push_back(std::make_unique<Worker>(
            shared, w, /*deterministic=*/false));

    std::vector<std::thread> crew;
    crew.reserve(static_cast<size_t>(threads) - 1);
    for (int w = 1; w < threads; ++w) {
        Worker *worker = workers[static_cast<size_t>(w)].get();
        crew.emplace_back([worker, w] {
            trace::setThreadName(format("cp-worker-%d", w));
            worker->runOpportunistic();
        });
    }
    workers[0]->runOpportunistic();
    for (std::thread &thread : crew)
        thread.join();

    for (const auto &worker : workers)
        mergeWorker(result, *worker, arena_heap);
    if (shared.incumbent.found()) {
        result.foundSolution = true;
        result.bestMakespan = shared.incumbent.ub();
        if (shared.incumbent.improvements() > 0)
            result.best = shared.incumbent.best();
    }
    result.exhausted =
        !shared.gapStop.load(std::memory_order_acquire) &&
        !shared.limitHit.load(std::memory_order_acquire);
    return result;
}

} // anonymous namespace

SearchResult
parallelBranchAndBound(const Model &model,
                       const ScheduleVec *warm_start,
                       const SearchLimits &limits)
{
    int threads = std::max(2, limits.threads);
    trace::Span span("cp.search",
                     trace::Arg::intArg("tasks", model.numTasks()),
                     trace::Arg::intArg("threads", threads));

    Time initial_ub = model.horizon() + 1;
    if (warm_start)
        initial_ub = warm_start->makespan(model);
    Shared shared(model, limits, initial_ub, warm_start, threads);

    SearchResult result;
    result.threadsUsed = threads;
    if (warm_start) {
        result.foundSolution = true;
        result.best = *warm_start;
        result.bestMakespan = initial_ub;
    }

    // Mirror the serial searcher: a warm start already inside the
    // target gap means no tree walk at all.
    if (result.foundSolution &&
        initialGapReached(initial_ub, limits)) {
        result.exhausted = false;
        PropagationEngine idle_engine(model, limits.packedLayout);
        idle_engine.add(makeTimetablePropagator(model));
        idle_engine.add(makeDisjunctivePropagator(model));
        idle_engine.add(makePrecedencePropagator(model));
        if (limits.energeticReasoning)
            idle_engine.add(makeEnergeticPropagator(model));
        result.propagators = idle_engine.stats();
        return result;
    }

    // A deadline that has already passed (or a zero wall-clock
    // budget) cuts the search before it starts. Returning here keeps
    // the flags consistent: without this check a tiny warm-started
    // tree can exhaust within the first budget batch — before any
    // worker polls the clock — and a run the caller cut would then
    // claim `exhausted`, which the solver treats as an optimality
    // proof.
    if (Clock::now() >= limits.deadline || limits.maxSeconds <= 0.0) {
        result.exhausted = false;
        return result;
    }

    int64_t arena_heap = 0;
    result = limits.deterministic
        ? runDeterministic(model, limits, shared,
                           std::move(result), &arena_heap)
        : runOpportunistic(limits, shared, std::move(result),
                           &arena_heap);

    span.arg(trace::Arg::intArg("nodes", result.nodes));
    span.arg(trace::Arg::intArg("steals", result.steals));
    flushMetrics(result, limits.useNogoods, arena_heap);
    return result;
}

} // namespace cp
} // namespace hilp
