#include "explore.hh"

#include "baselines/gables.hh"
#include "baselines/multiamdahl.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace hilp {
namespace dse {

const char *
toString(ModelKind kind)
{
    switch (kind) {
      case ModelKind::MultiAmdahl:
        return "MA";
      case ModelKind::Hilp:
        return "HILP";
      case ModelKind::Gables:
        return "Gables";
    }
    return "unknown";
}

DsePoint
evaluatePoint(const arch::SocConfig &config,
              const workload::Workload &workload,
              const arch::Constraints &constraints, ModelKind kind,
              const DseOptions &options)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = config.areaMm2();
    point.mix = classifyAccelMix(config);

    ProblemSpec spec =
        buildProblem(workload, config, constraints, options.build);
    if (!spec.validate().empty())
        return point; // Unschedulable under these budgets.

    double reference = workload::sequentialCpuTimeS(workload);

    switch (kind) {
      case ModelKind::MultiAmdahl: {
        baselines::MaResult ma = baselines::evaluateMultiAmdahl(spec);
        if (!ma.ok)
            return point;
        point.ok = true;
        point.makespanS = ma.makespanS;
        point.averageWlp = ma.averageWlp();
        point.gap = 0.0;
        break;
      }
      case ModelKind::Hilp: {
        EvalResult result = evaluate(spec, options.engine);
        if (!result.ok)
            return point;
        point.ok = true;
        point.makespanS = result.makespanS;
        point.averageWlp = result.averageWlp;
        point.gap = result.gap;
        break;
      }
      case ModelKind::Gables: {
        EvalResult result =
            baselines::evaluateGables(spec, options.engine);
        if (!result.ok)
            return point;
        point.ok = true;
        point.makespanS = result.makespanS;
        point.averageWlp = result.averageWlp;
        point.gap = result.gap;
        break;
      }
    }
    if (point.makespanS > 0.0)
        point.speedup = reference / point.makespanS;
    return point;
}

std::vector<DsePoint>
exploreSpace(const std::vector<arch::SocConfig> &configs,
             const workload::Workload &workload,
             const arch::Constraints &constraints, ModelKind kind,
             const DseOptions &options)
{
    std::vector<DsePoint> points(configs.size());
    ThreadPool pool(options.threads);
    pool.parallelFor(configs.size(), [&](size_t i) {
        points[i] = evaluatePoint(configs[i], workload, constraints,
                                  kind, options);
    });
    return points;
}

} // namespace dse
} // namespace hilp
