/** @file Unit tests for the paper's didactic problems. */

#include <gtest/gtest.h>

#include "hilp/showcase.hh"

namespace hilp {
namespace {

TEST(TwoAppExample, StructureMatchesFigure2)
{
    ProblemSpec spec = makeTwoAppExample();
    ASSERT_EQ(spec.apps.size(), 2u);
    EXPECT_EQ(spec.apps[0].name, "m");
    EXPECT_EQ(spec.apps[1].name, "n");
    EXPECT_EQ(spec.deviceNames.size(), 2u);
    EXPECT_DOUBLE_EQ(spec.cpuCores, 1.0);
    EXPECT_EQ(spec.validate(), "");
    for (const AppSpec &app : spec.apps) {
        ASSERT_EQ(app.phases.size(), 3u);
        EXPECT_TRUE(app.deps.empty()); // default chain
        // Setup/teardown: CPU only.
        EXPECT_EQ(app.phases[0].options.size(), 1u);
        EXPECT_EQ(app.phases[2].options.size(), 1u);
        // Compute: CPU, GPU, DSA.
        EXPECT_EQ(app.phases[1].options.size(), 3u);
    }
}

TEST(TwoAppExample, ComputeTimesMatchFigure2)
{
    ProblemSpec spec = makeTwoAppExample();
    const PhaseSpec &m1 = spec.apps[0].phases[1];
    EXPECT_DOUBLE_EQ(m1.options[0].timeS, 8.0); // CPU
    EXPECT_DOUBLE_EQ(m1.options[1].timeS, 6.0); // GPU
    EXPECT_DOUBLE_EQ(m1.options[2].timeS, 5.0); // DSA
    const PhaseSpec &n1 = spec.apps[1].phases[1];
    EXPECT_DOUBLE_EQ(n1.options[0].timeS, 5.0);
    EXPECT_DOUBLE_EQ(n1.options[1].timeS, 3.0);
    EXPECT_DOUBLE_EQ(n1.options[2].timeS, 2.0);
}

TEST(TwoAppExample, PowersMatchFigure2)
{
    ProblemSpec spec = makeTwoAppExample();
    const PhaseSpec &m1 = spec.apps[0].phases[1];
    EXPECT_DOUBLE_EQ(m1.options[0].powerW, 1.0); // CPU
    EXPECT_DOUBLE_EQ(m1.options[1].powerW, 3.0); // GPU
    EXPECT_DOUBLE_EQ(m1.options[2].powerW, 2.0); // DSA
}

TEST(TwoAppExample, NaiveCpuTimeIsSeventeenSeconds)
{
    // 1+8+1 + 1+5+1 = 17 s, the paper's naive baseline.
    ProblemSpec spec = makeTwoAppExample();
    double total = 0.0;
    for (const AppSpec &app : spec.apps)
        for (const PhaseSpec &phase : app.phases)
            total += phase.options[0].timeS;
    EXPECT_DOUBLE_EQ(total, kTwoAppNaiveCpuS);
}

TEST(Sda, StructureMatchesFigure9)
{
    ProblemSpec spec = makeSdaProblem(SdaVariant::Baseline, 1);
    ASSERT_EQ(spec.apps.size(), 1u);
    const AppSpec &app = spec.apps[0];
    ASSERT_EQ(app.phases.size(), 8u);
    EXPECT_EQ(app.deps.size(), 9u);
    EXPECT_EQ(spec.deviceNames.size(), 4u); // GPU + 3 DSAs.
    EXPECT_EQ(spec.validate(), "");
    // DS phases are pinned: exactly one option each, on a DSA.
    for (int p = 0; p < 3; ++p) {
        ASSERT_EQ(app.phases[p].options.size(), 1u);
        EXPECT_GE(app.phases[p].options[0].device, 1);
    }
    // DF is CPU-only.
    ASSERT_EQ(app.phases[3].options.size(), 1u);
    EXPECT_EQ(app.phases[3].options[0].device, kCpuPool);
    // C1..C3 and PP have CPU and GPU options.
    for (int p = 4; p < 8; ++p)
        EXPECT_EQ(app.phases[p].options.size(), 2u);
}

TEST(Sda, MultipleSamplesAreIndependentApps)
{
    ProblemSpec spec = makeSdaProblem(SdaVariant::Baseline, 3);
    EXPECT_EQ(spec.apps.size(), 3u);
    // Same DAG in each instance.
    for (const AppSpec &app : spec.apps)
        EXPECT_EQ(app.deps.size(), 9u);
}

TEST(Sda, FastCpuHalvesCpuTimes)
{
    ProblemSpec base = makeSdaProblem(SdaVariant::Baseline, 1);
    ProblemSpec fast = makeSdaProblem(SdaVariant::FastCpu, 1);
    // DF is CPU-only: its time halves.
    EXPECT_DOUBLE_EQ(fast.apps[0].phases[3].options[0].timeS,
                     base.apps[0].phases[3].options[0].timeS / 2.0);
    // DS phases are DSA-pinned: unchanged.
    EXPECT_DOUBLE_EQ(fast.apps[0].phases[0].options[0].timeS,
                     base.apps[0].phases[0].options[0].timeS);
}

TEST(Sda, BigGpuHalvesGpuTimes)
{
    ProblemSpec base = makeSdaProblem(SdaVariant::Baseline, 1);
    ProblemSpec big = makeSdaProblem(SdaVariant::BigGpu, 1);
    // C1's GPU option (index 1) halves; its CPU option does not.
    EXPECT_DOUBLE_EQ(big.apps[0].phases[4].options[1].timeS,
                     base.apps[0].phases[4].options[1].timeS / 2.0);
    EXPECT_DOUBLE_EQ(big.apps[0].phases[4].options[0].timeS,
                     base.apps[0].phases[4].options[0].timeS);
}

TEST(Sda, VariantNames)
{
    EXPECT_NE(std::string(toString(SdaVariant::Baseline)).find("c1"),
              std::string::npos);
    EXPECT_NE(std::string(toString(SdaVariant::FastCpu)).find("CPU"),
              std::string::npos);
    EXPECT_NE(std::string(toString(SdaVariant::BigGpu)).find("GPU"),
              std::string::npos);
}

} // anonymous namespace
} // namespace hilp
