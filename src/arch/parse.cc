#include "parse.hh"

#include <cctype>
#include <cstdlib>

#include "support/str.hh"

namespace hilp {
namespace arch {

namespace {

/** Parse a non-negative integer; ok=false on garbage. */
int
parseCount(const std::string &field, bool &ok)
{
    if (field.empty()) {
        ok = false;
        return 0;
    }
    for (char c : field) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
            ok = false;
            return 0;
        }
    }
    return std::atoi(field.c_str());
}

} // anonymous namespace

SocParseResult
parseSocName(const std::string &text,
             const std::vector<int> &dsa_priority,
             double dsa_advantage)
{
    SocParseResult result;

    // Normalize: strip whitespace and optional parentheses.
    std::string compact;
    for (char c : text)
        if (!std::isspace(static_cast<unsigned char>(c)))
            compact.push_back(c);
    if (!compact.empty() && compact.front() == '(')
        compact.erase(compact.begin());
    if (!compact.empty() && compact.back() == ')')
        compact.pop_back();

    std::vector<std::string> parts = split(compact, ',');
    if (parts.size() != 3) {
        result.error = "expected three comma-separated fields "
                       "(c<i>,g<j>,d<k>^<l>)";
        return result;
    }
    if (parts[0].empty() || parts[0][0] != 'c' ||
        parts[1].empty() || parts[1][0] != 'g' ||
        parts[2].empty() || parts[2][0] != 'd') {
        result.error = "fields must start with c, g, and d";
        return result;
    }

    bool ok = true;
    int cpus = parseCount(parts[0].substr(1), ok);
    int sms = parseCount(parts[1].substr(1), ok);

    std::vector<std::string> dsa_parts = split(parts[2].substr(1),
                                               '^');
    int dsas = 0;
    int pes = 0;
    if (dsa_parts.size() == 2) {
        dsas = parseCount(dsa_parts[0], ok);
        pes = parseCount(dsa_parts[1], ok);
    } else if (dsa_parts.size() == 1) {
        dsas = parseCount(dsa_parts[0], ok);
        pes = 1;
    } else {
        ok = false;
    }
    if (!ok) {
        result.error = "malformed count in configuration label";
        return result;
    }
    if (cpus < 1) {
        result.error = "an SoC needs at least one CPU core";
        return result;
    }
    if (dsas > 0 && pes < 1) {
        result.error = "DSAs need at least one PE";
        return result;
    }
    if (dsas > static_cast<int>(dsa_priority.size())) {
        result.error = format(
            "label asks for %d DSAs but the priority list has %zu "
            "targets", dsas, dsa_priority.size());
        return result;
    }

    result.config.cpuCores = cpus;
    result.config.gpuSms = sms;
    result.config.dsaAdvantage = dsa_advantage;
    for (int d = 0; d < dsas; ++d)
        result.config.dsas.push_back({pes, dsa_priority[d]});
    result.ok = true;
    return result;
}

} // namespace arch
} // namespace hilp
