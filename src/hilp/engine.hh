/**
 * @file
 * The HILP evaluation engine: adaptive time-step selection around
 * the CP solver (Section III-D).
 *
 * The engine solves the discretized problem at an initial time-step
 * size; while the resulting makespan uses fewer steps than the
 * refinement threshold it increases resolution by the refinement
 * factor and re-solves, keeping the horizon constant. If no schedule
 * fits at the initial resolution the engine coarsens instead. The
 * final result reports the makespan, the certified optimality bound
 * and gap, the schedule, and the average WLP.
 */

#ifndef HILP_HILP_ENGINE_HH
#define HILP_HILP_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>

#include "cp/solver.hh"
#include "discretize.hh"
#include "problem.hh"
#include "schedule.hh"

namespace hilp {

/** Engine configuration. */
struct EngineOptions
{
    double initialStepS = 10.0; //!< Starting time-step size.
    cp::Time horizonSteps = 200; //!< Fixed horizon, in steps.
    /** Refine resolution while the makespan is below this. */
    cp::Time refineThreshold = 40;
    double refineFactor = 5.0;  //!< Resolution multiplier per round.
    int maxRefinements = 6;
    int maxCoarsenings = 6;     //!< When nothing fits initially.
    cp::SolverOptions solver;   //!< Underlying solver budget/gap.
    /**
     * Re-solve attempts with multiplied budgets when the gap misses
     * the solver's target (Section III-D: "we rerun the experiments
     * that do not achieve this bound with more resources").
     */
    int escalations = 0;
    /** Budget multiplier applied per escalation. */
    double escalationFactor = 4.0;
    /**
     * Wall-clock ceiling for one *whole* evaluation, in seconds: all
     * resolution refinements, coarsenings, and escalations share one
     * monotonic deadline threaded through SolverOptions into the
     * search. On expiry the engine degrades gracefully instead of
     * failing: it returns the best incumbent found so far with its
     * certified gap (falling back to a cheap list-scheduler schedule
     * when no solve produced one) and sets EvalResult::degraded.
     * 0 (the default) means no ceiling.
     */
    double pointTimeoutS = 0.0;
    /**
     * Destroy/repair LNS iterations (see cp/lns.hh) polishing the
     * list-scheduler fallback's greedy schedule - the degradation
     * tier between "return the incumbent" and "raw greedy": when a
     * deadline expires with no solver incumbent, a short LNS pass
     * tightens the greedy schedule before it is certified and
     * returned. Monotone (never returns a worse schedule), so it is
     * on by default; 0 disables it.
     */
    int fallbackLnsIterations = 64;
    /**
     * Byte cap for the SolveMemo a sweep creates for this engine
     * configuration (see SolveMemo): 0 (the default) keeps the
     * historical unbounded per-sweep cache, a positive value bounds
     * it with byte-accounted LRU eviction. Long-lived callers - the
     * hilpd evaluation service foremost - must set a real cap, since
     * their memo outlives any single sweep.
     */
    size_t memoMaxBytes = 0;

    /**
     * The paper's validation-mode parameters (Section III-D): 2 s
     * steps, 1000-step horizon, refine below 200 steps.
     */
    static EngineOptions validationMode();

    /**
     * The paper's exploration-mode parameters: 10 s steps, 200-step
     * horizon, refine below 40 steps.
     */
    static EngineOptions explorationMode();
};

/** The outcome of evaluating a workload on an SoC. */
struct EvalResult
{
    bool ok = false;             //!< A schedule was produced.
    cp::SolveStatus status = cp::SolveStatus::NoSolution;
    double stepS = 0.0;          //!< Final time-step size.
    double makespanS = 0.0;      //!< Schedule length, seconds.
    double lowerBoundS = 0.0;    //!< Certified bound, seconds.
    double gap = 0.0;            //!< (UB - LB) / UB at the final step.
    Schedule schedule;           //!< The full schedule.
    double averageWlp = 0.0;     //!< Section II WLP metric.
    int refinements = 0;         //!< Resolution changes performed.
    cp::SolveStats stats;        //!< Stats of the final solve.

    // Effort telemetry across the whole evaluation (all resolutions
    // and escalation attempts), for the DSE sweep reports.
    int solves = 0;              //!< CP solves performed.
    int64_t totalNodes = 0;      //!< B&B nodes across all solves.
    int64_t totalBacktracks = 0;
    double totalSeconds = 0.0;   //!< Wall-clock across all solves.
    bool warmStarted = false;    //!< A transferred hint seeded a solve.
    bool cacheHit = false;       //!< Result came from a SolveMemo.
    /** Refinement stopped early: the sweep proved the point dominated. */
    bool prunedEarly = false;
    /**
     * The evaluation's deadline (EngineOptions::pointTimeoutS)
     * expired before the engine finished its planned work. The
     * result is still sound - the makespan carries the certified gap
     * of its final solve - but the gap may be wider than an
     * unconstrained evaluation would have achieved.
     */
    bool degraded = false;
    /**
     * Per-propagator telemetry merged (by name) across every solve
     * of the evaluation; zeroed on cache hits like the rest of the
     * effort counters.
     */
    std::vector<cp::PropagatorStats> propagators;

    /** True when the gap meets the paper's 10% near-optimal bar. */
    bool nearOptimal() const { return ok && gap <= 0.10 + 1e-12; }
};

/**
 * Thread-safe memo of completed evaluations keyed by
 * ProblemSpec::fingerprint(). Identical lowered instances then solve
 * once per memo lifetime. The cache is only sound across evaluations
 * that share the same EngineOptions, so each caller either owns its
 * memo (one exploreSpace sweep) or segments keys by an
 * engine-options digest (the long-lived service::EvalService).
 *
 * The memo is optionally bounded: with a positive byte cap, entries
 * are byte-accounted (resultFootprintBytes) and evicted in
 * least-recently-used order - lookup() refreshes recency - so a
 * long-running daemon's cache cannot grow without limit. Eviction
 * only ever costs a recompute, never correctness: an evicted key
 * simply misses and is solved again.
 */
class SolveMemo
{
  public:
    /** A memo capped at max_bytes; 0 (the default) is unbounded. */
    explicit SolveMemo(size_t max_bytes = 0);

    /**
     * Look up a cached result. On a hit, *out is the cached result
     * with cacheHit set and its effort counters zeroed (the work was
     * paid for by the original solve), and the entry becomes the
     * most recently used.
     */
    bool lookup(uint64_t key, EvalResult *out);

    /**
     * Insert a result. A key's entry is replaced when the new result
     * is strictly better: ok beats !ok, a smaller certified gap beats
     * a larger one, and a non-degraded result beats a degraded one of
     * equal gap - so an early timed-out or high-gap result cannot
     * shadow a later solve of the same spec that proves (near-)
     * optimality. Results of equal rank fall through to a total
     * order on content (makespan, then bound, then step, then a
     * structural digest), so the surviving entry is independent of
     * the thread interleaving that inserted them - a parallel sweep
     * memoizes reproducibly. With a byte cap, least-recently-used
     * entries are evicted until the memo fits again (a result larger
     * than the whole cap is not retained at all).
     */
    void insert(uint64_t key, const EvalResult &result);

    /**
     * Change the byte cap (0 = unbounded), evicting immediately if
     * the current contents exceed the new cap.
     */
    void setMaxBytes(size_t max_bytes);

    size_t maxBytes() const;
    /** Current byte footprint of all retained entries. */
    size_t bytes() const;
    /** Number of retained entries. */
    size_t entries() const;
    /** Entries evicted by the byte cap since construction. */
    int64_t evictions() const;
    /** Drop every entry (the accounting survives). */
    void clear();

    int64_t hits() const { return hits_.load(); }
    int64_t misses() const { return misses_.load(); }

    /**
     * The bytes one cached result is accounted as: the struct plus
     * its owned heap (schedule phases and their strings, device
     * names, propagator stats) plus per-entry bookkeeping. An
     * estimate - container slack is approximated - but a faithful
     * one: it scales with the schedule, which dominates.
     */
    static size_t resultFootprintBytes(const EvalResult &result);

  private:
    struct Entry
    {
        EvalResult result;
        size_t bytes = 0;
        std::list<uint64_t>::iterator lruIt;
    };

    /** Evict LRU entries until bytes_ <= maxBytes_. Lock held. */
    void evictToCapLocked();
    void publishBytesLocked();

    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, Entry> entries_;
    /** Keys, most recently used first. */
    std::list<uint64_t> lru_;
    size_t maxBytes_ = 0;
    size_t bytes_ = 0;
    int64_t evictions_ = 0;
    mutable std::atomic<int64_t> hits_{0};
    mutable std::atomic<int64_t> misses_{0};
};

/**
 * Cross-instance reuse context for evaluate(): everything the DSE
 * sweep shares between neighboring configurations.
 */
struct EvalReuse
{
    /**
     * A schedule from a similar problem (e.g. the neighboring SoC
     * config), re-timed onto this problem via transferSchedule() and
     * fed to the solver as a warm start. May be null.
     */
    const Schedule *hint = nullptr;
    /**
     * Sweep-level dominance oracle: given a resolution-invariant
     * lower bound on this instance's makespan (seconds, see
     * continuousLowerBoundS()), return true when the sweep already
     * holds a point that provably dominates any result this instance
     * can achieve at any resolution. The engine then skips resolution
     * refinement and returns the current (still gap-certified)
     * result. May be null.
     */
    std::function<bool(double lowerBoundS)> dominated;
    /** Fingerprint-keyed result cache shared across the sweep. */
    SolveMemo *memo = nullptr;
    /**
     * Key-space segmentation for memos shared beyond one sweep: a
     * non-zero salt (e.g. engineOptionsDigest of the evaluation's
     * options) is hash-combined into the memo key, so one long-lived
     * memo can serve requests with differing engine options without
     * ever returning a result computed under different options. 0
     * (the default) keys by the bare fingerprint, as a single-sweep
     * private memo always has.
     */
    uint64_t memoSalt = 0;
};

/**
 * Digest of every result-affecting engine option (resolution ladder,
 * budgets, solver knobs - not the memo cap, which only affects
 * retention). Evaluations with equal digests may soundly share memo
 * entries; see EvalReuse::memoSalt.
 */
uint64_t engineOptionsDigest(const EngineOptions &options);

/**
 * Evaluate the problem with the adaptive engine. The spec must
 * validate; a spec that cannot be scheduled at any attempted
 * resolution yields ok == false.
 */
EvalResult evaluate(const ProblemSpec &spec,
                    const EngineOptions &options);

/**
 * As above, with cross-instance reuse: a warm-start hint schedule, a
 * sweep-level dominance oracle, and a solve cache (any of which may
 * be null). Reuse only affects effort, not correctness: the returned
 * makespan always carries its certified bound and gap.
 */
EvalResult evaluate(const ProblemSpec &spec,
                    const EngineOptions &options,
                    const EvalReuse &reuse);

/**
 * A lower bound on the continuous-time makespan of the spec: the
 * longest dependency path in any application with every phase on its
 * fastest option, ignoring all resource contention. Unlike a solve's
 * certified bound this holds at *every* discretization (durations
 * only round up), so it is the sound input to EvalReuse::dominated.
 */
double continuousLowerBoundS(const ProblemSpec &spec);

/**
 * Re-time a schedule produced for a *similar* problem onto this
 * problem: each scheduled phase keeps its unit choice (matched by
 * option label, falling back to the fastest mode) and phases are
 * re-placed in hint start order at their earliest feasible starts.
 * Returns true and fills *out with a schedule that satisfies every
 * model constraint, or false when the hint does not transfer (e.g.
 * different phase structure or no feasible placement).
 */
bool transferSchedule(const ProblemSpec &spec,
                      const DiscretizedProblem &problem,
                      const Schedule &hint, cp::ScheduleVec *out);

/**
 * Lift a solver schedule back to spec terms. Exposed for tests and
 * for callers that drive the solver directly.
 */
Schedule liftSchedule(const ProblemSpec &spec,
                      const DiscretizedProblem &problem,
                      const cp::ScheduleVec &solution);

} // namespace hilp

#endif // HILP_HILP_ENGINE_HH
