/**
 * @file
 * Power-law fitting, the scaling methodology of HILP's experimental
 * setup (Section IV of the paper).
 *
 * The paper fills the gaps in its GPU profiles by fitting
 * y = a * x^b with least squares, where x is the number of SMs and y
 * is performance, bandwidth, or power normalized to the 14-SM GPU.
 * This module reimplements that fit (least squares on log-log data)
 * and provides the evaluation helpers the scaling model builds on.
 */

#ifndef HILP_SUPPORT_POWERLAW_HH
#define HILP_SUPPORT_POWERLAW_HH

#include <cstdint>
#include <vector>

namespace hilp {

/**
 * A fitted power law y = a * x^b together with its goodness of fit.
 */
struct PowerLaw
{
    double a = 1.0;  //!< Multiplicative coefficient.
    double b = 0.0;  //!< Exponent.
    double r2 = 0.0; //!< Coefficient of determination of the fit.

    /** Evaluate y = a * x^b; requires x > 0. */
    double eval(double x) const;

    /**
     * Ratio eval(x) / eval(x_ref): the scale factor of moving from
     * x_ref to x under this law. Independent of the coefficient a.
     */
    double scaleFrom(double x_ref, double x) const;
};

/**
 * Fit y = a * x^b by ordinary least squares on (log x, log y).
 * All xs and ys must be positive and there must be at least two
 * points. The returned r2 is computed in log space, matching the
 * convention of the paper's Tables II and III.
 */
PowerLaw fitPowerLaw(const std::vector<double> &xs,
                     const std::vector<double> &ys);

/**
 * Sample a known power law at the given xs, optionally perturbing
 * each sample by multiplicative log-normal noise with the given
 * standard deviation (in log space) using a deterministic seed.
 * Used by tests and the Table II/III regeneration benches to
 * exercise the fitting path on profile-shaped data.
 */
std::vector<double> samplePowerLaw(const PowerLaw &law,
                                   const std::vector<double> &xs,
                                   double log_noise_sd = 0.0,
                                   uint64_t seed = 1);

} // namespace hilp

#endif // HILP_SUPPORT_POWERLAW_HH
