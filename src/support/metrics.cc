#include "metrics.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <unordered_map>

#include "str.hh"

namespace hilp {
namespace metrics {

namespace {

/**
 * Each metric gets a process-unique id; thread-local cells are cached
 * by id (not by pointer) so a destroyed standalone metric can never
 * alias a later allocation at the same address.
 */
uint64_t
nextMetricId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/**
 * Per-thread cache mapping metric id -> that thread's cell. The
 * metric keeps its own shared_ptr to every cell it ever handed out,
 * so values survive thread exit (the cache only drops its reference).
 */
thread_local std::unordered_map<uint64_t, std::shared_ptr<void>>
    tl_cells;

} // anonymous namespace

/** One thread's slice of a counter, padded to its own cache line. */
struct alignas(64) Counter::Cell
{
    std::atomic<int64_t> value{0};
};

Counter::Counter(std::string name)
    : name_(std::move(name)), id_(nextMetricId())
{}

Counter::~Counter() = default;

Counter::Cell &
Counter::localCell()
{
    auto it = tl_cells.find(id_);
    if (it == tl_cells.end()) {
        auto cell = std::make_shared<Cell>();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            cells_.push_back(cell);
        }
        it = tl_cells.emplace(id_, cell).first;
    }
    return *static_cast<Cell *>(it->second.get());
}

void
Counter::add(int64_t delta)
{
    localCell().value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t
Counter::value() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    int64_t total = 0;
    for (const std::shared_ptr<Cell> &cell : cells_)
        total += cell->value.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::shared_ptr<Cell> &cell : cells_)
        cell->value.store(0, std::memory_order_relaxed);
}

/** One thread's slice of a histogram. */
struct alignas(64) Histogram::Cell
{
    std::array<std::atomic<int64_t>, kHistogramBuckets> counts{};
    std::atomic<int64_t> sum{0};
    /** min/max are written by the owning thread only. */
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
};

Histogram::Histogram(std::string name)
    : name_(std::move(name)), id_(nextMetricId())
{}

Histogram::~Histogram() = default;

int
Histogram::bucketOf(int64_t value)
{
    if (value <= 0)
        return 0;
    return std::bit_width(static_cast<uint64_t>(value));
}

Histogram::Cell &
Histogram::localCell()
{
    auto it = tl_cells.find(id_);
    if (it == tl_cells.end()) {
        auto cell = std::make_shared<Cell>();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            cells_.push_back(cell);
        }
        it = tl_cells.emplace(id_, cell).first;
    }
    return *static_cast<Cell *>(it->second.get());
}

void
Histogram::record(int64_t value)
{
    Cell &cell = localCell();
    cell.counts[bucketOf(value)].fetch_add(
        1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
    // The cell is written by this thread only, so plain
    // compare-then-store keeps min/max exact without a CAS loop.
    if (value < cell.min.load(std::memory_order_relaxed))
        cell.min.store(value, std::memory_order_relaxed);
    if (value > cell.max.load(std::memory_order_relaxed))
        cell.max.store(value, std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    int64_t min = INT64_MAX;
    int64_t max = INT64_MIN;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::shared_ptr<Cell> &cell : cells_) {
        for (int b = 0; b < kHistogramBuckets; ++b) {
            int64_t n = cell->counts[b].load(
                std::memory_order_relaxed);
            snap.buckets[b] += n;
            snap.count += n;
        }
        snap.sum += cell->sum.load(std::memory_order_relaxed);
        min = std::min(min,
                       cell->min.load(std::memory_order_relaxed));
        max = std::max(max,
                       cell->max.load(std::memory_order_relaxed));
    }
    if (snap.count > 0) {
        snap.min = min;
        snap.max = max;
    }
    return snap;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::shared_ptr<Cell> &cell : cells_) {
        for (int b = 0; b < kHistogramBuckets; ++b)
            cell->counts[b].store(0, std::memory_order_relaxed);
        cell->sum.store(0, std::memory_order_relaxed);
        cell->min.store(INT64_MAX, std::memory_order_relaxed);
        cell->max.store(INT64_MIN, std::memory_order_relaxed);
    }
}

double
HistogramSnapshot::mean() const
{
    if (count == 0)
        return 0.0;
    return static_cast<double>(sum) / static_cast<double>(count);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q <= 0.0)
        return static_cast<double>(min);
    if (q >= 1.0)
        return static_cast<double>(max);
    int64_t target = static_cast<int64_t>(
        std::ceil(q * static_cast<double>(count)));
    target = std::max<int64_t>(target, 1);
    int64_t seen = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
        int64_t inBucket = buckets[b];
        if (seen + inBucket >= target && inBucket > 0) {
            // Interpolate linearly across the bucket's value range
            // by the sample's rank within the bucket, then clamp to
            // the observed extremes (so q=0 is exactly min and q=1
            // exactly max whenever they fall in end buckets).
            double value = 0.0;
            if (b > 0) {
                double lower = std::ldexp(1.0, b - 1); // 2^(b-1)
                double upper = std::ldexp(1.0, b) - 1.0; // 2^b - 1
                double pos = static_cast<double>(target - seen);
                value = lower +
                    (upper - lower) *
                        (pos / static_cast<double>(inBucket));
            }
            return std::clamp(value, static_cast<double>(min),
                              static_cast<double>(max));
        }
        seen += inBucket;
    }
    return static_cast<double>(max);
}

namespace {

/**
 * The registry is leaked deliberately: metric references are cached
 * in function-local statics across the codebase and the atexit
 * observability dump runs late, so no destruction order is safe.
 */
struct Registry
{
    std::mutex mutex;
    // std::map: snapshots render in a stable, sorted order.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry &
registry()
{
    static Registry *instance = new Registry;
    return *instance;
}

} // anonymous namespace

Counter &
counter(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::unique_ptr<Counter> &slot = reg.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>(name);
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::unique_ptr<Gauge> &slot = reg.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>(name);
    return *slot;
}

Histogram &
histogram(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::unique_ptr<Histogram> &slot = reg.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(name);
    return *slot;
}

RegistrySnapshot
snapshotAll()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    RegistrySnapshot snap;
    snap.counters.reserve(reg.counters.size());
    for (const auto &[name, metric] : reg.counters)
        snap.counters.emplace_back(name, metric->value());
    snap.gauges.reserve(reg.gauges.size());
    for (const auto &[name, metric] : reg.gauges)
        snap.gauges.emplace_back(name, metric->value());
    snap.histograms.reserve(reg.histograms.size());
    for (const auto &[name, metric] : reg.histograms)
        snap.histograms.emplace_back(name, metric->snapshot());
    return snap;
}

Json
snapshotJson()
{
    RegistrySnapshot all = snapshotAll();

    Json counters = Json::object();
    for (const auto &[name, value] : all.counters)
        counters.set(name, Json::number(value));

    Json gauges = Json::object();
    for (const auto &[name, value] : all.gauges)
        gauges.set(name, Json::number(value));

    Json histograms = Json::object();
    for (const auto &[name, snap] : all.histograms) {
        Json entry = Json::object();
        entry.set("count", Json::number(snap.count));
        entry.set("sum", Json::number(snap.sum));
        entry.set("min", Json::number(snap.min));
        entry.set("max", Json::number(snap.max));
        entry.set("mean", Json::number(snap.mean()));
        entry.set("p50", Json::number(snap.quantile(0.50)));
        entry.set("p95", Json::number(snap.quantile(0.95)));
        entry.set("p99", Json::number(snap.quantile(0.99)));
        histograms.set(name, std::move(entry));
    }

    Json out = Json::object();
    out.set("counters", std::move(counters));
    out.set("gauges", std::move(gauges));
    out.set("histograms", std::move(histograms));
    return out;
}

namespace {

/**
 * RFC-4180 field quoting, applied only when the name needs it, so
 * the common dotted names stay byte-identical to what older tooling
 * parsed. A name like "dse.config((c4,g16,d2^16))" would otherwise
 * shift every later column.
 */
std::string
csvField(const std::string &name)
{
    if (name.find_first_of(",\"\n\r") == std::string::npos)
        return name;
    std::string quoted = "\"";
    for (char c : name) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // anonymous namespace

std::string
snapshotCsv()
{
    RegistrySnapshot all = snapshotAll();
    std::string out = "metric,kind,value\n";
    for (const auto &[name, value] : all.counters)
        out += format("%s,counter,%lld\n", csvField(name).c_str(),
                      static_cast<long long>(value));
    for (const auto &[name, value] : all.gauges)
        out += format("%s,gauge,%.9g\n", csvField(name).c_str(),
                      value);
    for (const auto &[name, snap] : all.histograms) {
        std::string field = csvField(name + ".count");
        out += format("%s,histogram,%lld\n", field.c_str(),
                      static_cast<long long>(snap.count));
        field = csvField(name + ".sum");
        out += format("%s,histogram,%lld\n", field.c_str(),
                      static_cast<long long>(snap.sum));
        field = csvField(name + ".min");
        out += format("%s,histogram,%lld\n", field.c_str(),
                      static_cast<long long>(snap.min));
        field = csvField(name + ".max");
        out += format("%s,histogram,%lld\n", field.c_str(),
                      static_cast<long long>(snap.max));
        field = csvField(name + ".mean");
        out += format("%s,histogram,%.9g\n", field.c_str(),
                      snap.mean());
        field = csvField(name + ".p95");
        out += format("%s,histogram,%.9g\n", field.c_str(),
                      snap.quantile(0.95));
    }
    return out;
}

void
resetAll()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &[name, metric] : reg.counters)
        metric->reset();
    for (const auto &[name, metric] : reg.gauges)
        metric->set(0.0);
    for (const auto &[name, metric] : reg.histograms)
        metric->reset();
}

} // namespace metrics
} // namespace hilp
