/** @file Tests for the Section VII extensions at the ProblemSpec
 * level: initiation intervals and extra (cache-level) resources. */

#include <gtest/gtest.h>

#include "baselines/multiamdahl.hh"
#include "hilp/builder.hh"
#include "hilp/discretize.hh"
#include "hilp/engine.hh"
#include "hilp/showcase.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace {

EngineOptions
exactEngine()
{
    EngineOptions options;
    options.initialStepS = 1.0;
    options.horizonSteps = 64;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0;
    return options;
}

TEST(StartLagSpec, ValidatesIndices)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.apps[0].startLags = {{0, 9, 1.0}};
    EXPECT_NE(spec.validate().find("start lag"), std::string::npos);
    spec.apps[0].startLags = {{0, 0, 1.0}};
    EXPECT_NE(spec.validate(), "");
    spec.apps[0].startLags = {{0, 2, -1.0}};
    EXPECT_NE(spec.validate().find("negative"), std::string::npos);
    spec.apps[0].startLags = {{0, 2, 1.0}};
    EXPECT_EQ(spec.validate(), "");
}

TEST(StartLagSpec, DiscretizesToModelLags)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.apps[0].startLags = {{0, 2, 3.0}};
    DiscretizedProblem problem = discretize(spec, 2.0, 64);
    int from = problem.taskOf[0][0];
    int to = problem.taskOf[0][2];
    ASSERT_EQ(problem.model.lagSuccessors(from).size(), 1u);
    EXPECT_EQ(problem.model.lagSuccessors(from)[0].other, to);
    // ceil(3.0 / 2.0) = 2 steps.
    EXPECT_EQ(problem.model.lagSuccessors(from)[0].lag, 2);
}

TEST(StartLagSpec, IndependentPhasesDropLags)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.apps[0].startLags = {{0, 2, 3.0}};
    spec.apps[0].independentPhases = true;
    EXPECT_TRUE(spec.apps[0].effectiveStartLags().empty());
    DiscretizedProblem problem = discretize(spec, 1.0, 64);
    EXPECT_FALSE(problem.model.hasStartLags());
}

TEST(StartLagSpec, EndToEndThroughTheEngine)
{
    // Force m's teardown to start >= 12 s after m's setup starts:
    // the 7 s optimum becomes impossible; expect 13 s (teardown
    // [12, 13)).
    ProblemSpec spec = makeTwoAppExample();
    spec.apps[0].startLags = {{0, 2, 12.0}};
    EvalResult result = evaluate(spec, exactEngine());
    ASSERT_TRUE(result.ok);
    EXPECT_DOUBLE_EQ(result.makespanS, 13.0);
}

TEST(StartLagSpec, MultiAmdahlInsertsIdleGaps)
{
    // MA runs m0, m1 (DSA, 5 s), m2 back to back = 7 s for app m;
    // a 10 s lag from m0 to m2 forces m2 to wait until t = 10.
    ProblemSpec spec = makeTwoAppExample();
    spec.apps[0].startLags = {{0, 2, 10.0}};
    baselines::MaResult result = baselines::evaluateMultiAmdahl(spec);
    ASSERT_TRUE(result.ok);
    // app m now ends at 11 (1 + idle to 10 + 1); app n takes 4 more.
    EXPECT_DOUBLE_EQ(result.makespanS, 15.0);
}

TEST(ExtraResources, ValidateChecksArityAndCapacity)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.apps[0].phases[0].options[0].extraUsage = {1.0};
    EXPECT_NE(spec.validate().find("extra"), std::string::npos);
    spec.extraResources = {{"LLC", 5.0}};
    EXPECT_EQ(spec.validate(), "");
    // A phase whose only option exceeds the capacity is rejected.
    spec.apps[0].phases[0].options[0].extraUsage = {9.0};
    EXPECT_NE(spec.validate().find("budget"), std::string::npos);
}

TEST(ExtraResources, ConstrainScheduling)
{
    // Both compute phases demand 3.0 of a 4.0-capacity resource:
    // they can no longer overlap, pushing the optimum from 7 s
    // (m1 on DSA || n1 on GPU) to 9 s.
    ProblemSpec spec = makeTwoAppExample();
    spec.extraResources = {{"LLC-bw", 4.0}};
    for (AppSpec &app : spec.apps)
        for (UnitOption &option : app.phases[1].options)
            option.extraUsage = {3.0};
    EvalResult result = evaluate(spec, exactEngine());
    ASSERT_TRUE(result.ok);
    EXPECT_DOUBLE_EQ(result.makespanS, 9.0);
}

TEST(CacheLevels, BuilderPopulatesExtraResources)
{
    auto wl = workload::makeWorkload(workload::Variant::Default);
    arch::SocConfig soc;
    soc.cpuCores = 2;
    soc.gpuSms = 16;
    arch::Constraints constraints;
    constraints.cacheLevels = {{"LLC", 900.0, 3.0}};
    ProblemSpec spec = buildProblem(wl, soc, constraints);
    ASSERT_EQ(spec.extraResources.size(), 1u);
    EXPECT_EQ(spec.extraResources[0].name, "LLC");
    EXPECT_DOUBLE_EQ(spec.extraResources[0].capacity, 900.0);
    // Every option's LLC demand is 3x its DRAM demand.
    for (const AppSpec &app : spec.apps) {
        for (const PhaseSpec &phase : app.phases) {
            for (const UnitOption &option : phase.options) {
                ASSERT_EQ(option.extraUsage.size(), 1u);
                EXPECT_NEAR(option.extraUsage[0], 3.0 * option.bwGBs,
                            1e-9);
            }
        }
    }
    EXPECT_EQ(spec.validate(), "");
}

TEST(CacheLevels, TightLlcActsLikeBandwidthWall)
{
    auto wl = workload::makeWorkload(workload::Variant::Optimized);
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 64;
    EngineOptions engine = EngineOptions::explorationMode();
    engine.solver.maxSeconds = 2.0;

    arch::Constraints unconstrained;
    EvalResult base =
        evaluate(buildProblem(wl, soc, unconstrained), engine);

    arch::Constraints tight;
    tight.cacheLevels = {{"LLC", 300.0, 3.0}}; // 100 GB/s DRAM-equiv.
    ProblemSpec spec = buildProblem(wl, soc, tight);
    ASSERT_EQ(spec.validate(), "");
    EvalResult constrained = evaluate(spec, engine);

    ASSERT_TRUE(base.ok && constrained.ok);
    EXPECT_GT(constrained.makespanS, base.makespanS);
}

} // anonymous namespace
} // namespace hilp
