#include "telemetry_http.hh"

#include <sys/socket.h>
#include <sys/time.h>

#include <utility>

#include "support/expo.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/str.hh"

namespace hilp {
namespace service {

namespace {

std::string
httpResponse(const char *status, const char *content_type,
             const std::string &body)
{
    std::string out = format("HTTP/1.0 %s\r\n", status);
    out += format("Content-Type: %s\r\n", content_type);
    out += format("Content-Length: %zu\r\n", body.size());
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

} // anonymous namespace

bool
TelemetryServer::start(const std::string &address, HealthFn health,
                       std::string *error)
{
    if (running_.load()) {
        if (error)
            *error = "telemetry server already running";
        return false;
    }
    if (!listener_.open(address, error))
        return false;
    health_ = std::move(health);
    running_.store(true);
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
TelemetryServer::stop()
{
    if (!running_.exchange(false)) {
        if (acceptor_.joinable())
            acceptor_.join();
        return;
    }
    // Unblock the accept loop; close-and-unlink happens after the
    // join so the acceptor never races the Listener's teardown.
    int fd = listener_.fd();
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
    if (acceptor_.joinable())
        acceptor_.join();
    listener_.close();
}

TelemetryServer::~TelemetryServer()
{
    stop();
}

void
TelemetryServer::acceptLoop()
{
    while (running_.load()) {
        net::Socket connection = listener_.accept();
        if (!connection.valid()) {
            if (!running_.load())
                break;
            continue; // Transient accept failure (e.g. EINTR).
        }
        // Served inline: scrapes are one short read and one write.
        // The receive timeout keeps a silent client from wedging the
        // endpoint for later scrapers.
        struct timeval timeout = {2, 0};
        ::setsockopt(connection.fd(), SOL_SOCKET, SO_RCVTIMEO,
                     &timeout, sizeof(timeout));
        serve(std::move(connection));
    }
}

void
TelemetryServer::serve(net::Socket socket)
{
    net::LineChannel channel(std::move(socket));
    std::string line;
    if (!channel.readLine(&line))
        return;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
        line.pop_back();

    // "GET /path HTTP/1.x" (the version token is optional: a bare
    // "GET /metrics" from netcat works too).
    std::string method, path;
    size_t space = line.find(' ');
    if (space == std::string::npos) {
        method = line;
    } else {
        method = line.substr(0, space);
        size_t pathEnd = line.find(' ', space + 1);
        path = pathEnd == std::string::npos
            ? line.substr(space + 1)
            : line.substr(space + 1, pathEnd - space - 1);
    }

    // Drain request headers (terminated by an empty line) so the
    // peer never sees the connection reset mid-send. EOF is fine.
    std::string header;
    while (channel.readLine(&header)) {
        while (!header.empty() && header.back() == '\r')
            header.pop_back();
        if (header.empty())
            break;
    }

    std::string response;
    if (method != "GET") {
        response = httpResponse("405 Method Not Allowed",
                                "text/plain; charset=utf-8",
                                "only GET is served\n");
    } else if (path == "/metrics") {
        response = httpResponse(
            "200 OK", "text/plain; version=0.0.4; charset=utf-8",
            expo::prometheusText());
    } else if (path == "/metrics.json") {
        response = httpResponse("200 OK",
                                "application/json; charset=utf-8",
                                metrics::snapshotJson().dump() + "\n");
    } else if (path == "/healthz") {
        Json body =
            health_ ? health_() : Json::object();
        if (!health_)
            body.set("ok", Json::boolean(true));
        response = httpResponse("200 OK",
                                "application/json; charset=utf-8",
                                body.dump() + "\n");
    } else {
        response = httpResponse("404 Not Found",
                                "text/plain; charset=utf-8",
                                format("no such path: %s\n",
                                       path.c_str()));
    }
    channel.socket().writeAll(response.data(), response.size());
}

} // namespace service
} // namespace hilp
