/**
 * @file
 * Bump-pointer arena with LIFO checkpoint/rewind, plus an inline
 * small-vector that spills into an arena.
 *
 * The CP search touches a small amount of scratch memory at every
 * node (branch orders, option lists, trail entries) and frees all of
 * it on backtrack, in exactly reverse order. A general-purpose heap
 * is the wrong tool for that pattern: each node pays malloc/free
 * churn and the scratch scatters across the heap. The Arena turns
 * the whole discipline into pointer arithmetic — alloc() bumps a
 * pointer inside a block, checkpoint()/rewind() snapshot and restore
 * it — so a search node's scratch is contiguous, hot in cache, and
 * free to release. Blocks are chained and never returned to the
 * heap until the arena dies, which is what makes the steady state
 * allocation-free: after warm-up, rewinding re-uses the same bytes
 * forever.
 *
 * Under AddressSanitizer the arena manually poisons everything
 * outside the live bump range, so a use-after-rewind (reading
 * scratch that a backtrack already released) is reported exactly
 * like a heap use-after-free would be.
 */

#ifndef HILP_SUPPORT_ARENA_HH
#define HILP_SUPPORT_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "logging.hh"

/*
 * Manual ASan poisoning: everything in a block that is not inside
 * the live bump range reads as poisoned, so a stale pointer into
 * rewound scratch trips the sanitizer exactly like a heap
 * use-after-free. Allocation sizes are rounded to 8 bytes (the ASan
 * shadow granule), so a poison edge never lands inside an
 * allocation.
 */
#if defined(__SANITIZE_ADDRESS__)
#define HILP_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HILP_ARENA_ASAN 1
#endif
#endif

#ifdef HILP_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define HILP_ARENA_POISON(ptr, size) \
    ASAN_POISON_MEMORY_REGION(ptr, size)
#define HILP_ARENA_UNPOISON(ptr, size) \
    ASAN_UNPOISON_MEMORY_REGION(ptr, size)
#else
#define HILP_ARENA_POISON(ptr, size) ((void)(ptr), (void)(size))
#define HILP_ARENA_UNPOISON(ptr, size) ((void)(ptr), (void)(size))
#endif

namespace hilp {
namespace support {

class Arena
{
  public:
    /** Size of the first block; later blocks double. */
    explicit Arena(size_t initial_block_bytes = size_t{1} << 12);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate `bytes` (suitably aligned for any scalar type; sizes
     * are rounded up to 8 bytes so ASan poison granules never split
     * an allocation). Never fails short of the system allocator
     * failing. The bump fast path is inline: the search performs a
     * handful of these per node.
     */
    void *
    alloc(size_t bytes)
    {
        bytes = roundUp(bytes ? bytes : kGranule);
        if (blocks_.empty() || blocks_[cur_].used + bytes >
                                   blocks_[cur_].size)
            ensure(bytes);
        Block &block = blocks_[cur_];
        char *ptr = block.data.get() + block.used;
        block.used += bytes;
        inUse_ += bytes;
        if (inUse_ > highWater_)
            highWater_ = inUse_;
        HILP_ARENA_UNPOISON(ptr, bytes);
        return ptr;
    }

    /** Typed array allocation. T must be trivially copyable. */
    template <typename T>
    T *
    allocArray(size_t count)
    {
        static_assert(std::is_trivially_copyable<T>::value,
                      "arena arrays hold trivially copyable types");
        static_assert(alignof(T) <= 8,
                      "arena alignment is 8 bytes");
        return static_cast<T *>(alloc(count * sizeof(T)));
    }

    /**
     * A position in the arena. Only LIFO discipline is supported:
     * rewinding to a checkpoint releases everything allocated after
     * it, and invalidates any checkpoint taken after it.
     */
    struct Checkpoint
    {
        uint32_t block = 0;
        size_t used = 0;
    };

    Checkpoint
    checkpoint() const
    {
        Checkpoint mark;
        mark.block = static_cast<uint32_t>(cur_);
        mark.used = blocks_.empty() ? 0 : blocks_[cur_].used;
        return mark;
    }

    /**
     * Release everything allocated after `mark` (LIFO). The common
     * case — the mark lives in the current block, which a per-node
     * Scope always hits — stays inline.
     */
    void
    rewind(Checkpoint mark)
    {
        hilp_assert(blocks_.empty() || mark.block <= cur_);
        ++rewinds_;
        if (blocks_.empty())
            return;
        if (mark.block < cur_) {
            rewindBlocks(mark);
            return;
        }
        Block &block = blocks_[cur_];
        hilp_assert(mark.used <= block.used);
        inUse_ -= block.used - mark.used;
        HILP_ARENA_POISON(block.data.get() + mark.used,
                          block.used - mark.used);
        block.used = mark.used;
    }

    /** Release everything; blocks stay cached for reuse. */
    void reset();

    /** RAII checkpoint/rewind. A null arena makes it a no-op. */
    class Scope
    {
      public:
        explicit Scope(Arena *arena)
            : arena_(arena)
        {
            if (arena_)
                mark_ = arena_->checkpoint();
        }

        ~Scope()
        {
            if (arena_)
                arena_->rewind(mark_);
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Arena *arena_;
        Checkpoint mark_{};
    };

    /** Live bytes (allocated and not yet rewound). */
    size_t bytesInUse() const { return inUse_; }

    /** Maximum bytesInUse() ever observed. */
    size_t highWater() const { return highWater_; }

    /** Total bytes this arena has obtained from the heap. */
    size_t heapBytes() const { return heapBytes_; }

    /** rewind()/reset() calls performed. */
    int64_t rewinds() const { return rewinds_; }

  private:
    struct Block
    {
        std::unique_ptr<char[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    /** ASan shadow granule; also the arena's alignment. */
    static constexpr size_t kGranule = 8;

    static size_t
    roundUp(size_t bytes)
    {
        return (bytes + kGranule - 1) & ~(kGranule - 1);
    }

    /** Make blocks_[cur_] able to hold `bytes` more. */
    void ensure(size_t bytes);

    /** Slow rewind path: the mark lies in an earlier block. */
    void rewindBlocks(Checkpoint mark);

    std::vector<Block> blocks_;
    size_t cur_ = 0;
    size_t nextBlockSize_;
    size_t inUse_ = 0;
    size_t highWater_ = 0;
    size_t heapBytes_ = 0;
    int64_t rewinds_ = 0;
};

/**
 * A vector with N elements of inline storage that spills to an Arena
 * (or, with no arena attached, to the heap) when it outgrows them.
 * Only the operations the solver hot paths need; T must be trivially
 * copyable so growth is one memcpy. Spilled arena storage is
 * intentionally leaked into the arena on regrowth — growth is
 * geometric, the arena reclaims everything wholesale, and the
 * attached arena must therefore outlive the vector and never be
 * rewound past the vector's allocations while it is live.
 */
template <typename T, size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "SmallVector holds trivially copyable types");

  public:
    explicit SmallVector(Arena *spill = nullptr)
        : data_(reinterpret_cast<T *>(inline_)),
          arena_(spill)
    {}

    ~SmallVector()
    {
        if (heap_)
            ::operator delete(data_);
    }

    SmallVector(const SmallVector &) = delete;
    SmallVector &operator=(const SmallVector &) = delete;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return cap_; }

    /** True when the contents live outside the inline buffer. */
    bool spilled() const
    {
        return data_ != reinterpret_cast<const T *>(inline_);
    }

    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }
    T *data() { return data_; }
    const T *data() const { return data_; }
    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    void
    push_back(const T &value)
    {
        if (size_ == cap_)
            grow();
        data_[size_++] = value;
    }

    void pop_back() { --size_; }
    void clear() { size_ = 0; }

  private:
    void
    grow()
    {
        size_t new_cap = cap_ * 2;
        T *moved;
        if (arena_) {
            moved = arena_->allocArray<T>(new_cap);
        } else {
            moved = static_cast<T *>(
                ::operator new(new_cap * sizeof(T)));
        }
        std::memcpy(static_cast<void *>(moved), data_,
                    size_ * sizeof(T));
        if (heap_)
            ::operator delete(data_);
        heap_ = arena_ == nullptr;
        data_ = moved;
        cap_ = new_cap;
    }

    T *data_;
    size_t size_ = 0;
    size_t cap_ = N;
    Arena *arena_;
    bool heap_ = false;
    alignas(8) char inline_[N * sizeof(T)];
};

} // namespace support
} // namespace hilp

#endif // HILP_SUPPORT_ARENA_HH
