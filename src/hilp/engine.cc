#include "engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "cp/list_scheduler.hh"
#include "cp/lns.hh"
#include "cp/profile.hh"
#include "support/hash.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace hilp {

SolveMemo::SolveMemo(size_t max_bytes) : maxBytes_(max_bytes) {}

bool
SolveMemo::lookup(uint64_t key, EvalResult *out)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            ++misses_;
            metrics::counter("hilp.cache.misses").add(1);
            return false;
        }
        // Refresh recency: a hit entry moves to the front of the
        // LRU order so hot specs survive eviction pressure.
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        *out = it->second.result;
    }
    ++hits_;
    metrics::counter("hilp.cache.hits").add(1);
    out->cacheHit = true;
    // The effort was paid for by the original solve; a hit is free.
    out->solves = 0;
    out->totalNodes = 0;
    out->totalBacktracks = 0;
    out->totalSeconds = 0.0;
    out->warmStarted = false;
    out->prunedEarly = false;
    out->propagators.clear();
    return true;
}

namespace {

/**
 * Structural digest of a result's content, for the final memo
 * tiebreak: two results that differ anywhere a caller can observe
 * digest differently (up to 64-bit collisions, which merely keep the
 * incumbent).
 */
uint64_t
resultDigest(const EvalResult &result)
{
    Hasher hasher;
    hasher.boolean(result.ok);
    hasher.i64(static_cast<int64_t>(result.status));
    hasher.f64(result.stepS);
    hasher.f64(result.makespanS);
    hasher.f64(result.lowerBoundS);
    for (const ScheduledPhase &phase : result.schedule.phases) {
        hasher.i64(phase.app);
        hasher.i64(phase.phase);
        hasher.i64(phase.option);
        hasher.i64(phase.startStep);
        hasher.i64(phase.durationSteps);
    }
    return hasher.digest();
}

/**
 * Strict quality order for memo entries: a feasible result beats an
 * infeasible one, then a smaller certified gap wins, then a
 * non-degraded result beats a degraded one. Effort and resolution
 * are not quality — but equal-rank entries must still resolve
 * deterministically (a parallel sweep races equal-rank inserts, and
 * "first insertion wins" would make the surviving entry depend on
 * the thread interleaving), so ranking falls through to a total
 * order on content: smaller makespan, then tighter bound, then
 * finer step, then the structural digest. Exact content ties keep
 * the incumbent, which is then the same entry either way.
 */
bool
betterResult(const EvalResult &candidate, const EvalResult &incumbent)
{
    if (candidate.ok != incumbent.ok)
        return candidate.ok;
    if (candidate.gap != incumbent.gap)
        return candidate.gap < incumbent.gap;
    if (candidate.degraded != incumbent.degraded)
        return !candidate.degraded;
    if (candidate.makespanS != incumbent.makespanS)
        return candidate.makespanS < incumbent.makespanS;
    if (candidate.lowerBoundS != incumbent.lowerBoundS)
        return candidate.lowerBoundS > incumbent.lowerBoundS;
    if (candidate.stepS != incumbent.stepS)
        return candidate.stepS < incumbent.stepS;
    return resultDigest(candidate) < resultDigest(incumbent);
}

} // anonymous namespace

size_t
SolveMemo::resultFootprintBytes(const EvalResult &result)
{
    // Per-entry bookkeeping: the hash-map node, the LRU list node,
    // and the Entry struct around the result.
    size_t bytes = sizeof(EvalResult) + 96;
    const Schedule &schedule = result.schedule;
    bytes += schedule.phases.capacity() * sizeof(ScheduledPhase);
    for (const ScheduledPhase &phase : schedule.phases) {
        bytes += phase.name.capacity();
        bytes += phase.unitLabel.capacity();
    }
    bytes += schedule.deviceNames.capacity() * sizeof(std::string);
    for (const std::string &name : schedule.deviceNames)
        bytes += name.capacity();
    bytes +=
        result.propagators.capacity() * sizeof(cp::PropagatorStats);
    for (const cp::PropagatorStats &stats : result.propagators)
        bytes += stats.name.capacity();
    return bytes;
}

void
SolveMemo::publishBytesLocked()
{
    metrics::gauge("hilp.memo.bytes")
        .set(static_cast<double>(bytes_));
}

void
SolveMemo::evictToCapLocked()
{
    if (maxBytes_ == 0)
        return;
    while (bytes_ > maxBytes_ && !lru_.empty()) {
        uint64_t victim = lru_.back();
        lru_.pop_back();
        auto it = entries_.find(victim);
        hilp_assert(it != entries_.end());
        bytes_ -= it->second.bytes;
        entries_.erase(it);
        ++evictions_;
        metrics::counter("hilp.memo.evictions").add(1);
    }
}

void
SolveMemo::insert(uint64_t key, const EvalResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        lru_.push_front(key);
        Entry entry;
        entry.result = result;
        entry.bytes = resultFootprintBytes(result);
        entry.lruIt = lru_.begin();
        bytes_ += entry.bytes;
        entries_.emplace(key, std::move(entry));
    } else if (betterResult(result, it->second.result)) {
        bytes_ -= it->second.bytes;
        it->second.result = result;
        it->second.bytes = resultFootprintBytes(result);
        bytes_ += it->second.bytes;
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    } else {
        // The incumbent survives; the attempt still counts as use.
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    }
    evictToCapLocked();
    publishBytesLocked();
}

void
SolveMemo::setMaxBytes(size_t max_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    maxBytes_ = max_bytes;
    evictToCapLocked();
    publishBytesLocked();
}

size_t
SolveMemo::maxBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return maxBytes_;
}

size_t
SolveMemo::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

size_t
SolveMemo::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

int64_t
SolveMemo::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

void
SolveMemo::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
    publishBytesLocked();
}

uint64_t
engineOptionsDigest(const EngineOptions &options)
{
    Hasher hasher;
    hasher.f64(options.initialStepS);
    hasher.i64(options.horizonSteps);
    hasher.i64(options.refineThreshold);
    hasher.f64(options.refineFactor);
    hasher.i64(options.maxRefinements);
    hasher.i64(options.maxCoarsenings);
    hasher.i64(options.escalations);
    hasher.f64(options.escalationFactor);
    hasher.f64(options.pointTimeoutS);
    hasher.i64(options.fallbackLnsIterations);
    const cp::SolverOptions &solver = options.solver;
    hasher.i64(solver.maxNodes);
    hasher.f64(solver.maxSeconds);
    hasher.f64(solver.targetGap);
    hasher.boolean(solver.useLpBound);
    hasher.i64(solver.greedyRestarts);
    hasher.i64(solver.lnsIterations);
    hasher.u64(solver.seed);
    hasher.u64(solver.seedSalt);
    hasher.boolean(solver.energeticReasoning);
    hasher.i64(solver.threads);
    hasher.boolean(solver.deterministicSearch);
    hasher.i64(solver.splitDepth);
    hasher.boolean(solver.useNogoods);
    hasher.u64(solver.nogoodCapacity);
    hasher.boolean(solver.lns);
    hasher.i64(solver.lnsPolishNodes);
    return hasher.digest();
}

EngineOptions
EngineOptions::validationMode()
{
    EngineOptions options;
    options.initialStepS = 2.0;
    options.horizonSteps = 1000;
    options.refineThreshold = 200;
    return options;
}

EngineOptions
EngineOptions::explorationMode()
{
    EngineOptions options;
    options.initialStepS = 10.0;
    options.horizonSteps = 200;
    options.refineThreshold = 40;
    return options;
}

Schedule
liftSchedule(const ProblemSpec &spec, const DiscretizedProblem &problem,
             const cp::ScheduleVec &solution)
{
    Schedule schedule;
    schedule.stepS = problem.stepS;
    schedule.deviceNames = spec.deviceNames;
    schedule.cpuCores = spec.cpuCores;
    for (int task = 0; task < problem.model.numTasks(); ++task) {
        const cp::Assignment &assignment = solution.tasks[task];
        hilp_assert(assignment.scheduled());
        auto [app, phase_idx] = problem.phaseOf[task];
        int option_idx = problem.optionOf[task][assignment.mode];
        const PhaseSpec &phase = spec.apps[app].phases[phase_idx];
        const UnitOption &option = phase.options[option_idx];

        ScheduledPhase placed;
        placed.app = app;
        placed.phase = phase_idx;
        placed.name = phase.name;
        placed.option = option_idx;
        placed.unitLabel = option.label;
        placed.device = option.device;
        placed.startStep = assignment.start;
        placed.durationSteps =
            problem.model.task(task).modes[assignment.mode].duration;
        placed.startS = assignment.start * problem.stepS;
        placed.durationS = placed.durationSteps * problem.stepS;
        placed.powerW = option.powerW;
        placed.bwGBs = option.bwGBs;
        placed.cpuCores = option.cpuCores;
        schedule.phases.push_back(std::move(placed));
    }
    return schedule;
}

double
continuousLowerBoundS(const ProblemSpec &spec)
{
    double bound = 0.0;
    for (const AppSpec &app : spec.apps) {
        const int n = static_cast<int>(app.phases.size());
        std::vector<double> fastest(n, 0.0);
        for (int p = 0; p < n; ++p) {
            double best = std::numeric_limits<double>::infinity();
            for (const UnitOption &option : app.phases[p].options)
                best = std::min(best, option.timeS);
            fastest[p] = best;
        }
        // Longest-path relaxation over the (small, acyclic) phase
        // graph: n rounds of Bellman-Ford reach a fixed point.
        std::vector<double> start(n, 0.0);
        auto deps = app.effectiveDeps();
        auto lags = app.effectiveStartLags();
        for (int round = 0; round < n; ++round) {
            for (auto [from, to] : deps)
                start[to] = std::max(start[to],
                                     start[from] + fastest[from]);
            for (const StartLag &lag : lags)
                start[lag.to] = std::max(start[lag.to],
                                         start[lag.from] + lag.lagS);
        }
        for (int p = 0; p < n; ++p)
            bound = std::max(bound, start[p] + fastest[p]);
    }
    return bound;
}

bool
transferSchedule(const ProblemSpec &spec,
                 const DiscretizedProblem &problem,
                 const Schedule &hint, cp::ScheduleVec *out)
{
    const cp::Model &model = problem.model;
    const int n = model.numTasks();
    if (static_cast<int>(hint.phases.size()) != n)
        return false;

    // Map every hint phase onto this problem's task and a mode:
    // the same unit option when the label still exists, otherwise
    // the fastest available mode.
    struct Placement
    {
        int task;
        int mode;
        double startS;
    };
    std::vector<Placement> order;
    order.reserve(n);
    std::vector<char> seen(n, 0);
    for (const ScheduledPhase &phase : hint.phases) {
        if (phase.app < 0 ||
            phase.app >= static_cast<int>(problem.taskOf.size()))
            return false;
        const std::vector<int> &row = problem.taskOf[phase.app];
        if (phase.phase < 0 ||
            phase.phase >= static_cast<int>(row.size()))
            return false;
        int task = row[phase.phase];
        if (task < 0 || task >= n || seen[task])
            return false;
        seen[task] = 1;

        const std::vector<cp::Mode> &modes = model.task(task).modes;
        const PhaseSpec &phase_spec =
            spec.apps[phase.app].phases[phase.phase];
        int pick = -1;
        for (int m = 0; m < static_cast<int>(modes.size()); ++m) {
            int option = problem.optionOf[task][m];
            if (phase_spec.options[option].label == phase.unitLabel) {
                pick = m;
                break;
            }
        }
        if (pick < 0) {
            for (int m = 0; m < static_cast<int>(modes.size()); ++m)
                if (pick < 0 ||
                    modes[m].duration < modes[pick].duration)
                    pick = m;
        }
        order.push_back({task, pick, phase.startS});
    }

    // Serial schedule generation in hint start order; topological
    // position breaks ties so predecessors are always placed first.
    std::vector<int> topo = model.topologicalOrder();
    std::vector<int> topo_pos(n, 0);
    for (int i = 0; i < n; ++i)
        topo_pos[topo[i]] = i;
    std::sort(order.begin(), order.end(),
              [&](const Placement &a, const Placement &b) {
                  if (a.startS != b.startS)
                      return a.startS < b.startS;
                  return topo_pos[a.task] < topo_pos[b.task];
              });

    cp::Profile table(model);
    std::vector<cp::Assignment> assign(n);
    std::vector<cp::Time> end(n, 0);
    for (const Placement &placement : order) {
        cp::Time est = 0;
        for (int pred : model.predecessors(placement.task)) {
            if (!assign[pred].scheduled())
                return false; // Hint order breaks a dependency.
            est = std::max(est, end[pred]);
        }
        for (const cp::Model::LagEdge &edge :
             model.lagPredecessors(placement.task)) {
            if (!assign[edge.other].scheduled())
                return false;
            est = std::max(est, assign[edge.other].start + edge.lag);
        }
        const cp::Mode &mode =
            model.task(placement.task).modes[placement.mode];
        cp::Time start = table.earliestStart(mode, est);
        if (start < 0)
            return false; // Does not fit within the horizon.
        table.place(mode, start);
        assign[placement.task] = {placement.mode, start};
        end[placement.task] = start + mode.duration;
    }

    out->tasks = std::move(assign);
    return checkSchedule(model, *out).empty();
}

namespace {

using EngineClock = std::chrono::steady_clock;

/**
 * Solve once at a fixed resolution and fill an EvalResult. The
 * deadline caps the solve (and its escalations) on top of the
 * per-solve budgets; a result cut short by it is marked degraded.
 */
EvalResult
solveAtResolution(const ProblemSpec &spec, double step_s,
                  const EngineOptions &options, const Schedule *hint,
                  EngineClock::time_point deadline)
{
    TRACE_SPAN("hilp.resolution",
               trace::Arg::numArg("step_s", step_s));
    DiscretizedProblem problem =
        discretize(spec, step_s, options.horizonSteps);

    // Re-time the cross-instance hint onto this resolution.
    cp::ScheduleVec transferred;
    const cp::ScheduleVec *hint_vec = nullptr;
    if (hint && transferSchedule(spec, problem, *hint, &transferred))
        hint_vec = &transferred;

    EvalResult eval;
    cp::SolverOptions solver_options = options.solver;
    solver_options.deadline = deadline;
    cp::Result result;
    for (int attempt = 0; ; ++attempt) {
        cp::Solver solver(solver_options);
        cp::Result candidate = solver.solve(problem.model, hint_vec);
        ++eval.solves;
        eval.totalNodes += candidate.stats.nodes;
        eval.totalBacktracks += candidate.stats.backtracks;
        eval.totalSeconds += candidate.stats.seconds;
        eval.warmStarted =
            eval.warmStarted || candidate.stats.hintAccepted;
        cp::mergePropagatorStats(eval.propagators,
                                 candidate.stats.propagators);
        if (attempt == 0 ||
            (candidate.hasSchedule() &&
             (!result.hasSchedule() ||
              candidate.makespan < result.makespan))) {
            // Keep the better schedule; bounds only ever tighten.
            cp::Time best_lb = std::max(result.lowerBound,
                                        candidate.lowerBound);
            result = std::move(candidate);
            result.lowerBound = std::max(result.lowerBound, best_lb);
        } else {
            result.lowerBound = std::max(result.lowerBound,
                                         candidate.lowerBound);
        }
        bool needs_more = result.hasSchedule() &&
            result.gap() > options.solver.targetGap;
        if (!needs_more || attempt >= options.escalations)
            break;
        if (EngineClock::now() >= deadline) {
            // The deadline cut planned escalations: keep the
            // incumbent and its certified gap, flagged as degraded.
            eval.degraded = true;
            break;
        }
        // The paper reruns experiments that miss the bound with
        // more resources; do the same with multiplied budgets.
        solver_options.maxSeconds *= options.escalationFactor;
        solver_options.maxNodes = static_cast<int64_t>(
            solver_options.maxNodes * options.escalationFactor);
        solver_options.lnsIterations = static_cast<int>(
            solver_options.lnsIterations * options.escalationFactor);
        solver_options.seed += 7919; // Diversify the heuristics.
    }

    // However the loop ended: a result still short of the target gap
    // with the deadline gone is degraded - given time, the engine
    // would have kept working the instance (here or in refinement).
    if (result.hasSchedule() &&
        result.gap() > options.solver.targetGap &&
        EngineClock::now() >= deadline)
        eval.degraded = true;

    eval.status = result.status;
    eval.stepS = step_s;
    eval.stats = result.stats;
    if (!result.hasSchedule())
        return eval;
    eval.ok = true;
    eval.makespanS = result.makespan * step_s;
    eval.lowerBoundS = result.lowerBound * step_s;
    eval.gap = result.gap();
    eval.schedule = liftSchedule(spec, problem, result.schedule);
    eval.averageWlp = eval.schedule.averageWlp();
    return eval;
}

/**
 * Last-resort degradation when the point deadline expires before any
 * CP solve produced a schedule: run the (millisecond-cheap) greedy
 * list scheduler over the remaining coarsening ladder and certify its
 * makespan against the combinatorial lower bounds. The result keeps
 * the engine's contract - a schedule with a certified gap - just a
 * wider gap than a full solve would earn.
 */
EvalResult
listSchedulerFallback(const ProblemSpec &spec, double step_s,
                      int coarsenings_left,
                      const EngineOptions &options)
{
    TRACE_SPAN("hilp.fallback");
    EvalResult eval;
    eval.degraded = true;
    // Same salted seeding as the solver facade: the fallback's
    // greedy and LNS passes must diversify across instances and
    // retry attempts too.
    uint64_t heuristic_seed = options.solver.seed;
    if (options.solver.seedSalt != 0) {
        Hasher hasher;
        hasher.u64(heuristic_seed);
        hasher.u64(options.solver.seedSalt);
        heuristic_seed = hasher.digest();
    }
    double step = step_s;
    for (int i = 0; i <= coarsenings_left;
         ++i, step *= options.refineFactor) {
        DiscretizedProblem problem =
            discretize(spec, step, options.horizonSteps);
        cp::ListResult greedy =
            cp::bestGreedy(problem.model, 2, heuristic_seed);
        if (!greedy.feasible)
            continue; // Horizon too tight; coarsen and retry.
        cp::LowerBounds bounds =
            cp::computeLowerBounds(problem.model, false);
        if (options.fallbackLnsIterations > 0) {
            // The degradation tier between "return the incumbent"
            // and raw greedy: a short, strictly-bounded LNS pass
            // tightens the greedy schedule. Monotone, so the result
            // replaces it unconditionally.
            cp::LnsOptions lns;
            lns.iterations = options.fallbackLnsIterations;
            lns.maxSeconds = 0.25;
            lns.seed = heuristic_seed + 3;
            lns.polishNodes = 512;
            lns.targetGap = options.solver.targetGap;
            lns.lowerBound = bounds.best();
            lns.useNogoods = options.solver.useNogoods;
            cp::LnsResult polished =
                cp::lnsImprove(problem.model, greedy.schedule, lns);
            greedy.schedule = polished.schedule;
            greedy.makespan = polished.makespan;
            metrics::counter("hilp.fallback.lns").add(1);
            metrics::counter("cp.lns.iterations")
                .add(polished.iterations);
            metrics::counter("cp.lns.improvements")
                .add(polished.improvements);
        }
        eval.ok = true;
        eval.status = cp::SolveStatus::Feasible;
        eval.stepS = step;
        eval.makespanS = greedy.makespan * step;
        eval.lowerBoundS = bounds.best() * step;
        eval.gap = greedy.makespan > 0
            ? static_cast<double>(greedy.makespan - bounds.best()) /
              static_cast<double>(greedy.makespan)
            : 0.0;
        eval.schedule = liftSchedule(spec, problem, greedy.schedule);
        eval.averageWlp = eval.schedule.averageWlp();
        metrics::counter("hilp.fallback.schedules").add(1);
        return eval;
    }
    eval.status = cp::SolveStatus::NoSolution;
    return eval;
}

} // anonymous namespace

EvalResult
evaluate(const ProblemSpec &spec, const EngineOptions &request_options,
         const EvalReuse &reuse)
{
    trace::Span eval_span("hilp.evaluate");
    if (trace::enabled())
        eval_span.arg(trace::Arg::strArg("spec", spec.name));

    std::string issue = spec.validate();
    if (!issue.empty())
        fatal("invalid problem spec '%s': %s", spec.name.c_str(),
              issue.c_str());
    hilp_assert(request_options.initialStepS > 0.0);
    hilp_assert(request_options.refineFactor > 1.0);

    // Salt the heuristic seed with the instance identity before any
    // solve: distinct problems sharing SolverOptions::seed must not
    // share greedy/LNS trajectories, and a sweep retry that bumps
    // seedSalt by the attempt index gets a genuinely different
    // destroy sequence instead of replaying the failing one. The
    // salt is applied below the memo (the key above hashes the
    // *request* options) and is a pure function of the fingerprint,
    // so cached and fresh evaluations of an instance still agree.
    EngineOptions options = request_options;
    {
        Hasher salt;
        salt.u64(request_options.solver.seedSalt);
        salt.u64(spec.fingerprint());
        options.solver.seedSalt = salt.digest();
    }

    // Identical lowered instances solve once per memo. A non-zero
    // salt segments the key space of a memo shared across requests
    // with differing engine options (see EvalReuse::memoSalt).
    uint64_t key = 0;
    if (reuse.memo) {
        key = spec.fingerprint();
        if (reuse.memoSalt != 0) {
            Hasher hasher;
            hasher.u64(key);
            hasher.u64(reuse.memoSalt);
            key = hasher.digest();
        }
        EvalResult cached;
        if (reuse.memo->lookup(key, &cached))
            return cached;
    }

    // One monotonic deadline governs the *whole* evaluation: every
    // coarsening, refinement, and escalation solves against it, so a
    // point can never cost more than pointTimeoutS wall-clock.
    EngineClock::time_point deadline = EngineClock::time_point::max();
    if (options.pointTimeoutS > 0.0)
        deadline = EngineClock::now() +
            std::chrono::duration_cast<EngineClock::duration>(
                std::chrono::duration<double>(options.pointTimeoutS));
    auto expired = [&deadline] {
        return EngineClock::now() >= deadline;
    };

    // Effort accumulates across every resolution attempted; the
    // returned result reports the sweep-relevant totals, not just
    // the final solve's.
    int solves = 0;
    int64_t nodes = 0;
    int64_t backtracks = 0;
    double seconds = 0.0;
    bool warm_started = false;
    bool degraded = false;
    std::vector<cp::PropagatorStats> propagators;
    auto solve_at = [&](double step_s) {
        EvalResult r = solveAtResolution(spec, step_s, options,
                                         reuse.hint, deadline);
        solves += r.solves;
        nodes += r.totalNodes;
        backtracks += r.totalBacktracks;
        seconds += r.totalSeconds;
        warm_started = warm_started || r.warmStarted;
        degraded = degraded || r.degraded;
        cp::mergePropagatorStats(propagators, r.propagators);
        return r;
    };
    auto finish = [&](EvalResult &&r) {
        r.solves = solves;
        r.totalNodes = nodes;
        r.totalBacktracks = backtracks;
        r.totalSeconds = seconds;
        r.warmStarted = warm_started;
        r.degraded = r.degraded || degraded;
        r.propagators = propagators;
        if (r.degraded)
            metrics::counter("hilp.evals.degraded").add(1);
        if (reuse.memo)
            reuse.memo->insert(key, r);
        return std::move(r);
    };

    // Find a resolution at which a schedule exists, coarsening when
    // the initial horizon is too tight.
    double step = options.initialStepS;
    EvalResult best = solve_at(step);
    int coarsenings = 0;
    while (!best.ok && coarsenings < options.maxCoarsenings &&
           !expired()) {
        step *= options.refineFactor;
        ++coarsenings;
        best = solve_at(step);
        best.refinements = -coarsenings;
    }
    if (!best.ok) {
        // Out of deadline with no schedule: degrade to the greedy
        // list scheduler over the remaining coarsening ladder rather
        // than reporting a hard failure.
        if (expired()) {
            EvalResult fallback = listSchedulerFallback(
                spec, step, options.maxCoarsenings - coarsenings,
                options);
            fallback.refinements = -coarsenings;
            return finish(std::move(fallback));
        }
        return finish(std::move(best));
    }

    // When the sweep already holds a point that dominates anything
    // this instance can achieve at *any* resolution (the continuous
    // critical-path bound is beaten at no more area), refinement
    // cannot change the sweep outcome: stop early with the current
    // gap-certified result. The coarse certified bound is NOT valid
    // here - refinement can land below it, since coarse durations
    // round up - so only the resolution-invariant bound is used.
    if (reuse.dominated && reuse.dominated(continuousLowerBoundS(spec))) {
        best.prunedEarly = true;
        return finish(std::move(best));
    }

    // Refine while the makespan under-uses the horizon (Sec. III-D).
    int refinements = 0;
    while (refinements < options.maxRefinements) {
        cp::Time makespan_steps = static_cast<cp::Time>(
            std::llround(best.makespanS / step));
        if (makespan_steps >= options.refineThreshold)
            break;
        if (expired()) {
            // Planned refinements were cut: the incumbent keeps the
            // certified gap of its own resolution, flagged degraded.
            best.degraded = true;
            break;
        }
        double finer = step / options.refineFactor;
        // The coarse solution seeds the finer solve; warmStarted
        // still reports only *cross-instance* hint acceptance.
        EvalResult candidate = solveAtResolution(
            spec, finer, options, &best.schedule, deadline);
        solves += candidate.solves;
        nodes += candidate.totalNodes;
        backtracks += candidate.totalBacktracks;
        seconds += candidate.totalSeconds;
        degraded = degraded || candidate.degraded;
        cp::mergePropagatorStats(propagators, candidate.propagators);
        if (!candidate.ok)
            break; // Finer resolution no longer fits the horizon.
        step = finer;
        ++refinements;
        candidate.refinements = refinements - coarsenings;
        best = std::move(candidate);
    }
    return finish(std::move(best));
}

EvalResult
evaluate(const ProblemSpec &spec, const EngineOptions &options)
{
    return evaluate(spec, options, EvalReuse{});
}

} // namespace hilp
