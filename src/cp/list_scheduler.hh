/**
 * @file
 * Greedy multi-start list scheduling.
 *
 * A serial schedule-generation scheme (SGS) drives a priority list:
 * at each step the highest-priority *eligible* task (all predecessors
 * scheduled) is placed at the earliest feasible start in its best
 * mode. Multiple priority rules plus seeded random restarts produce
 * the incumbent that warm-starts the branch-and-bound search.
 */

#ifndef HILP_CP_LIST_SCHEDULER_HH
#define HILP_CP_LIST_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "model.hh"

namespace hilp {
namespace cp {

/** Outcome of one greedy construction. */
struct ListResult
{
    bool feasible = false;
    ScheduleVec schedule;
    Time makespan = 0;
};

/**
 * Run the serial SGS with the given priority permutation (lower
 * position = higher priority; any permutation of 0..n-1 is legal, the
 * SGS only ever places eligible tasks). Mode choice is greedy:
 * minimize completion time, tie-break on duration then total
 * resource usage. Fails (infeasible) when some task cannot be placed
 * within the horizon.
 */
ListResult listSchedule(const Model &model,
                        const std::vector<int> &priority);

/**
 * As listSchedule, but tasks with forced_mode[t] >= 0 may only use
 * that mode. Used by the hill climber to explore mode choices the
 * myopic rule would never take (e.g. a slow low-power unit that
 * frees the budget for a concurrent accelerator).
 */
ListResult listSchedule(const Model &model,
                        const std::vector<int> &priority,
                        const std::vector<int> &forced_mode);

/**
 * Try the built-in priority rules (longest tail, longest processing
 * time, earliest head) plus `random_restarts` seeded random
 * permutations and return the best feasible schedule found.
 */
ListResult bestGreedy(const Model &model, int random_restarts = 8,
                      uint64_t seed = 1);

/**
 * Improve a greedy schedule by hill-climbing over priority
 * permutations: each iteration perturbs the incumbent order (swap or
 * relocate) and keeps the perturbation when the SGS makespan does
 * not get worse. This cheap large-neighbourhood pass substantially
 * tightens incumbents on power-constrained instances where myopic
 * mode choices serialize the schedule.
 */
ListResult improveGreedy(const Model &model, const ListResult &start,
                         int iterations, uint64_t seed = 99);

} // namespace cp
} // namespace hilp

#endif // HILP_CP_LIST_SCHEDULER_HH
