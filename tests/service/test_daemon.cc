/**
 * @file
 * Integration tests for the hilpd connection handler, driven over a
 * socketpair: the full NDJSON protocol without binding any address.
 * Covers the malformed-request path (the connection must survive),
 * admission-control rejection, point streaming in the checkpoint
 * record format, stats, and shutdown - including the rule that a
 * stopping daemon still answers stats but refuses new work.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "dse/checkpoint.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/str.hh"
#include "support/trace.hh"

namespace hilp {
namespace service {
namespace {

/**
 * One in-memory daemon connection: serveConnection runs on its own
 * thread against one end of a socketpair, the test speaks NDJSON on
 * the other.
 */
class DaemonHarness
{
  public:
    explicit DaemonHarness(const ServiceOptions &options = {},
                           const DaemonOptions &daemon_options = {})
        : service_(options), daemon_(service_, daemon_options)
    {
        int fds[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        server_ = std::thread([this, fd = fds[0]] {
            shutdownRequested_ =
                daemon_.serveConnection(net::Socket(fd));
        });
        client_.reset(new net::LineChannel(net::Socket(fds[1])));
    }

    ~DaemonHarness()
    {
        hangUp();
        if (server_.joinable())
            server_.join();
    }

    net::LineChannel &client() { return *client_; }
    Daemon &daemon() { return daemon_; }
    EvalService &service() { return service_; }

    /** Close the client end (the daemon handler sees EOF). */
    void
    hangUp()
    {
        if (client_)
            client_->socket().close();
    }

    /** Join the handler and report whether it requested shutdown. */
    bool
    shutdownRequested()
    {
        if (server_.joinable())
            server_.join();
        return shutdownRequested_;
    }

    /** Read one line and parse it as JSON (fails the test if not). */
    Json
    readJson()
    {
        std::string line;
        EXPECT_TRUE(client_->readLine(&line));
        Json json;
        std::string error;
        EXPECT_TRUE(Json::parse(line, &json, &error))
            << error << ": " << line;
        lastLine_ = line;
        return json;
    }

    /** The raw text of the last readJson() line. */
    const std::string &lastLine() const { return lastLine_; }

  private:
    EvalService service_;
    Daemon daemon_;
    std::unique_ptr<net::LineChannel> client_;
    std::thread server_;
    bool shutdownRequested_ = false;
    std::string lastLine_;
};

std::string
typeOf(const Json &json)
{
    const Json *type = json.find("type");
    return type && type->isString() ? type->stringValue()
                                    : std::string();
}

protocol::Request
maEvalRequest(const std::string &label)
{
    protocol::Request request;
    request.op = protocol::Op::Eval;
    request.configNames = {label};
    request.kind = dse::ModelKind::MultiAmdahl;
    return request;
}

TEST(DaemonProtocol, MalformedRequestKeepsConnectionUsable)
{
    DaemonHarness harness;

    // Not JSON at all.
    ASSERT_TRUE(harness.client().writeLine("this is not json"));
    Json done = harness.readJson();
    EXPECT_EQ(typeOf(done), "done");
    EXPECT_FALSE(done.find("ok")->boolValue());
    EXPECT_FALSE(done.find("error")->stringValue().empty());

    // Valid JSON, unknown op.
    ASSERT_TRUE(harness.client().writeLine("{\"op\":\"frobnicate\"}"));
    done = harness.readJson();
    EXPECT_EQ(typeOf(done), "done");
    EXPECT_FALSE(done.find("ok")->boolValue());

    // Valid JSON, bad config label.
    protocol::Request bad = maEvalRequest("(cX,gY,dZ)");
    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(bad)));
    done = harness.readJson();
    EXPECT_EQ(typeOf(done), "done");
    EXPECT_FALSE(done.find("ok")->boolValue());

    // The connection survived all three: stats still round-trips.
    protocol::Request stats;
    stats.op = protocol::Op::Stats;
    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(stats)));
    Json reply = harness.readJson();
    EXPECT_EQ(typeOf(reply), "stats");
    ASSERT_NE(reply.find("stats"), nullptr);
    EXPECT_NE(reply.find("stats")->find("memo"), nullptr);
    done = harness.readJson();
    EXPECT_EQ(typeOf(done), "done");
    EXPECT_TRUE(done.find("ok")->boolValue());

    harness.hangUp();
    EXPECT_FALSE(harness.shutdownRequested());
}

TEST(DaemonProtocol, EvalStreamsCheckpointCompatiblePoint)
{
    DaemonHarness harness;

    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(maEvalRequest("(c2,g4,d0^0)"))));

    Json point_line = harness.readJson();
    ASSERT_EQ(typeOf(point_line), "point") << harness.lastLine();
    // The streamed line is a valid --resume checkpoint record.
    uint64_t key = 0;
    dse::DsePoint point;
    bool has_schedule = false;
    ASSERT_TRUE(dse::parsePointRecord(harness.lastLine(), &key,
                                      &point, nullptr,
                                      &has_schedule));
    EXPECT_TRUE(point.ok);
    EXPECT_GT(point.makespanS, 0.0);

    Json done = harness.readJson();
    EXPECT_EQ(typeOf(done), "done");
    EXPECT_TRUE(done.find("ok")->boolValue())
        << done.find("error")->stringValue();
    EXPECT_EQ(done.find("points")->intValue(), 1);
}

TEST(DaemonProtocol, QueueFullRejectsWithReason)
{
    ServiceOptions options;
    options.maxQueueDepth = 0; // Admission control rejects everything.
    DaemonHarness harness(options);

    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(maEvalRequest("(c1,g0,d0^0)"))));
    Json done = harness.readJson();
    EXPECT_EQ(typeOf(done), "done");
    EXPECT_FALSE(done.find("ok")->boolValue());
    const std::string &error = done.find("error")->stringValue();
    EXPECT_NE(error.find("rejected"), std::string::npos) << error;
    EXPECT_NE(error.find("queue full"), std::string::npos) << error;

    // Rejection is per request, not per connection.
    protocol::Request stats;
    stats.op = protocol::Op::Stats;
    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(stats)));
    EXPECT_EQ(typeOf(harness.readJson()), "stats");
    EXPECT_TRUE(harness.readJson().find("ok")->boolValue());
}

TEST(DaemonProtocol, ShutdownRequestStopsDaemon)
{
    DaemonHarness harness;

    protocol::Request shutdown;
    shutdown.op = protocol::Op::Shutdown;
    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(shutdown)));
    Json done = harness.readJson();
    EXPECT_EQ(typeOf(done), "done");
    EXPECT_TRUE(done.find("ok")->boolValue());

    EXPECT_TRUE(harness.shutdownRequested());
    EXPECT_TRUE(harness.daemon().stopping());

    // The handler closed the connection after shutdown.
    std::string line;
    EXPECT_FALSE(harness.client().readLine(&line));
}

TEST(DaemonProtocol, StoppingDaemonRefusesWorkButAnswersStats)
{
    DaemonHarness harness;
    harness.daemon().stop();

    // New work is refused with a reason...
    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(maEvalRequest("(c1,g0,d0^0)"))));
    Json done = harness.readJson();
    EXPECT_EQ(typeOf(done), "done");
    EXPECT_FALSE(done.find("ok")->boolValue());
    EXPECT_NE(done.find("error")->stringValue().find("shutting down"),
              std::string::npos);

    // ...but observability survives the stop: stats still answers,
    // so an operator can inspect a draining daemon.
    protocol::Request stats;
    stats.op = protocol::Op::Stats;
    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(stats)));
    EXPECT_EQ(typeOf(harness.readJson()), "stats");
    EXPECT_TRUE(harness.readJson().find("ok")->boolValue());
}

TEST(DaemonProtocol, StalledPeerIsDroppedAndCounted)
{
    const int64_t timed_out_before =
        metrics::counter("hilpd.peers.timed_out").value();

    DaemonOptions daemon_options;
    daemon_options.readTimeoutS = 0.1;
    DaemonHarness harness({}, daemon_options);

    // Half a request line, then silence: the peer is stalled, not
    // gone, so only the read timeout can free the handler.
    ASSERT_TRUE(harness.client().socket().writeAll("{\"op\":", 6));
    std::string line;
    EXPECT_FALSE(harness.client().readLine(&line));
    EXPECT_FALSE(harness.shutdownRequested());
    EXPECT_EQ(metrics::counter("hilpd.peers.timed_out").value(),
              timed_out_before + 1);
}

TEST(DaemonProtocol, TraceIdRidesPointsAndDoneLine)
{
    DaemonHarness harness;

    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(maEvalRequest("(c2,g4,d0^0)"))));

    Json point_line = harness.readJson();
    ASSERT_EQ(typeOf(point_line), "point") << harness.lastLine();
    const Json *point_id = point_line.find("trace_id");
    ASSERT_NE(point_id, nullptr);
    EXPECT_GT(point_id->intValue(), 0);
    // The id survives a checkpoint-record round trip too.
    uint64_t key = 0;
    dse::DsePoint point;
    bool has_schedule = false;
    ASSERT_TRUE(dse::parsePointRecord(harness.lastLine(), &key,
                                      &point, nullptr,
                                      &has_schedule));
    EXPECT_EQ(static_cast<int64_t>(point.traceId),
              point_id->intValue());

    Json done = harness.readJson();
    ASSERT_EQ(typeOf(done), "done");
    const Json *done_id = done.find("trace_id");
    ASSERT_NE(done_id, nullptr);
    // One request, one id: the streamed point and the done line name
    // the same request.
    EXPECT_EQ(done_id->intValue(), point_id->intValue());

    // A second request gets a fresh id.
    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(maEvalRequest("(c2,g4,d0^0)"))));
    EXPECT_EQ(typeOf(harness.readJson()), "point");
    Json done2 = harness.readJson();
    ASSERT_EQ(typeOf(done2), "done");
    EXPECT_NE(done2.find("trace_id")->intValue(),
              done_id->intValue());
}

TEST(DaemonProtocol, StatsCarriesLatencyAndFlightRecorder)
{
    DaemonHarness harness;

    // Serve one request so the latency histograms and the flight
    // recorder have something to report.
    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(maEvalRequest("(c2,g4,d0^0)"))));
    EXPECT_EQ(typeOf(harness.readJson()), "point");
    EXPECT_EQ(typeOf(harness.readJson()), "done");

    protocol::Request stats;
    stats.op = protocol::Op::Stats;
    ASSERT_TRUE(harness.client().writeLine(
        protocol::encodeRequest(stats)));
    Json reply = harness.readJson();
    ASSERT_EQ(typeOf(reply), "stats");
    const Json *payload = reply.find("stats");
    ASSERT_NE(payload, nullptr);

    const Json *latency = payload->find("latency");
    ASSERT_NE(latency, nullptr);
    const Json *total = latency->find("hilpd.request.total_us");
    ASSERT_NE(total, nullptr);
    EXPECT_GE(total->find("count")->intValue(), 1);
    ASSERT_NE(total->find("p50"), nullptr);
    ASSERT_NE(total->find("p95"), nullptr);
    ASSERT_NE(total->find("p99"), nullptr);
    EXPECT_LE(total->find("p50")->numberValue(),
              total->find("p99")->numberValue());

    const Json *recorder = payload->find("flight_recorder");
    ASSERT_NE(recorder, nullptr);
    EXPECT_GT(recorder->find("capacity")->intValue(), 0);
    EXPECT_GE(recorder->find("occupancy")->intValue(), 1);
    EXPECT_EQ(typeOf(harness.readJson()), "done");

    // The in-process view agrees with the wire view.
    EXPECT_GE(harness.service().flightRecorder().recorded(), 1);
}

TEST(DaemonProtocol, SlowRequestDumpsContextFilteredTrace)
{
    bool was_enabled = trace::enabled();
    bool was_ring = trace::ringBuffered();
    trace::clearAll();
    trace::setRingBuffered(true);
    trace::setEnabled(true);

    DaemonOptions daemon_options;
    daemon_options.sloMs = 0.001; // Everything is slow.
    daemon_options.dumpDir = ::testing::TempDir();
    {
        DaemonHarness harness({}, daemon_options);
        ASSERT_TRUE(harness.client().writeLine(
            protocol::encodeRequest(maEvalRequest("(c2,g4,d0^0)"))));
        EXPECT_EQ(typeOf(harness.readJson()), "point");
        Json done = harness.readJson();
        ASSERT_EQ(typeOf(done), "done");
        uint64_t trace_id = static_cast<uint64_t>(
            done.find("trace_id")->intValue());

        // The dump landed, request-id-stamped, and is a valid Chrome
        // trace containing the request's span.
        std::string path = format(
            "%s/hilpd_slow_req%llu.trace.json",
            daemon_options.dumpDir.c_str(),
            static_cast<unsigned long long>(trace_id));
        std::ifstream file(path);
        ASSERT_TRUE(file.good()) << path;
        std::ostringstream buffer;
        buffer << file.rdbuf();
        Json dump;
        std::string error;
        ASSERT_TRUE(Json::parse(buffer.str(), &dump, &error))
            << error;
        EXPECT_EQ(trace::validateChromeTrace(dump), "");
        EXPECT_NE(buffer.str().find("hilpd.request.eval"),
                  std::string::npos);
        // Flight recorder marked it slow.
        EXPECT_GE(harness.service().flightRecorder().slowCount(), 1);
        std::remove(path.c_str());
    }

    trace::setEnabled(was_enabled);
    trace::setRingBuffered(was_ring);
    trace::clearAll();
}

TEST(DaemonProtocol, RequestRoundTrip)
{
    // encodeRequest -> parseRequest is lossless for the fields that
    // travel; guards the client and daemon against drifting apart.
    protocol::Request request;
    request.op = protocol::Op::Sweep;
    request.configNames = {"(c2,g4,d0^0)", "(c4,g16,d2^16)"};
    request.variant = workload::Variant::Optimized;
    request.copies = 3;
    request.dsaAdvantage = 8.0;
    request.constraints.powerBudgetW = 50.0;
    request.kind = dse::ModelKind::Hilp;
    request.options.threads = 4;
    request.options.engine.solver.maxSeconds = 1.5;
    request.options.engine.pointTimeoutS = 9.0;
    request.priority = 2;

    protocol::Request decoded;
    std::string error;
    ASSERT_TRUE(protocol::parseRequest(
        protocol::encodeRequest(request), &decoded, &error)) << error;
    EXPECT_EQ(decoded.op, protocol::Op::Sweep);
    EXPECT_EQ(decoded.configNames, request.configNames);
    EXPECT_EQ(decoded.variant, workload::Variant::Optimized);
    EXPECT_EQ(decoded.copies, 3);
    EXPECT_DOUBLE_EQ(decoded.dsaAdvantage, 8.0);
    EXPECT_DOUBLE_EQ(decoded.constraints.powerBudgetW, 50.0);
    EXPECT_EQ(decoded.kind, dse::ModelKind::Hilp);
    EXPECT_EQ(decoded.options.threads, 4);
    EXPECT_DOUBLE_EQ(decoded.options.engine.solver.maxSeconds, 1.5);
    EXPECT_DOUBLE_EQ(decoded.options.engine.pointTimeoutS, 9.0);
    EXPECT_EQ(decoded.priority, 2);

    std::vector<arch::SocConfig> configs;
    ASSERT_TRUE(protocol::resolveConfigs(decoded, &configs, &error))
        << error;
    ASSERT_EQ(configs.size(), 2u);
    EXPECT_EQ(configs[0].cpuCores, 2);
    EXPECT_EQ(configs[0].gpuSms, 4);
    EXPECT_EQ(configs[1].cpuCores, 4);
    ASSERT_EQ(configs[1].dsas.size(), 2u);
    EXPECT_EQ(configs[1].dsas[0].pes, 16);
    EXPECT_DOUBLE_EQ(configs[1].dsaAdvantage, 8.0);
}

} // anonymous namespace
} // namespace service
} // namespace hilp
