#include "protocol.hh"

#include <cstring>

#include "arch/parse.hh"
#include "support/str.hh"

namespace hilp {
namespace service {
namespace protocol {

namespace {

double
numberOr(const Json &object, const char *key, double fallback)
{
    const Json *value = object.find(key);
    return value && value->isNumber() ? value->numberValue()
                                      : fallback;
}

int64_t
intOr(const Json &object, const char *key, int64_t fallback)
{
    const Json *value = object.find(key);
    return value && value->isNumber() ? value->intValue() : fallback;
}

bool
boolOr(const Json &object, const char *key, bool fallback)
{
    const Json *value = object.find(key);
    return value && value->isBool() ? value->boolValue() : fallback;
}

std::string
stringOr(const Json &object, const char *key,
         const std::string &fallback)
{
    const Json *value = object.find(key);
    return value && value->isString() ? value->stringValue()
                                      : fallback;
}

} // anonymous namespace

const char *
toString(Op op)
{
    switch (op) {
      case Op::Eval:
        return "eval";
      case Op::Sweep:
        return "sweep";
      case Op::Stats:
        return "stats";
      case Op::Shutdown:
        return "shutdown";
      case Op::Lease:
        return "lease";
      case Op::Submit:
        return "submit";
      case Op::Heartbeat:
        return "heartbeat";
      case Op::Drain:
        return "drain";
    }
    return "unknown";
}

bool
parseModelKind(const std::string &name, dse::ModelKind *out)
{
    if (name == "MA")
        *out = dse::ModelKind::MultiAmdahl;
    else if (name == "HILP")
        *out = dse::ModelKind::Hilp;
    else if (name == "Gables")
        *out = dse::ModelKind::Gables;
    else
        return false;
    return true;
}

bool
parseVariant(const std::string &name, workload::Variant *out)
{
    if (name == "Rodinia")
        *out = workload::Variant::Rodinia;
    else if (name == "Default")
        *out = workload::Variant::Default;
    else if (name == "Optimized")
        *out = workload::Variant::Optimized;
    else
        return false;
    return true;
}

Json
engineOptionsJson(const EngineOptions &options)
{
    Json json = Json::object();
    json.set("initial_step_s", Json::number(options.initialStepS));
    json.set("horizon_steps",
             Json::number(static_cast<int64_t>(options.horizonSteps)));
    json.set("refine_threshold",
             Json::number(
                 static_cast<int64_t>(options.refineThreshold)));
    json.set("refine_factor", Json::number(options.refineFactor));
    json.set("max_refinements",
             Json::number(static_cast<int64_t>(options.maxRefinements)));
    json.set("max_coarsenings",
             Json::number(
                 static_cast<int64_t>(options.maxCoarsenings)));
    json.set("escalations",
             Json::number(static_cast<int64_t>(options.escalations)));
    json.set("escalation_factor",
             Json::number(options.escalationFactor));
    json.set("point_timeout_s", Json::number(options.pointTimeoutS));
    json.set("fallback_lns_iterations",
             Json::number(static_cast<int64_t>(
                 options.fallbackLnsIterations)));

    const cp::SolverOptions &solver = options.solver;
    Json sjson = Json::object();
    sjson.set("max_nodes", Json::number(solver.maxNodes));
    sjson.set("max_seconds", Json::number(solver.maxSeconds));
    sjson.set("target_gap", Json::number(solver.targetGap));
    sjson.set("use_lp_bound", Json::boolean(solver.useLpBound));
    sjson.set("greedy_restarts",
              Json::number(
                  static_cast<int64_t>(solver.greedyRestarts)));
    sjson.set("lns_iterations",
              Json::number(static_cast<int64_t>(solver.lnsIterations)));
    sjson.set("seed",
              Json::number(static_cast<int64_t>(solver.seed)));
    sjson.set("seed_salt",
              Json::number(static_cast<int64_t>(solver.seedSalt)));
    sjson.set("energetic_reasoning",
              Json::boolean(solver.energeticReasoning));
    sjson.set("threads",
              Json::number(static_cast<int64_t>(solver.threads)));
    sjson.set("deterministic_search",
              Json::boolean(solver.deterministicSearch));
    sjson.set("split_depth",
              Json::number(static_cast<int64_t>(solver.splitDepth)));
    sjson.set("use_nogoods", Json::boolean(solver.useNogoods));
    sjson.set("nogood_capacity",
              Json::number(
                  static_cast<int64_t>(solver.nogoodCapacity)));
    sjson.set("lns", Json::boolean(solver.lns));
    sjson.set("lns_polish_nodes",
              Json::number(solver.lnsPolishNodes));
    json.set("solver", sjson);
    return json;
}

bool
parseEngineOptions(const Json &json, EngineOptions *out,
                   std::string *error)
{
    if (!json.isObject()) {
        if (error)
            *error = "engine options must be an object";
        return false;
    }
    out->initialStepS =
        numberOr(json, "initial_step_s", out->initialStepS);
    out->horizonSteps = static_cast<cp::Time>(
        intOr(json, "horizon_steps", out->horizonSteps));
    out->refineThreshold = static_cast<cp::Time>(
        intOr(json, "refine_threshold", out->refineThreshold));
    out->refineFactor =
        numberOr(json, "refine_factor", out->refineFactor);
    out->maxRefinements = static_cast<int>(
        intOr(json, "max_refinements", out->maxRefinements));
    out->maxCoarsenings = static_cast<int>(
        intOr(json, "max_coarsenings", out->maxCoarsenings));
    out->escalations = static_cast<int>(
        intOr(json, "escalations", out->escalations));
    out->escalationFactor =
        numberOr(json, "escalation_factor", out->escalationFactor);
    out->pointTimeoutS =
        numberOr(json, "point_timeout_s", out->pointTimeoutS);
    out->fallbackLnsIterations = static_cast<int>(
        intOr(json, "fallback_lns_iterations",
              out->fallbackLnsIterations));
    if (out->initialStepS <= 0.0 || out->horizonSteps <= 0 ||
        out->refineFactor <= 1.0) {
        if (error)
            *error = "engine options out of range";
        return false;
    }

    const Json *sjson = json.find("solver");
    if (sjson) {
        if (!sjson->isObject()) {
            if (error)
                *error = "solver options must be an object";
            return false;
        }
        cp::SolverOptions &solver = out->solver;
        solver.maxNodes = intOr(*sjson, "max_nodes", solver.maxNodes);
        solver.maxSeconds =
            numberOr(*sjson, "max_seconds", solver.maxSeconds);
        solver.targetGap =
            numberOr(*sjson, "target_gap", solver.targetGap);
        solver.useLpBound =
            boolOr(*sjson, "use_lp_bound", solver.useLpBound);
        solver.greedyRestarts = static_cast<int>(
            intOr(*sjson, "greedy_restarts", solver.greedyRestarts));
        solver.lnsIterations = static_cast<int>(
            intOr(*sjson, "lns_iterations", solver.lnsIterations));
        solver.seed = static_cast<uint64_t>(
            intOr(*sjson, "seed",
                  static_cast<int64_t>(solver.seed)));
        solver.seedSalt = static_cast<uint64_t>(
            intOr(*sjson, "seed_salt",
                  static_cast<int64_t>(solver.seedSalt)));
        solver.energeticReasoning =
            boolOr(*sjson, "energetic_reasoning",
                   solver.energeticReasoning);
        solver.threads = static_cast<int>(
            intOr(*sjson, "threads", solver.threads));
        solver.deterministicSearch =
            boolOr(*sjson, "deterministic_search",
                   solver.deterministicSearch);
        solver.splitDepth = static_cast<int>(
            intOr(*sjson, "split_depth", solver.splitDepth));
        solver.useNogoods =
            boolOr(*sjson, "use_nogoods", solver.useNogoods);
        solver.nogoodCapacity = static_cast<size_t>(
            intOr(*sjson, "nogood_capacity",
                  static_cast<int64_t>(solver.nogoodCapacity)));
        solver.lns = boolOr(*sjson, "lns", solver.lns);
        solver.lnsPolishNodes =
            intOr(*sjson, "lns_polish_nodes", solver.lnsPolishNodes);
        if (solver.maxNodes <= 0 || solver.maxSeconds <= 0.0) {
            if (error)
                *error = "solver options out of range";
            return false;
        }
    }
    return true;
}

Json
constraintsJson(const arch::Constraints &constraints)
{
    Json json = Json::object();
    json.set("power_budget_w",
             Json::number(constraints.powerBudgetW));
    Json memory = Json::object();
    memory.set("bandwidth_gbs",
               Json::number(constraints.memory.bandwidthGBs));
    memory.set("pj_per_bit", Json::number(constraints.memory.pjPerBit));
    json.set("memory", memory);
    if (!constraints.cacheLevels.empty()) {
        Json levels = Json::array();
        for (const arch::CacheLevel &level : constraints.cacheLevels) {
            Json entry = Json::object();
            entry.set("name", Json::string(level.name));
            entry.set("bandwidth_gbs",
                      Json::number(level.bandwidthGBs));
            entry.set("traffic_amplification",
                      Json::number(level.trafficAmplification));
            levels.append(entry);
        }
        json.set("cache_levels", levels);
    }
    return json;
}

bool
parseConstraints(const Json &json, arch::Constraints *out,
                 std::string *error)
{
    if (!json.isObject()) {
        if (error)
            *error = "constraints must be an object";
        return false;
    }
    out->powerBudgetW =
        numberOr(json, "power_budget_w", out->powerBudgetW);
    const Json *memory = json.find("memory");
    if (memory && memory->isObject()) {
        out->memory.bandwidthGBs =
            numberOr(*memory, "bandwidth_gbs",
                     out->memory.bandwidthGBs);
        out->memory.pjPerBit =
            numberOr(*memory, "pj_per_bit", out->memory.pjPerBit);
    }
    const Json *levels = json.find("cache_levels");
    if (levels) {
        if (!levels->isArray()) {
            if (error)
                *error = "cache_levels must be an array";
            return false;
        }
        out->cacheLevels.clear();
        for (size_t i = 0; i < levels->size(); ++i) {
            const Json &entry = levels->at(i);
            if (!entry.isObject()) {
                if (error)
                    *error = "cache_levels entries must be objects";
                return false;
            }
            arch::CacheLevel level;
            level.name = stringOr(entry, "name", level.name);
            level.bandwidthGBs =
                numberOr(entry, "bandwidth_gbs", level.bandwidthGBs);
            level.trafficAmplification =
                numberOr(entry, "traffic_amplification",
                         level.trafficAmplification);
            out->cacheLevels.push_back(std::move(level));
        }
    }
    if (out->powerBudgetW <= 0.0 ||
        out->memory.bandwidthGBs <= 0.0) {
        if (error)
            *error = "constraints out of range";
        return false;
    }
    return true;
}

Json
sweepParamsJson(const Request &request)
{
    Json json = Json::object();

    Json wl = Json::object();
    wl.set("variant",
           Json::string(workload::toString(request.variant)));
    wl.set("copies",
           Json::number(static_cast<int64_t>(request.copies)));
    json.set("workload", wl);

    json.set("dsa_advantage", Json::number(request.dsaAdvantage));
    json.set("model", Json::string(dse::toString(request.kind)));
    json.set("constraints", constraintsJson(request.constraints));

    Json options = Json::object();
    options.set("engine", engineOptionsJson(request.options.engine));
    options.set("threads",
                Json::number(
                    static_cast<int64_t>(request.options.threads)));
    options.set("reuse", Json::boolean(request.options.reuse));
    options.set("fail_fast",
                Json::boolean(request.options.failFast));
    json.set("options", options);
    return json;
}

bool
parseSweepParams(const Json &json, Request *out, std::string *error)
{
    if (!json.isObject()) {
        if (error)
            *error = "sweep params must be a JSON object";
        return false;
    }

    const Json *wl = json.find("workload");
    if (wl && wl->isObject()) {
        std::string variant = stringOr(*wl, "variant", "Default");
        if (!parseVariant(variant, &out->variant)) {
            if (error)
                *error = format("unknown workload variant \"%s\"",
                                variant.c_str());
            return false;
        }
        out->copies =
            static_cast<int>(intOr(*wl, "copies", out->copies));
        if (out->copies < 1) {
            if (error)
                *error = "workload copies must be >= 1";
            return false;
        }
    }

    out->dsaAdvantage =
        numberOr(json, "dsa_advantage", out->dsaAdvantage);
    if (out->dsaAdvantage <= 0.0) {
        if (error)
            *error = "dsa_advantage must be positive";
        return false;
    }

    std::string model = stringOr(json, "model", "HILP");
    if (!parseModelKind(model, &out->kind)) {
        if (error)
            *error = format("unknown model \"%s\"", model.c_str());
        return false;
    }

    const Json *constraints = json.find("constraints");
    if (constraints &&
        !parseConstraints(*constraints, &out->constraints, error))
        return false;

    const Json *options = json.find("options");
    if (options) {
        if (!options->isObject()) {
            if (error)
                *error = "\"options\" must be an object";
            return false;
        }
        const Json *engine = options->find("engine");
        if (engine &&
            !parseEngineOptions(*engine, &out->options.engine, error))
            return false;
        out->options.threads = static_cast<int>(
            intOr(*options, "threads", out->options.threads));
        out->options.reuse =
            boolOr(*options, "reuse", out->options.reuse);
        out->options.failFast =
            boolOr(*options, "fail_fast", out->options.failFast);
    }
    return true;
}

std::string
encodeRequest(const Request &request)
{
    Json json = Json::object();
    json.set("op", Json::string(toString(request.op)));
    if (request.op == Op::Stats || request.op == Op::Shutdown ||
        request.op == Op::Drain)
        return json.dump();

    if (request.op == Op::Lease || request.op == Op::Submit ||
        request.op == Op::Heartbeat) {
        json.set("worker", Json::string(request.worker));
        if (request.op != Op::Lease)
            json.set("lease",
                     Json::number(
                         static_cast<int64_t>(request.leaseId)));
        if (request.op == Op::Submit) {
            Json records = Json::array();
            for (const Json &record : request.records)
                records.append(record);
            json.set("records", records);
            json.set("complete", Json::boolean(request.complete));
        }
        return json.dump();
    }

    Json configs = Json::array();
    for (const std::string &name : request.configNames)
        configs.append(Json::string(name));
    json.set("configs", configs);

    Json params = sweepParamsJson(request);
    json.set("workload", *params.find("workload"));
    json.set("dsa_advantage", *params.find("dsa_advantage"));
    json.set("model", *params.find("model"));
    json.set("constraints", *params.find("constraints"));
    json.set("options", *params.find("options"));

    json.set("priority",
             Json::number(static_cast<int64_t>(request.priority)));
    return json.dump();
}

bool
parseRequest(const std::string &line, Request *out, std::string *error)
{
    Json json;
    std::string parse_error;
    if (!Json::parse(line, &json, &parse_error)) {
        if (error)
            *error = format("bad request JSON: %s",
                            parse_error.c_str());
        return false;
    }
    if (!json.isObject()) {
        if (error)
            *error = "request must be a JSON object";
        return false;
    }
    std::string op = stringOr(json, "op", "");
    if (op == "eval")
        out->op = Op::Eval;
    else if (op == "sweep")
        out->op = Op::Sweep;
    else if (op == "stats")
        out->op = Op::Stats;
    else if (op == "shutdown")
        out->op = Op::Shutdown;
    else if (op == "lease")
        out->op = Op::Lease;
    else if (op == "submit")
        out->op = Op::Submit;
    else if (op == "heartbeat")
        out->op = Op::Heartbeat;
    else if (op == "drain")
        out->op = Op::Drain;
    else {
        if (error)
            *error = format("unknown op \"%s\"", op.c_str());
        return false;
    }
    if (out->op == Op::Stats || out->op == Op::Shutdown ||
        out->op == Op::Drain)
        return true;

    if (out->op == Op::Lease || out->op == Op::Submit ||
        out->op == Op::Heartbeat) {
        out->worker = stringOr(json, "worker", "");
        if (out->worker.empty()) {
            if (error)
                *error = "request needs a \"worker\" identity";
            return false;
        }
        if (out->op == Op::Lease)
            return true;
        out->leaseId =
            static_cast<uint64_t>(intOr(json, "lease", 0));
        if (out->leaseId == 0) {
            if (error)
                *error = "request needs a nonzero \"lease\" id";
            return false;
        }
        if (out->op == Op::Heartbeat)
            return true;
        out->records.clear();
        const Json *records = json.find("records");
        if (!records || !records->isArray()) {
            if (error)
                *error = "submit needs a \"records\" array";
            return false;
        }
        for (size_t i = 0; i < records->size(); ++i) {
            if (!records->at(i).isObject()) {
                if (error)
                    *error = "submit records must be objects";
                return false;
            }
            out->records.push_back(records->at(i));
        }
        out->complete = boolOr(json, "complete", false);
        return true;
    }

    const Json *configs = json.find("configs");
    if (!configs || !configs->isArray() || configs->size() == 0) {
        if (error)
            *error = "request needs a non-empty \"configs\" array";
        return false;
    }
    out->configNames.clear();
    for (size_t i = 0; i < configs->size(); ++i) {
        if (!configs->at(i).isString()) {
            if (error)
                *error = "config labels must be strings";
            return false;
        }
        out->configNames.push_back(configs->at(i).stringValue());
    }
    if (out->op == Op::Eval && out->configNames.size() != 1) {
        if (error)
            *error = "eval takes exactly one config";
        return false;
    }

    // The shared sweep body is exactly the lease-grant "params"
    // payload: one parser serves both.
    if (!parseSweepParams(json, out, error))
        return false;

    out->priority =
        static_cast<int>(intOr(json, "priority", out->priority));
    return true;
}

bool
resolveConfigs(const Request &request,
               std::vector<arch::SocConfig> *out, std::string *error)
{
    std::vector<int> priority = workload::dsaPriorityOrder();
    out->clear();
    out->reserve(request.configNames.size());
    for (const std::string &name : request.configNames) {
        arch::SocParseResult parsed =
            arch::parseSocName(name, priority, request.dsaAdvantage);
        if (!parsed.ok) {
            if (error)
                *error = format("bad config \"%s\": %s", name.c_str(),
                                parsed.error.c_str());
            return false;
        }
        out->push_back(std::move(parsed.config));
    }
    return true;
}

std::string
encodeDone(bool ok, const std::string &error, size_t points,
           uint64_t trace_id)
{
    Json json = Json::object();
    json.set("type", Json::string("done"));
    json.set("ok", Json::boolean(ok));
    if (!error.empty())
        json.set("error", Json::string(error));
    if (points > 0)
        json.set("points",
                 Json::number(static_cast<int64_t>(points)));
    if (trace_id != 0)
        json.set("trace_id",
                 Json::number(static_cast<int64_t>(trace_id)));
    return json.dump();
}

std::string
encodeStats(Json stats)
{
    Json json = Json::object();
    json.set("type", Json::string("stats"));
    json.set("stats", std::move(stats));
    return json.dump();
}

std::string
encodeLeaseGrant(uint64_t lease_id, size_t unit, double expires_s,
                 const std::vector<std::string> &configs,
                 const Json &params)
{
    Json json = Json::object();
    json.set("type", Json::string("lease"));
    json.set("lease",
             Json::number(static_cast<int64_t>(lease_id)));
    json.set("unit", Json::number(static_cast<int64_t>(unit)));
    json.set("expires_s", Json::number(expires_s));
    Json names = Json::array();
    for (const std::string &name : configs)
        names.append(Json::string(name));
    json.set("configs", names);
    json.set("params", params);
    return json.dump();
}

std::string
encodeLeaseWait()
{
    Json json = Json::object();
    json.set("type", Json::string("wait"));
    return json.dump();
}

std::string
encodeLeaseComplete()
{
    Json json = Json::object();
    json.set("type", Json::string("complete"));
    return json.dump();
}

std::string
encodeAck(bool ok, size_t accepted, size_t duplicates)
{
    Json json = Json::object();
    json.set("type", Json::string("ack"));
    json.set("ok", Json::boolean(ok));
    json.set("accepted",
             Json::number(static_cast<int64_t>(accepted)));
    json.set("duplicates",
             Json::number(static_cast<int64_t>(duplicates)));
    return json.dump();
}

std::string
encodeProgress(Json progress)
{
    Json json = Json::object();
    json.set("type", Json::string("progress"));
    json.set("progress", std::move(progress));
    return json.dump();
}

} // namespace protocol
} // namespace service
} // namespace hilp
