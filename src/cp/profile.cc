#include "profile.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace hilp {
namespace cp {

Units
toUnits(double value)
{
    return static_cast<Units>(
        std::llround(value * static_cast<double>(kUnitScale)));
}

double
fromUnits(Units units)
{
    return static_cast<double>(units) /
           static_cast<double>(kUnitScale);
}

Profile::Profile(const Model &model)
    : model_(model),
      horizon_(model.horizon())
{
    hilp_assert(horizon_ > 0);
    resources_.assign(model.numResources(), {Segment{0, 0}});
    groups_.resize(model.numGroups());
    capUnits_.reserve(model.numResources());
    for (int r = 0; r < model.numResources(); ++r)
        capUnits_.push_back(toUnits(model.capacity(r)));
    unitsScratch_.resize(model.numResources(), 0);
}

size_t
Profile::segmentAt(int r, Time step) const
{
    const std::vector<Segment> &segs = resources_[r];
    // Last segment whose start is <= step.
    auto it = std::upper_bound(
        segs.begin(), segs.end(), step,
        [](Time s, const Segment &seg) { return s < seg.start; });
    hilp_assert(it != segs.begin());
    return static_cast<size_t>(it - segs.begin()) - 1;
}

void
Profile::addUsage(int r, Time start, Time end, Units delta)
{
    if (delta == 0 || start >= end)
        return;
    std::vector<Segment> &segs = resources_[r];

    // Ensure a breakpoint at start.
    size_t i = segmentAt(r, start);
    if (segs[i].start != start) {
        segs.insert(segs.begin() + static_cast<ptrdiff_t>(i) + 1,
                    Segment{start, segs[i].level});
        ++i;
    }
    // Last segment starting before end.
    size_t j = i;
    while (j + 1 < segs.size() && segs[j + 1].start < end)
        ++j;
    // Ensure a breakpoint at end (the tail keeps the old level).
    Time j_end = j + 1 < segs.size() ? segs[j + 1].start : horizon_;
    if (j_end > end) {
        segs.insert(segs.begin() + static_cast<ptrdiff_t>(j) + 1,
                    Segment{end, segs[j].level});
    }
    for (size_t k = i; k <= j; ++k)
        segs[k].level += delta;

    // Restore canonical form at the two junctions. Interior
    // junctions cannot collapse: both sides moved by the same delta.
    if (j + 1 < segs.size() && segs[j + 1].level == segs[j].level)
        segs.erase(segs.begin() + static_cast<ptrdiff_t>(j) + 1);
    if (i > 0 && segs[i].level == segs[i - 1].level)
        segs.erase(segs.begin() + static_cast<ptrdiff_t>(i));
}

Time
Profile::groupBlock(int g, Time start, Time end) const
{
    const std::vector<Interval> &busy = groups_[g];
    // First busy interval still open at (or after) start.
    auto it = std::upper_bound(
        busy.begin(), busy.end(), start,
        [](Time s, const Interval &iv) { return s < iv.end; });
    if (it != busy.end() && it->start < end)
        return it->end;
    return -1;
}

Time
Profile::resourceBlock(int r, Units need, Time start, Time end) const
{
    if (need <= 0)
        return -1;
    const Units limit = capUnits_[r] + kCapacitySlack - need;
    const std::vector<Segment> &segs = resources_[r];
    for (size_t i = segmentAt(r, start);
         i < segs.size() && segs[i].start < end; ++i) {
        if (segs[i].level > limit)
            return i + 1 < segs.size() ? segs[i + 1].start : horizon_;
    }
    return -1;
}

bool
Profile::fits(const Mode &mode, Time start) const
{
    hilp_assert(start >= 0);
    if (start + mode.duration > horizon_)
        return false;
    if (mode.duration == 0)
        return true;
    Time end = start + mode.duration;
    if (mode.group != kNoGroup &&
        groupBlock(mode.group, start, end) >= 0)
        return false;
    for (int r = 0; r < model_.numResources(); ++r)
        if (resourceBlock(r, toUnits(mode.usage[r]), start, end) >= 0)
            return false;
    return true;
}

Time
Profile::earliestStart(const Mode &mode, Time est) const
{
    hilp_assert(est >= 0);
    if (mode.duration == 0)
        return est <= horizon_ ? est : -1;
    const int num_resources = model_.numResources();
    for (int r = 0; r < num_resources; ++r)
        unitsScratch_[r] = toUnits(mode.usage[r]);

    Time start = est;
    while (start + mode.duration <= horizon_) {
        Time end = start + mode.duration;
        // No window that contains any step of a blocking interval or
        // over-capacity segment can be feasible, so restart the scan
        // directly after the whole blocker - this is what makes the
        // query jump instead of stepping.
        Time bump = mode.group != kNoGroup
            ? groupBlock(mode.group, start, end) : -1;
        if (bump < 0) {
            for (int r = 0; r < num_resources && bump < 0; ++r)
                bump = resourceBlock(r, unitsScratch_[r], start, end);
        }
        if (bump < 0)
            return start;
        hilp_assert(bump > start);
        start = bump;
    }
    return -1;
}

void
Profile::place(const Mode &mode, Time start)
{
    hilp_assert(start >= 0 && start + mode.duration <= horizon_);
    if (mode.duration == 0)
        return;
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        std::vector<Interval> &busy = groups_[mode.group];
        auto it = std::lower_bound(
            busy.begin(), busy.end(), start,
            [](const Interval &iv, Time s) { return iv.start < s; });
        hilp_assert(it == busy.end() || it->start >= end);
        hilp_assert(it == busy.begin() || (it - 1)->end <= start);
        busy.insert(it, Interval{start, end});
    }
    for (int r = 0; r < model_.numResources(); ++r)
        addUsage(r, start, end, toUnits(mode.usage[r]));
}

void
Profile::remove(const Mode &mode, Time start)
{
    hilp_assert(start >= 0 && start + mode.duration <= horizon_);
    if (mode.duration == 0)
        return;
    Time end = start + mode.duration;
    if (mode.group != kNoGroup) {
        std::vector<Interval> &busy = groups_[mode.group];
        auto it = std::lower_bound(
            busy.begin(), busy.end(), start,
            [](const Interval &iv, Time s) { return iv.start < s; });
        hilp_assert(it != busy.end() && it->start == start &&
                    it->end == end);
        busy.erase(it);
    }
    for (int r = 0; r < model_.numResources(); ++r)
        addUsage(r, start, end, -toUnits(mode.usage[r]));
}

double
Profile::usage(int r, Time step) const
{
    return fromUnits(usageUnits(r, step));
}

Units
Profile::usageUnits(int r, Time step) const
{
    hilp_assert(step >= 0 && step < horizon_);
    return resources_[r][segmentAt(r, step)].level;
}

bool
Profile::groupBusy(int g, Time step) const
{
    hilp_assert(step >= 0 && step < horizon_);
    const std::vector<Interval> &busy = groups_[g];
    auto it = std::upper_bound(
        busy.begin(), busy.end(), step,
        [](Time s, const Interval &iv) { return s < iv.end; });
    return it != busy.end() && it->start <= step;
}

} // namespace cp
} // namespace hilp
