/**
 * @file
 * The paper's fully-specified didactic problems: the two-application
 * example of Section II (Figures 2 and 3) and the streaming-dataflow
 * application of Section VII (Figures 9 and 10). Both are built
 * directly as ProblemSpecs - they are literally the input matrices
 * the paper presents.
 */

#ifndef HILP_HILP_SHOWCASE_HH
#define HILP_HILP_SHOWCASE_HH

#include "problem.hh"

namespace hilp {

/**
 * The Section II example: applications m (HPC matrix multiply) and
 * n (neural-network inference), each setup -> compute -> teardown,
 * on an SoC with one CPU (1 W), one GPU (3 W), and one
 * matrix-multiply DSA (2 W). Compute times: m1 = 8/6/5 s and
 * n1 = 5/3/2 s on CPU/GPU/DSA; setup and teardown take 1 s on the
 * CPU. Unconstrained by default; set powerBudgetW = 3 to reproduce
 * Figure 3.
 */
ProblemSpec makeTwoAppExample();

/** Naive all-on-CPU execution time of the two-app example (17 s). */
inline constexpr double kTwoAppNaiveCpuS = 17.0;

/** SoC variants explored for the SDA workload (Figure 10). */
enum class SdaVariant {
    Baseline, //!< (c1, g8, d3^1).
    FastCpu,  //!< CPU 2x faster.
    BigGpu,   //!< GPU with 2x the SMs.
};

/** Human-readable variant name. */
const char *toString(SdaVariant variant);

/**
 * The Section VII streaming-dataflow workload: `samples` independent
 * SDA instances, each the DAG of Figure 9 (DS1/DS2/DS3 pinned to
 * dedicated DSAs -> DF on the CPU -> C1/C2/C3 on CPU or GPU -> PP on
 * CPU or GPU). The paper's figure does not tabulate the per-phase
 * times, so this module fixes a consistent set (documented in
 * DESIGN.md) that reproduces the narrative: the baseline SoC misses
 * its objective, while doubling CPU speed or GPU SMs both meet it.
 */
ProblemSpec makeSdaProblem(SdaVariant variant, int samples = 2);

} // namespace hilp

#endif // HILP_HILP_SHOWCASE_HH
