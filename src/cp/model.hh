/**
 * @file
 * The constraint model HILP lowers its JSSP formulation into.
 *
 * A Model is a multi-mode resource-constrained scheduling problem:
 *
 *  - A set of tasks (the paper's application phases). Each task has
 *    one or more execution modes; a mode fixes the disjunctive group
 *    it runs on (a physical device such as the GPU or one DSA), its
 *    duration in integer time steps, and its consumption of each
 *    cumulative resource (power, memory bandwidth, CPU cores) while
 *    active. Modes encode the paper's E/T/B/P/U matrices and its
 *    idealized DVFS: one mode per (compute unit, operating point).
 *  - Precedence edges between tasks (Eq. 2 and the generalized
 *    dependency graph of Eq. 9).
 *  - Cumulative resources with fixed capacities (Eqs. 6-8).
 *  - Disjunctive groups: at most one active task per group at any
 *    time (Eq. 3, non-interference).
 *  - A time horizon bounding all completion times (Section III-D).
 *
 * The objective is always makespan minimization (Eq. 1).
 */

#ifndef HILP_CP_MODEL_HH
#define HILP_CP_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace hilp {
namespace cp {

/** Discrete model time, in time steps. */
using Time = int32_t;

/** Sentinel: mode does not occupy any disjunctive group. */
inline constexpr int kNoGroup = -1;

/**
 * One way of executing a task: a device (group), a duration, and the
 * cumulative resources consumed while the task is active.
 */
struct Mode
{
    /** Disjunctive group occupied while active, or kNoGroup. */
    int group = kNoGroup;
    /** Execution time in time steps (>= 0; 0 means negligible). */
    Time duration = 0;
    /** Consumption of each cumulative resource while active. */
    std::vector<double> usage;
    /**
     * Model-wide dense mode index, assigned by Model::addTask in
     * task/mode order. The packed Profile keys its precomputed
     * per-mode resource-unit rows on it; -1 on modes never added to
     * a model (those fall back to per-query conversion).
     */
    int id = -1;
};

/**
 * A schedulable unit of work (an application phase in HILP terms).
 */
struct Task
{
    std::string name;
    std::vector<Mode> modes;
};

/**
 * A multi-mode resource-constrained scheduling problem instance.
 */
class Model
{
  public:
    /**
     * Add a cumulative resource with the given capacity; returns the
     * resource index used in Mode::usage.
     */
    int addResource(double capacity, std::string name = "");

    /** Add a disjunctive group; returns the group index. */
    int addGroup(std::string name = "");

    /**
     * Add a task; every mode must reference valid groups and have a
     * usage vector sized to the number of resources added so far.
     * Returns the task index.
     */
    int addTask(Task task);

    /**
     * Require task 'before' to complete no later than the start of
     * task 'after' (both are existing task indices).
     */
    void addPrecedence(int before, int after);

    /**
     * Initiation interval (Section VII "other extensions"): require
     * task 'after' to start at least `lag` steps after the *start*
     * of task 'before' (a start-to-start constraint;
     * S_after >= S_before + lag with lag >= 0). Unlike
     * addPrecedence, 'before' need not have finished.
     */
    void addStartLag(int before, int after, Time lag);

    /** Set the scheduling horizon in time steps (exclusive bound). */
    void setHorizon(Time horizon);

    /** The scheduling horizon. */
    Time horizon() const { return horizon_; }

    int numTasks() const { return static_cast<int>(tasks_.size()); }
    int numResources() const { return static_cast<int>(caps_.size()); }
    int numGroups() const { return static_cast<int>(groupNames_.size()); }

    /** Modes added across all tasks (the range of Mode::id). */
    int numModes() const { return numModes_; }

    const Task &task(int t) const { return tasks_[t]; }
    double capacity(int r) const { return caps_[r]; }
    const std::string &resourceName(int r) const { return resNames_[r]; }
    const std::string &groupName(int g) const { return groupNames_[g]; }

    /** Direct finish-to-start predecessors of task t. */
    const std::vector<int> &predecessors(int t) const { return preds_[t]; }

    /** Direct finish-to-start successors of task t. */
    const std::vector<int> &successors(int t) const { return succs_[t]; }

    /** A start-to-start lag edge. */
    struct LagEdge
    {
        int other;  //!< The task at the far end of the edge.
        Time lag;   //!< Minimum start-to-start distance.
    };

    /** Incoming start-lag edges of task t ({predecessor, lag}). */
    const std::vector<LagEdge> &lagPredecessors(int t) const
    { return lagPreds_[t]; }

    /** Outgoing start-lag edges of task t ({successor, lag}). */
    const std::vector<LagEdge> &lagSuccessors(int t) const
    { return lagSuccs_[t]; }

    /** True when any start-lag edges exist. */
    bool hasStartLags() const { return numLagEdges_ > 0; }

    /**
     * Shortest duration across the modes of task t. Precomputed at
     * addTask time: the search's bound computation calls this tens
     * of millions of times per solve.
     */
    Time minDuration(int t) const
    {
        hilp_assert(minDur_[t] >= 0);
        return minDur_[t];
    }

    /** Longest duration across the modes of task t (precomputed). */
    Time maxDuration(int t) const
    {
        hilp_assert(maxDur_[t] >= 0);
        return maxDur_[t];
    }

    /**
     * A topological order of the tasks. Panics if the precedence
     * graph has a cycle; use validate() first for a user-level error.
     */
    std::vector<int> topologicalOrder() const;

    /**
     * Check structural sanity: at least one mode per task, usage
     * vectors sized to the resources, valid group references, an
     * acyclic precedence graph, and a positive horizon. Returns an
     * empty string when valid, otherwise a description of the first
     * problem found.
     */
    std::string validate() const;

  private:
    std::vector<Task> tasks_;
    /** Cached min/max mode duration per task (-1 for no modes). */
    std::vector<Time> minDur_;
    std::vector<Time> maxDur_;
    std::vector<double> caps_;
    std::vector<std::string> resNames_;
    std::vector<std::string> groupNames_;
    std::vector<std::vector<int>> preds_;
    std::vector<std::vector<int>> succs_;
    std::vector<std::vector<LagEdge>> lagPreds_;
    std::vector<std::vector<LagEdge>> lagSuccs_;
    int numLagEdges_ = 0;
    int numModes_ = 0;
    Time horizon_ = 0;
};

/**
 * A (mode, start) decision for one task.
 */
struct Assignment
{
    int mode = -1;
    Time start = -1;

    bool scheduled() const { return mode >= 0; }
};

/**
 * A complete schedule: one assignment per task.
 */
struct ScheduleVec
{
    std::vector<Assignment> tasks;

    /** Completion time of task t under the model m. */
    Time end(const Model &m, int t) const;

    /** Makespan (maximum completion time; 0 when empty). */
    Time makespan(const Model &m) const;
};

/**
 * Verify that a schedule satisfies every constraint of the model
 * (precedence, capacities, disjunctive groups, horizon). Returns an
 * empty string when feasible, otherwise the first violation found.
 * Used by tests and by the solver's own self-check.
 */
std::string checkSchedule(const Model &model, const ScheduleVec &schedule);

/**
 * Human-readable dump of a model: resources, groups, tasks with
 * their modes, and the dependency structure. For debugging and
 * logging; the format is stable enough for golden tests but not an
 * interchange format.
 */
std::string describeModel(const Model &model);

} // namespace cp
} // namespace hilp

#endif // HILP_CP_MODEL_HH
