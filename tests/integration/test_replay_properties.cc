/**
 * @file
 * Cross-validation properties: every schedule any component of HILP
 * produces must replay cleanly through the independent event-driven
 * simulator, and the baselines/analytic models must respect their
 * ordering relations.
 */

#include <gtest/gtest.h>

#include "baselines/gables.hh"
#include "baselines/multiamdahl.hh"
#include "hilp/builder.hh"
#include "hilp/discretize.hh"
#include "hilp/engine.hh"
#include "hilp/showcase.hh"
#include "sim/replay.hh"
#include "workload/rodinia.hh"
#include "workload/synthetic.hh"

namespace hilp {
namespace {

EngineOptions
fastEngine()
{
    EngineOptions options = EngineOptions::explorationMode();
    options.solver.maxSeconds = 1.5;
    return options;
}

class ReplayProperties : public ::testing::TestWithParam<uint64_t>
{
  protected:
    ProblemSpec
    spec() const
    {
        workload::SyntheticOptions options;
        options.numApps = 4;
        options.seed = GetParam() * 131;
        workload::Workload wl = makeSyntheticWorkload(options);
        arch::SocConfig soc;
        soc.cpuCores = 2;
        soc.gpuSms = 16;
        arch::Constraints constraints;
        // Alternate constrained and unconstrained cases.
        if (GetParam() % 2 == 0)
            constraints.powerBudgetW = 60.0;
        return buildProblem(wl, soc, constraints);
    }
};

TEST_P(ReplayProperties, HilpSchedulesReplayCleanly)
{
    ProblemSpec problem = spec();
    if (!problem.validate().empty())
        GTEST_SKIP() << "unschedulable under the tight budget";
    EvalResult result = evaluate(problem, fastEngine());
    ASSERT_TRUE(result.ok);
    sim::SimResult replay = sim::replaySchedule(problem,
                                                result.schedule);
    EXPECT_TRUE(replay.ok) << replay.violation;
    EXPECT_NEAR(replay.makespanS, result.makespanS, 1e-6);
}

TEST_P(ReplayProperties, MultiAmdahlSchedulesReplayCleanly)
{
    ProblemSpec problem = spec();
    if (!problem.validate().empty())
        GTEST_SKIP();
    baselines::MaResult ma = baselines::evaluateMultiAmdahl(problem);
    ASSERT_TRUE(ma.ok);
    sim::SimResult replay = sim::replaySchedule(problem, ma.schedule);
    EXPECT_TRUE(replay.ok) << replay.violation;
}

TEST_P(ReplayProperties, OnlineSchedulerSchedulesReplayCleanly)
{
    ProblemSpec problem = spec();
    if (!problem.validate().empty())
        GTEST_SKIP();
    sim::SimResult online = sim::runOnlineScheduler(problem);
    ASSERT_TRUE(online.ok) << online.violation;
    sim::SimResult replay =
        sim::replaySchedule(problem, online.schedule);
    EXPECT_TRUE(replay.ok) << replay.violation;
}

TEST_P(ReplayProperties, AnalyticGablesLowerBoundsPackingGables)
{
    ProblemSpec problem = spec();
    if (!problem.validate().empty())
        GTEST_SKIP();
    double analytic = baselines::evaluateGablesAnalyticS(problem);
    EvalResult packing =
        baselines::evaluateGables(problem, fastEngine());
    ASSERT_TRUE(packing.ok);
    ASSERT_GT(analytic, 0.0);
    // The fractional roofline can never exceed a real packing (plus
    // the packing's discretization slack).
    double slack = packing.stepS * problem.numPhases();
    EXPECT_LE(analytic, packing.makespanS + slack + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayProperties,
                         ::testing::Range<uint64_t>(1, 7));

TEST(AnalyticGables, TwoAppExampleRoofline)
{
    // Fractional relaxation of the dependency-free example: the CPU
    // pool alone holds 4 s of setup/teardown work, and fractional
    // splitting lets every compute phase ride the accelerators, so
    // the roofline lands between 4 and the 5 s packing.
    ProblemSpec spec = makeTwoAppExample();
    double analytic = baselines::evaluateGablesAnalyticS(spec);
    EXPECT_GE(analytic, 4.0 - 1e-6);
    EXPECT_LE(analytic, 5.0 + 1e-6);
}

TEST(DescribeModel, MentionsEveryComponent)
{
    ProblemSpec spec = makeTwoAppExample();
    DiscretizedProblem problem = discretize(spec, 1.0, 64);
    std::string text = cp::describeModel(problem.model);
    EXPECT_NE(text.find("6 tasks"), std::string::npos);
    EXPECT_NE(text.find("GPU"), std::string::npos);
    EXPECT_NE(text.find("cpu-cores"), std::string::npos);
    EXPECT_NE(text.find("-> task"), std::string::npos);
}

} // anonymous namespace
} // namespace hilp
