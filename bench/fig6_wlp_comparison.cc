/**
 * @file
 * Figure 6: average WLP and speedup for MA, HILP, and Gables on a
 * 64-SM-GPU SoC as the CPU count grows from 1 to 8, for the Rodinia
 * (6a) and Optimized (6b) workloads. Expected shape (paper): MA is
 * pinned at WLP 1 with a flat pessimistic speedup (4.9 / 19.8);
 * Gables' WLP and speedup rise to optimistic maxima; HILP saturates
 * in between because it respects phase dependencies.
 */

#include <benchmark/benchmark.h>

#include "baselines/gables.hh"
#include "baselines/multiamdahl.hh"
#include "common.hh"
#include "hilp/builder.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

void
emitWorkload(workload::Variant variant)
{
    auto wl = workload::makeWorkload(variant);
    double reference = workload::sequentialCpuTimeS(wl);
    dse::DseOptions options;
    options.engine = bench::validationEngine(4.0);

    bench::section(std::string(workload::toString(variant)) +
                   " workload (64-SM GPU)");
    Table table({"CPUs", "MA WLP", "MA spd", "HILP WLP", "HILP spd",
                 "Gables WLP", "Gables spd"});
    for (int cpus : {1, 2, 4, 6, 8}) {
        arch::SocConfig soc;
        soc.cpuCores = cpus;
        soc.gpuSms = 64;
        ProblemSpec spec =
            buildProblem(wl, soc, arch::Constraints{});

        baselines::MaResult ma = baselines::evaluateMultiAmdahl(spec);
        EvalResult hilp_result = evaluate(spec, options.engine);
        EvalResult gables =
            baselines::evaluateGables(spec, options.engine);

        table.addRow(
            RowBuilder()
                .cell(static_cast<int64_t>(cpus))
                .cell(ma.averageWlp(), 2)
                .cell(ma.ok ? reference / ma.makespanS : 0.0, 1)
                .cell(hilp_result.averageWlp, 2)
                .cell(hilp_result.ok
                          ? reference / hilp_result.makespanS : 0.0,
                      1)
                .cell(gables.averageWlp, 2)
                .cell(gables.ok ? reference / gables.makespanS : 0.0,
                      1)
                .take());
    }
    table.print();
}

void
emitFigure()
{
    bench::banner(
        "Figure 6 - MA vs HILP vs Gables (WLP and speedup)",
        "64-SM GPU, CPU count 1-8. Paper: MA flat at WLP 1 (speedup\n"
        "4.9 Rodinia / 19.8 Optimized); Gables overshoots; HILP\n"
        "saturates between the extremes; speedup tracks WLP.");
    emitWorkload(workload::Variant::Rodinia);
    emitWorkload(workload::Variant::Optimized);
}

void
BM_EvaluateWlpComparisonPoint(benchmark::State &state)
{
    auto wl = workload::makeWorkload(workload::Variant::Rodinia);
    arch::SocConfig soc;
    soc.cpuCores = 4;
    soc.gpuSms = 64;
    ProblemSpec spec = buildProblem(wl, soc, arch::Constraints{});
    EngineOptions engine = bench::validationEngine(2.0);
    for (auto _ : state) {
        EvalResult result = evaluate(spec, engine);
        benchmark::DoNotOptimize(result.averageWlp);
    }
}
BENCHMARK(BM_EvaluateWlpComparisonPoint)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
