/**
 * @file
 * Build provenance: the git revision and build type this binary was
 * compiled from, stamped at configure time.
 *
 * Benchmark artifacts (sweep reports, checkpoints, daemon stats)
 * outlive the working tree that produced them; stamping them with
 * `git describe` plus the build type makes every number attributable
 * to a commit and an optimization level.
 */

#ifndef HILP_SUPPORT_VERSION_HH
#define HILP_SUPPORT_VERSION_HH

#include <string>

#include "json.hh"

namespace hilp {

/**
 * `git describe --always --dirty` at configure time; "unknown" when
 * the source tree was not a git checkout.
 */
const char *buildGitDescribe();

/** CMAKE_BUILD_TYPE at configure time (e.g. "Release"). */
const char *buildType();

/** One-line stamp: "hilp <describe> (<build type>)". */
std::string versionString();

/** {"git": <describe>, "build_type": <type>} for JSON artifacts. */
Json versionJson();

} // namespace hilp

#endif // HILP_SUPPORT_VERSION_HH
