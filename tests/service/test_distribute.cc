/**
 * @file
 * End-to-end distributed-sweep tests: a coordinator daemon on a Unix
 * socket, a fleet of in-process workers running the real runWorker
 * loop, and the serial-equivalence property - the merged distributed
 * Pareto front must be bit-identical to the single-process sweep's,
 * because work units are whole similarity chains evaluated exactly
 * as the in-process sweep would evaluate them.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "dse/distribute.hh"
#include "dse/explore.hh"
#include "dse/pareto.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "service/worker.hh"
#include "support/net.hh"
#include "workload/rodinia.hh"

namespace hilp {
namespace service {
namespace {

/**
 * A small fig7 slice: two cpuCore groups x two GPU sizes = four
 * configs in two similarity chains.
 */
std::vector<arch::SocConfig>
sliceConfigs()
{
    std::vector<arch::SocConfig> configs;
    for (int cpus : {2, 4})
        for (int sms : {4, 8}) {
            arch::SocConfig config;
            config.cpuCores = cpus;
            config.gpuSms = sms;
            configs.push_back(config);
        }
    return configs;
}

dse::DseOptions
sliceOptions()
{
    dse::DseOptions options;
    options.engine = EngineOptions::explorationMode();
    options.engine.solver.maxSeconds = 5.0;
    options.engine.solver.maxNodes = 20000;
    return options;
}

TEST(DistributedSweep, FourWorkersMergeToTheSerialResult)
{
    const std::string address = "unix:" + ::testing::TempDir() +
        "hilp_test_distribute.sock";
    auto configs = sliceConfigs();
    auto wl = workload::makeWorkload(workload::Variant::Default);
    const arch::Constraints constraints;
    const dse::ModelKind kind = dse::ModelKind::Hilp;
    dse::DseOptions options = sliceOptions();

    // The single-process reference.
    auto serial = dse::exploreSpace(configs, wl, constraints, kind,
                                    options);
    ASSERT_EQ(serial.size(), configs.size());

    // Coordinator daemon on a real socket.
    net::Listener listener;
    std::string error;
    ASSERT_TRUE(listener.open(address, &error)) << error;
    ServiceOptions service_options;
    service_options.executors = 1;
    EvalService daemon_service(service_options);
    Daemon daemon(daemon_service);
    std::thread serve([&] { daemon.run(listener); });

    dse::Coordinator coordinator(configs, kind);
    protocol::Request params;
    params.op = protocol::Op::Sweep;
    params.kind = kind;
    params.options = options;
    daemon.setCoordinator(&coordinator,
                          protocol::sweepParamsJson(params));

    // Four workers sharing one local evaluation service, all running
    // the real lease/evaluate/submit loop.
    EvalService worker_service;
    std::vector<std::thread> workers;
    std::vector<char> worker_ok(4, 0);
    std::vector<std::string> worker_error(4);
    for (int i = 0; i < 4; ++i)
        workers.emplace_back([&, i] {
            WorkerOptions worker_options;
            worker_options.id = "w" + std::to_string(i);
            worker_options.pollIntervalS = 0.02;
            worker_options.service = &worker_service;
            worker_ok[i] = runWorker(address, worker_options,
                                     &worker_error[i]);
        });

    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::seconds(120);
    while (!coordinator.finished() &&
           std::chrono::steady_clock::now() < deadline) {
        coordinator.reapExpired();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(coordinator.finished())
        << "distributed sweep did not converge";

    // Retire: every worker's next poll says complete and it exits.
    daemon.retireCoordinator();
    for (auto &worker : workers)
        worker.join();
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(worker_ok[i]) << worker_error[i];

    auto merged = coordinator.takePoints();
    ASSERT_EQ(merged.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(merged[i].config.name(), serial[i].config.name())
            << i;
        EXPECT_EQ(merged[i].ok, serial[i].ok) << i;
        EXPECT_EQ(merged[i].areaMm2, serial[i].areaMm2) << i;
    }

    // The Pareto front is bit-identical, not approximately equal:
    // front points are never dominance-pruned, and whole similarity
    // chains shard, so every warm-start chain replays exactly. (Off
    // the front, a dominated point may legitimately stop refining at
    // a different certified bound depending on which points had
    // completed elsewhere, so only name/ok/area are compared above.)
    auto frontOf = [](const std::vector<dse::DsePoint> &points) {
        std::vector<double> cost, value;
        for (const auto &point : points) {
            cost.push_back(point.areaMm2);
            value.push_back(point.ok ? point.speedup : 0.0);
        }
        return dse::paretoFront(cost, value, 5e-3);
    };
    auto serial_front = frontOf(serial);
    auto merged_front = frontOf(merged);
    ASSERT_EQ(merged_front, serial_front);
    ASSERT_FALSE(serial_front.empty());
    for (size_t i : serial_front) {
        EXPECT_EQ(merged[i].makespanS, serial[i].makespanS) << i;
        EXPECT_EQ(merged[i].speedup, serial[i].speedup) << i;
        EXPECT_EQ(merged[i].gap, serial[i].gap) << i;
        EXPECT_EQ(merged[i].mix, serial[i].mix) << i;
    }
    EXPECT_EQ(coordinator.progress().pointsMerged, configs.size());

    daemon.stop();
    serve.join();
}

TEST(DistributedSweep, LeaseOpsOverTheWireWithoutACoordinator)
{
    const std::string address = "unix:" + ::testing::TempDir() +
        "hilp_test_distribute_idle.sock";
    net::Listener listener;
    std::string error;
    ASSERT_TRUE(listener.open(address, &error)) << error;
    ServiceOptions service_options;
    service_options.executors = 1;
    EvalService service(service_options);
    Daemon daemon(service);
    std::thread serve([&] { daemon.run(listener); });

    net::Socket socket = net::connectTo(address, &error);
    ASSERT_TRUE(socket.valid()) << error;
    net::LineChannel channel(std::move(socket));

    auto leaseResponse = [&]() -> std::string {
        protocol::Request request;
        request.op = protocol::Op::Lease;
        request.worker = "w1";
        EXPECT_TRUE(
            channel.writeLine(protocol::encodeRequest(request)));
        std::string type;
        std::string line;
        while (channel.readLine(&line)) {
            Json json;
            std::string parse_error;
            EXPECT_TRUE(Json::parse(line, &json, &parse_error));
            const Json *t = json.find("type");
            if (t && t->stringValue() == "done")
                break;
            if (t)
                type = t->stringValue();
        }
        return type;
    };

    // No coordinator registered: poll again later.
    EXPECT_EQ(leaseResponse(), "wait");
    // Retired for good: exit.
    daemon.retireCoordinator();
    EXPECT_EQ(leaseResponse(), "complete");

    daemon.stop();
    channel.socket().close();
    serve.join();
}

} // anonymous namespace
} // namespace service
} // namespace hilp
