/**
 * @file
 * Figure 3: the two-application example under a 3 W power budget.
 * The paper's optimal power-constrained schedule takes 9 s and stays
 * at or below 3 W in every step, while the unconstrained schedule
 * exceeds the budget in the steps where the GPU and DSA co-run.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hh"
#include "hilp/showcase.hh"
#include "support/table.hh"

namespace {

using namespace hilp;

EngineOptions
exampleEngine()
{
    EngineOptions options;
    options.initialStepS = 1.0;
    options.horizonSteps = 64;
    options.maxRefinements = 0;
    options.solver.targetGap = 0.0;
    return options;
}

void
emitFigure()
{
    bench::banner(
        "Figure 3 - power-constrained example (p_max = 3 W)",
        "Paper: the 3 W budget forbids GPU co-execution; the optimal\n"
        "schedule lengthens from 7 s to 9 s and never exceeds 3 W.");

    ProblemSpec unconstrained = makeTwoAppExample();
    EvalResult base = evaluate(unconstrained, exampleEngine());

    ProblemSpec constrained = makeTwoAppExample();
    constrained.powerBudgetW = 3.0;
    EvalResult capped = evaluate(constrained, exampleEngine());

    Table table({"configuration", "exec time (s)", "peak power (W)"});
    table.setAlign(0, Table::Align::Left);
    auto peak = [](const EvalResult &result) {
        double peak_w = 0.0;
        for (double watts : result.schedule.powerTrace())
            peak_w = std::max(peak_w, watts);
        return peak_w;
    };
    table.addRow(RowBuilder()
                     .cell(std::string("unconstrained"))
                     .cell(base.makespanS, 0)
                     .cell(peak(base), 1)
                     .take());
    table.addRow(RowBuilder()
                     .cell(std::string("p_max = 3 W"))
                     .cell(capped.makespanS, 0)
                     .cell(peak(capped), 1)
                     .take());
    table.print();

    bench::section("power-constrained schedule (paper Fig. 3a)");
    std::printf("%s", capped.schedule.gantt().c_str());

    bench::section("per-step power traces (paper Fig. 3b)");
    Table trace({"step", "unconstrained (W)", "constrained (W)"});
    auto base_trace = base.schedule.powerTrace();
    auto capped_trace = capped.schedule.powerTrace();
    size_t steps = std::max(base_trace.size(), capped_trace.size());
    for (size_t s = 0; s < steps; ++s) {
        trace.addRow(
            RowBuilder()
                .cell(static_cast<int64_t>(s))
                .cell(s < base_trace.size() ? base_trace[s] : 0.0, 1)
                .cell(s < capped_trace.size() ? capped_trace[s] : 0.0,
                      1)
                .take());
    }
    trace.print();
}

void
BM_SolvePowerConstrainedExample(benchmark::State &state)
{
    ProblemSpec spec = makeTwoAppExample();
    spec.powerBudgetW = 3.0;
    EngineOptions options = exampleEngine();
    for (auto _ : state) {
        EvalResult result = evaluate(spec, options);
        benchmark::DoNotOptimize(result.makespanS);
    }
}
BENCHMARK(BM_SolvePowerConstrainedExample)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

int
main(int argc, char **argv)
{
    hilp::bench::initHarness(&argc, argv);
    emitFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
