#include "daemon.hh"

#include <sys/socket.h>

#include <chrono>
#include <fstream>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "dse/checkpoint.hh"
#include "dse/distribute.hh"
#include "protocol.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/str.hh"
#include "support/trace.hh"

namespace hilp {
namespace service {

namespace {

/**
 * Serialized line writer shared by a request's streaming callbacks:
 * sweep workers complete points concurrently, and each record must
 * land as one whole line. A failed write (peer hung up mid-stream)
 * latches: the sweep keeps running - its results still warm the
 * service caches - but no further writes are attempted.
 */
class LineWriter
{
  public:
    explicit LineWriter(net::LineChannel &channel)
        : channel_(channel) {}

    bool
    write(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (failed_)
            return false;
        if (!channel_.writeLine(line)) {
            failed_ = true;
            return false;
        }
        return true;
    }

    bool failed() const { return failed_; }

  private:
    net::LineChannel &channel_;
    std::mutex mutex_;
    bool failed_ = false;
};

int64_t
elapsedUs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // anonymous namespace

bool
Daemon::serveConnection(net::Socket socket)
{
    if (options_.readTimeoutS > 0.0)
        socket.setReadTimeout(options_.readTimeoutS);
    net::LineChannel channel(std::move(socket));
    std::string line;
    for (;;) {
        if (!channel.readLine(&line)) {
            if (channel.timedOut()) {
                // A stalled or idle peer must not pin this handler
                // thread forever; drop it. (The peer may reconnect.)
                metrics::counter("hilpd.peers.timed_out").add(1);
                warn("hilpd: dropping peer: no complete request "
                     "line within %gs",
                     options_.readTimeoutS);
            }
            break;
        }
        if (line.empty())
            continue;

        protocol::Request request;
        std::string error;
        if (!protocol::parseRequest(line, &request, &error)) {
            channel.writeLine(protocol::encodeDone(false, error));
            continue; // Malformed input; the connection stays usable.
        }

        if (stop_.load() && request.op != protocol::Op::Stats) {
            channel.writeLine(protocol::encodeDone(
                false, "daemon is shutting down"));
            continue;
        }

        switch (request.op) {
          case protocol::Op::Stats:
            channel.writeLine(
                protocol::encodeStats(service_.statsJson()));
            channel.writeLine(protocol::encodeDone(true, ""));
            continue;
          case protocol::Op::Shutdown:
            inform("hilpd: shutdown requested");
            stop();
            channel.writeLine(protocol::encodeDone(true, ""));
            return true;
          case protocol::Op::Lease:
          case protocol::Op::Submit:
          case protocol::Op::Heartbeat:
          case protocol::Op::Drain:
            handleCoordinatorOp(request, channel);
            continue;
          case protocol::Op::Eval:
          case protocol::Op::Sweep:
            break;
        }

        // Admission: every eval/sweep request gets a trace context
        // here, before any work happens. The id rides the handler's
        // spans, the job queue into the sweep workers, each streamed
        // point, the done line, and the flight-recorder entry.
        uint64_t traceId = trace::newTraceId();
        auto admitted = std::chrono::steady_clock::now();
        trace::ContextScope requestScope(traceId);
        trace::Span requestSpan(request.op == protocol::Op::Eval
                                    ? "hilpd.request.eval"
                                    : "hilpd.request.sweep");

        RequestSummary summary;
        summary.traceId = traceId;
        summary.op =
            request.op == protocol::Op::Eval ? "eval" : "sweep";
        summary.configs = request.configNames.size();
        if (!request.configNames.empty())
            summary.detail = request.configNames.front();

        std::vector<arch::SocConfig> configs;
        if (!protocol::resolveConfigs(request, &configs, &error)) {
            summary.error = error;
            summary.totalUs = elapsedUs(admitted);
            service_.flightRecorder().record(summary);
            channel.writeLine(
                protocol::encodeDone(false, error, 0, traceId));
            continue;
        }

        // The actual evaluation runs on the service's executor crew
        // behind admission control; this handler thread only streams
        // results and waits. A rejected request costs the client one
        // round trip and an explanation, never an unbounded queue.
        LineWriter writer(channel);
        SweepRequest sweep;
        sweep.configs = std::move(configs);
        sweep.workload =
            workload::makeWorkload(request.variant, request.copies);
        sweep.constraints = request.constraints;
        sweep.kind = request.kind;
        sweep.options = request.options;
        sweep.traceId = traceId;
        dse::ModelKind kind = request.kind;
        std::atomic<size_t> streamed{0};
        std::atomic<int64_t> serializeUs{0};
        sweep.onPoint = [&](const dse::DsePoint &point,
                            const Schedule *schedule) {
            auto start = std::chrono::steady_clock::now();
            Json record = dse::pointRecordJson(
                dse::checkpointKey(point.fingerprint,
                                   point.config.name(), kind),
                kind, point, schedule);
            record.set("type", Json::string("point"));
            writer.write(record.dump());
            streamed.fetch_add(1, std::memory_order_relaxed);
            serializeUs.fetch_add(elapsedUs(start),
                                  std::memory_order_relaxed);
        };

        std::promise<void> finished;
        std::future<void> done = finished.get_future();
        std::string failure;
        int64_t queueWaitUs = 0;
        int64_t solveUs = 0;
        Admission admission = service_.submit(
            [&] {
                // Executor thread: re-establish the request's trace
                // context (thread-local state does not follow the
                // job across the queue).
                trace::ContextScope jobScope(traceId);
                trace::Span solveSpan("hilpd.solve");
                auto start = std::chrono::steady_clock::now();
                queueWaitUs = std::chrono::duration_cast<
                                  std::chrono::microseconds>(
                                  start - admitted)
                                  .count();
                // The promise must be fulfilled on every path or the
                // handler thread below waits forever.
                try {
                    service_.sweep(sweep);
                } catch (const std::exception &e) {
                    failure = format("sweep failed: %s", e.what());
                } catch (...) {
                    failure = "sweep failed: unknown exception";
                }
                solveUs = elapsedUs(start);
                finished.set_value();
            },
            request.priority);
        if (!admission.accepted) {
            summary.error =
                format("rejected: %s", admission.reason.c_str());
            summary.totalUs = elapsedUs(admitted);
            service_.flightRecorder().record(summary);
            metrics::counter("hilpd.requests.rejected").add(1);
            channel.writeLine(protocol::encodeDone(
                false, summary.error, 0, traceId));
            continue;
        }
        done.wait();
        bool ok = failure.empty() && !writer.failed();
        finishRequest(summary, ok,
                      !failure.empty()
                          ? failure
                          : (writer.failed() ? "client write failed"
                                             : ""),
                      streamed.load(), queueWaitUs, solveUs,
                      serializeUs.load(), elapsedUs(admitted));
        channel.writeLine(protocol::encodeDone(
            ok, summary.error, streamed.load(), traceId));
    }
    return false;
}

/**
 * Serve one distributed-sweep op against the registered coordinator.
 * The registration mutex is held for the whole op, so the host can
 * never destroy a coordinator under a handler mid-call - and
 * conversely registration changes wait out in-flight ops.
 */
void
Daemon::handleCoordinatorOp(const protocol::Request &request,
                            net::LineChannel &channel)
{
    std::lock_guard<std::mutex> lock(coordMutex_);
    switch (request.op) {
      case protocol::Op::Lease: {
        if (!coordinator_) {
            // No sweep right now: retired means the whole run is
            // over (exit); otherwise the host is between sweeps.
            channel.writeLine(coordRetired_
                                  ? protocol::encodeLeaseComplete()
                                  : protocol::encodeLeaseWait());
            channel.writeLine(protocol::encodeDone(true, ""));
            return;
        }
        dse::LeaseGrant grant;
        if (coordinator_->lease(request.worker, &grant) ==
            dse::LeaseOutcome::Granted) {
            channel.writeLine(protocol::encodeLeaseGrant(
                grant.leaseId, grant.unit, grant.expiresS,
                grant.configNames, coordParams_));
        } else {
            channel.writeLine(protocol::encodeLeaseWait());
        }
        channel.writeLine(protocol::encodeDone(true, ""));
        return;
      }
      case protocol::Op::Submit: {
        if (!coordinator_) {
            // A zombie worker streaming results after its sweep
            // ended: nothing to merge into.
            channel.writeLine(protocol::encodeAck(false, 0, 0));
            channel.writeLine(protocol::encodeDone(
                false, "no active coordinator"));
            return;
        }
        size_t accepted = 0;
        size_t duplicates = 0;
        size_t rejected = 0;
        std::string error;
        for (const Json &record : request.records) {
            bool duplicate = false;
            std::string record_error;
            if (!coordinator_->submitRecord(
                    request.worker, request.leaseId, record.dump(),
                    &record_error, &duplicate)) {
                ++rejected;
                if (error.empty())
                    error = record_error;
            } else if (duplicate) {
                ++duplicates;
            } else {
                ++accepted;
            }
        }
        if (request.complete)
            coordinator_->completeLease(request.worker,
                                        request.leaseId);
        channel.writeLine(
            protocol::encodeAck(rejected == 0, accepted, duplicates));
        channel.writeLine(protocol::encodeDone(rejected == 0, error));
        return;
      }
      case protocol::Op::Heartbeat: {
        const bool alive = coordinator_ &&
            coordinator_->heartbeat(request.worker, request.leaseId);
        channel.writeLine(protocol::encodeAck(alive, 0, 0));
        channel.writeLine(protocol::encodeDone(true, ""));
        return;
      }
      case protocol::Op::Drain: {
        Json json = Json::object();
        if (coordinator_) {
            dse::CoordinatorProgress progress =
                coordinator_->progress();
            json.set("units",
                     Json::number(
                         static_cast<int64_t>(progress.units)));
            json.set("units_done",
                     Json::number(
                         static_cast<int64_t>(progress.unitsDone)));
            json.set("leases_active",
                     Json::number(static_cast<int64_t>(
                         progress.leasesActive)));
            json.set("points_merged",
                     Json::number(static_cast<int64_t>(
                         progress.pointsMerged)));
            json.set("duplicates",
                     Json::number(
                         static_cast<int64_t>(progress.duplicates)));
            json.set("reissued",
                     Json::number(
                         static_cast<int64_t>(progress.reissued)));
            json.set("finished", Json::boolean(progress.finished));
        }
        json.set("retired", Json::boolean(coordRetired_));
        channel.writeLine(protocol::encodeProgress(std::move(json)));
        channel.writeLine(protocol::encodeDone(true, ""));
        return;
      }
      default:
        return;
    }
}

void
Daemon::setCoordinator(dse::Coordinator *coordinator, Json params)
{
    std::lock_guard<std::mutex> lock(coordMutex_);
    coordinator_ = coordinator;
    coordParams_ = std::move(params);
    coordRetired_ = false;
}

void
Daemon::clearCoordinator()
{
    std::lock_guard<std::mutex> lock(coordMutex_);
    coordinator_ = nullptr;
}

void
Daemon::retireCoordinator()
{
    std::lock_guard<std::mutex> lock(coordMutex_);
    coordinator_ = nullptr;
    coordRetired_ = true;
}

/**
 * Request epilogue: publish the per-request latency breakdown to the
 * metrics registry, remember the request in the flight recorder, and
 * - when the request blew the SLO while tracing was recording - dump
 * its span tree as a request-id-stamped Chrome trace plus one
 * structured log line.
 */
void
Daemon::finishRequest(RequestSummary &summary, bool ok,
                      const std::string &error, size_t points,
                      int64_t queue_wait_us, int64_t solve_us,
                      int64_t serialize_us, int64_t total_us)
{
    summary.ok = ok;
    summary.error = error;
    summary.points = points;
    summary.queueWaitUs = queue_wait_us;
    summary.solveUs = solve_us;
    summary.serializeUs = serialize_us;
    summary.totalUs = total_us;
    summary.slow = options_.sloMs > 0.0 &&
        static_cast<double>(total_us) > options_.sloMs * 1000.0;

    metrics::counter("hilpd.requests").add(1);
    if (!ok)
        metrics::counter("hilpd.requests.failed").add(1);
    if (summary.slow)
        metrics::counter("hilpd.requests.slow").add(1);
    metrics::histogram("hilpd.request.queue_wait_us")
        .record(queue_wait_us);
    metrics::histogram("hilpd.request.solve_us").record(solve_us);
    metrics::histogram("hilpd.request.serialize_us")
        .record(serialize_us);
    metrics::histogram("hilpd.request.total_us").record(total_us);

    service_.flightRecorder().record(summary);

    if (!summary.slow || !trace::enabled())
        return;
    std::string path = format("%s/hilpd_slow_req%llu.trace.json",
                              options_.dumpDir.c_str(),
                              static_cast<unsigned long long>(
                                  summary.traceId));
    Json tree = trace::toJsonForContext(summary.traceId);
    std::ofstream file(path);
    if (file) {
        file << tree.dump() << "\n";
        file.close();
    }
    Json line = summary.toJson();
    line.set("event", Json::string("slow_request"));
    line.set("slo_ms", Json::number(options_.sloMs));
    line.set("trace_dump", Json::string(file ? path : ""));
    warn("hilpd: %s", line.dump().c_str());
}

void
Daemon::run(net::Listener &listener)
{
    listenerFd_.store(listener.fd());
    std::vector<std::thread> handlers;
    while (!stop_.load()) {
        net::Socket connection = listener.accept();
        if (!connection.valid()) {
            if (stop_.load())
                break;
            continue; // Transient accept failure (e.g. EINTR).
        }
        handlers.emplace_back(
            [this, socket = std::move(connection)]() mutable {
                serveConnection(std::move(socket));
            });
    }
    listenerFd_.store(-1);
    listener.close();
    for (std::thread &handler : handlers)
        handler.join();
}

void
Daemon::stop()
{
    stop_.store(true);
    int fd = listenerFd_.load();
    if (fd >= 0) {
        // Unblock the accept loop. shutdown() (not close) so the fd
        // stays valid for the Listener's own close/unlink.
        ::shutdown(fd, SHUT_RDWR);
    }
}

} // namespace service
} // namespace hilp
