#include "pareto.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace hilp {
namespace dse {

std::vector<size_t>
paretoFront(const std::vector<double> &cost,
            const std::vector<double> &value,
            double min_relative_gain)
{
    hilp_assert(cost.size() == value.size());
    std::vector<size_t> order(cost.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    // Ascending cost; descending value on ties so the best point at
    // a cost level comes first.
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (cost[a] != cost[b])
            return cost[a] < cost[b];
        return value[a] > value[b];
    });
    std::vector<size_t> front;
    double best_value = -1e300;
    for (size_t idx : order) {
        double required = best_value +
            std::abs(best_value) * min_relative_gain;
        if (value[idx] > required) {
            front.push_back(idx);
            best_value = value[idx];
        }
    }
    return front;
}

const char *
toString(AccelMix mix)
{
    switch (mix) {
      case AccelMix::None:
        return "none";
      case AccelMix::GpuDominated:
        return "gpu";
      case AccelMix::DsaDominated:
        return "dsa";
      case AccelMix::Mixed:
        return "mixed";
    }
    return "unknown";
}

AccelMix
classifyAccelMix(const arch::SocConfig &config)
{
    double gpu_area = config.gpuSms * arch::kGpuSmAreaMm2;
    double dsa_area = 0.0;
    for (const arch::DsaSpec &dsa : config.dsas)
        dsa_area += dsa.pes * arch::kGpuSmAreaMm2;
    double total = gpu_area + dsa_area;
    if (total <= 0.0)
        return AccelMix::None;
    if (gpu_area / total > 0.75)
        return AccelMix::GpuDominated;
    if (dsa_area / total > 0.75)
        return AccelMix::DsaDominated;
    return AccelMix::Mixed;
}

} // namespace dse
} // namespace hilp
